#ifndef RECEIPT_OBS_TRACE_H_
#define RECEIPT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace receipt::obs {

/// One completed span: a named, timed interval attributed to a trace.
/// Fixed-size POD — the recorder ring stores these inline, so recording a
/// span never allocates. `name` is a phase identifier ("engine.cd",
/// "queue.wait"), truncated to fit; `arg` is an optional numeric payload
/// (subset index, byte count) whose meaning is per-span-name.
struct TraceSpan {
  static constexpr size_t kNameCapacity = 24;

  uint64_t trace_id = 0;
  uint64_t start_ns = 0;     ///< steady-clock ns (same epoch as NowNs())
  uint64_t duration_ns = 0;
  uint64_t arg = 0;
  char name[kNameCapacity] = {};

  std::string_view Name() const {
    return std::string_view(name, ::strnlen(name, kNameCapacity));
  }
};

/// Fixed-capacity lock-free span ring. Writers claim a slot with one
/// fetch_add and publish with a sequence-number protocol (invalidate →
/// write payload → publish ticket); readers copy a slot and re-check its
/// sequence, discarding torn reads. New spans overwrite the oldest — the
/// ring is a flight recorder, not a durable log. All operations are
/// allocation-free after construction.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 4096);

  void Record(uint64_t trace_id, const char* name, uint64_t start_ns,
              uint64_t duration_ns, uint64_t arg = 0);

  /// All currently-readable spans, newest first.
  std::vector<TraceSpan> Snapshot(size_t limit = SIZE_MAX) const;
  /// Spans belonging to one trace, oldest first (start_ns order).
  std::vector<TraceSpan> ForTrace(uint64_t trace_id) const;

  size_t capacity() const { return mask_ + 1; }
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds; the time base every span uses.
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  struct Slot {
    /// 0 = never written / being rewritten; otherwise the 1-based ticket
    /// of the write that produced `span`.
    std::atomic<uint64_t> seq{0};
    TraceSpan span;
  };

  // unique_ptr<Slot[]> rather than vector<Slot>: atomics make Slot
  // immovable, and the ring never resizes anyway.
  std::unique_ptr<Slot[]> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
};

/// Mints a process-unique nonzero trace id (splitmix64 over a global
/// counter seeded from the clock at first use).
uint64_t MintTraceId();

/// Trace id from a client-supplied X-Request-Id value: 1–16 hex digits
/// parse directly (so ids round-trip through FormatTraceId); anything else
/// is FNV-1a-hashed so arbitrary client tokens still produce a stable,
/// queryable id. Empty input mints a fresh id. Never returns 0.
uint64_t ParseOrMintTraceId(std::string_view header_value);

/// Canonical 16-lowercase-hex-digit rendering, the wire form of trace ids.
std::string FormatTraceId(uint64_t trace_id);

/// The handle threaded through engine options: a recorder plus the request
/// identity spans are attributed to. Default-constructed it is a null
/// sink — enabled() is one pointer test, and every emission helper returns
/// before touching the clock, which is what keeps the disabled path free
/// (bench_obs_micro gates this).
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  uint64_t trace_id = 0;

  bool enabled() const { return recorder != nullptr && trace_id != 0; }

  /// Emits a span that started at `start_ns` and ends now.
  void EmitSince(const char* name, uint64_t start_ns, uint64_t arg = 0) const {
    if (!enabled()) return;
    const uint64_t now = TraceRecorder::NowNs();
    recorder->Record(trace_id, name, start_ns,
                     now >= start_ns ? now - start_ns : 0, arg);
  }
  /// Emits a fully-specified span (caller measured the interval).
  void Emit(const char* name, uint64_t start_ns, uint64_t duration_ns,
            uint64_t arg = 0) const {
    if (!enabled()) return;
    recorder->Record(trace_id, name, start_ns, duration_ns, arg);
  }
};

/// RAII span: stamps the clock at construction, records at destruction.
/// On a disabled context both ends are a branch on a null pointer.
class ScopedSpan {
 public:
  ScopedSpan(const TraceContext& ctx, const char* name, uint64_t arg = 0)
      : ctx_(ctx), name_(name), arg_(arg),
        start_ns_(ctx.enabled() ? TraceRecorder::NowNs() : 0) {}
  ~ScopedSpan() {
    if (ctx_.enabled()) ctx_.EmitSince(name_, start_ns_, arg_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  const TraceContext& ctx_;
  const char* name_;
  uint64_t arg_;
  uint64_t start_ns_;
};

}  // namespace receipt::obs

#endif  // RECEIPT_OBS_TRACE_H_
