#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace receipt::obs {
namespace {

/// Bucket index for a duration: smallest i with ns <= 2^i. Computed from
/// bit_width(ns - 1) — the naive bit_width(ns) - 1 would file ns=3 under
/// le=2 — then clamped into the overflow slot.
int BucketIndex(uint64_t ns) {
  const int i = ns <= 1 ? 0 : std::bit_width(ns - 1);
  return std::min(i, Histogram::kFiniteBuckets);
}

void AppendNumber(std::string* out, double value) {
  char buf[64];
  // %.17g round-trips doubles; integral values still print without
  // exponent noise for the common all-integer case.
  if (value == static_cast<uint64_t>(value) && value < 1e15) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out->append(buf);
}

void AppendNumber(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out->append(buf);
}

/// Label values need the exposition-format escapes (backslash, quote,
/// newline); names are caller-controlled identifiers and pass through.
void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(labels[i].first);
    out.append("=\"");
    AppendEscapedLabelValue(&out, labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// Histogram children carry their labels plus le=...; splice the le pair
/// inside the existing brace set (or open a fresh one).
std::string BucketLabels(const std::string& rendered, const char* le) {
  std::string out;
  if (rendered.empty()) {
    out = "{le=\"";
  } else {
    out = rendered.substr(0, rendered.size() - 1);  // drop '}'
    out.append(",le=\"");
  }
  out.append(le);
  out.append("\"}");
  return out;
}

}  // namespace

void Histogram::Observe(uint64_t ns) {
  buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void Histogram::ObserveSeconds(double seconds) {
  if (seconds < 0) seconds = 0;
  Observe(static_cast<uint64_t>(seconds * 1e9));
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::SumSeconds() const {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::BucketBoundSeconds(int i) {
  return std::ldexp(1.0, i) * 1e-9;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t count = Count();
  if (count == 0) return 0.0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * count)));
  uint64_t cumulative = 0;
  for (int i = 0; i <= kFiniteBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The overflow bucket has no finite upper edge; report its lower
      // edge instead so the estimate stays a number.
      return BucketBoundSeconds(std::min(i, kFiniteBuckets - 1));
    }
  }
  return BucketBoundSeconds(kFiniteBuckets - 1);
}

MetricsRegistry::Child* MetricsRegistry::FindOrCreateChild(
    std::string_view name, std::string_view help, Kind kind, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{kind, std::string(help), {}})
             .first;
  }
  Family& family = it->second;
  for (Child& child : family.children) {
    if (child.labels == labels) return &child;
  }
  Child child;
  child.rendered_labels = RenderLabels(labels);
  child.labels = std::move(labels);
  switch (kind) {
    case Kind::kCounter:
      child.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      child.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      child.histogram = std::make_unique<Histogram>();
      break;
  }
  family.children.push_back(std::move(child));
  return &family.children.back();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  return FindOrCreateChild(name, help, Kind::kCounter, std::move(labels))
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  return FindOrCreateChild(name, help, Kind::kGauge, std::move(labels))
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         Labels labels) {
  return FindOrCreateChild(name, help, Kind::kHistogram, std::move(labels))
      ->histogram.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, family] : families_) {
    out.append("# HELP ").append(name).append(" ").append(family.help);
    out.push_back('\n');
    out.append("# TYPE ").append(name).append(" ");
    switch (family.kind) {
      case Kind::kCounter:
        out.append("counter");
        break;
      case Kind::kGauge:
        out.append("gauge");
        break;
      case Kind::kHistogram:
        out.append("histogram");
        break;
    }
    out.push_back('\n');
    for (const Child& child : family.children) {
      if (family.kind == Kind::kCounter) {
        out.append(name).append(child.rendered_labels).push_back(' ');
        AppendNumber(&out, child.counter->Value());
        out.push_back('\n');
      } else if (family.kind == Kind::kGauge) {
        out.append(name).append(child.rendered_labels).push_back(' ');
        AppendNumber(&out, child.gauge->Value());
        out.push_back('\n');
      } else {
        const Histogram& h = *child.histogram;
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kFiniteBuckets; ++i) {
          const uint64_t n = h.BucketCount(i);
          cumulative += n;
          // Empty leading buckets are elided (sub-microsecond edges carry
          // no information for request latencies) but once a bucket has
          // counts every subsequent edge is emitted so the cumulative
          // series stays monotone and parseable.
          if (cumulative == 0 && i < 10) continue;
          char le[32];
          std::snprintf(le, sizeof(le), "%.17g",
                        Histogram::BucketBoundSeconds(i));
          out.append(name).append("_bucket");
          out.append(BucketLabels(child.rendered_labels, le));
          out.push_back(' ');
          AppendNumber(&out, cumulative);
          out.push_back('\n');
        }
        cumulative += h.BucketCount(Histogram::kFiniteBuckets);
        out.append(name).append("_bucket");
        out.append(BucketLabels(child.rendered_labels, "+Inf"));
        out.push_back(' ');
        AppendNumber(&out, cumulative);
        out.push_back('\n');
        out.append(name).append("_sum").append(child.rendered_labels);
        out.push_back(' ');
        AppendNumber(&out, h.SumSeconds());
        out.push_back('\n');
        out.append(name).append("_count").append(child.rendered_labels);
        out.push_back(' ');
        AppendNumber(&out, cumulative);
        out.push_back('\n');
      }
    }
  }
  return out;
}

}  // namespace receipt::obs
