#ifndef RECEIPT_OBS_OBSERVABILITY_H_
#define RECEIPT_OBS_OBSERVABILITY_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace receipt::obs {

/// The one observability bundle a process shares between its service,
/// HTTP front-end, and CLI: a metrics registry and a span flight
/// recorder. DecompositionService owns a private one when the embedder
/// does not supply theirs, so instruments always exist and call sites
/// never null-check.
struct Observability {
  MetricsRegistry metrics;
  TraceRecorder traces{4096};
};

}  // namespace receipt::obs

#endif  // RECEIPT_OBS_OBSERVABILITY_H_
