#include "obs/client_trace.h"

#include <chrono>

#include "util/json.h"

namespace receipt::obs {

ClientTraceLog::~ClientTraceLog() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ClientTraceLog::Open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open trace log '" + path + "'";
    return false;
  }
  return true;
}

void ClientTraceLog::Record(const ClientTraceRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  util::JsonWriter json;
  json.BeginObject();
  json.Key("seq").Uint(next_seq_++);
  json.Key("client").String(record.client);
  json.Key("op").String(record.read ? "read" : "write");
  json.Key("graph").String(record.graph);
  json.Key("epoch").Uint(record.epoch);
  json.Key("request_id").String(record.request_id);
  json.Key("ns").Uint(ns);
  json.EndObject();
  const std::string line = json.Take();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

uint64_t ClientTraceLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace receipt::obs
