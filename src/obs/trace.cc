#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace receipt::obs {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool ParseHex(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity) {
  capacity = std::max<size_t>(capacity, 2);
  capacity = std::bit_ceil(capacity);
  slots_ = std::make_unique<Slot[]>(capacity);
  mask_ = capacity - 1;
}

void TraceRecorder::Record(uint64_t trace_id, const char* name,
                           uint64_t start_ns, uint64_t duration_ns,
                           uint64_t arg) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[ticket & mask_];
  // Invalidate, write, publish: a reader that raced the rewrite sees seq 0
  // or mismatched tickets around its copy and discards it.
  slot.seq.store(0, std::memory_order_release);
  slot.span.trace_id = trace_id;
  slot.span.start_ns = start_ns;
  slot.span.duration_ns = duration_ns;
  slot.span.arg = arg;
  const size_t len =
      std::min(::strlen(name), TraceSpan::kNameCapacity - 1);
  std::memcpy(slot.span.name, name, len);
  std::memset(slot.span.name + len, 0, TraceSpan::kNameCapacity - len);
  slot.seq.store(ticket, std::memory_order_release);
}

std::vector<TraceSpan> TraceRecorder::Snapshot(size_t limit) const {
  const uint64_t newest = next_.load(std::memory_order_acquire);
  const size_t capacity = mask_ + 1;
  std::vector<TraceSpan> out;
  out.reserve(std::min<uint64_t>({newest, capacity, limit}));
  // Walk tickets newest → oldest; any slot rewritten mid-copy fails the
  // seq double-check and is skipped.
  const uint64_t oldest = newest > capacity ? newest - capacity + 1 : 1;
  for (uint64_t ticket = newest; ticket >= oldest && out.size() < limit;
       --ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != ticket) continue;
    TraceSpan copy = slot.span;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != ticket) continue;
    out.push_back(copy);
  }
  return out;
}

std::vector<TraceSpan> TraceRecorder::ForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> spans = Snapshot();
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [trace_id](const TraceSpan& s) {
                               return s.trace_id != trace_id;
                             }),
              spans.end());
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

uint64_t MintTraceId() {
  static std::atomic<uint64_t> counter{TraceRecorder::NowNs()};
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

uint64_t ParseOrMintTraceId(std::string_view header_value) {
  // Trim surrounding whitespace a proxy may have introduced.
  while (!header_value.empty() &&
         (header_value.front() == ' ' || header_value.front() == '\t')) {
    header_value.remove_prefix(1);
  }
  while (!header_value.empty() &&
         (header_value.back() == ' ' || header_value.back() == '\t')) {
    header_value.remove_suffix(1);
  }
  if (header_value.empty()) return MintTraceId();
  uint64_t id = 0;
  if (!ParseHex(header_value, &id)) id = Fnv1a(header_value);
  return id == 0 ? 1 : id;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf, 16);
}

}  // namespace receipt::obs
