#ifndef RECEIPT_OBS_CLIENT_TRACE_H_
#define RECEIPT_OBS_CLIENT_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace receipt::obs {

/// One client-visible operation as the consistency checker sees it: who
/// read or wrote which graph, and the epoch the response reported.
struct ClientTraceRecord {
  std::string client;      ///< X-Client-Id header, "anon" when absent
  bool read = true;        ///< read = /v1/decompose, write = register/edges
  std::string graph;
  uint64_t epoch = 0;      ///< graph_epoch (reads) / epoch (writes) returned
  std::string request_id;  ///< the X-Request-Id propagated end to end
};

/// The durable half of the PR 7 trace substrate: an append-only JSONL log
/// of per-client read/write operations, written by the router as each
/// response completes and consumed offline by tools/consistency_check.
/// One line per op:
///
///   {"seq":3,"client":"c1","op":"read","graph":"g","epoch":7,
///    "request_id":"00000000c0ffee","ns":171234567890}
///
/// `seq` is the sink's own append order (the per-client program order for
/// sequential clients); `ns` is wall-clock, informational only — the
/// checker orders by seq. Lines are flushed as written so a kill -9 of
/// the router loses at most the line being formatted.
class ClientTraceLog {
 public:
  ClientTraceLog() = default;
  ~ClientTraceLog();
  ClientTraceLog(const ClientTraceLog&) = delete;
  ClientTraceLog& operator=(const ClientTraceLog&) = delete;

  /// Opens (appending) the sink. False + `error` when the open fails.
  bool Open(const std::string& path, std::string* error);

  bool enabled() const { return file_ != nullptr; }

  /// Appends one record. No-op when the sink is not open.
  void Record(const ClientTraceRecord& record);

  uint64_t records_written() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  uint64_t next_seq_ = 0;
};

}  // namespace receipt::obs

#endif  // RECEIPT_OBS_CLIENT_TRACE_H_
