#ifndef RECEIPT_OBS_METRICS_H_
#define RECEIPT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace receipt::obs {

/// Monotone event counter. Incremented lock-free from any thread; read at
/// scrape time. Callers hold the pointer returned by the registry — the
/// hot path never touches the registry map.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, makespan of the most
/// recent run). Unlike Counter it may move in either direction.
class Gauge {
 public:
  void Set(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram over log2 nanosecond buckets — the same power-of-two
/// bucketing idiom the SupportIndex uses for support values, applied to
/// durations. Bucket i counts observations with ns <= 2^i; bucket 0 covers
/// {0, 1} ns and the final slot is the +Inf overflow. 41 relaxed atomic
/// adds per second of traffic cost nothing measurable, and the fixed
/// layout means Observe never allocates.
///
/// Quantiles are upper-bound estimates: the cumulative walk returns the
/// upper edge of the bucket containing the q-th observation, so a reported
/// p99 of 2^21 ns means the true p99 lies in (2^20, 2^21]. Factor-of-two
/// resolution is exactly what latency triage needs and what a fixed
/// allocation can afford.
class Histogram {
 public:
  /// Finite buckets: upper bounds 2^0 .. 2^39 ns (~= 1.1 ks), then +Inf.
  static constexpr int kFiniteBuckets = 40;

  void Observe(uint64_t ns);
  void ObserveSeconds(double seconds);

  uint64_t Count() const;
  double SumSeconds() const;
  /// Upper bound of the bucket holding the q-th quantile observation, in
  /// seconds. Returns 0 when empty. q is clamped to [0, 1].
  double Quantile(double q) const;

  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of finite bucket i in seconds (2^i ns).
  static double BucketBoundSeconds(int i);

 private:
  std::array<std::atomic<uint64_t>, kFiniteBuckets + 1> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
};

/// One metric family label set, e.g. {outcome="ok"}. Kept sorted by key so
/// equal label sets render identically and map lookups are canonical.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metrics, registered once and exported as Prometheus text.
///
/// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
/// meant for construction time: callers cache the returned pointer, which
/// stays valid for the registry's lifetime, and the request path is plain
/// relaxed atomics. Re-registering the same (name, labels) returns the
/// existing instrument. Rendering walks an ordered map, so the exposition
/// is deterministic — the text-format conformance test depends on that.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          Labels labels = {});

  /// Full exposition in Prometheus text format, version 0.0.4: one
  /// `# HELP` + `# TYPE` header per family, then each child's samples.
  /// Histograms expand to cumulative `_bucket{le=...}`, `_sum`, `_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Child {
    Labels labels;
    std::string rendered_labels;  ///< "{k=\"v\",...}" or "" when unlabelled
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind;
    std::string help;
    std::vector<Child> children;
  };

  Child* FindOrCreateChild(std::string_view name, std::string_view help,
                           Kind kind, Labels labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace receipt::obs

#endif  // RECEIPT_OBS_METRICS_H_
