#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace receipt::server {

namespace {

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 499: return "Client Closed Request";  // nginx convention
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

enum class RecvStatus { kData, kEof, kTimeout, kError };

/// recv() the next chunk into `buffer`, growing it.
RecvStatus RecvChunk(int fd, std::string* buffer) {
  char chunk[4096];
  ssize_t n;
  do {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n == 0) return RecvStatus::kEof;
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK ? RecvStatus::kTimeout
                                                   : RecvStatus::kError;
  }
  buffer->append(chunk, static_cast<size_t>(n));
  return RecvStatus::kData;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a client that closed mid-response must produce EPIPE,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpRequest::ClientDisconnected() const {
  if (client_fd < 0) return true;
  pollfd probe{};
  probe.fd = client_fd;
  probe.events = POLLIN
#ifdef POLLRDHUP
                 | POLLRDHUP
#endif
      ;
  if (::poll(&probe, 1, 0) <= 0) return false;  // nothing new: still there
  if ((probe.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
#ifdef POLLRDHUP
  if ((probe.revents & POLLRDHUP) != 0) return true;
#endif
  if ((probe.revents & POLLIN) != 0) {
    char probe_byte;
    const ssize_t n =
        ::recv(client_fd, &probe_byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;  // orderly shutdown from the client
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;
    }
  }
  return false;
}

HttpServer::HttpServer(const HttpServerOptions& options) : options_(options) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& path,
                        HttpHandler handler) {
  routes_[path][method] = std::move(handler);
}

void HttpServer::HandlePrefix(const std::string& method,
                              const std::string& prefix,
                              HttpHandler handler) {
  prefix_routes_[prefix][method] = std::move(handler);
}

bool HttpServer::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  // MSG_NOSIGNAL covers send(), but a peer reset can still raise SIGPIPE
  // from other paths (and from embedders' sockets); a server must never die
  // to a client hangup.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("inet_pton('" + options_.bind_address + "')");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    return fail("listen");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  stopping_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int num_threads = std::max(1, options_.num_threads);
  handler_threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return true;
}

void HttpServer::Stop() {
  if (!started_) return;
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // Waking the blocking accept(): shutdown() makes it return on Linux, and
  // closing the fd covers the rest.
  ::shutdown(listen_fd_, SHUT_RDWR);
  pending_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Handler threads drain pending_ completely before exiting: every
  // accepted connection still gets a full response.
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down: Stop() is in progress
    }
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      if (pending_.size() >= options_.max_pending_connections) {
        ++stats_.connections_rejected;
        reject = true;
      } else {
        ++stats_.connections_accepted;
        pending_.push_back(fd);
      }
    }
    if (reject) {
      // Reject at the door rather than queueing unboundedly; the client
      // sees a well-formed 503 instead of a hung connection.
      HttpResponse overload;
      overload.status = 503;
      overload.extra_headers.emplace_back("Retry-After", "1");
      overload.body =
          "{\"status\":\"unavailable\",\"error\":\"connection queue full\"}";
      WriteResponse(fd, overload, false);
      ::close(fd);
      continue;
    }
    pending_cv_.notify_one();
  }
}

void HttpServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_cv_.wait(lock,
                       [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and fully drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  timeval timeout{};
  timeout.tv_sec = options_.recv_timeout_ms / 1000;
  timeout.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  timeval send_timeout{};
  send_timeout.tv_sec = options_.send_timeout_ms / 1000;
  send_timeout.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

  // Keep-alive loop: `buffer` carries pipelined bytes between requests.
  // Between requests an idle client gets idle_timeout_ms to start the next
  // one, then the connection closes silently (no 408 — nothing was owed).
  std::string buffer;
  size_t served = 0;
  for (;;) {
    if (served > 0 && buffer.empty()) {
      pollfd waiting{};
      waiting.fd = fd;
      waiting.events = POLLIN;
      int ready;
      do {
        ready = ::poll(&waiting, 1, options_.idle_timeout_ms);
      } while (ready < 0 && errno == EINTR);
      if (ready <= 0) return;  // idle timeout (or poll error): close
      if ((waiting.revents & POLLIN) == 0) return;  // hangup/error
    }
    if (!ServeOneRequest(fd, &buffer, served)) return;
    ++served;
  }
}

bool HttpServer::ServeOneRequest(int fd, std::string* buffer_ptr,
                                 size_t served_so_far) {
  const auto serve_start = std::chrono::steady_clock::now();
  std::string& buffer = *buffer_ptr;

  // Parse failures always close the connection: the buffer may be left
  // mid-request, so resynchronizing on the next one is not possible.
  auto parse_failure = [&](int status, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.parse_failures;
    }
    HttpResponse response;
    response.status = status;
    std::string body = "{\"status\":\"error\",\"error\":\"" + message + "\"}";
    response.body = std::move(body);
    WriteResponse(fd, response, false);
    return false;
  };

  // Read until the header terminator, with the headers capped. EOF means
  // the client walked away mid-request (a malformed request, not a stall);
  // only a genuine recv timeout earns the 408.
  size_t header_end = std::string::npos;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > options_.max_header_bytes) {
      return parse_failure(413, "request headers too large");
    }
    switch (RecvChunk(fd, &buffer)) {
      case RecvStatus::kData: break;
      case RecvStatus::kTimeout:
        return parse_failure(408, "timed out reading request");
      case RecvStatus::kEof:
      case RecvStatus::kError:
        if (buffer.empty()) return false;  // connected and left: not a request
        return parse_failure(400, "client closed connection mid-request");
    }
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = buffer.find("\r\n");
  const std::string request_line = buffer.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos ||
      request_line.compare(target_end + 1, 5, "HTTP/") != 0) {
    return parse_failure(400, "malformed request line");
  }
  // HTTP/1.0 defaults to one request per connection; 1.1 to persistence.
  const bool http_1_0 = request_line.compare(target_end + 1, 8, "HTTP/1.0") == 0;

  HttpRequest request;
  request.client_fd = fd;
  request.method = request_line.substr(0, method_end);
  std::string target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  if (const size_t question = target.find('?');
      question != std::string::npos) {
    request.query = target.substr(question + 1);
    target.resize(question);
  }
  request.path = std::move(target);

  // Header fields.
  size_t cursor = line_end + 2;
  while (cursor < header_end) {
    const size_t eol = buffer.find("\r\n", cursor);
    const std::string line = buffer.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return parse_failure(400, "malformed header field");
    }
    std::string name = ToLower(line.substr(0, colon));
    // RFC 7230 optional whitespace after the colon is SP / HTAB.
    size_t value_start = colon + 1;
    while (value_start < line.size() &&
           (line[value_start] == ' ' || line[value_start] == '\t')) {
      ++value_start;
    }
    request.headers[std::move(name)] = line.substr(value_start);
  }

  // Body: exactly Content-Length bytes (chunked encoding is not supported —
  // every client this front-end serves sends sized bodies).
  size_t content_length = 0;
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    // Strictly digits (no sign, no strtoull wraparound): "-1" or an
    // overflowing value is a malformed header, not an oversized body.
    const std::string& value = it->second;
    const bool all_digits =
        !value.empty() && value.size() <= 18 &&
        value.find_first_not_of("0123456789") == std::string::npos;
    if (!all_digits) {
      return parse_failure(400, "malformed Content-Length");
    }
    content_length = static_cast<size_t>(std::strtoull(value.c_str(),
                                                       nullptr, 10));
  } else if (request.headers.count("transfer-encoding") > 0) {
    return parse_failure(400, "chunked bodies are not supported");
  }
  if (content_length > options_.max_body_bytes) {
    return parse_failure(413, "request body too large");
  }
  const size_t body_start = header_end + 4;
  while (buffer.size() - body_start < content_length) {
    switch (RecvChunk(fd, &buffer)) {
      case RecvStatus::kData: break;
      case RecvStatus::kTimeout:
        return parse_failure(408, "timed out reading request body");
      case RecvStatus::kEof:
      case RecvStatus::kError:
        return parse_failure(400, "request body shorter than Content-Length");
    }
  }
  request.body = buffer.substr(body_start, content_length);
  // Drop the consumed request; any pipelined follow-up stays buffered.
  buffer.erase(0, body_start + content_length);
  request.parse_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - serve_start)
          .count());

  // Persistence: the server opts in (options + request cap), then the
  // client's Connection header (or HTTP/1.0 default) can still close.
  bool keep = options_.keep_alive &&
              served_so_far + 1 < options_.max_requests_per_connection;
  if (const auto it = request.headers.find("connection");
      it != request.headers.end()) {
    const std::string token = ToLower(it->second);
    if (token == "close") keep = false;
    if (http_1_0 && token != "keep-alive") keep = false;
  } else if (http_1_0) {
    keep = false;
  }

  // Route dispatch: exact path, then the longest matching prefix route,
  // then method within the winning path.
  const std::map<std::string, HttpHandler>* methods = nullptr;
  if (const auto path_it = routes_.find(request.path);
      path_it != routes_.end()) {
    methods = &path_it->second;
  } else {
    size_t best_len = 0;
    for (const auto& [prefix, handlers] : prefix_routes_) {
      if (prefix.size() >= best_len &&
          request.path.compare(0, prefix.size(), prefix) == 0) {
        best_len = prefix.size();
        methods = &handlers;
      }
    }
  }
  HttpResponse response;
  if (methods == nullptr) {
    response.status = 404;
    response.body = "{\"status\":\"error\",\"error\":\"no such endpoint\"}";
  } else if (const auto method_it = methods->find(request.method);
             method_it == methods->end()) {
    response.status = 405;
    std::string allow;
    for (const auto& [method, handler] : *methods) {
      if (!allow.empty()) allow += ", ";
      allow += method;
    }
    response.extra_headers.emplace_back("Allow", std::move(allow));
    response.body = "{\"status\":\"error\",\"error\":\"method not allowed\"}";
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
      if (served_so_far > 0) ++stats_.keepalive_reuses;
    }
    response = method_it->second(request);
  }
  WriteResponse(fd, response, keep);
  return keep;
}

void HttpServer::CountResponse(int status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status < 300) {
    ++stats_.responses_2xx;
  } else if (status < 500) {
    ++stats_.responses_4xx;
  } else {
    ++stats_.responses_5xx;
  }
}

void HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusReason(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    head += name + ": " + value + "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
  if (SendAll(fd, head.data(), head.size())) {
    SendAll(fd, response.body.data(), response.body.size());
  }
  CountResponse(response.status);
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace receipt::server
