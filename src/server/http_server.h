#ifndef RECEIPT_SERVER_HTTP_SERVER_H_
#define RECEIPT_SERVER_HTTP_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace receipt::server {

/// Transport tuning. Defaults are sized for the CI/test environment: a
/// handful of handler threads, loopback binding, conservative caps so a
/// malformed or hostile client cannot exhaust the process.
struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Connection handler threads. Each serves one connection at a time, so
  /// this bounds HTTP-level concurrency; decomposition concurrency stays
  /// bounded separately by the service's worker pool and queue.
  int num_threads = 4;
  int listen_backlog = 64;
  /// Accepted connections waiting for a free handler thread. Overflow is
  /// answered 503 immediately — transport-level admission control, before
  /// the service queue's 429 even comes into play.
  size_t max_pending_connections = 64;
  size_t max_header_bytes = size_t{64} << 10;
  size_t max_body_bytes = size_t{8} << 20;
  /// recv timeout per socket read; a stalled client costs a handler thread
  /// at most this long per read before the request is failed with 408.
  int recv_timeout_ms = 10000;
  /// send timeout per socket write: a client that stops reading (full
  /// socket buffer) gets its connection dropped instead of wedging a
  /// handler thread — and with it Stop()'s join — forever.
  int send_timeout_ms = 10000;
  /// Serve multiple requests per connection (HTTP/1.1 persistent
  /// connections). Clients can still opt out per request with
  /// `Connection: close`; HTTP/1.0 requests default to close. Disabling
  /// restores the one-request-per-connection behaviour.
  bool keep_alive = true;
  /// Requests served on one connection before the server closes it
  /// (`Connection: close` on the final response) — bounds how long a
  /// single client can monopolize a handler thread.
  size_t max_requests_per_connection = 64;
  /// How long a kept-alive connection may sit idle between requests before
  /// the server closes it silently. Distinct from recv_timeout_ms, which
  /// applies once a request has started arriving.
  int idle_timeout_ms = 5000;
};

/// One parsed HTTP/1.1 request as delivered to a handler.
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "POST"
  std::string path;    ///< target with any ?query stripped
  std::string query;   ///< raw query string (no '?'), possibly empty
  std::string body;
  /// Header fields with lower-cased names (HTTP headers are
  /// case-insensitive; values are left verbatim).
  std::map<std::string, std::string> headers;

  /// True once the client has closed (or half-closed) its socket. Long
  /// handlers poll this to map client disconnect onto request cancellation.
  /// Peeks without consuming, so pipelined bytes are unaffected.
  bool ClientDisconnected() const;

  int client_fd = -1;  ///< owned by the server, valid during the handler
  /// Wall time (steady-clock ns) spent reading and parsing this request off
  /// the socket before dispatch — includes waiting for the client to send.
  /// Handlers that trace requests turn it into an "http.parse" span.
  uint64_t parse_ns = 0;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// A small dependency-free HTTP/1.1 server over POSIX sockets: one blocking
/// accept loop feeding a bounded queue of accepted connections, drained by a
/// fixed pool of handler threads. Connections are persistent by default
/// (HTTP/1.1 keep-alive with a per-connection request cap and an idle
/// timeout — a handler thread serves one connection at a time, so the cap
/// bounds how long one client can hold a thread). Routes are exact
/// (method, path) matches registered before Start().
///
/// Shutdown is graceful by construction: Stop() closes the listening socket
/// (no new connections), then handler threads drain every already-accepted
/// connection to a complete response before joining. In-flight requests are
/// never truncated mid-response.
class HttpServer {
 public:
  explicit HttpServer(const HttpServerOptions& options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path). Must precede Start().
  void Handle(const std::string& method, const std::string& path,
              HttpHandler handler);

  /// Registers `handler` for any path beginning with `prefix` (e.g.
  /// "/v1/traces/" to capture "/v1/traces/{id}"). Exact routes win; among
  /// prefix routes the longest matching prefix wins. Must precede Start().
  void HandlePrefix(const std::string& method, const std::string& prefix,
                    HttpHandler handler);

  /// Binds, listens and spawns the accept/handler threads. Returns false
  /// with *error set when the socket cannot be bound.
  bool Start(std::string* error = nullptr);

  /// Graceful shutdown: stop accepting, drain accepted connections, join
  /// all threads. Idempotent; the destructor calls it.
  void Stop();

  /// The bound port (useful with options.port == 0).
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_rejected = 0;  ///< pending-queue overflow → 503
    uint64_t requests = 0;              ///< requests parsed and dispatched
    uint64_t keepalive_reuses = 0;      ///< requests beyond a connection's 1st
    uint64_t responses_2xx = 0;
    uint64_t responses_4xx = 0;
    uint64_t responses_5xx = 0;
    uint64_t parse_failures = 0;        ///< malformed/oversized/timed out
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  /// Parses and dispatches one request out of `buffer` (which carries
  /// pipelined bytes between requests). Returns true when the connection
  /// should be kept open for another request.
  bool ServeOneRequest(int fd, std::string* buffer, size_t served_so_far);
  void WriteResponse(int fd, const HttpResponse& response, bool keep_alive);
  void CountResponse(int status);

  const HttpServerOptions options_;
  std::map<std::string, std::map<std::string, HttpHandler>> routes_;
  /// Prefix-matched fallbacks, consulted only when no exact path matches.
  std::map<std::string, std::map<std::string, HttpHandler>> prefix_routes_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable pending_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a handler thread
  bool stopping_ = false;
  Stats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;
};

}  // namespace receipt::server

#endif  // RECEIPT_SERVER_HTTP_SERVER_H_
