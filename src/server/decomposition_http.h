#ifndef RECEIPT_SERVER_DECOMPOSITION_HTTP_H_
#define RECEIPT_SERVER_DECOMPOSITION_HTTP_H_

#include <atomic>
#include <cstdint>

#include "obs/observability.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"

namespace receipt::server {

/// The JSON endpoint surface over GraphRegistry + DecompositionService —
/// the piece that turns the in-process serving layer into a network
/// service. Registers its routes on an HttpServer; the caller owns all
/// three objects and starts/stops the server (stop the HTTP server first,
/// then shut the service down, so draining handlers can still resolve
/// their futures).
///
///   POST /v1/decompose   run (or cache-serve) a decomposition
///   GET  /v1/graphs      list resident graphs
///   POST /v1/graphs      register/load a graph (re-register bumps epoch)
///   POST /v1/graphs/{name}/edges
///                        buffer an edge-update batch against a live graph;
///                        seals (incremental recompute + epoch bump) per the
///                        service's live policy or an explicit "seal":true
///   GET  /healthz        liveness
///   GET  /statz          queue depth, cache hit rate, worker utilization
///   GET  /metrics        Prometheus text exposition of every instrument
///   GET  /v1/traces      recent spans from the trace ring (?limit=N)
///   GET  /v1/traces/{id} all spans of one trace, oldest first
///
/// Every /v1/decompose request gets a trace id — minted here, or accepted
/// from an X-Request-Id header — that is echoed in the response (header and
/// body) and keys the spans recorded across transport parse, queue wait and
/// the engine phases. The service's Observability bundle is the single sink.
///
/// Admission control: a full service queue turns into HTTP 429 (ticketed
/// non-blocking submit — handler threads never block on backpressure), and
/// a client that disconnects mid-decomposition abandons its ticket, which
/// cancels the engine run through PeelControl once no coalesced twin still
/// wants the result.
class DecompositionHttpFrontend {
 public:
  /// `register_routes` false skips route registration: a wrapper (the
  /// cluster node) installs its own cluster-aware routes and delegates to
  /// the public handlers below for everything it serves locally.
  DecompositionHttpFrontend(service::GraphRegistry& registry,
                            service::DecompositionService& service,
                            HttpServer& server, bool register_routes = true);

  // Handlers are public so a wrapping route table can reuse them verbatim.
  HttpResponse HandleDecompose(const HttpRequest& request);
  HttpResponse HandleListGraphs(const HttpRequest& request);
  HttpResponse HandleRegisterGraph(const HttpRequest& request);
  HttpResponse HandleGraphEdges(const HttpRequest& request);
  HttpResponse HandleAdminSnapshot(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleStatz(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleTraces(const HttpRequest& request);
  HttpResponse HandleTraceById(const HttpRequest& request);

  struct Stats {
    uint64_t decompose_requests = 0;
    uint64_t rejected_busy = 0;       ///< 429s from queue admission
    uint64_t disconnect_cancels = 0;  ///< tickets abandoned on disconnect
    uint64_t graphs_registered = 0;
    uint64_t edge_batches = 0;  ///< /v1/graphs/{name}/edges batches accepted
    uint64_t snapshots_taken = 0;  ///< /v1/admin/snapshot graph snapshots
  };
  Stats stats() const;

 private:
  /// Bump receipt_http_requests_total{path=...}, lazily registering the
  /// label child on first sight of the path.
  void CountHttpRequest(const std::string& path);

  service::GraphRegistry* registry_;
  service::DecompositionService* service_;
  HttpServer* server_;
  obs::Observability* obs_;
  obs::Histogram* http_request_seconds_;

  std::atomic<uint64_t> decompose_requests_{0};
  std::atomic<uint64_t> rejected_busy_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> graphs_registered_{0};
  std::atomic<uint64_t> edge_batches_{0};
  std::atomic<uint64_t> snapshots_taken_{0};
};

}  // namespace receipt::server

#endif  // RECEIPT_SERVER_DECOMPOSITION_HTTP_H_
