#include "server/decomposition_http.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "obs/trace.h"
#include "util/json.h"

namespace receipt::server {

namespace {

using service::Request;
using service::Response;
using service::Status;

HttpResponse JsonError(int status, const std::string& message) {
  util::JsonWriter writer;
  writer.BeginObject()
      .Key("status").String("error")
      .Key("error").String(message)
      .EndObject();
  HttpResponse response;
  response.status = status;
  response.body = writer.Take();
  // Shed load honestly: every overload/unavailable rejection tells clients
  // when a retry is worth attempting, so well-behaved clients back off
  // instead of retry-storming.
  if (status == 429 || status == 503) {
    response.extra_headers.emplace_back("Retry-After", "1");
  }
  return response;
}

/// Service terminal status → HTTP status. Cancellation surfaces as 499
/// (client-closed-request): the only cancels a connected client can see are
/// non-drain shutdown races.
int HttpStatusFor(Status status) {
  switch (status) {
    case Status::kOk: return 200;
    case Status::kNotFound: return 404;
    case Status::kBadRequest: return 400;
    case Status::kCancelled: return 499;
    case Status::kShutdown: return 503;
  }
  return 500;
}

/// The one description of a resident graph both /v1/graphs responses share.
void WriteGraphInfo(const std::string& name,
                    const service::GraphHandle& handle,
                    util::JsonWriter* writer) {
  writer->Key("name").String(name)
      .Key("epoch").Uint(handle.epoch())
      .Key("num_u").Uint(handle.graph().num_u())
      .Key("num_v").Uint(handle.graph().num_v())
      .Key("num_edges").Uint(handle.graph().num_edges());
}

/// Strict hex trace-id parse for /v1/traces/{id} lookups (1–16 hex digits).
/// Unlike ParseOrMintTraceId this never mints or hashes: a malformed id is
/// a 400, not a lookup of some derived id.
bool ParseStrictTraceId(std::string_view text, uint64_t* id) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *id = value;
  return true;
}

void WriteSpanJson(const obs::TraceSpan& span, util::JsonWriter* writer) {
  writer->BeginObject()
      .Key("trace_id").String(obs::FormatTraceId(span.trace_id))
      .Key("name").String(std::string(span.Name()))
      .Key("start_ns").Uint(span.start_ns)
      .Key("duration_ns").Uint(span.duration_ns)
      .Key("arg").Uint(span.arg)
      .EndObject();
}

/// p50/p95/p99 summary of one latency histogram, in seconds.
void WriteQuantiles(const char* key, const obs::Histogram& histogram,
                    util::JsonWriter* writer) {
  writer->Key(key)
      .BeginObject()
      .Key("count").Uint(histogram.Count())
      .Key("p50_seconds").Double(histogram.Quantile(0.50))
      .Key("p95_seconds").Double(histogram.Quantile(0.95))
      .Key("p99_seconds").Double(histogram.Quantile(0.99))
      .EndObject();
}

}  // namespace

DecompositionHttpFrontend::DecompositionHttpFrontend(
    service::GraphRegistry& registry, service::DecompositionService& service,
    HttpServer& server, bool register_routes)
    : registry_(&registry),
      service_(&service),
      server_(&server),
      obs_(&service.observability()) {
  http_request_seconds_ = obs_->metrics.GetHistogram(
      "receipt_http_request_seconds",
      "Wall time of /v1/decompose handling, socket parse to response body");
  if (!register_routes) return;
  server.Handle("POST", "/v1/decompose",
                [this](const HttpRequest& r) { return HandleDecompose(r); });
  server.Handle("GET", "/v1/graphs",
                [this](const HttpRequest& r) { return HandleListGraphs(r); });
  server.Handle("POST", "/v1/graphs", [this](const HttpRequest& r) {
    return HandleRegisterGraph(r);
  });
  server.HandlePrefix("POST", "/v1/graphs/", [this](const HttpRequest& r) {
    return HandleGraphEdges(r);
  });
  server.Handle("POST", "/v1/admin/snapshot", [this](const HttpRequest& r) {
    return HandleAdminSnapshot(r);
  });
  server.Handle("GET", "/healthz",
                [this](const HttpRequest& r) { return HandleHealthz(r); });
  server.Handle("GET", "/statz",
                [this](const HttpRequest& r) { return HandleStatz(r); });
  server.Handle("GET", "/metrics",
                [this](const HttpRequest& r) { return HandleMetrics(r); });
  server.Handle("GET", "/v1/traces",
                [this](const HttpRequest& r) { return HandleTraces(r); });
  server.HandlePrefix("GET", "/v1/traces/", [this](const HttpRequest& r) {
    return HandleTraceById(r);
  });
}

void DecompositionHttpFrontend::CountHttpRequest(const std::string& path) {
  obs_->metrics
      .GetCounter("receipt_http_requests_total",
                  "HTTP requests dispatched to a handler, by path",
                  {{"path", path}})
      ->Increment();
}

HttpResponse DecompositionHttpFrontend::HandleDecompose(
    const HttpRequest& http_request) {
  const uint64_t handler_start_ns = obs::TraceRecorder::NowNs();
  decompose_requests_.fetch_add(1, std::memory_order_relaxed);
  CountHttpRequest("/v1/decompose");

  // Mint (or accept) the request's trace identity before anything can fail,
  // so even a 400 carries the id the client can look up.
  uint64_t trace_id = 0;
  if (const auto it = http_request.headers.find("x-request-id");
      it != http_request.headers.end()) {
    trace_id = obs::ParseOrMintTraceId(it->second);
  } else {
    trace_id = obs::MintTraceId();
  }
  obs::TraceContext trace{&obs_->traces, trace_id};
  const std::string trace_id_text = obs::FormatTraceId(trace_id);

  // Socket read + header parse happened before dispatch; backdate the span
  // to cover it.
  if (http_request.parse_ns != 0 && handler_start_ns > http_request.parse_ns) {
    trace.Emit("http.parse", handler_start_ns - http_request.parse_ns,
               http_request.parse_ns, http_request.body.size());
  }

  auto finish = [&](HttpResponse response) {
    response.extra_headers.emplace_back("X-Request-Id", trace_id_text);
    http_request_seconds_->Observe(obs::TraceRecorder::NowNs() -
                                   handler_start_ns);
    return response;
  };

  const uint64_t parse_start_ns = obs::TraceRecorder::NowNs();
  std::string error;
  const auto json = util::JsonValue::Parse(http_request.body, &error);
  if (!json) return finish(JsonError(400, "malformed JSON: " + error));
  Request request;
  if (!service::RequestFromJson(*json, &request, &error)) {
    return finish(JsonError(400, error));
  }
  trace.EmitSince("request.parse", parse_start_ns);
  request.trace = trace;

  auto ticket = service_->TrySubmitTicket(request);
  if (!ticket) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return finish(JsonError(429, "request queue is full"));
  }

  // Wait for the engine, watching the socket: a client that hangs up stops
  // paying for the answer, so withdraw this submitter's interest (the
  // service cancels the run once no coalesced twin remains).
  const std::shared_future<Response>& future = ticket->future();
  for (;;) {
    if (future.wait_for(std::chrono::milliseconds(20)) ==
        std::future_status::ready) {
      break;
    }
    if (http_request.ClientDisconnected()) {
      disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
      service_->Abandon(*ticket);
      // 499 is written into a dead socket — harmless — but keeps the
      // response path uniform and the stats honest.
      return finish(JsonError(499, "client disconnected; request abandoned"));
    }
  }

  const Response response = future.get();
  const uint64_t serialize_start_ns = obs::TraceRecorder::NowNs();
  util::JsonWriter writer;
  service::WriteResponseJson(request, response, &writer);
  HttpResponse http_response;
  http_response.status = HttpStatusFor(response.status);
  http_response.body = writer.Take();
  trace.EmitSince("response.serialize", serialize_start_ns,
                  http_response.body.size());
  return finish(std::move(http_response));
}

HttpResponse DecompositionHttpFrontend::HandleMetrics(const HttpRequest&) {
  CountHttpRequest("/metrics");
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs_->metrics.RenderPrometheus();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleTraces(
    const HttpRequest& http_request) {
  CountHttpRequest("/v1/traces");
  size_t limit = 256;
  if (http_request.query.compare(0, 6, "limit=") == 0) {
    const std::string value = http_request.query.substr(6);
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      return JsonError(400, "'limit' must be a non-negative integer");
    }
    limit = static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
  } else if (!http_request.query.empty()) {
    return JsonError(400, "unsupported query; use ?limit=N");
  }

  const std::vector<obs::TraceSpan> spans = obs_->traces.Snapshot(limit);
  util::JsonWriter writer;
  writer.BeginObject()
      .Key("capacity").Uint(obs_->traces.capacity())
      .Key("recorded").Uint(obs_->traces.recorded())
      .Key("spans").BeginArray();
  for (const obs::TraceSpan& span : spans) WriteSpanJson(span, &writer);
  writer.EndArray().EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleTraceById(
    const HttpRequest& http_request) {
  CountHttpRequest("/v1/traces/{id}");
  constexpr std::string_view kPrefix = "/v1/traces/";
  const std::string id_text = http_request.path.substr(kPrefix.size());
  uint64_t trace_id = 0;
  if (!ParseStrictTraceId(id_text, &trace_id)) {
    return JsonError(400, "trace id must be 1-16 hex digits");
  }
  const std::vector<obs::TraceSpan> spans = obs_->traces.ForTrace(trace_id);
  if (spans.empty()) {
    return JsonError(404, "no spans recorded for trace '" + id_text +
                              "' (evicted from the ring, or never traced)");
  }
  util::JsonWriter writer;
  writer.BeginObject()
      .Key("trace_id").String(obs::FormatTraceId(trace_id))
      .Key("spans").BeginArray();
  for (const obs::TraceSpan& span : spans) WriteSpanJson(span, &writer);
  writer.EndArray().EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleListGraphs(const HttpRequest&) {
  CountHttpRequest("/v1/graphs");
  util::JsonWriter writer;
  writer.BeginObject().Key("graphs").BeginArray();
  for (const std::string& name : registry_->Names()) {
    const service::GraphHandle handle = registry_->Acquire(name);
    if (!handle) continue;  // evicted between Names() and Acquire()
    writer.BeginObject();
    WriteGraphInfo(name, handle, &writer);
    writer.EndObject();
  }
  writer.EndArray().EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleRegisterGraph(
    const HttpRequest& http_request) {
  CountHttpRequest("/v1/graphs");
  std::string error;
  const auto json = util::JsonValue::Parse(http_request.body, &error);
  if (!json) return JsonError(400, "malformed JSON: " + error);
  if (!json->IsObject()) {
    return JsonError(400, "request body must be a JSON object");
  }

  std::string name;
  if (!json->GetString("name", &name) || name.empty()) {
    return JsonError(400, "missing required string field 'name'");
  }
  std::string path;
  std::string dataset;
  const bool has_path = json->GetString("path", &path);
  const bool has_dataset = json->GetString("dataset", &dataset);
  if (has_path == has_dataset) {
    return JsonError(400, "provide exactly one of 'path' or 'dataset'");
  }

  // Registration goes through the service so it is journaled before it is
  // acknowledged (and the superseded epoch's cache entries are dropped):
  // a 200 here means a crashed-and-recovered server still has the graph.
  Status status;
  if (has_path) {
    status = service_->RegisterGraphFile(name, path, nullptr, &error);
  } else {
    const std::vector<std::string>& names = PaperAnalogueNames();
    if (std::find(names.begin(), names.end(), dataset) == names.end()) {
      return JsonError(400, "unknown dataset '" + dataset + "'");
    }
    status = service_->RegisterGraph(name, MakePaperAnalogue(dataset),
                                     nullptr, &error);
  }
  if (status != Status::kOk) {
    return JsonError(HttpStatusFor(status), error);
  }
  graphs_registered_.fetch_add(1, std::memory_order_relaxed);

  const service::GraphHandle handle = registry_->Acquire(name);
  if (!handle) {
    // A concurrent Evict between Register and Acquire: the registration
    // happened, but there is no entry left to describe.
    return JsonError(404, "graph '" + name + "' was evicted concurrently");
  }
  util::JsonWriter writer;
  writer.BeginObject().Key("status").String("ok");
  WriteGraphInfo(name, handle, &writer);
  writer.EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleGraphEdges(
    const HttpRequest& http_request) {
  CountHttpRequest("/v1/graphs/{name}/edges");

  // Path: /v1/graphs/{name}/edges (the registration route is the exact
  // match "/v1/graphs", so everything under the prefix lands here).
  constexpr std::string_view kPrefix = "/v1/graphs/";
  constexpr std::string_view kSuffix = "/edges";
  const std::string& path = http_request.path;
  if (path.size() <= kPrefix.size() + kSuffix.size() ||
      path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                   kSuffix) != 0) {
    return JsonError(404, "no such endpoint; use /v1/graphs/{name}/edges");
  }
  const std::string name = path.substr(
      kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
  if (name.empty() || name.find('/') != std::string::npos) {
    return JsonError(404, "no such endpoint; use /v1/graphs/{name}/edges");
  }

  uint64_t trace_id = 0;
  if (const auto it = http_request.headers.find("x-request-id");
      it != http_request.headers.end()) {
    trace_id = obs::ParseOrMintTraceId(it->second);
  } else {
    trace_id = obs::MintTraceId();
  }
  obs::TraceContext trace{&obs_->traces, trace_id};
  const std::string trace_id_text = obs::FormatTraceId(trace_id);
  auto finish = [&](HttpResponse response) {
    response.extra_headers.emplace_back("X-Request-Id", trace_id_text);
    return response;
  };

  std::string error;
  const auto json = util::JsonValue::Parse(http_request.body, &error);
  if (!json) return finish(JsonError(400, "malformed JSON: " + error));
  if (!json->IsObject()) {
    return finish(JsonError(400, "request body must be a JSON object"));
  }

  const util::JsonValue* edges = json->Find("edges");
  if (edges == nullptr || !edges->IsArray()) {
    return finish(JsonError(400, "missing required array field 'edges'"));
  }
  std::vector<service::EdgeUpdate> updates;
  updates.reserve(edges->Items().size());
  for (const util::JsonValue& item : edges->Items()) {
    if (!item.IsObject()) {
      return finish(JsonError(400, "'edges' entries must be objects"));
    }
    service::EdgeUpdate update;
    std::string op;
    if (item.GetString("op", &op)) {
      if (op == "insert" || op == "+") {
        update.insert = true;
      } else if (op == "delete" || op == "-") {
        update.insert = false;
      } else {
        return finish(JsonError(400, "'op' must be 'insert' or 'delete'"));
      }
    }
    int64_t u = -1;
    int64_t v = -1;
    if (!item.GetInt("u", &u) || !item.GetInt("v", &v) || u < 0 || v < 0 ||
        u > UINT32_MAX || v > UINT32_MAX) {
      return finish(
          JsonError(400, "'edges' entries need side-local 'u' and 'v' ids"));
    }
    update.u = static_cast<VertexId>(u);
    update.v = static_cast<VertexId>(v);
    updates.push_back(update);
  }

  bool seal = false;
  json->GetBool("seal", &seal);
  int64_t threads = 0;
  json->GetInt("threads", &threads);
  if (threads < 0 || threads > 1024) {
    return finish(JsonError(400, "'threads' out of range"));
  }

  std::vector<service::LiveConfig> track;
  if (const util::JsonValue* track_json = json->Find("track");
      track_json != nullptr) {
    if (!track_json->IsArray()) {
      return finish(JsonError(400, "'track' must be an array"));
    }
    for (const util::JsonValue& item : track_json->Items()) {
      if (!item.IsObject()) {
        return finish(JsonError(400, "'track' entries must be objects"));
      }
      service::LiveConfig config;
      std::string kind;
      if (!item.GetString("kind", &kind) ||
          !service::RequestKindFromName(kind, &config.kind)) {
        return finish(JsonError(
            400, "'track' entries need 'kind' (tip-U, tip-V or wing)"));
      }
      if (int64_t partitions = 0; item.GetInt("partitions", &partitions)) {
        if (partitions < 1 || partitions > 100000) {
          return finish(JsonError(400, "'partitions' out of range"));
        }
        config.partitions = static_cast<uint32_t>(partitions);
      }
      track.push_back(config);
    }
  }

  const uint64_t apply_start_ns = obs::TraceRecorder::NowNs();
  const service::ApplyResult result = service_->live().ApplyEdges(
      name, updates, seal, static_cast<int>(threads), track);
  trace.EmitSince("live.apply", apply_start_ns, updates.size());
  if (result.status != Status::kOk) {
    return finish(JsonError(HttpStatusFor(result.status), result.error));
  }
  edge_batches_.fetch_add(1, std::memory_order_relaxed);

  util::JsonWriter writer;
  writer.BeginObject()
      .Key("status").String("ok")
      .Key("graph").String(name)
      .Key("accepted").Uint(result.accepted)
      .Key("pending").Uint(result.pending)
      .Key("sealed").Bool(result.sealed)
      .Key("epoch").Uint(result.epoch);
  if (result.sealed) {
    writer.Key("seal_seconds").Double(result.seal_seconds);
    writer.Key("runs").BeginArray();
    for (const service::SealConfigReport& report : result.reports) {
      writer.BeginObject()
          .Key("kind").String(service::RequestKindName(report.config.kind))
          .Key("partitions").Uint(report.config.partitions)
          .Key("mode").String(report.incremental ? "incremental" : "full")
          .Key("ranges_reused").Uint(report.ranges_reused)
          .Key("ranges_repeeled").Uint(report.ranges_repeeled)
          .Key("subsets_repeeled").Uint(report.subsets_repeeled)
          .Key("subsets_total").Uint(report.subsets_total)
          .EndObject();
    }
    writer.EndArray();
  }
  writer.EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return finish(std::move(response));
}

HttpResponse DecompositionHttpFrontend::HandleAdminSnapshot(
    const HttpRequest& http_request) {
  CountHttpRequest("/v1/admin/snapshot");
  if (!service_->durable()) {
    return JsonError(
        400, "durability is not enabled; start the server with --data-dir");
  }

  // Optional body {"graph": "<name>"} snapshots one graph; an empty body
  // (or {}) snapshots every registered graph.
  std::vector<std::string> names;
  if (!http_request.body.empty()) {
    std::string error;
    const auto json = util::JsonValue::Parse(http_request.body, &error);
    if (!json) return JsonError(400, "malformed JSON: " + error);
    if (!json->IsObject()) {
      return JsonError(400, "request body must be a JSON object");
    }
    std::string graph;
    if (json->GetString("graph", &graph)) names.push_back(graph);
  }
  if (names.empty()) names = registry_->Names();

  util::JsonWriter writer;
  writer.BeginObject().Key("status").String("ok").Key("snapshots")
      .BeginArray();
  for (const std::string& name : names) {
    std::string error;
    const Status status = service_->SnapshotGraph(name, &error);
    if (status != Status::kOk) {
      return JsonError(HttpStatusFor(status),
                       "snapshot of '" + name + "' failed: " + error);
    }
    snapshots_taken_.fetch_add(1, std::memory_order_relaxed);
    writer.String(name);
  }
  writer.EndArray().EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleHealthz(const HttpRequest&) {
  CountHttpRequest("/healthz");
  util::JsonWriter writer;
  writer.BeginObject()
      .Key("status").String("ok")
      .Key("graphs").Uint(registry_->size())
      .EndObject();
  HttpResponse response;
  response.body = writer.Take();
  return response;
}

HttpResponse DecompositionHttpFrontend::HandleStatz(const HttpRequest&) {
  CountHttpRequest("/statz");
  const service::DecompositionService::Stats service_stats =
      service_->stats();
  const service::ResultCache::Stats cache = service_->cache_stats();
  const HttpServer::Stats http = server_->stats();
  const size_t workers = static_cast<size_t>(service_->num_workers());
  const size_t idle = std::min(service_->IdleWorkers(), workers);
  const uint64_t cache_lookups = cache.hits + cache.misses;

  util::JsonWriter writer;
  writer.BeginObject();
  writer.Key("queue")
      .BeginObject()
      .Key("depth").Uint(service_->QueueDepth())
      .Key("capacity").Uint(service_->queue_capacity())
      .EndObject();
  writer.Key("workers")
      .BeginObject()
      .Key("total").Uint(workers)
      .Key("idle").Uint(idle)
      .Key("busy").Uint(workers - idle)
      .EndObject();
  const service::DecompositionService::SchedulerStats sched =
      service_->scheduler_stats();
  writer.Key("scheduler").BeginObject();
  writer.Key("nodes").Int(sched.num_nodes);
  writer.Key("pinned").Bool(sched.pinned);
  writer.Key("local_pops").Uint(sched.local_pops);
  writer.Key("remote_steals").Uint(sched.remote_steals);
  writer.Key("worker_nodes").BeginArray();
  for (const int node : sched.worker_nodes) writer.Int(node);
  writer.EndArray();
  writer.Key("node_queue_depths").BeginArray();
  for (const size_t depth : sched.node_queue_depths) writer.Uint(depth);
  writer.EndArray();
  writer.EndObject();
  writer.Key("requests")
      .BeginObject()
      .Key("submitted").Uint(service_stats.submitted)
      .Key("completed").Uint(service_stats.completed)
      .Key("engine_runs").Uint(service_stats.engine_runs)
      .Key("cache_hits").Uint(service_stats.cache_hits)
      .Key("coalesced").Uint(service_stats.coalesced)
      .Key("batched_follow_ons").Uint(service_stats.batched_follow_ons)
      .Key("cancelled").Uint(service_stats.cancelled)
      .Key("abandoned").Uint(service_stats.abandoned)
      .EndObject();
  writer.Key("cache")
      .BeginObject()
      .Key("entries").Uint(cache.entries)
      .Key("bytes").Uint(cache.bytes)
      .Key("hits").Uint(cache.hits)
      .Key("misses").Uint(cache.misses)
      .Key("insertions").Uint(cache.insertions)
      .Key("evictions").Uint(cache.evictions)
      .Key("epoch_drops").Uint(cache.epoch_drops)
      .Key("hit_rate")
      .Double(cache_lookups == 0
                  ? 0.0
                  : static_cast<double>(cache.hits) /
                        static_cast<double>(cache_lookups))
      .EndObject();
  writer.Key("http")
      .BeginObject()
      .Key("connections_accepted").Uint(http.connections_accepted)
      .Key("connections_rejected").Uint(http.connections_rejected)
      .Key("requests").Uint(http.requests)
      .Key("keepalive_reuses").Uint(http.keepalive_reuses)
      .Key("responses_2xx").Uint(http.responses_2xx)
      .Key("responses_4xx").Uint(http.responses_4xx)
      .Key("responses_5xx").Uint(http.responses_5xx)
      .Key("parse_failures").Uint(http.parse_failures)
      .Key("decompose_requests")
      .Uint(decompose_requests_.load(std::memory_order_relaxed))
      .Key("rejected_busy")
      .Uint(rejected_busy_.load(std::memory_order_relaxed))
      .Key("disconnect_cancels")
      .Uint(disconnect_cancels_.load(std::memory_order_relaxed))
      .Key("graphs_registered")
      .Uint(graphs_registered_.load(std::memory_order_relaxed))
      .Key("edge_batches")
      .Uint(edge_batches_.load(std::memory_order_relaxed))
      .Key("snapshots_taken")
      .Uint(snapshots_taken_.load(std::memory_order_relaxed))
      .EndObject();
  const service::LiveGraphManager::Stats live = service_->live().stats();
  writer.Key("live")
      .BeginObject()
      .Key("batches").Uint(live.batches_total)
      .Key("updates").Uint(live.updates_total)
      .Key("pending_edges").Uint(live.pending_edges)
      .Key("seals").Uint(live.seals_total)
      .Key("runs_incremental").Uint(live.runs_incremental)
      .Key("runs_full").Uint(live.runs_full)
      .Key("ranges_reused").Uint(live.ranges_reused)
      .Key("ranges_repeeled").Uint(live.ranges_repeeled)
      .EndObject();
  writer.Key("durability").BeginObject();
  writer.Key("enabled").Bool(service_->durable());
  if (service_->durable()) {
    const durability::DurabilityStats d = service_->durability()->stats();
    const durability::RecoveryReport& recovery = service_->recovery_report();
    writer.Key("fsync").String(durability::FsyncPolicyName(d.fsync))
        .Key("snapshot_on_seal").Bool(d.snapshot_on_seal)
        .Key("journal")
        .BeginObject()
        .Key("appends").Uint(d.journal.appends)
        .Key("append_failures").Uint(d.journal.append_failures)
        .Key("bytes_written").Uint(d.journal.bytes_written)
        .Key("fsyncs").Uint(d.journal.fsyncs)
        .Key("rotations").Uint(d.journal.rotations)
        .Key("segments_dropped").Uint(d.journal.segments_dropped)
        .Key("current_segment").Uint(d.journal.current_segment)
        .Key("broken").Bool(d.journal.broken)
        .EndObject()
        .Key("snapshots")
        .BeginObject()
        .Key("written").Uint(d.snapshots_written)
        .Key("failures").Uint(d.snapshot_failures)
        .EndObject()
        .Key("recovery")
        .BeginObject()
        .Key("fresh_start").Bool(recovery.fresh_start)
        .Key("snapshots_loaded").Uint(recovery.snapshots_loaded)
        .Key("graphs_recovered").Uint(recovery.graphs_recovered)
        .Key("records_scanned").Uint(recovery.records_scanned)
        .Key("batches_replayed").Uint(recovery.batches_replayed)
        .Key("seals_replayed").Uint(recovery.seals_replayed)
        .Key("torn_tail").Bool(recovery.torn_tail)
        .Key("seconds").Double(recovery.seconds)
        .EndObject();
  }
  writer.EndObject();
  // Growth counters are relaxed atomics, so sampling them mid-request is
  // safe; a steady-state workload shows this flat (hot path allocation-free).
  writer.Key("workspace_growths").Uint(service_->WorkspaceGrowths());
  writer.Key("latency").BeginObject();
  WriteQuantiles("request", *service_->request_latency_histogram(), &writer);
  WriteQuantiles("queue_wait", *service_->queue_wait_histogram(), &writer);
  WriteQuantiles("engine_run", *service_->engine_run_histogram(), &writer);
  writer.EndObject();
  writer.EndObject();

  HttpResponse response;
  response.body = writer.Take();
  return response;
}

DecompositionHttpFrontend::Stats DecompositionHttpFrontend::stats() const {
  Stats stats;
  stats.decompose_requests =
      decompose_requests_.load(std::memory_order_relaxed);
  stats.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  stats.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  stats.graphs_registered = graphs_registered_.load(std::memory_order_relaxed);
  stats.edge_batches = edge_batches_.load(std::memory_order_relaxed);
  stats.snapshots_taken = snapshots_taken_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace receipt::server
