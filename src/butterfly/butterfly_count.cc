#include "butterfly/butterfly_count.h"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/counting.h"
#include "engine/workspace.h"
#include "util/parallel.h"

namespace receipt {

void PerVertexButterflyCount(const DynamicGraph& graph, int num_threads,
                             std::span<Count> support,
                             uint64_t* wedges_traversed) {
  // Convenience entry point with a transient workspace pool. Decomposition
  // hot paths call engine::CountVertexButterflies with their own pool.
  engine::WorkspacePool pool;
  const uint64_t wedges =
      engine::CountVertexButterflies(graph, pool, num_threads, support);
  if (wedges_traversed != nullptr) *wedges_traversed += wedges;
}

std::vector<Count> CountButterflies(const BipartiteGraph& graph,
                                    int num_threads,
                                    uint64_t* wedges_traversed) {
  const DynamicGraph view(graph, graph.DegreeDescendingRanks());
  std::vector<Count> support(graph.num_vertices(), 0);
  PerVertexButterflyCount(view, num_threads, support, wedges_traversed);
  return support;
}

Count TotalButterflies(const BipartiteGraph& graph, int num_threads) {
  const std::vector<Count> support = CountButterflies(graph, num_threads);
  Count total = 0;
  for (VertexId u = 0; u < graph.num_u(); ++u) total += support[u];
  return total / 2;
}

std::vector<Count> BruteForceButterflyCount(const BipartiteGraph& graph) {
  std::vector<Count> support(graph.num_vertices(), 0);
  // For each side, count common-neighbor pairs per same-side vertex pair.
  for (const Side side : {Side::kU, Side::kV}) {
    std::map<std::pair<VertexId, VertexId>, Count> pair_wedges;
    const VertexId mid_begin = graph.SideBegin(side == Side::kU ? Side::kV
                                                                : Side::kU);
    const VertexId mid_end = graph.SideEnd(side == Side::kU ? Side::kV
                                                            : Side::kU);
    for (VertexId mid = mid_begin; mid < mid_end; ++mid) {
      const auto nbrs = graph.Neighbors(mid);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          ++pair_wedges[{nbrs[i], nbrs[j]}];
        }
      }
    }
    for (const auto& [pair, wedge_count] : pair_wedges) {
      const Count bcnt = Choose2(wedge_count);
      support[pair.first] += bcnt;
      support[pair.second] += bcnt;
    }
  }
  return support;
}

Count SharedButterflies(const BipartiteGraph& graph, VertexId a, VertexId b) {
  const auto na = graph.Neighbors(a);
  const auto nb = graph.Neighbors(b);
  std::vector<VertexId> common;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(common));
  return Choose2(common.size());
}

}  // namespace receipt
