#include "butterfly/butterfly_count.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/parallel.h"

namespace receipt {
namespace {

/// Per-thread scratch for Alg. 1: the dense wedge-aggregation array
/// (θ(|W|) as in the batch mode of ParButterfly) plus the non-zero
/// endpoint/wedge lists so only touched entries are visited and reset.
struct CountScratch {
  std::vector<uint32_t> wedge_count;              // indexed by endpoint id
  std::vector<VertexId> nonzero_endpoints;        // nze
  std::vector<std::pair<VertexId, VertexId>> wedges;  // nzw: (mid, end)
  uint64_t wedges_traversed = 0;

  void Resize(VertexId n) { wedge_count.assign(n, 0); }
};

}  // namespace

void PerVertexButterflyCount(const DynamicGraph& graph, int num_threads,
                             std::span<Count> support,
                             uint64_t* wedges_traversed) {
  const VertexId n = graph.num_vertices();
  ParallelFor(n, num_threads, [&support](size_t w) { support[w] = 0; });

  std::vector<CountScratch> scratch(static_cast<size_t>(num_threads));
  for (auto& s : scratch) s.Resize(n);

  ParallelForWithContext(
      n, num_threads, scratch, [&](CountScratch& ctx, size_t sp_index) {
        const VertexId sp = static_cast<VertexId>(sp_index);
        if (!graph.IsAlive(sp)) return;
        const VertexId sp_rank = graph.Rank(sp);
        ctx.nonzero_endpoints.clear();
        ctx.wedges.clear();

        for (const VertexId mp : graph.Neighbors(sp)) {
          if (!graph.IsAlive(mp)) continue;
          const VertexId mp_rank = graph.Rank(mp);
          for (const VertexId ep : graph.Neighbors(mp)) {
            // Neighbors are sorted by ascending rank, so the first endpoint
            // that fails the priority rule ends this wedge group (Alg. 1
            // line 10).
            const VertexId ep_rank = graph.Rank(ep);
            if (ep_rank >= mp_rank || ep_rank >= sp_rank) break;
            ++ctx.wedges_traversed;
            if (!graph.IsAlive(ep)) continue;  // uncompacted dead entry
            if (ctx.wedge_count[ep]++ == 0) ctx.nonzero_endpoints.push_back(ep);
            ctx.wedges.emplace_back(mp, ep);
          }
        }

        // Same-side contribution: every pair of wedges with endpoints
        // (sp, ep) closes one butterfly; it belongs to both endpoints.
        Count sp_total = 0;
        for (const VertexId ep : ctx.nonzero_endpoints) {
          const Count bcnt = Choose2(ctx.wedge_count[ep]);
          if (bcnt > 0) {
            AtomicAdd(&support[ep], bcnt);
            sp_total += bcnt;
          }
        }
        if (sp_total > 0) AtomicAdd(&support[sp], sp_total);

        // Opposite-side contribution: a wedge (sp, mp, ep) participates in
        // (wedge_count[ep] - 1) butterflies, all incident on its mid point.
        for (const auto& [mp, ep] : ctx.wedges) {
          const Count bcnt = ctx.wedge_count[ep] - 1;
          if (bcnt > 0) AtomicAdd(&support[mp], bcnt);
        }

        for (const VertexId ep : ctx.nonzero_endpoints) ctx.wedge_count[ep] = 0;
      });

  if (wedges_traversed != nullptr) {
    for (const auto& s : scratch) *wedges_traversed += s.wedges_traversed;
  }
}

std::vector<Count> CountButterflies(const BipartiteGraph& graph,
                                    int num_threads,
                                    uint64_t* wedges_traversed) {
  const DynamicGraph view(graph, graph.DegreeDescendingRanks());
  std::vector<Count> support(graph.num_vertices(), 0);
  PerVertexButterflyCount(view, num_threads, support, wedges_traversed);
  return support;
}

Count TotalButterflies(const BipartiteGraph& graph, int num_threads) {
  const std::vector<Count> support = CountButterflies(graph, num_threads);
  Count total = 0;
  for (VertexId u = 0; u < graph.num_u(); ++u) total += support[u];
  return total / 2;
}

std::vector<Count> BruteForceButterflyCount(const BipartiteGraph& graph) {
  std::vector<Count> support(graph.num_vertices(), 0);
  // For each side, count common-neighbor pairs per same-side vertex pair.
  for (const Side side : {Side::kU, Side::kV}) {
    std::map<std::pair<VertexId, VertexId>, Count> pair_wedges;
    const VertexId mid_begin = graph.SideBegin(side == Side::kU ? Side::kV
                                                                : Side::kU);
    const VertexId mid_end = graph.SideEnd(side == Side::kU ? Side::kV
                                                            : Side::kU);
    for (VertexId mid = mid_begin; mid < mid_end; ++mid) {
      const auto nbrs = graph.Neighbors(mid);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          ++pair_wedges[{nbrs[i], nbrs[j]}];
        }
      }
    }
    for (const auto& [pair, wedge_count] : pair_wedges) {
      const Count bcnt = Choose2(wedge_count);
      support[pair.first] += bcnt;
      support[pair.second] += bcnt;
    }
  }
  return support;
}

Count SharedButterflies(const BipartiteGraph& graph, VertexId a, VertexId b) {
  const auto na = graph.Neighbors(a);
  const auto nb = graph.Neighbors(b);
  std::vector<VertexId> common;
  std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                        std::back_inserter(common));
  return Choose2(common.size());
}

}  // namespace receipt
