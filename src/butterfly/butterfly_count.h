#ifndef RECEIPT_BUTTERFLY_BUTTERFLY_COUNT_H_
#define RECEIPT_BUTTERFLY_BUTTERFLY_COUNT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "util/types.h"

namespace receipt {

/// Parallel per-vertex butterfly counting (Alg. 1, pvBcnt): the
/// vertex-priority algorithm of Chiba–Nishizeki with the cache-efficient
/// degree-descending relabeling of Wang et al. and the batch-aggregation
/// parallelization of ParButterfly.
///
/// Counts butterflies among *live* vertices of `graph` and writes the number
/// of butterflies incident on every vertex w to `support[w]` (size
/// num_vertices; dead vertices get 0). Each butterfly contributes exactly 1
/// to each of its four member vertices. Adds the number of traversed wedges
/// to `*wedges_traversed` when non-null.
///
/// Complexity: O(Σ_{(u,v)∈E} min(d_u, d_v)) wedges with O(1) work per wedge.
void PerVertexButterflyCount(const DynamicGraph& graph, int num_threads,
                             std::span<Count> support,
                             uint64_t* wedges_traversed = nullptr);

/// Convenience wrapper: builds the degree-descending priority view and
/// returns per-vertex butterfly counts for all of W.
std::vector<Count> CountButterflies(const BipartiteGraph& graph,
                                    int num_threads,
                                    uint64_t* wedges_traversed = nullptr);

/// Total number of butterflies in the graph (⊲⊳_G of Table 2):
/// Σ_{u ∈ U} ⊲⊳_u / 2, since each butterfly has two U members.
Count TotalButterflies(const BipartiteGraph& graph, int num_threads);

/// O(Σ_v d_v²)-ish reference counter used to validate the kernel in tests:
/// enumerates wedge pairs per same-side vertex pair via an explicit map.
/// Returns per-vertex counts for all of W.
std::vector<Count> BruteForceButterflyCount(const BipartiteGraph& graph);

/// Reference count of butterflies shared between a specific same-side pair:
/// C(|N(a) ∩ N(b)|, 2). `a`, `b` are combined ids on the same side.
Count SharedButterflies(const BipartiteGraph& graph, VertexId a, VertexId b);

}  // namespace receipt

#endif  // RECEIPT_BUTTERFLY_BUTTERFLY_COUNT_H_
