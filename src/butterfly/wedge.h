#ifndef RECEIPT_BUTTERFLY_WEDGE_H_
#define RECEIPT_BUTTERFLY_WEDGE_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/parallel.h"
#include "util/types.h"

namespace receipt {

/// Per-vertex wedge counts of one side: w[u] = Σ_{v∈N(u)} (d_v − 1), the
/// paper's static workload proxy (Alg. 3 input). Index i corresponds to the
/// i-th vertex of the side (side-local id).
inline std::vector<Count> WedgeCountsPerVertex(const BipartiteGraph& graph,
                                               Side side, int num_threads) {
  const VertexId begin = graph.SideBegin(side);
  const VertexId n = graph.SideSize(side);
  std::vector<Count> wedges(n, 0);
  ParallelFor(n, num_threads, [&](size_t i) {
    wedges[i] = graph.WedgeCount(begin + static_cast<VertexId>(i));
  });
  return wedges;
}

/// Σ of a wedge-count array over a list of vertices (C_peel of §4.1 for a
/// peeling iteration's active set).
inline Count PeelCost(std::span<const Count> wedge_counts,
                      std::span<const VertexId> vertices) {
  Count total = 0;
  for (const VertexId u : vertices) total += wedge_counts[u];
  return total;
}

}  // namespace receipt

#endif  // RECEIPT_BUTTERFLY_WEDGE_H_
