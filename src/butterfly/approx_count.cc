#include "butterfly/approx_count.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace receipt {
namespace {

/// Number of common neighbors of two same-side vertices (sorted adjacency).
uint64_t CommonNeighbors(const BipartiteGraph& graph, VertexId a,
                         VertexId b) {
  const auto na = graph.Neighbors(a);
  const auto nb = graph.Neighbors(b);
  uint64_t common = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

/// Cumulative wedge mass per mid-side vertex: C(d_v, 2) for each vertex of
/// the side *opposite* to the wedge endpoints.
std::vector<double> CumulativeWedgeMass(const BipartiteGraph& graph,
                                        Side endpoint_side) {
  const Side mid_side =
      endpoint_side == Side::kU ? Side::kV : Side::kU;
  std::vector<double> cumulative(graph.SideSize(mid_side));
  double running = 0.0;
  for (VertexId i = 0; i < cumulative.size(); ++i) {
    const VertexId mid = graph.SideBegin(mid_side) + i;
    running += static_cast<double>(Choose2(graph.Degree(mid)));
    cumulative[i] = running;
  }
  return cumulative;
}

/// Draws wedges with U-side endpoints and returns (mean, variance) of the
/// per-wedge butterfly contribution X = common(u1, u2) − 1.
ApproxCountResult SampleWedges(const BipartiteGraph& graph,
                               Side endpoint_side, uint64_t num_samples,
                               uint64_t seed) {
  ApproxCountResult result;
  const Side mid_side = endpoint_side == Side::kU ? Side::kV : Side::kU;
  const std::vector<double> cumulative =
      CumulativeWedgeMass(graph, endpoint_side);
  const double total_wedges = cumulative.empty() ? 0.0 : cumulative.back();
  if (total_wedges <= 0.0 || num_samples == 0) return result;

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pick_mass(0.0, total_wedges);
  double sum = 0.0;
  double sum_squares = 0.0;
  for (uint64_t s = 0; s < num_samples; ++s) {
    const double x = pick_mass(rng);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), x);
    const VertexId mid = graph.SideBegin(mid_side) +
                         static_cast<VertexId>(it - cumulative.begin());
    const auto nbrs = graph.Neighbors(mid);
    std::uniform_int_distribution<size_t> pick(0, nbrs.size() - 1);
    size_t i = pick(rng);
    size_t j = pick(rng);
    while (j == i) j = pick(rng);
    const uint64_t common = CommonNeighbors(graph, nbrs[i], nbrs[j]);
    const double contribution =
        common >= 2 ? static_cast<double>(common - 1) : 0.0;
    sum += contribution;
    sum_squares += contribution * contribution;
  }
  const double n = static_cast<double>(num_samples);
  const double mean = sum / n;
  // Each butterfly contains exactly two wedges with endpoints on this side.
  result.estimate = mean * total_wedges / 2.0;
  result.samples = num_samples;
  if (mean > 0.0 && num_samples > 1) {
    const double variance =
        std::max(0.0, sum_squares / n - mean * mean) / (n - 1);
    result.relative_std_error = std::sqrt(variance) / mean;
  }
  return result;
}

}  // namespace

ApproxCountResult ApproxTotalButterflies(const BipartiteGraph& graph,
                                         uint64_t num_samples,
                                         uint64_t seed) {
  return SampleWedges(graph, Side::kU, num_samples, seed);
}

double ApproxSideSupportSum(const BipartiteGraph& graph, Side side,
                            uint64_t num_samples, uint64_t seed) {
  // Σ_{u ∈ side} ⊲⊳_u = 2 ⊲⊳_G regardless of side; estimating through the
  // requested side's wedges keeps the variance tied to that side's skew.
  return 2.0 * SampleWedges(graph, side, num_samples, seed).estimate;
}

}  // namespace receipt
