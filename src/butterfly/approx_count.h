#ifndef RECEIPT_BUTTERFLY_APPROX_COUNT_H_
#define RECEIPT_BUTTERFLY_APPROX_COUNT_H_

#include <cstdint>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// Result of an approximate total-butterfly count.
struct ApproxCountResult {
  double estimate = 0.0;        ///< estimated ⊲⊳_G.
  uint64_t samples = 0;         ///< samples actually drawn.
  double relative_std_error = 0.0;  ///< sample-based σ/estimate (0 if unknown).
};

/// Uniform wedge-sampling estimator of the total butterfly count ⊲⊳_G
/// (Sanei-Mehri et al., KDD'18 style): draw a uniform random wedge
/// (v, {u1, u2}) with endpoints in U, test whether a second common neighbor
/// closes it into a butterfly, and scale by W/2 where W is the number of
/// unordered U-endpoint wedges (each butterfly contains exactly 2 such
/// wedges).
///
/// Deterministic for a fixed seed; samples with replacement.
ApproxCountResult ApproxTotalButterflies(const BipartiteGraph& graph,
                                         uint64_t num_samples,
                                         uint64_t seed);

/// Per-vertex support estimator used for cheap workload triage (e.g.
/// choosing which side to label U): samples `num_samples` wedges and
/// attributes closed butterflies to their endpoints, returning an estimate
/// of Σ_{u ∈ side} ⊲⊳_u (= 2·⊲⊳_G when side covers both butterfly
/// endpoints).
double ApproxSideSupportSum(const BipartiteGraph& graph, Side side,
                            uint64_t num_samples, uint64_t seed);

}  // namespace receipt

#endif  // RECEIPT_BUTTERFLY_APPROX_COUNT_H_
