#ifndef RECEIPT_ENGINE_PEEL_KERNELS_H_
#define RECEIPT_ENGINE_PEEL_KERNELS_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "util/parallel.h"
#include "util/types.h"
#include "wing/edge_topology.h"

namespace receipt::engine {

/// Edge life-cycle during wing (edge) peeling. kEdgePeeling marks the
/// current round's extraction set: still part of butterflies for
/// enumeration purposes, but already claimed — the §7 priority rule
/// arbitrates which peeling edge applies each butterfly's update.
enum EdgeState : uint8_t { kEdgeDead = 0, kEdgeAlive = 1, kEdgePeeling = 2 };

/// The tip support-update kernel of Alg. 2 (lines 6-13), shared by BUP,
/// ParB and both RECEIPT steps.
///
/// Peels `u` (which must already be marked dead in `graph`): traverses all
/// live wedges (u, v, u2), aggregates shared-butterfly counts
/// ⊲⊳_{u,u2} = C(common_live_neighbors, 2) in the workspace's dense array,
/// and decrements each live u2's support, clamped from below at `floor`
/// (the tip number of u, or the range lower bound θ(i) in RECEIPT CD —
/// Lemma 2).
///
/// kAtomic selects lock-free clamped decrements for concurrent peeling.
/// `on_updated(u2, new_support)` fires once per updated vertex (used to
/// track candidates for the next active set / heap pushes / re-bucketing).
///
/// Returns the number of wedges traversed.
template <bool kAtomic, typename OnUpdated>
uint64_t PeelVertex(const DynamicGraph& graph, VertexId u, Count floor,
                    std::span<Count> support, PeelWorkspace& ws,
                    OnUpdated&& on_updated) {
  uint64_t wedges = 0;
  for (const VertexId v : graph.Neighbors(u)) {
    if (!graph.IsAlive(v)) continue;
    for (const VertexId u2 : graph.Neighbors(v)) {
      ++wedges;
      if (!graph.IsAlive(u2)) continue;  // includes u itself (already dead)
      if (ws.wedge_count[u2]++ == 0) ws.touched.push_back(u2);
    }
  }
  for (const VertexId u2 : ws.touched) {
    const Count delta = Choose2(ws.wedge_count[u2]);
    ws.wedge_count[u2] = 0;
    if (delta == 0) continue;
    Count new_support;
    if constexpr (kAtomic) {
      new_support = AtomicClampedSub(&support[u2], delta, floor);
    } else {
      const Count cur = support[u2];
      new_support = (cur > floor + delta) ? cur - delta : floor;
      support[u2] = new_support;
    }
    on_updated(u2, new_support);
  }
  ws.touched.clear();
  return wedges;
}

/// The wing (edge) peel kernel: enumerates every butterfly of `e` whose
/// four edges are all not-dead and for which `e` is the applier (the
/// minimum-id kEdgePeeling edge in the butterfly), invoking `apply(x)` for
/// each of the butterfly's other edges x that are still kEdgeAlive.
/// Returns wedges traversed.
///
/// Uses the workspace's V-side mark array (zero before and after).
template <typename Apply>
uint64_t PeelEdgeButterflies(const BipartiteGraph& graph,
                             const EdgeTopology& topo,
                             const std::vector<uint8_t>& state, EdgeOffset e,
                             PeelWorkspace& ws, Apply&& apply) {
  uint64_t wedges = 0;
  std::vector<EdgeOffset>& mark = ws.edge_mark;
  const VertexId u = topo.source[e];
  const VertexId gv = graph.adjacency()[e];

  const EdgeOffset u_base = graph.NeighborOffset(u);
  const auto u_nbrs = graph.Neighbors(u);
  for (size_t j = 0; j < u_nbrs.size(); ++j) {
    const EdgeOffset h = u_base + j;
    if (state[h] != kEdgeDead) mark[u_nbrs[j] - graph.num_u()] = h + 1;
  }
  mark[gv - graph.num_u()] = 0;  // exclude e itself

  const EdgeOffset v_base = graph.NeighborOffset(gv);
  const auto v_nbrs = graph.Neighbors(gv);
  for (size_t s = 0; s < v_nbrs.size(); ++s) {
    const VertexId u2 = v_nbrs[s];
    const EdgeOffset f = topo.v_slot_edge[v_base + s - topo.v_region];
    if (f == e || state[f] == kEdgeDead) continue;
    const EdgeOffset u2_base = graph.NeighborOffset(u2);
    const auto u2_nbrs = graph.Neighbors(u2);
    for (size_t t = 0; t < u2_nbrs.size(); ++t) {
      ++wedges;
      const VertexId gv2 = u2_nbrs[t];
      if (gv2 == gv) continue;
      const EdgeOffset g2 = u2_base + t;
      if (state[g2] == kEdgeDead) continue;
      const EdgeOffset h_plus1 = mark[gv2 - graph.num_u()];
      if (h_plus1 == 0) continue;
      const EdgeOffset h = h_plus1 - 1;
      // Butterfly {e, f, g2, h}. Priority rule: the minimum-id peeling
      // edge applies the update; everyone else skips.
      if ((state[f] == kEdgePeeling && f < e) ||
          (state[g2] == kEdgePeeling && g2 < e) ||
          (state[h] == kEdgePeeling && h < e)) {
        continue;
      }
      if (state[f] == kEdgeAlive) apply(f);
      if (state[g2] == kEdgeAlive) apply(g2);
      if (state[h] == kEdgeAlive) apply(h);
    }
  }

  for (const VertexId nbr : u_nbrs) mark[nbr - graph.num_u()] = 0;
  return wedges;
}

/// findHi (Alg. 3 lines 16-21) for both vertex and edge ranges: the
/// smallest support value s such that the cumulative static peel-cost of
/// alive entities with support ≤ s reaches `target`, returned as the
/// exclusive bound s+1. Falls back to max_support+1 when the total cost
/// mass is below the target, and to kInvalidCount (an unbounded range
/// absorbing everything) when no entities remain — the empty-input guard.
///
/// Cumulates in exact integer arithmetic (the crossing only depends on the
/// cost multiset per support value, so the result is permutation- and
/// schedule-independent — the property the SupportIndex histogram path
/// relies on to stay bit-identical with this one). Implemented by
/// quickselect-style partial selection rather than a full sort: when the
/// target lands early in the support order — the common case, since range
/// targets are a 1/P' fraction of the remaining mass — only the low
/// partitions are ever ordered. Partitions `support_and_cost` in place.
Count FindRangeBound(std::vector<std::pair<Count, Count>>& support_and_cost,
                     double target);

/// Integer-target core of FindRangeBound: the smallest support s whose
/// cumulative cost reaches `need` (an exact Count), as the exclusive bound
/// s+1. Shared by the legacy vector path (after ceil-converting its double
/// target) and the SupportIndex in-bucket refine, so both resolve crossings
/// with identical arithmetic. Partitions `support_and_cost` in place.
Count FindRangeBoundNeed(std::vector<std::pair<Count, Count>>& support_and_cost,
                         Count need);

/// The one double-target → integer-need conversion both bound paths share:
/// cumulative cost is an exact Count, so crossing the double target is
/// equivalent to reaching its ceiling (clamped to ≥ 1, and capped below
/// 2^64 for pathological inputs). Keeping this a single definition is part
/// of the indexed/scan bit-identicality contract — FindRangeBound applies
/// it internally and RangeDecomposer applies it before the histogram walk.
Count RangeCostNeed(double target);

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_PEEL_KERNELS_H_
