#ifndef RECEIPT_ENGINE_BUCKET_H_
#define RECEIPT_ENGINE_BUCKET_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/types.h"

namespace receipt::engine {

/// Julienne-style bucketing structure used by the ParB baseline (§5.1):
/// a window of `window` width-1 open buckets over support values
/// [base, base + window) plus one overflow bucket, with lazy deletion.
///
/// Entries are (key, vertex) pairs; an entry is *current* iff key equals the
/// vertex's latest inserted key and the vertex has not been extracted yet.
/// PopMin() returns the set of vertices holding the minimum current support
/// value — exactly the per-iteration peel set of parallel bottom-up peeling.
///
/// Reset() re-seeds the structure while reusing every backing store, so a
/// workspace-resident queue is allocation-free across peel tasks once warm
/// (the per-batch vector handed out by PopMin still allocates).
class BucketQueue {
 public:
  BucketQueue() = default;

  /// `support[v]` supplies initial keys for every vertex in `items`.
  /// `window` is the number of open buckets (the paper/ParButterfly use
  /// 128).
  BucketQueue(std::span<const Count> support, std::span<const VertexId> items,
              Count window = 128) {
    Reset(support, items, window);
  }

  /// Re-seeds the queue with `items` keyed by `support`, reusing the bucket,
  /// overflow and key arrays' capacity.
  void Reset(std::span<const Count> support, std::span<const VertexId> items,
             Count window = 128);

  /// Re-files `vertex` under `new_key` (lazy: old entries become stale).
  /// No-op for already extracted vertices.
  void Update(VertexId vertex, Count new_key);

  /// Extracts all vertices currently holding the minimum support value.
  /// Returns (value, vertices), or nullopt when no current entries remain.
  std::optional<std::pair<Count, std::vector<VertexId>>> PopMin();

  /// Number of window-rebase passes performed (diagnostic).
  uint64_t rebase_count() const { return rebase_count_; }

  /// Approximate backing-store capacity in elements (allocation telemetry
  /// for arena-reuse tests).
  size_t CapacityFootprint() const {
    size_t total = overflow_.capacity() + latest_key_.capacity() +
                   buckets_.capacity() + keep_scratch_.capacity();
    for (const auto& bucket : buckets_) total += bucket.capacity();
    return total;
  }

 private:
  using Entry = std::pair<Count, VertexId>;

  bool InWindow(Count key) const { return key < base_ + window_; }
  void Insert(Count key, VertexId vertex);
  /// Refills the window from the overflow bucket; returns false when no
  /// current entries exist anywhere.
  bool Rebase();

  Count window_ = 0;
  Count base_ = 0;
  size_t cursor_ = 0;                    // first possibly non-empty bucket
  bool needs_rebase_ = false;            // an insert landed below base_
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  std::vector<Entry> keep_scratch_;      // Rebase out-of-window survivors
  std::vector<Count> latest_key_;        // per vertex; kInvalidCount = extracted
  uint64_t rebase_count_ = 0;
};

}  // namespace receipt::engine

namespace receipt {
/// Compatibility alias: the queue moved from tip/ into the engine layer.
using engine::BucketQueue;
}  // namespace receipt

#endif  // RECEIPT_ENGINE_BUCKET_H_
