#include "engine/bucket.h"

#include <algorithm>

namespace receipt::engine {

void BucketQueue::Reset(std::span<const Count> support,
                        std::span<const VertexId> items, Count window) {
  window_ = window;
  if (buckets_.size() < static_cast<size_t>(window_)) {
    buckets_.resize(static_cast<size_t>(window_));
  }
  for (auto& bucket : buckets_) bucket.clear();
  overflow_.clear();
  cursor_ = 0;
  needs_rebase_ = false;
  rebase_count_ = 0;

  VertexId max_vertex = 0;
  for (const VertexId v : items) max_vertex = std::max(max_vertex, v);
  latest_key_.assign(items.empty() ? 0 : max_vertex + 1, kInvalidCount);

  Count min_key = kInvalidCount;
  for (const VertexId v : items) min_key = std::min(min_key, support[v]);
  base_ = items.empty() ? 0 : min_key;
  for (const VertexId v : items) {
    latest_key_[v] = support[v];
    Insert(support[v], v);
  }
}

void BucketQueue::Insert(Count key, VertexId vertex) {
  if (key < base_) {
    // Below the window: peeling never does this (supports are clamped at
    // the last extracted value), but arbitrary callers may. Stash in
    // overflow and rebuild the window lazily on the next PopMin.
    overflow_.emplace_back(key, vertex);
    needs_rebase_ = true;
  } else if (InWindow(key)) {
    buckets_[static_cast<size_t>(key - base_)].emplace_back(key, vertex);
  } else {
    overflow_.emplace_back(key, vertex);
  }
}

void BucketQueue::Update(VertexId vertex, Count new_key) {
  if (vertex >= latest_key_.size()) return;
  const Count cur = latest_key_[vertex];
  if (cur == kInvalidCount || cur == new_key) return;  // extracted / no-op
  latest_key_[vertex] = new_key;
  Insert(new_key, vertex);
}

bool BucketQueue::Rebase() {
  // The window is fully drained; every current entry lives in overflow.
  Count new_base = kInvalidCount;
  size_t current = 0;
  for (size_t i = 0; i < overflow_.size(); ++i) {
    const auto& [key, vertex] = overflow_[i];
    if (latest_key_[vertex] != key) continue;  // stale
    overflow_[current++] = overflow_[i];
    new_base = std::min(new_base, key);
  }
  overflow_.resize(current);
  if (overflow_.empty()) return false;
  base_ = new_base;
  cursor_ = 0;
  ++rebase_count_;
  keep_scratch_.clear();
  for (const Entry& e : overflow_) {
    if (InWindow(e.first)) {
      buckets_[static_cast<size_t>(e.first - base_)].push_back(e);
    } else {
      keep_scratch_.push_back(e);
    }
  }
  std::swap(overflow_, keep_scratch_);
  return true;
}

std::optional<std::pair<Count, std::vector<VertexId>>> BucketQueue::PopMin() {
  if (needs_rebase_) {
    // An insert landed below the window base: pour every bucket back into
    // overflow and rebuild the window around the new global minimum.
    for (auto& bucket : buckets_) {
      overflow_.insert(overflow_.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    needs_rebase_ = false;
    if (!Rebase()) return std::nullopt;
  }
  while (true) {
    while (cursor_ < static_cast<size_t>(window_)) {
      auto& bucket = buckets_[cursor_];
      if (bucket.empty()) {
        ++cursor_;
        continue;
      }
      const Count value = base_ + static_cast<Count>(cursor_);
      std::vector<VertexId> extracted;
      for (const auto& [key, vertex] : bucket) {
        if (latest_key_[vertex] == key) {
          latest_key_[vertex] = kInvalidCount;
          extracted.push_back(vertex);
        }
      }
      bucket.clear();
      if (!extracted.empty()) {
        // Do not advance cursor_: the upcoming peel round may clamp
        // supports to exactly `value`, refilling this bucket.
        return std::make_pair(value, std::move(extracted));
      }
    }
    if (!Rebase()) return std::nullopt;
  }
}

}  // namespace receipt::engine
