#ifndef RECEIPT_ENGINE_PAIRING_HEAP_H_
#define RECEIPT_ENGINE_PAIRING_HEAP_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/types.h"

namespace receipt::engine {

/// An addressable pairing heap with decrease-key — the Fibonacci-heap-class
/// structure Theorem 3 uses for its O(1)-amortized support updates. The
/// paper found the lazy k-way min-heap faster in practice (§5.1); this
/// implementation exists to reproduce that ablation
/// (bench_ablation_extraction) and as an alternative extraction backend.
///
/// Each vertex owns at most one node, stored in a flat arena indexed by
/// vertex id; no per-operation allocation after Reset(), and Reset() itself
/// reuses the arena's capacity — a workspace-resident heap is
/// allocation-free across peel tasks once warm.
class PairingHeap {
 public:
  /// Clears the heap and sizes the arena for vertices in [0, n).
  void Reset(VertexId n) {
    nodes_.assign(n, Node{});
    root_ = kNone;
    size_ = 0;
  }

  bool Empty() const { return root_ == kNone; }
  uint64_t Size() const { return size_; }
  /// Backing-store capacity (allocation telemetry for arena-reuse tests).
  size_t Capacity() const { return nodes_.capacity() + scratch_.capacity(); }

  /// Inserts vertex `v` with `key`. v must not be present.
  void Insert(VertexId v, Count key) {
    Node& node = nodes_[v];
    node.key = key;
    node.child = kNone;
    node.next = kNone;
    node.prev = kNone;
    node.present = true;
    root_ = root_ == kNone ? v : Meld(root_, v);
    ++size_;
  }

  /// Lowers v's key. No-op if the new key is not smaller. v must be present.
  void DecreaseKey(VertexId v, Count new_key) {
    Node& node = nodes_[v];
    if (new_key >= node.key) return;
    node.key = new_key;
    if (v == root_) return;
    Detach(v);
    root_ = Meld(root_, v);
  }

  /// Removes and returns the minimum entry.
  std::optional<std::pair<Count, VertexId>> PopMin() {
    if (root_ == kNone) return std::nullopt;
    const VertexId min = root_;
    const Count key = nodes_[min].key;
    root_ = MergePairs(nodes_[min].child);
    if (root_ != kNone) nodes_[root_].prev = kNone;
    nodes_[min].present = false;
    --size_;
    return std::make_pair(key, min);
  }

  /// True if v currently sits in the heap.
  bool Contains(VertexId v) const {
    return v < nodes_.size() && nodes_[v].present;
  }

  /// Current key of a present vertex.
  Count KeyOf(VertexId v) const { return nodes_[v].key; }

 private:
  static constexpr VertexId kNone = kInvalidVertex;

  struct Node {
    Count key = 0;
    VertexId child = kNone;
    VertexId next = kNone;  // right sibling
    VertexId prev = kNone;  // left sibling, or parent if leftmost
    bool present = false;
  };

  /// Melds two root-level trees, returning the new root.
  VertexId Meld(VertexId a, VertexId b) {
    if (a == kNone) return b;
    if (b == kNone) return a;
    if (nodes_[b].key < nodes_[a].key) std::swap(a, b);
    // b becomes a's leftmost child.
    Node& pa = nodes_[a];
    Node& pb = nodes_[b];
    pb.prev = a;
    pb.next = pa.child;
    if (pa.child != kNone) nodes_[pa.child].prev = b;
    pa.child = b;
    pa.next = kNone;
    return a;
  }

  /// Cuts v out of its sibling list (v is not the root).
  void Detach(VertexId v) {
    Node& node = nodes_[v];
    const VertexId prev = node.prev;
    if (nodes_[prev].child == v) {
      nodes_[prev].child = node.next;  // v was the leftmost child
    } else {
      nodes_[prev].next = node.next;
    }
    if (node.next != kNone) nodes_[node.next].prev = prev;
    node.next = kNone;
    node.prev = kNone;
  }

  /// Two-pass pairing of a child list; returns the merged root.
  VertexId MergePairs(VertexId first) {
    if (first == kNone || nodes_[first].next == kNone) return first;
    // Pass 1: meld adjacent pairs left to right.
    std::vector<VertexId>& pairs = scratch_;
    pairs.clear();
    VertexId cursor = first;
    while (cursor != kNone) {
      const VertexId a = cursor;
      const VertexId b = nodes_[a].next;
      cursor = b == kNone ? kNone : nodes_[b].next;
      nodes_[a].next = kNone;
      if (b != kNone) nodes_[b].next = kNone;
      pairs.push_back(Meld(a, b));
    }
    // Pass 2: meld right to left.
    VertexId root = pairs.back();
    for (size_t i = pairs.size() - 1; i-- > 0;) {
      root = Meld(pairs[i], root);
    }
    return root;
  }

  std::vector<Node> nodes_;
  std::vector<VertexId> scratch_;
  VertexId root_ = kNone;
  uint64_t size_ = 0;
};

}  // namespace receipt::engine

namespace receipt {
/// Compatibility alias: the heap moved from tip/ into the engine layer.
using engine::PairingHeap;
}  // namespace receipt

#endif  // RECEIPT_ENGINE_PAIRING_HEAP_H_
