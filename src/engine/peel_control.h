#ifndef RECEIPT_ENGINE_PEEL_CONTROL_H_
#define RECEIPT_ENGINE_PEEL_CONTROL_H_

#include <atomic>
#include <cstdint>

namespace receipt::engine {

/// Cooperative cancellation + progress channel between a decomposition run
/// and whoever is supervising it (the service layer's request scheduler, a
/// CLI timeout, a test). All members are relaxed atomics: the flags carry no
/// data dependencies, and the peel loops poll them on their round/iteration
/// boundaries where a stale read only delays the reaction by one round.
///
/// Cancellation is best-effort and monotonic: once requested, every engine
/// loop (RangeDecomposer rounds, SequentialTipPeel / SequentialWingPeel
/// iterations) exits at its next check point, leaving partially-assigned
/// output behind. Callers that observe Cancelled() after a driver returns
/// must treat the result as incomplete.
class PeelControl {
 public:
  PeelControl() = default;
  PeelControl(const PeelControl&) = delete;
  PeelControl& operator=(const PeelControl&) = delete;

  /// Asks the running decomposition to stop at its next check point.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const { return cancel_.load(std::memory_order_relaxed); }

  /// Progress: peel events so far — one per entity assignment in each
  /// engine phase. Single-step algorithms (BUP, ParB, WingDecompose) report
  /// each entity exactly once; the two-step ones (RECEIPT, RECEIPT-W)
  /// report it once in the coarse step and again in the fine step, so a
  /// completed run totals ≈ 2× the entity count. Consumers deriving a
  /// completion fraction must use the algorithm-appropriate denominator.
  void ReportPeeled(uint64_t n) {
    peeled_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t peeled() const { return peeled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancel_{false};
  std::atomic<uint64_t> peeled_{0};
};

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_PEEL_CONTROL_H_
