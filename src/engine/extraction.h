#ifndef RECEIPT_ENGINE_EXTRACTION_H_
#define RECEIPT_ENGINE_EXTRACTION_H_

#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "engine/bucket.h"
#include "engine/min_heap.h"
#include "engine/pairing_heap.h"
#include "util/relaxed_counter.h"
#include "util/types.h"

namespace receipt::engine {

/// Minimum-support extraction backends for sequential bottom-up peeling
/// (§5.1: "we use a k-way min-heap … we found it to be faster in practice
/// than the bucketing structure of [51] or fibonacci heaps").
enum class MinExtraction {
  kDAryHeap,     ///< lazy 4-ary min-heap (the paper's choice)
  kBucketQueue,  ///< Julienne-style 128-bucket structure
  kPairingHeap,  ///< addressable pairing heap with decrease-key
};

/// Uniform single-vertex min extraction over the three backends. Supports
/// must only decrease between pops (the peeling invariant). Extracted
/// vertices never return.
///
/// Lives in the engine layer and is designed to be *workspace-resident*:
/// every PeelWorkspace owns one MinExtractor, and Reset() re-seeds it while
/// reusing all backing stores, so RECEIPT FD tasks extract with zero heap
/// allocations in steady state (the bucket backend's per-batch hand-off
/// vector is the one exception).
class MinExtractor {
 public:
  MinExtractor() = default;

  /// Inserts vertices [0, n) with keys taken from `support`.
  MinExtractor(MinExtraction kind, std::span<const Count> support,
               VertexId n) {
    Reset(kind, support, n);
  }

  /// Re-seeds the extractor with vertices [0, n) keyed by `support`,
  /// reusing the previous backing stores' capacity.
  void Reset(MinExtraction kind, std::span<const Count> support, VertexId n) {
    const size_t footprint_before = CapacityFootprint();
    kind_ = kind;
    extracted_.assign(n, 0);
    batch_.clear();
    batch_position_ = 0;
    batch_value_ = 0;
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Clear();
        heap_.Reserve(n);
        for (VertexId v = 0; v < n; ++v) heap_.Push(support[v], v);
        break;
      case MinExtraction::kBucketQueue:
        items_scratch_.resize(n);
        std::iota(items_scratch_.begin(), items_scratch_.end(), 0);
        bucket_.Reset(support, items_scratch_);
        break;
      case MinExtraction::kPairingHeap:
        pairing_.Reset(n);
        for (VertexId v = 0; v < n; ++v) pairing_.Insert(v, support[v]);
        break;
    }
    if (CapacityFootprint() > footprint_before) ++growths_;
  }

  /// Records that v's support decreased to `new_support`.
  void NotifyUpdate(VertexId v, Count new_support) {
    if (extracted_[v]) return;
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Push(new_support, v);
        break;
      case MinExtraction::kBucketQueue:
        bucket_.Update(v, new_support);
        break;
      case MinExtraction::kPairingHeap:
        pairing_.DecreaseKey(v, new_support);
        break;
    }
  }

  /// Extracts the vertex with minimum current support; nullopt when all
  /// vertices have been extracted.
  std::optional<std::pair<Count, VertexId>> PopMin(
      std::span<const Count> support) {
    switch (kind_) {
      case MinExtraction::kDAryHeap: {
        auto entry = heap_.PopValid(support, [this](VertexId v) {
          return extracted_[v] == 0;
        });
        if (entry) extracted_[entry->second] = 1;
        return entry;
      }
      case MinExtraction::kBucketQueue: {
        // BucketQueue yields whole equal-support batches; serving them one
        // by one is exact because peeling updates are clamped at the batch
        // value, so cached members keep that support until extracted.
        if (batch_position_ >= batch_.size()) {
          auto round = bucket_.PopMin();
          if (!round) return std::nullopt;
          batch_value_ = round->first;
          batch_ = std::move(round->second);
          batch_position_ = 0;
        }
        const VertexId v = batch_[batch_position_++];
        extracted_[v] = 1;
        return std::make_pair(batch_value_, v);
      }
      case MinExtraction::kPairingHeap: {
        auto entry = pairing_.PopMin();
        if (entry) extracted_[entry->second] = 1;
        return entry;
      }
    }
    return std::nullopt;
  }

  /// Re-seeds the structure with the current supports of all unextracted
  /// vertices (used after a HUC re-count replaced the support array
  /// wholesale).
  void Rebuild(std::span<const Count> support) {
    const size_t footprint_before = CapacityFootprint();
    const VertexId n = static_cast<VertexId>(extracted_.size());
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Clear();
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) heap_.Push(support[v], v);
        }
        break;
      case MinExtraction::kBucketQueue: {
        items_scratch_.clear();
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) items_scratch_.push_back(v);
        }
        bucket_.Reset(support, items_scratch_);
        batch_.clear();
        batch_position_ = 0;
        break;
      }
      case MinExtraction::kPairingHeap:
        // Re-counted supports never exceed the tracked keys (Lemma 1), so
        // decrease-key is sufficient.
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) pairing_.DecreaseKey(v, support[v]);
        }
        break;
    }
    if (CapacityFootprint() > footprint_before) ++growths_;
  }

  /// Number of Reset/Rebuild calls that had to grow a backing store.
  /// Stable once warm — the arena-reuse tests assert no growth across FD
  /// tasks. (Lazy-heap pushes between re-seedings may still extend the
  /// store; that capacity is kept, so warm repeats never re-grow.)
  uint64_t growths() const { return growths_; }

  /// Approximate capacity of all backing stores, in elements. Public so
  /// reuse tests can assert footprint stability directly — growth events
  /// that happen between Reset/Rebuild calls are charged to `growths()`
  /// only at the next such call, but the footprint itself never lies.
  size_t CapacityFootprint() const {
    return extracted_.capacity() + items_scratch_.capacity() +
           batch_.capacity() + heap_.Capacity() + pairing_.Capacity() +
           bucket_.CapacityFootprint();
  }

 private:

  MinExtraction kind_ = MinExtraction::kDAryHeap;
  std::vector<uint8_t> extracted_;
  LazyMinHeap<4> heap_;
  BucketQueue bucket_;
  std::vector<VertexId> items_scratch_;
  std::vector<VertexId> batch_;
  size_t batch_position_ = 0;
  Count batch_value_ = 0;
  PairingHeap pairing_;
  util::RelaxedCounter growths_;
};

}  // namespace receipt::engine

namespace receipt {
/// Compatibility aliases: extraction moved from tip/ into the engine layer.
using engine::MinExtraction;
using engine::MinExtractor;
}  // namespace receipt

#endif  // RECEIPT_ENGINE_EXTRACTION_H_
