#ifndef RECEIPT_ENGINE_TOPOLOGY_H_
#define RECEIPT_ENGINE_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace receipt::engine {

/// One NUMA node as seen by this process: the kernel node id plus the CPUs
/// of that node the process is actually allowed to run on (the node's
/// cpulist intersected with sched_getaffinity at discovery time).
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine layout the placement layer schedules against. Three sources:
///
///  * Discover() parses /sys/devices/system/node/node*/cpulist and keeps
///    the nodes that still own at least one usable CPU after intersecting
///    with the process affinity mask. Machines without that sysfs tree
///    (or fully masked nodes) degrade to a single node owning every usable
///    CPU — the graceful single-node fallback the tests pin.
///  * Synthetic(nodes, cpus_per_node) fabricates a layout for benches and
///    tests, so multi-node scheduling logic is exercisable on any machine.
///    Pinning against a synthetic topology is a no-op by construction.
///  * SingleNode(cpus) is the explicit fallback constructor.
///
/// Placement decisions derived from a topology are functions of node count
/// and CPU counts only — never of timing — so decomposition results stay
/// bit-identical whatever Discover() returns.
class NumaTopology {
 public:
  static NumaTopology Discover();
  static NumaTopology SingleNode(int num_cpus);
  static NumaTopology Synthetic(int num_nodes, int cpus_per_node);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<NumaNode>& nodes() const { return nodes_; }
  int total_cpus() const;
  /// True for Synthetic() layouts: scheduling applies, pinning does not.
  bool synthetic() const { return synthetic_; }

  /// Spreads `num_workers` workers across nodes proportional to each
  /// node's CPU count (largest-remainder rounding, every node covered
  /// while workers remain). Deterministic: depends only on the layout.
  /// Returns the node index (not kernel id) per worker.
  std::vector<int> AssignWorkers(int num_workers) const;

 private:
  std::vector<NumaNode> nodes_;
  bool synthetic_ = false;
};

/// The process-wide topology, discovered once on first use (affinity is
/// sampled at that moment). All placement consumers share this instance so
/// they agree on node indices.
const NumaTopology& SystemTopology();

/// Parses a sysfs cpulist ("0-3,8,10-11") into ascending CPU ids. Returns
/// false (leaving `cpus` empty) on malformed input — exposed for the
/// topology unit tests.
bool ParseCpuList(const std::string& text, std::vector<int>* cpus);

/// Pins the calling thread to `cpus`. Returns false (and changes nothing)
/// when the list is empty, pinning is unsupported, or the kernel rejects
/// the mask. OpenMP worker threads spawned by the pinned thread inherit
/// the mask (libgomp), which is how a pinned service worker keeps its
/// whole peeling team node-local.
bool PinThreadToCpus(const std::vector<int>& cpus);

/// Pins the calling thread to the CPUs of `topology.nodes()[node]`.
/// No-op (returns false) for synthetic topologies and out-of-range nodes.
bool PinThreadToNode(const NumaTopology& topology, int node);

/// Saves the calling thread's affinity mask on construction and restores
/// it on destruction — FD worker threads pin themselves for the duration
/// of one placement-scheduled region without leaking the mask into
/// subsequent parallel work on the same OpenMP pool thread.
class ScopedAffinity {
 public:
  ScopedAffinity();
  ~ScopedAffinity();
  ScopedAffinity(const ScopedAffinity&) = delete;
  ScopedAffinity& operator=(const ScopedAffinity&) = delete;

 private:
  std::vector<int> saved_cpus_;
  bool valid_ = false;
};

/// Writes one byte per page of [data, data + bytes) so the backing pages
/// are faulted in by the calling thread — with first-touch allocation the
/// pages land on the caller's node. Call from a pinned worker right after
/// growing an arena.
void FirstTouch(void* data, size_t bytes);

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_TOPOLOGY_H_
