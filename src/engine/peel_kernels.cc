#include "engine/peel_kernels.h"

#include <algorithm>
#include <cmath>

namespace receipt::engine {

Count FindRangeBoundNeed(std::vector<std::pair<Count, Count>>& support_and_cost,
                         Count need) {
  // Guard: no alive entities means any range works — absorb everything.
  // (Callers only reach here while entities remain, but a wrong caller must
  // not dereference .back() of an empty vector.)
  if (support_and_cost.empty()) return kInvalidCount;

  // Quickselect-style descent: 3-way partition by a median-of-3 support
  // pivot, then recurse into the partition the cumulative cost crosses in.
  // When the target lands early only the low partitions are ever examined;
  // the high ones are discarded unsorted. Small residues fall back to a
  // full sort of just that residue.
  constexpr size_t kSortCutoff = 32;
  size_t first = 0;
  size_t last = support_and_cost.size();
  Count acc = 0;           // cost mass strictly below [first, last)
  Count consumed_max = 0;  // max support among discarded low partitions
  bool consumed_any = false;
  while (last - first > kSortCutoff) {
    const Count a = support_and_cost[first].first;
    const Count b = support_and_cost[first + (last - first) / 2].first;
    const Count c = support_and_cost[last - 1].first;
    const Count pivot =
        std::max(std::min(a, b), std::min(std::max(a, b), c));

    // Dutch-national-flag partition: [< pivot | == pivot | > pivot).
    size_t lt = first;
    size_t i = first;
    size_t gt = last;
    Count sum_lt = 0;
    Count sum_eq = 0;
    while (i < gt) {
      const Count s = support_and_cost[i].first;
      if (s < pivot) {
        sum_lt += support_and_cost[i].second;
        std::swap(support_and_cost[lt++], support_and_cost[i++]);
      } else if (s > pivot) {
        std::swap(support_and_cost[i], support_and_cost[--gt]);
      } else {
        sum_eq += support_and_cost[i].second;
        ++i;
      }
    }

    if (acc + sum_lt >= need) {
      last = lt;  // crossing lies strictly below the pivot
    } else if (acc + sum_lt + sum_eq >= need) {
      return pivot + 1;  // the pivot's own cost class crosses
    } else {
      // Everything ≤ pivot is consumed; the crossing (or the global max,
      // when the total mass is short) lies above.
      acc += sum_lt + sum_eq;
      consumed_max = pivot;
      consumed_any = true;
      first = gt;
    }
  }

  std::sort(support_and_cost.begin() + static_cast<ptrdiff_t>(first),
            support_and_cost.begin() + static_cast<ptrdiff_t>(last));
  for (size_t i = first; i < last; ++i) {
    acc += support_and_cost[i].second;
    if (acc >= need) return support_and_cost[i].first + 1;
  }
  // Total mass below the target: the bound is the maximum support + 1. The
  // residue holds the global maximum unless it emptied out, in which case
  // the last consumed pivot class was the top.
  if (last > first) return support_and_cost[last - 1].first + 1;
  return consumed_any ? consumed_max + 1 : kInvalidCount;
}

Count RangeCostNeed(double target) {
  double need = std::ceil(target);
  if (need < 1.0) need = 1.0;
  constexpr double kMaxNeed = 1.8e19;  // < 2^64, avoids UB on the cast
  return need >= kMaxNeed ? static_cast<Count>(-2)
                          : static_cast<Count>(need);
}

Count FindRangeBound(std::vector<std::pair<Count, Count>>& support_and_cost,
                     double target) {
  return FindRangeBoundNeed(support_and_cost, RangeCostNeed(target));
}

}  // namespace receipt::engine
