#include "engine/peel_kernels.h"

#include <algorithm>

namespace receipt::engine {

Count FindRangeBound(std::vector<std::pair<Count, Count>>& support_and_cost,
                     double target) {
  // Guard: no alive entities means any range works — absorb everything.
  // (Callers only reach here while entities remain, but a wrong caller must
  // not dereference .back() of an empty vector.)
  if (support_and_cost.empty()) return kInvalidCount;
  std::sort(support_and_cost.begin(), support_and_cost.end());
  double cumulative = 0.0;
  for (const auto& [support, cost] : support_and_cost) {
    cumulative += static_cast<double>(cost);
    if (cumulative >= target) return support + 1;
  }
  return support_and_cost.back().first + 1;
}

}  // namespace receipt::engine
