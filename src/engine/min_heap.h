#ifndef RECEIPT_ENGINE_MIN_HEAP_H_
#define RECEIPT_ENGINE_MIN_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "util/types.h"

namespace receipt::engine {

/// A d-ary min-heap of (support, vertex) entries with *lazy* decrease-key:
/// every support update pushes a fresh entry; stale entries (whose key no
/// longer matches the vertex's current support, or whose vertex is already
/// peeled) are discarded on pop.
///
/// This is the "k-way min-heap for efficient retrieval of minimum support
/// vertices" the paper found faster in practice than bucketing or Fibonacci
/// heaps (§5.1). Laziness is sound here because supports only decrease
/// during peeling: the freshest (smallest-key) entry for a vertex always
/// pops before its stale ones.
///
/// Lives under engine/ so extraction state can be allocated from the
/// WorkspacePool: Clear() keeps the backing store, so a workspace-resident
/// heap is allocation-free across peel tasks once warm.
template <int Arity = 4>
class LazyMinHeap {
  static_assert(Arity >= 2, "heap arity must be at least 2");

 public:
  using Entry = std::pair<Count, VertexId>;

  void Reserve(size_t n) { heap_.reserve(n); }
  void Clear() { heap_.clear(); }
  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }
  /// Backing-store capacity (allocation telemetry for arena-reuse tests).
  size_t Capacity() const { return heap_.capacity(); }

  /// Inserts (key, vertex). Called at initialization and after every
  /// support decrement.
  void Push(Count key, VertexId vertex) {
    heap_.emplace_back(key, vertex);
    SiftUp(heap_.size() - 1);
  }

  /// Pops entries until one matches the vertex's current support and
  /// liveness; returns it, or nullopt when the heap runs dry.
  template <typename AliveFn>
  std::optional<Entry> PopValid(std::span<const Count> support,
                                AliveFn&& alive) {
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      PopTop();
      if (alive(top.second) && support[top.second] == top.first) return top;
    }
    return std::nullopt;
  }

 private:
  void PopTop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }

  void SiftUp(size_t i) {
    const Entry item = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / Arity;
      if (heap_[parent].first <= item.first) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = item;
  }

  void SiftDown(size_t i) {
    const Entry item = heap_[i];
    const size_t n = heap_.size();
    while (true) {
      const size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      size_t best = first_child;
      const size_t last_child = std::min(first_child + Arity, n);
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (heap_[c].first < heap_[best].first) best = c;
      }
      if (heap_[best].first >= item.first) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = item;
  }

  std::vector<Entry> heap_;
};

}  // namespace receipt::engine

namespace receipt {
/// Compatibility alias: the heap moved from tip/ into the engine layer.
template <int Arity = 4>
using LazyMinHeap = engine::LazyMinHeap<Arity>;
}  // namespace receipt

#endif  // RECEIPT_ENGINE_MIN_HEAP_H_
