#include "engine/workspace.h"

namespace receipt::engine {

void WorkspacePool::Prepare(int num_threads, VertexId vertex_capacity,
                            VertexId mark_capacity) {
  if (num_workspaces() < num_threads) {
    workspaces_.resize(static_cast<size_t>(num_threads));
  }
  for (PeelWorkspace& ws : workspaces_) {
    ws.EnsureVertexCapacity(vertex_capacity);
    if (mark_capacity > 0) ws.EnsureMarkCapacity(mark_capacity);
  }
}

uint64_t WorkspacePool::TotalWedges() const {
  uint64_t total = 0;
  for (const PeelWorkspace& ws : workspaces_) total += ws.wedges_traversed;
  return total;
}

uint64_t WorkspacePool::TotalGrowths() const {
  uint64_t total = frontier_epochs_.growths() + support_index_.growths();
  for (const PeelWorkspace& ws : workspaces_) {
    total += ws.growths + ws.extractor.growths() + ws.subgraph_arena.growths;
  }
  return total;
}

}  // namespace receipt::engine
