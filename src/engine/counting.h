#ifndef RECEIPT_ENGINE_COUNTING_H_
#define RECEIPT_ENGINE_COUNTING_H_

#include <cstdint>
#include <span>

#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "util/types.h"

namespace receipt::engine {

/// Parallel per-vertex butterfly counting (Alg. 1, pvBcnt) over the live
/// vertices of `graph`, using the pool's per-thread workspaces for the
/// dense wedge-aggregation arrays — no allocation when the pool is warm.
///
/// Writes the number of butterflies incident on every vertex w to
/// `support[w]` (size num_vertices; dead vertices get 0) and returns the
/// number of wedges traversed. Prepare()s the pool defensively.
uint64_t CountVertexButterflies(const DynamicGraph& graph, WorkspacePool& pool,
                                int num_threads, std::span<Count> support);

/// Single-workspace variant used inside RECEIPT FD tasks (each task is
/// sequential; its thread re-counts its own induced subgraph for HUC).
uint64_t CountVertexButterfliesSeq(const DynamicGraph& graph,
                                   PeelWorkspace& ws,
                                   std::span<Count> support);

/// Parallel per-edge butterfly counting for wing decomposition:
/// bcnt(u,v) = Σ_{u'∈N(v)\{u}} (|N(u) ∩ N(u')| − 1), written to
/// `support[e]` for every U-side CSR slot e (size num_edges). Returns
/// wedges traversed.
uint64_t CountEdgeButterflies(const BipartiteGraph& graph, WorkspacePool& pool,
                              int num_threads, std::span<Count> support);

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_COUNTING_H_
