#include "engine/counting.h"

#include <algorithm>

#include "util/parallel.h"

namespace receipt::engine {
namespace {

/// Body of Alg. 1 for one start point `sp`: the vertex-priority algorithm
/// of Chiba–Nishizeki with the cache-efficient degree-descending relabeling
/// of Wang et al. and the batch-aggregation parallelization of ParButterfly.
void CountFromStartPoint(const DynamicGraph& graph, PeelWorkspace& ws,
                         VertexId sp, std::span<Count> support) {
  if (!graph.IsAlive(sp)) return;
  const VertexId sp_rank = graph.Rank(sp);
  ws.touched.clear();
  ws.wedge_pairs.clear();

  for (const VertexId mp : graph.Neighbors(sp)) {
    if (!graph.IsAlive(mp)) continue;
    const VertexId mp_rank = graph.Rank(mp);
    for (const VertexId ep : graph.Neighbors(mp)) {
      // Neighbors are sorted by ascending rank, so the first endpoint that
      // fails the priority rule ends this wedge group (Alg. 1 line 10).
      const VertexId ep_rank = graph.Rank(ep);
      if (ep_rank >= mp_rank || ep_rank >= sp_rank) break;
      ++ws.wedges_traversed;
      if (!graph.IsAlive(ep)) continue;  // uncompacted dead entry
      if (ws.wedge_count[ep]++ == 0) ws.touched.push_back(ep);
      ws.wedge_pairs.emplace_back(mp, ep);
    }
  }

  // Same-side contribution: every pair of wedges with endpoints (sp, ep)
  // closes one butterfly; it belongs to both endpoints.
  Count sp_total = 0;
  for (const VertexId ep : ws.touched) {
    const Count bcnt = Choose2(ws.wedge_count[ep]);
    if (bcnt > 0) {
      AtomicAdd(&support[ep], bcnt);
      sp_total += bcnt;
    }
  }
  if (sp_total > 0) AtomicAdd(&support[sp], sp_total);

  // Opposite-side contribution: a wedge (sp, mp, ep) participates in
  // (wedge_count[ep] - 1) butterflies, all incident on its mid point.
  for (const auto& [mp, ep] : ws.wedge_pairs) {
    const Count bcnt = static_cast<Count>(ws.wedge_count[ep] - 1);
    if (bcnt > 0) AtomicAdd(&support[mp], bcnt);
  }

  // Restore the workspace's clean-state invariant (dense array zeroed,
  // transient lists drained) so scratch inspection between kernels is
  // meaningful.
  for (const VertexId ep : ws.touched) ws.wedge_count[ep] = 0;
  ws.touched.clear();
  ws.wedge_pairs.clear();
}

}  // namespace

uint64_t CountVertexButterflies(const DynamicGraph& graph, WorkspacePool& pool,
                                int num_threads, std::span<Count> support) {
  const VertexId n = graph.num_vertices();
  pool.Prepare(std::max(1, num_threads), n);
  ParallelFor(n, num_threads, [&support](size_t w) { support[w] = 0; });
  const uint64_t wedges_before = pool.TotalWedges();
  ParallelForWithContext(
      n, num_threads, pool.workspaces(), [&](PeelWorkspace& ws, size_t sp) {
        CountFromStartPoint(graph, ws, static_cast<VertexId>(sp), support);
      });
  return pool.TotalWedges() - wedges_before;
}

uint64_t CountVertexButterfliesSeq(const DynamicGraph& graph,
                                   PeelWorkspace& ws,
                                   std::span<Count> support) {
  const VertexId n = graph.num_vertices();
  ws.EnsureVertexCapacity(n);
  const uint64_t wedges_before = ws.wedges_traversed;
  for (VertexId w = 0; w < n; ++w) support[w] = 0;
  for (VertexId sp = 0; sp < n; ++sp) {
    CountFromStartPoint(graph, ws, sp, support);
  }
  return ws.wedges_traversed - wedges_before;
}

uint64_t CountEdgeButterflies(const BipartiteGraph& graph, WorkspacePool& pool,
                              int num_threads, std::span<Count> support) {
  pool.Prepare(std::max(1, num_threads), graph.num_u());
  const uint64_t wedges_before = pool.TotalWedges();
  ParallelForWithContext(
      graph.num_u(), num_threads, pool.workspaces(),
      [&](PeelWorkspace& ws, size_t ui) {
        const VertexId u = static_cast<VertexId>(ui);
        ws.touched.clear();
        for (const VertexId gv : graph.Neighbors(u)) {
          for (const VertexId u2 : graph.Neighbors(gv)) {
            ++ws.wedges_traversed;
            if (u2 == u) continue;
            if (ws.wedge_count[u2]++ == 0) ws.touched.push_back(u2);
          }
        }
        // bcnt(u, v) = Σ_{u2 ∈ N(v)\{u}} (common(u, u2) − 1).
        const EdgeOffset base = graph.NeighborOffset(u);
        const auto nbrs = graph.Neighbors(u);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          Count bcnt = 0;
          for (const VertexId u2 : graph.Neighbors(nbrs[j])) {
            ++ws.wedges_traversed;
            if (u2 == u) continue;
            const uint64_t common = ws.wedge_count[u2];
            if (common >= 2) bcnt += common - 1;
          }
          support[base + j] = bcnt;
        }
        for (const VertexId u2 : ws.touched) ws.wedge_count[u2] = 0;
        ws.touched.clear();
      });
  return pool.TotalWedges() - wedges_before;
}

}  // namespace receipt::engine
