#include "engine/cost_model.h"

#include <algorithm>
#include <numeric>

namespace receipt::engine {

Count PlacementPlan::Makespan() const {
  Count makespan = 0;
  for (const Count load : bin_loads) makespan = std::max(makespan, load);
  return makespan;
}

Count PlacementPlan::MigrationPressure() const {
  if (bin_loads.empty()) return 0;
  Count total = 0;
  for (const Count load : bin_loads) total += load;
  const Count bins = static_cast<Count>(bin_loads.size());
  const Count avg_ceil = (total + bins - 1) / bins;
  Count pressure = 0;
  for (const Count load : bin_loads) {
    if (load > avg_ceil) pressure += load - avg_ceil;
  }
  return pressure;
}

namespace {

PlacementPlan MakeEmptyPlan(size_t num_items, uint32_t num_bins) {
  PlacementPlan plan;
  plan.bin_of.assign(num_items, 0);
  plan.bin_items.resize(std::max(1u, num_bins));
  plan.bin_loads.assign(std::max(1u, num_bins), 0);
  return plan;
}

}  // namespace

PlacementPlan AssignLpt(std::span<const Count> costs, uint32_t num_bins) {
  PlacementPlan plan = MakeEmptyPlan(costs.size(), num_bins);
  std::vector<uint32_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&costs](uint32_t a, uint32_t b) {
    if (costs[a] != costs[b]) return costs[a] > costs[b];
    return a < b;
  });
  for (const uint32_t item : order) {
    uint32_t best = 0;
    for (uint32_t b = 1; b < plan.bin_loads.size(); ++b) {
      if (plan.bin_loads[b] < plan.bin_loads[best]) best = b;
    }
    plan.bin_of[item] = best;
    plan.bin_items[best].push_back(item);
    plan.bin_loads[best] += costs[item];
  }
  return plan;
}

PlacementPlan AssignRoundRobin(std::span<const Count> costs,
                               uint32_t num_bins) {
  PlacementPlan plan = MakeEmptyPlan(costs.size(), num_bins);
  const uint32_t bins = static_cast<uint32_t>(plan.bin_loads.size());
  for (uint32_t item = 0; item < costs.size(); ++item) {
    const uint32_t b = item % bins;
    plan.bin_of[item] = b;
    plan.bin_items[b].push_back(item);
    plan.bin_loads[b] += costs[item];
  }
  return plan;
}

Count CostMassBelow(std::span<const std::pair<Count, Count>> support_and_cost,
                    Count hi) {
  Count mass = 0;
  for (const auto& [support, cost] : support_and_cost) {
    if (support < hi) mass += cost;
  }
  return mass;
}

}  // namespace receipt::engine
