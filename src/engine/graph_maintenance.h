#ifndef RECEIPT_ENGINE_GRAPH_MAINTENANCE_H_
#define RECEIPT_ENGINE_GRAPH_MAINTENANCE_H_

#include <cstdint>

#include "graph/dynamic_graph.h"
#include "util/types.h"

namespace receipt::engine {

/// The shared Dynamic Graph Maintenance + Hybrid Update Computation service
/// (§4.1–§4.2), lifted out of the CD and FD drivers.
///
/// Owns the two pieces of state every peeling loop used to duplicate:
///   * the wedge-mass accumulator that triggers a DGM adjacency compaction
///     once more wedges were traversed than the graph has edge slots, and
///   * the re-counting cost bound C_rcnt that lets HUC decide when a full
///     re-count beats a peel-update round.
///
/// One instance per peeled DynamicGraph (the full graph in CD, each induced
/// subgraph in FD). All counters are deterministic for a fixed input, which
/// is what keeps stats.huc_recounts / stats.dgm_compactions invariant
/// across thread counts.
class GraphMaintenance {
 public:
  /// `wedge_budget` is the DGM trigger threshold — the paper uses m, the
  /// number of edges of the peeled graph.
  GraphMaintenance(DynamicGraph& live, bool use_huc, bool use_dgm,
                   uint64_t wedge_budget);

  /// HUC (§4.1): should a round with this static peel cost be replaced by a
  /// full re-count? Always false when HUC is disabled.
  bool ShouldRecount(Count peel_cost) const {
    return use_huc_ && peel_cost > recount_bound_;
  }

  /// Compacts the graph ahead of a re-count (the re-count runs on the
  /// compacted structure) and resets the wedge accumulator.
  void BeginRecount(int num_threads);

  /// Refreshes the re-counting cost bound after the re-count finished.
  void EndRecount();

  /// Accounts `wedges` traversed by a peel-update round and performs a DGM
  /// compaction when the accumulated mass exceeds the budget.
  void OnPeelWedges(uint64_t wedges, int num_threads);

  /// Total compaction passes (re-count preludes + DGM triggers), for
  /// stats.dgm_compactions.
  uint64_t compactions() const { return compactions_; }

 private:
  DynamicGraph* live_;
  bool use_huc_;
  bool use_dgm_;
  uint64_t wedge_budget_;
  uint64_t wedges_since_compact_ = 0;
  Count recount_bound_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_GRAPH_MAINTENANCE_H_
