#ifndef RECEIPT_ENGINE_RANGE_RESULT_H_
#define RECEIPT_ENGINE_RANGE_RESULT_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace receipt::engine {

/// Output of a coarse-grained range decomposition (RECEIPT CD over vertices
/// or edges). Id is VertexId for tip decomposition, EdgeOffset for wing.
template <typename Id>
struct RangeResult {
  /// θ(1)=0, θ(2), …, θ(P'+1): subset i (0-based) covers peel numbers in
  /// [bounds[i], bounds[i+1]). The final bound is kInvalidCount if the last
  /// subset absorbed every leftover entity (its range is unbounded).
  std::vector<Count> bounds;

  /// The subsets in peeling order (entity ids as peeled).
  std::vector<std::vector<Id>> subsets;

  /// subset_of[e] = subset index of entity e.
  std::vector<uint32_t> subset_of;

  /// ⊲⊳init: the support of e after all lower subsets were fully peeled and
  /// before its own subset's peeling began — the FD initialization vector.
  /// Produced either by per-range snapshots (scan path) or by one up-front
  /// write plus boundary patches at changed entities (SupportIndex path);
  /// the two are bit-identical, which the coarse equivalence suites assert
  /// field by field.
  std::vector<Count> init_support;

  /// predicted_costs[i] = the cost-model prediction for subset i: the
  /// static-cost mass of the entities alive with support inside range i at
  /// the moment its bound was fixed (all remaining mass for the final
  /// unbounded subset). Read off the histogram's bucket cost sums on the
  /// indexed path and reproduced exactly by the scan fallback — an
  /// integer, bit-identical across paths and thread counts. The FD
  /// placement layer's LPT assigner consumes it in place of the legacy
  /// O(m) induced wedge-count pass.
  std::vector<Count> predicted_costs;
};

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_RANGE_RESULT_H_
