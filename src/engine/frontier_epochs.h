#ifndef RECEIPT_ENGINE_FRONTIER_EPOCHS_H_
#define RECEIPT_ENGINE_FRONTIER_EPOCHS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/relaxed_counter.h"

namespace receipt::engine {

/// Shared claim bitmap for delta tracking during concurrent peeling: each
/// tracking window (a peeling round for frontier scheduling, a whole range
/// for SupportIndex delta maintenance) opens a fresh epoch, and Claim(id)
/// succeeds exactly once per (id, epoch) across all threads — the dedup
/// that keeps an entity whose support is decremented by several peeled
/// neighbors from being recorded twice. Implemented as an epoch-stamp array
/// rather than a clearable bitset so opening a window is O(1).
class FrontierEpochs {
 public:
  /// Prepares for entities [0, n): all unclaimed, epoch counter rewound.
  /// Reuses the stamp array's capacity (one growth event when it must
  /// expand).
  void Reset(uint64_t n) {
    if (stamps_.size() < n) {
      stamps_.resize(n);
      ++growths_;
    }
    std::fill(stamps_.begin(), stamps_.end(), 0u);
    epoch_ = 0;
  }

  /// Opens a new claim window. Handles the (astronomically rare) epoch
  /// wrap-around by clearing all stamps.
  void NextRound() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Claims `id` for the current window; true exactly once per window per
  /// id across all threads (lock-free).
  bool Claim(uint64_t id) {
    auto* slot = reinterpret_cast<std::atomic<uint32_t>*>(&stamps_[id]);
    uint32_t seen = slot->load(std::memory_order_relaxed);
    while (seen != epoch_) {
      if (slot->compare_exchange_weak(seen, epoch_,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Number of stamp-array growth events (allocation telemetry).
  uint64_t growths() const { return growths_; }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
  util::RelaxedCounter growths_;
};

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_FRONTIER_EPOCHS_H_
