#include "engine/graph_maintenance.h"

namespace receipt::engine {

GraphMaintenance::GraphMaintenance(DynamicGraph& live, bool use_huc,
                                   bool use_dgm, uint64_t wedge_budget)
    : live_(&live),
      use_huc_(use_huc),
      use_dgm_(use_dgm),
      wedge_budget_(wedge_budget),
      recount_bound_(use_huc ? live.RecountCostBound() : 0) {}

void GraphMaintenance::BeginRecount(int num_threads) {
  live_->Compact(num_threads);
  ++compactions_;
  wedges_since_compact_ = 0;
}

void GraphMaintenance::EndRecount() {
  recount_bound_ = live_->RecountCostBound();
}

void GraphMaintenance::OnPeelWedges(uint64_t wedges, int num_threads) {
  wedges_since_compact_ += wedges;
  if (use_dgm_ && wedges_since_compact_ > wedge_budget_) {
    live_->Compact(num_threads);
    ++compactions_;
    wedges_since_compact_ = 0;
    if (use_huc_) recount_bound_ = live_->RecountCostBound();
  }
}

}  // namespace receipt::engine
