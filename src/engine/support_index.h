#ifndef RECEIPT_ENGINE_SUPPORT_INDEX_H_
#define RECEIPT_ENGINE_SUPPORT_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/frontier_epochs.h"
#include "util/parallel.h"
#include "util/relaxed_counter.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt::engine {

/// A cost-weighted support histogram over the alive peel entities of one
/// coarse decomposition, kept current from the same per-thread update
/// deltas the peel kernels already emit. It makes the two remaining
/// input-sized per-range costs of Alg. 3 output-sensitive:
///
///  * findHi (range-bound determination) becomes a prefix walk over
///    bucketed cost sums — a coarse summary level (kGroupSize buckets per
///    group) first, then the leaf buckets of one group, then a bounded
///    refine over the members of the single bucket the cumulative cost
///    crossed in — instead of an O(n) alive filter plus an O(n log n) sort.
///  * ⊲⊳init snapshots become boundary patches: the decomposer writes
///    init_support once up front and then, at each range boundary, touches
///    only the entities whose support changed since the previous boundary
///    (the index's changed list, deduplicated per range by an epoch
///    bitmap).
///
/// Structure: supports are bucketed by a power-of-two width chosen so at
/// most kMaxBuckets leaf buckets exist (width 1 — exact — whenever the
/// maximum support is below kMaxBuckets). Each leaf bucket carries an alive
/// count, a cost sum, and an intrusive doubly-linked member list (fixed
/// next/prev arrays over entity ids), so moving an entity between buckets
/// is O(1) and refining a bucket is O(members). Bucket moves are deferred:
/// per-round deltas only accumulate into the changed list, and membership
/// is reconciled once per range boundary — the only time the histogram is
/// queried — so an entity updated in many rounds of one range costs one
/// move, not many.
///
/// All mutators are single-threaded (the decomposer calls them between
/// round barriers); only ClaimDelta is invoked concurrently from the peel
/// kernels. Results are schedule-independent: member-list order varies with
/// thread interleaving, but FindBound computes the crossing from bucket
/// sums and member multisets, never from list order.
///
/// The index is WorkspacePool-resident: Rebuild() reuses every backing
/// store, so steady-state decompositions allocate nothing (growth telemetry
/// folded into WorkspacePool::TotalGrowths).
class SupportIndex {
 public:
  static constexpr uint32_t kNoBucket = static_cast<uint32_t>(-1);
  static constexpr uint64_t kNil = static_cast<uint64_t>(-1);
  /// Leaf buckets per summary group.
  static constexpr uint32_t kGroupSize = 64;
  /// Leaf-bucket budget: bounds both memory and the worst-case prefix-walk
  /// length (kMaxBuckets / kGroupSize groups + kGroupSize leaves).
  static constexpr uint64_t kMaxBuckets = 1ull << 16;

  /// Full (re)build over the current alive entities: once up front per
  /// decomposition, and again whenever a HUC re-count rewrites supports
  /// behind the delta tracking's back. Resets the delta epoch bitmap and
  /// clears the changed list. O(n + buckets), allocation-free once warm.
  /// The max-support pass parallelizes; the link loop is sequential by
  /// nature (intrusive-list construction) — acceptable because rebuilds
  /// are rare and each re-count that triggers one already traverses far
  /// more than n wedges.
  template <typename AliveFn, typename SupportFn>
  void Rebuild(uint64_t n, AliveFn&& alive, SupportFn&& support,
               std::span<const Count> cost, int num_threads = 1) {
    const Count max_support = ParallelReduceMax<Count>(
        n, num_threads,
        [&](size_t e) { return alive(e) ? support(e) : Count{0}; });
    PrepareStorage(n, max_support);
    for (uint64_t e = 0; e < n; ++e) {
      if (alive(e)) {
        Link(e, BucketOf(support(e)), cost[e]);
        ++alive_;
      } else {
        entity_bucket_[e] = kNoBucket;
      }
    }
    delta_epochs_.Reset(n);
    // Open a claim window immediately: epoch 0 is the stamps' initial
    // value, i.e. "already claimed" — without this, every delta between a
    // mid-range rebuild (HUC re-count) and the next boundary would be
    // silently dropped.
    delta_epochs_.NextRound();
    changed_.clear();
  }

  /// Concurrent-safe claim from the peel kernels' update callbacks: true
  /// exactly once per entity per range epoch. Claimed ids are buffered
  /// per-thread and folded into the changed list after the round barrier.
  bool ClaimDelta(uint64_t id) { return delta_epochs_.Claim(id); }

  /// Opens a new delta-dedup window (call once per range, right after the
  /// previous range's changes were applied).
  void OpenRangeEpoch() { delta_epochs_.NextRound(); }

  /// Folds one thread's drained delta buffer into the changed list.
  void AppendChanged(const std::vector<uint64_t>& ids) {
    const size_t capacity_before = changed_.capacity();
    changed_.insert(changed_.end(), ids.begin(), ids.end());
    if (changed_.capacity() != capacity_before) ++growths_;
  }

  /// Entities whose support changed since the last ClearChanged() (each at
  /// most once, via the range epoch). Order is thread-schedule dependent;
  /// consumers must be order-independent.
  const std::vector<uint64_t>& changed() const { return changed_; }
  void ClearChanged() { changed_.clear(); }

  /// True while `e` is resident (alive as far as the index knows).
  bool Contains(uint64_t e) const { return entity_bucket_[e] != kNoBucket; }

  /// Removes a peeled entity. Safe against deferred moves: the entity's
  /// recorded bucket and static cost are exact even when its support
  /// changed since the last reconciliation.
  void Remove(uint64_t e, Count cost) {
    const uint32_t b = entity_bucket_[e];
    if (b == kNoBucket) return;
    Unlink(e, b, cost);
    entity_bucket_[e] = kNoBucket;
    --alive_;
  }

  /// Reconciles one changed entity with its current support (no-op when it
  /// stays in its bucket).
  void MoveTo(uint64_t e, Count support, Count cost) {
    const uint32_t b_old = entity_bucket_[e];
    const uint32_t b_new = BucketOf(support);
    if (b_old == b_new) return;
    Unlink(e, b_old, cost);
    Link(e, b_new, cost);
  }

  /// findHi over the histogram: the smallest support s whose cumulative
  /// alive cost reaches `need`, returned as the exclusive bound s + 1 —
  /// exactly FindRangeBound's semantics (max support + 1 when the total
  /// mass is below `need`, kInvalidCount when nothing is alive). `supports`
  /// resolves exact member supports during the bounded refine.
  /// Contributes bound_walk_buckets and histogram_refines to `*stats`.
  ///
  /// When `predicted_cost` is non-null it receives the cost mass of the
  /// range the bound opens — Σ cost over alive entities with support < the
  /// returned bound, an exact integer read off the bucket cost sums the
  /// walk accumulates anyway. This is the per-range peel-cost prediction
  /// the placement layer's LPT assigner consumes; the scan fallback
  /// reproduces the identical value with CostMassBelow, which the
  /// bit-identicality suites assert.
  template <typename SupportFn>
  Count FindBound(Count need, SupportFn&& supports, PeelStats* stats,
                  Count* predicted_cost = nullptr) {
    if (predicted_cost != nullptr) *predicted_cost = 0;
    if (alive_ == 0) return kInvalidCount;
    uint64_t acc = 0;
    uint64_t walked = 0;
    const uint64_t num_groups = (num_buckets_ + kGroupSize - 1) / kGroupSize;
    uint64_t crossing = num_buckets_;
    for (uint64_t g = 0; g < num_groups; ++g) {
      ++walked;
      if (acc + group_cost_[g] >= need) {
        const uint64_t hi =
            std::min<uint64_t>((g + 1) * kGroupSize, num_buckets_);
        for (uint64_t b = g * kGroupSize; b < hi; ++b) {
          ++walked;
          if (acc + bucket_cost_[b] >= need) {
            crossing = b;
            break;
          }
          acc += bucket_cost_[b];
        }
        break;
      }
      acc += group_cost_[g];
    }
    stats->bound_walk_buckets += walked;

    if (crossing == num_buckets_) {
      // Total mass below the target: the range bound is the maximum alive
      // support + 1. Find the highest populated bucket and refine for its
      // maximum member.
      uint64_t top = num_buckets_;
      for (uint64_t b = num_buckets_; b-- > 0;) {
        ++stats->bound_walk_buckets;
        if (bucket_count_[b] > 0) {
          top = b;
          break;
        }
      }
      Count max_support = 0;
      for (uint64_t e = head_[top]; e != kNil; e = next_[e]) {
        ++stats->histogram_refines;
        max_support = std::max(max_support, supports(e));
      }
      // Total mass consumed: the range swallows every alive entity.
      if (predicted_cost != nullptr) *predicted_cost = acc;
      return max_support + 1;
    }

    // Bounded refine: resolve the exact crossing support among the members
    // of the single crossing bucket (the residual mass need − acc is ≤ the
    // bucket's cost sum by construction). Width-1 buckets skip the walk.
    const Count lo = static_cast<Count>(crossing) << shift_;
    if (shift_ == 0) {
      ++stats->histogram_refines;
      // Width-1 crossing bucket: every member's support is exactly lo <
      // the bound lo + 1, so the whole bucket belongs to the range.
      if (predicted_cost != nullptr) {
        *predicted_cost = acc + bucket_cost_[crossing];
      }
      return lo + 1;
    }
    const size_t refine_capacity_before = refine_scratch_.capacity();
    refine_scratch_.clear();
    for (uint64_t e = head_[crossing]; e != kNil; e = next_[e]) {
      refine_scratch_.emplace_back(supports(e), cost_of_(e));
    }
    if (refine_scratch_.capacity() != refine_capacity_before) ++growths_;
    stats->histogram_refines += refine_scratch_.size();
    const Count bound = RefineCrossing(need - acc);
    if (predicted_cost != nullptr) {
      // Crossing-bucket members below the refined bound complete the
      // prediction (the partitioning above preserved the multiset).
      Count partial = acc;
      for (const auto& [s, c] : refine_scratch_) {
        if (s < bound) partial += c;
      }
      *predicted_cost = partial;
    }
    return bound;
  }

  /// Visits every resident entity with support < `hi` (all of them when
  /// `hi` is kInvalidCount) by walking the member lists of the buckets at
  /// or below the crossing bucket — the index-built replacement for the
  /// O(n) initial active-set scan of each range. Only valid while bucket
  /// membership is reconciled (right after a boundary patch or a full
  /// rebuild — the two places RangeDecomposer calls it); deferred
  /// mid-range moves would under-collect. Visit order is list order
  /// (schedule-dependent): callers must sort. Examined members and walked
  /// buckets are charged to index_active_elements.
  template <typename SupportFn, typename Visit>
  void ForEachAliveBelow(Count hi, SupportFn&& supports, PeelStats* stats,
                         Visit&& visit) const {
    if (alive_ == 0 || hi == 0 || num_buckets_ == 0) return;
    uint64_t examined = 0;
    const uint32_t crossing = BucketOf(hi - 1);
    // Group-at-a-time walk: an empty summary group skips kGroupSize
    // buckets for one probe, so the walk scales with populated groups and
    // members, not with the support range.
    for (uint32_t g = 0; g <= crossing / kGroupSize; ++g) {
      ++examined;
      if (group_count_[g] == 0) continue;
      const uint32_t lo_b = g * kGroupSize;
      const uint32_t hi_b =
          std::min<uint32_t>(lo_b + kGroupSize - 1, crossing);
      for (uint32_t b = lo_b; b <= hi_b; ++b) {
        if (bucket_count_[b] == 0) continue;
        ++examined;
        if (b < crossing) {
          for (uint64_t e = head_[b]; e != kNil; e = next_[e]) {
            ++examined;
            visit(e);
          }
        } else {
          // Crossing bucket: members may straddle the bound; filter.
          for (uint64_t e = head_[b]; e != kNil; e = next_[e]) {
            ++examined;
            if (supports(e) < hi) visit(e);
          }
        }
      }
    }
    stats->index_active_elements += examined;
  }

  uint64_t alive() const { return alive_; }
  uint64_t num_buckets() const { return num_buckets_; }
  /// Backing-store growth events (allocation telemetry for
  /// WorkspacePool::TotalGrowths and the no-growth-after-warmup tests).
  uint64_t growths() const { return growths_ + delta_epochs_.growths(); }

 private:
  uint32_t BucketOf(Count support) const {
    const uint64_t b = static_cast<uint64_t>(support >> shift_);
    return static_cast<uint32_t>(b < num_buckets_ ? b : num_buckets_ - 1);
  }

  void Link(uint64_t e, uint32_t b, Count cost) {
    next_[e] = head_[b];
    prev_[e] = kNil;
    if (head_[b] != kNil) prev_[head_[b]] = e;
    head_[b] = e;
    entity_bucket_[e] = b;
    ++bucket_count_[b];
    bucket_cost_[b] += cost;
    group_cost_[b / kGroupSize] += cost;
    ++group_count_[b / kGroupSize];
    cost_cache_[e] = cost;
  }

  void Unlink(uint64_t e, uint32_t b, Count cost) {
    if (prev_[e] != kNil) {
      next_[prev_[e]] = next_[e];
    } else {
      head_[b] = next_[e];
    }
    if (next_[e] != kNil) prev_[next_[e]] = prev_[e];
    --bucket_count_[b];
    bucket_cost_[b] -= cost;
    group_cost_[b / kGroupSize] -= cost;
    --group_count_[b / kGroupSize];
  }

  Count cost_of_(uint64_t e) const { return cost_cache_[e]; }

  /// Sizes every backing store for n entities and supports ≤ max_support,
  /// reusing capacity (growth events counted).
  void PrepareStorage(uint64_t n, Count max_support);

  /// Resolves the exact crossing inside refine_scratch_ for residual mass
  /// `need` (selection-based, shared semantics with FindRangeBound).
  Count RefineCrossing(Count need);

  uint32_t shift_ = 0;
  uint64_t num_buckets_ = 0;
  uint64_t alive_ = 0;
  util::RelaxedCounter growths_;

  std::vector<uint64_t> bucket_count_;
  std::vector<uint64_t> bucket_cost_;
  std::vector<uint64_t> group_cost_;
  /// Alive members per summary group — lets ForEachAliveBelow skip an
  /// empty group of kGroupSize buckets at the cost of one probe, keeping
  /// the index-built active-set walk output-sensitive even when the
  /// support range (and thus the bucket count) dwarfs the member count.
  std::vector<uint64_t> group_count_;
  std::vector<uint64_t> head_;
  std::vector<uint64_t> next_;
  std::vector<uint64_t> prev_;
  std::vector<uint32_t> entity_bucket_;
  /// Static cost of each resident entity, cached at link time so Remove
  /// and Unlink never re-read the caller's cost array out of band.
  std::vector<Count> cost_cache_;
  std::vector<uint64_t> changed_;
  std::vector<std::pair<Count, Count>> refine_scratch_;
  FrontierEpochs delta_epochs_;
};

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_SUPPORT_INDEX_H_
