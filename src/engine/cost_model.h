#ifndef RECEIPT_ENGINE_COST_MODEL_H_
#define RECEIPT_ENGINE_COST_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace receipt::engine {

/// How RECEIPT FD partitions are assigned to NUMA nodes (or to the single
/// virtual node on machines without NUMA). Both modes are deterministic and
/// produce bit-identical decomposition results — subsets are peeled
/// independently, so assignment only moves work between nodes.
enum class PlacementAssign {
  /// Greedy Longest-Processing-Time: partitions sorted by decreasing
  /// predicted peel cost, each assigned to the least-loaded node. The
  /// cost-model-driven default.
  kCostLpt,
  /// Partitions dealt to nodes in creation order — the baseline
  /// bench_placement_micro gates against.
  kRoundRobin,
};

/// The outcome of placing `costs.size()` partitions onto `num_bins` nodes:
/// the assignment, each node's work queue (in the order workers should pop
/// it) and the predicted per-node loads.
struct PlacementPlan {
  /// bin_of[i] = node index of partition i.
  std::vector<uint32_t> bin_of;
  /// Per node: the partition ids it owns, highest predicted cost first for
  /// kCostLpt (LPT pop order), creation order for kRoundRobin.
  std::vector<std::vector<uint32_t>> bin_items;
  /// Predicted load per node (sum of member costs).
  std::vector<Count> bin_loads;

  /// Predicted makespan: the load of the most loaded node.
  Count Makespan() const;
  /// Cost mass that must cross nodes to reach perfect balance from this
  /// assignment: Σ_node max(0, load − ⌈avg⌉). A deterministic proxy for
  /// the cross-node traffic stealing will generate — the quantity LPT
  /// placement drives down and bench_placement_micro reports.
  Count MigrationPressure() const;
};

/// Greedy LPT (the §3.2.1 workload-aware rule, lifted from a sort order to
/// a node assignment): partitions are taken in decreasing predicted cost
/// (ties by lower partition id, so the plan is deterministic) and each goes
/// to the currently least-loaded node (ties by lower node index).
/// Guarantees makespan ≤ (4/3 − 1/(3·num_bins)) · OPT; the unit tests
/// check this against brute force.
PlacementPlan AssignLpt(std::span<const Count> costs, uint32_t num_bins);

/// Baseline: partition i goes to node i mod num_bins, queues kept in
/// creation order.
PlacementPlan AssignRoundRobin(std::span<const Count> costs,
                               uint32_t num_bins);

/// Scan-path twin of the SupportIndex prefix prediction: the cost mass of
/// entities with support < hi in an alive (support, cost) multiset.
/// RangeDecomposer calls this after the legacy FindRangeBound so both
/// coarse paths record bit-identical predicted range costs. Order-
/// independent (plain integer fold), tolerant of the selection's in-place
/// partitioning.
Count CostMassBelow(std::span<const std::pair<Count, Count>> support_and_cost,
                    Count hi);

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_COST_MODEL_H_
