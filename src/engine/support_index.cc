#include "engine/support_index.h"

#include <algorithm>

#include "engine/peel_kernels.h"

namespace receipt::engine {
namespace {

/// assign() with growth telemetry: reuses capacity, counts the reallocation
/// when it cannot.
template <typename V, typename Fill>
void AssignCounted(V& v, size_t n, Fill fill, util::RelaxedCounter* growths) {
  if (v.capacity() < n) ++(*growths);
  v.assign(n, fill);
}

}  // namespace

void SupportIndex::PrepareStorage(uint64_t n, Count max_support) {
  // Power-of-two bucket width, the smallest that keeps the leaf count
  // within budget — width 1 (exact buckets, refine-free bounds) whenever
  // the support range allows it.
  shift_ = 0;
  while ((max_support >> shift_) + 1 > kMaxBuckets) ++shift_;
  num_buckets_ = static_cast<uint64_t>(max_support >> shift_) + 1;
  const uint64_t num_groups = (num_buckets_ + kGroupSize - 1) / kGroupSize;

  AssignCounted(bucket_count_, num_buckets_, uint64_t{0}, &growths_);
  AssignCounted(bucket_cost_, num_buckets_, uint64_t{0}, &growths_);
  AssignCounted(group_cost_, num_groups, uint64_t{0}, &growths_);
  AssignCounted(group_count_, num_groups, uint64_t{0}, &growths_);
  AssignCounted(head_, num_buckets_, kNil, &growths_);
  AssignCounted(next_, n, kNil, &growths_);
  AssignCounted(prev_, n, kNil, &growths_);
  AssignCounted(entity_bucket_, n, kNoBucket, &growths_);
  AssignCounted(cost_cache_, n, Count{0}, &growths_);
  alive_ = 0;
}

Count SupportIndex::RefineCrossing(Count need) {
  return FindRangeBoundNeed(refine_scratch_, need);
}

}  // namespace receipt::engine
