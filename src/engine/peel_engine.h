#ifndef RECEIPT_ENGINE_PEEL_ENGINE_H_
#define RECEIPT_ENGINE_PEEL_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/counting.h"
#include "engine/extraction.h"
#include "engine/graph_maintenance.h"
#include "engine/min_heap.h"
#include "engine/peel_control.h"
#include "engine/peel_kernels.h"
#include "engine/range_result.h"
#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/types.h"
#include "wing/edge_topology.h"

namespace receipt::engine {

// ===========================================================================
// Peel-entity adapters: the two instantiations of the engine's entity
// parameter. Both expose the same surface — liveness, support access, the
// peel life-cycle, and an atomic peel-one kernel — so RangeDecomposer below
// is written once for vertices (tip) and edges (wing).
// ===========================================================================

/// Vertex (tip) peel entity: U vertices of a DynamicGraph, support updated
/// by the Alg. 2 wedge-aggregation kernel.
class TipPeelGraph {
 public:
  using Id = VertexId;
  /// Vertex peeling supports HUC re-counts (the per-vertex counting kernel
  /// re-derives supports); edge peeling does not.
  static constexpr bool kSupportsRecount = true;

  TipPeelGraph(DynamicGraph& live, std::span<Count> support)
      : live_(&live), support_(support) {}

  uint64_t num_entities() const { return live_->num_u(); }
  /// Workspace shape this entity's kernels need (dense wedge array over
  /// the combined vertex space; no V-side mark array).
  VertexId WorkspaceVertexCapacity() const { return live_->num_vertices(); }
  VertexId WorkspaceMarkCapacity() const { return 0; }
  bool IsAlive(Id u) const { return live_->IsAlive(u); }
  Count Support(Id u) const { return support_[u]; }
  /// Vertices die before their updates flow (Lemma 2, case 3).
  void BeginPeel(Id u) { live_->Kill(u); }
  void EndRound(std::span<const Id>) {}

  template <typename OnUpdated>
  uint64_t PeelOneAtomic(Id u, Count floor, PeelWorkspace& ws,
                         OnUpdated&& on_updated) {
    return PeelVertex</*kAtomic=*/true>(*live_, u, floor, support_, ws,
                                        std::forward<OnUpdated>(on_updated));
  }

  /// HUC re-count (§4.1): re-derives every live support by a fresh parallel
  /// count, clamped from below at the range bound `lo` (Lemma 1). Returns
  /// wedges traversed. `scratch.count_buffer` holds the fresh counts.
  uint64_t RecountSupports(Count lo, WorkspacePool& pool, int num_threads,
                           PeelWorkspace& scratch) {
    const VertexId n = live_->num_vertices();
    if (scratch.count_buffer.size() < n) {
      scratch.count_buffer.resize(n);
      ++scratch.growths;
    }
    std::span<Count> fresh(scratch.count_buffer.data(), n);
    const uint64_t wedges =
        CountVertexButterflies(*live_, pool, num_threads, fresh);
    const VertexId num_u = live_->num_u();
    ParallelFor(num_u, num_threads, [&](size_t u) {
      if (live_->IsAlive(static_cast<VertexId>(u))) {
        support_[u] = std::max(lo, fresh[u]);
      }
    });
    return wedges;
  }

 private:
  DynamicGraph* live_;
  std::span<Count> support_;
};

/// Edge (wing) peel entity: U-side CSR slots of a BipartiteGraph with an
/// explicit EdgeState array, support updated one butterfly at a time by the
/// §7 enumeration kernel under the minimum-id priority rule.
class WingPeelGraph {
 public:
  using Id = EdgeOffset;
  static constexpr bool kSupportsRecount = false;

  WingPeelGraph(const BipartiteGraph& graph, const EdgeTopology& topo,
                std::vector<uint8_t>& state, std::span<Count> support)
      : graph_(&graph), topo_(&topo), state_(&state), support_(support) {}

  uint64_t num_entities() const { return graph_->num_edges(); }
  /// Workspace shape this entity's kernels need (V-side mark array only).
  VertexId WorkspaceVertexCapacity() const { return 0; }
  VertexId WorkspaceMarkCapacity() const { return graph_->num_v(); }
  bool IsAlive(Id e) const { return (*state_)[e] == kEdgeAlive; }
  Count Support(Id e) const { return support_[e]; }
  /// Edges stay enumerable while peeling (all four edges of a butterfly
  /// must be not-dead for it to count); the priority rule arbitrates.
  void BeginPeel(Id e) { (*state_)[e] = kEdgePeeling; }
  void EndRound(std::span<const Id> round) {
    for (const Id e : round) (*state_)[e] = kEdgeDead;
  }

  template <typename OnUpdated>
  uint64_t PeelOneAtomic(Id e, Count floor, PeelWorkspace& ws,
                         OnUpdated&& on_updated) {
    return PeelEdgeButterflies(
        *graph_, *topo_, *state_, e, ws, [&](EdgeOffset x) {
          on_updated(x, AtomicClampedSub(&support_[x], Count{1}, floor));
        });
  }

 private:
  const BipartiteGraph* graph_;
  const EdgeTopology* topo_;
  std::vector<uint8_t>* state_;
  std::span<Count> support_;
};

// ===========================================================================
// RangeDecomposer: the coarse-grained decomposition engine (Alg. 3),
// templated on the peel entity. One implementation serves RECEIPT CD
// (TipPeelGraph, with HUC + DGM through GraphMaintenance) and the RECEIPT-W
// coarse step (WingPeelGraph, maintenance-free).
//
// Scheduling is frontier-driven (Julienne-style direction optimization):
// peel kernels emit newly-in-range entities into per-thread workspace
// frontier buffers, deduplicated through the pool's per-round epoch bitmap,
// and the next active set is the order-preserving merge of those buffers —
// unless the frontier is dense relative to the surviving population (or a
// HUC re-count invalidated the tracking), in which case the engine falls
// back to the full parallel scan. Both directions produce bit-identical
// active sets: every entity alive and in range at the start of round r+1
// must have received its below-`hi` update during round r (all of round r's
// active set was peeled), so the claimed set equals the scan set, and
// sorting the merge restores the scan's ascending-id order.
// ===========================================================================

template <typename PeelGraph>
class RangeDecomposer {
 public:
  using Id = typename PeelGraph::Id;

  /// `static_cost[e]` is the static peel-cost proxy of entity e (wedge
  /// count for vertices, mark + scan cost for edges) driving both range
  /// determination and — for vertices — the HUC cost model.
  /// `maintenance` may be nullptr (coarse wing); it must outlive Run().
  /// `control` (optional) is polled between rounds: on cancellation Run
  /// returns the ranges peeled so far, and every completed round reports
  /// its peel count as progress.
  /// `frontier_density_threshold` picks the rebuild direction (see
  /// kDefaultFrontierDensity in util/types.h): ≤ 0 forces full scans,
  /// > 1 forces frontier merges; both are bit-identical.
  RangeDecomposer(PeelGraph& peel_graph, std::span<const Count> static_cost,
                  uint32_t max_partitions, int num_threads,
                  WorkspacePool& pool, GraphMaintenance* maintenance,
                  PeelControl* control = nullptr,
                  double frontier_density_threshold = kDefaultFrontierDensity)
      : pg_(&peel_graph),
        static_cost_(static_cost),
        max_partitions_(std::max(1u, max_partitions)),
        num_threads_(num_threads),
        pool_(&pool),
        maintenance_(maintenance),
        control_(control),
        frontier_density_(frontier_density_threshold) {}

  /// Peels every entity, producing subsets with non-overlapping peel-number
  /// ranges. Contributes wedges_cd, sync_rounds, peel_iterations,
  /// huc_recounts, frontier/scan round counters and num_subsets to `*stats`
  /// (dgm_compactions are read off the GraphMaintenance by the caller).
  RangeResult<Id> Run(PeelStats* stats) {
    // Enforce the pool contract (one workspace per thread, kernels' dense
    // arrays sized) rather than assuming the caller Prepared; idempotent
    // and free when the pool is already warm.
    pool_->Prepare(std::max(1, num_threads_), pg_->WorkspaceVertexCapacity(),
                   pg_->WorkspaceMarkCapacity());
    const uint64_t n = pg_->num_entities();
    RangeResult<Id> result;
    result.subset_of.assign(n, 0);
    result.init_support.assign(n, 0);
    result.bounds = {0};

    epochs_ = &pool_->frontier_epochs();
    epochs_->Reset(n);

    double remaining_cost = 0.0;
    for (uint64_t e = 0; e < n; ++e) {
      remaining_cost += static_cast<double>(static_cost_[e]);
    }
    double target = remaining_cost / max_partitions_;  // Alg. 3 line 4

    uint64_t alive_count = n;
    while (alive_count > 0) {
      if (control_ != nullptr && control_->Cancelled()) break;
      const uint32_t subset_index =
          static_cast<uint32_t>(result.subsets.size());

      // Snapshot ⊲⊳init before any entity of this subset is peeled
      // (Alg. 3 lines 6-7).
      ParallelFor(n, num_threads_, [&](size_t e) {
        if (pg_->IsAlive(static_cast<Id>(e))) {
          result.init_support[e] = pg_->Support(static_cast<Id>(e));
        }
      });

      // Upper bound of this range (Alg. 3 line 8). Once the user-specified
      // P is exhausted, the final subset takes everything left (§3.1.1).
      // The O(n) alive scan is parallel and order-preserving — for the wing
      // instantiation n = m, and one scan runs per subset.
      Count hi = kInvalidCount;
      if (subset_index < max_partitions_) {
        ParallelFilterInto(
            n, num_threads_, range_scratch_,
            [&](size_t e) { return pg_->IsAlive(static_cast<Id>(e)); },
            [&](size_t e) {
              return std::pair<Count, Count>(pg_->Support(static_cast<Id>(e)),
                                             static_cost_[e]);
            },
            &filter_offsets_);
        hi = FindRangeBound(range_scratch_, std::max(1.0, target));
      }

      result.subsets.emplace_back();
      alive_count =
          PeelRange(subset_index, result.bounds.back(), hi, alive_count, n,
                    result, stats);

      // Two-way adaptive range determination (§3.1.1): recompute the target
      // from what remains and damp it by this subset's overshoot.
      double subset_cost = 0.0;
      for (const Id e : result.subsets.back()) {
        subset_cost += static_cast<double>(static_cost_[e]);
      }
      remaining_cost -= subset_cost;
      if (subset_index + 1 < max_partitions_) {
        const double base =
            remaining_cost /
            static_cast<double>(max_partitions_ - subset_index - 1);
        const double scale =
            subset_cost > 0.0 ? std::min(1.0, target / subset_cost) : 1.0;
        target = std::max(1.0, base * scale);
      }
      result.bounds.push_back(hi);
    }

    stats->num_subsets = result.subsets.size();
    return result;
  }

 private:
  /// True when the next active set should be rebuilt by a full scan instead
  /// of a frontier merge. Deterministic across thread counts: the frontier
  /// (= claimed set) size is a set property, not a schedule property.
  bool UseScan(uint64_t frontier_size, uint64_t alive) const {
    if (frontier_density_ <= 0.0) return true;
    return static_cast<double>(frontier_size) >=
           frontier_density_ * static_cast<double>(alive);
  }

  /// Peels every alive entity with support in [lo, hi) — the round loop of
  /// Alg. 3 lines 9-14 for one range — appending them in peel order to
  /// `result.subsets.back()`. Returns the updated alive count.
  uint64_t PeelRange(uint32_t subset_index, Count lo, Count hi,
                     uint64_t alive_count, uint64_t n, RangeResult<Id>& result,
                     PeelStats* stats) {
    std::vector<Id>& subset = result.subsets.back();
    const auto in_range = [&](size_t e) {
      return pg_->IsAlive(static_cast<Id>(e)) &&
             pg_->Support(static_cast<Id>(e)) < hi;
    };
    const auto as_id = [](size_t e) { return static_cast<Id>(e); };

    // First active set of the range: necessarily a full scan (Alg. 3
    // line 9) — entities whose support already lay inside the new, wider
    // range were never updated, so no frontier knows them.
    ParallelFilterInto(n, num_threads_, active_, in_range, as_id,
                       &filter_offsets_);
    ++stats->scan_rounds;
    stats->active_scan_elements += n;

    while (!active_.empty()) {
      ++stats->sync_rounds;
      ++stats->peel_iterations;

      // Assign and claim the whole round first so no update flows
      // between two entities peeled together (Lemma 2 / priority rule).
      for (const Id e : active_) {
        result.subset_of[e] = subset_index;
        pg_->BeginPeel(e);
      }
      alive_count -= active_.size();
      subset.insert(subset.end(), active_.begin(), active_.end());

      bool need_full_scan = false;
      bool recounted = false;
      if constexpr (PeelGraph::kSupportsRecount) {
        if (maintenance_ != nullptr && alive_count > 0) {
          Count peel_cost = 0;
          for (const Id e : active_) peel_cost += static_cost_[e];
          if (maintenance_->ShouldRecount(peel_cost)) {
            // Hybrid Update Computation (§4.1): this round's peeling
            // would traverse more wedges than a full re-count.
            ++stats->huc_recounts;
            maintenance_->BeginRecount(num_threads_);
            stats->wedges_cd += pg_->RecountSupports(
                lo, *pool_, num_threads_, pool_->Get(0));
            maintenance_->EndRecount();
            need_full_scan = true;  // re-count invalidated the tracking
            recounted = true;
          }
        }
      }

      if (!recounted) {
        epochs_->NextRound();
        const uint64_t wedges_before = pool_->TotalWedges();
        ParallelForWithContext(
            active_.size(), num_threads_, pool_->workspaces(),
            [&](PeelWorkspace& ws, size_t i) {
              ws.wedges_traversed += pg_->PeelOneAtomic(
                  active_[i], lo, ws, [&](Id x, Count new_support) {
                    if (new_support < hi &&
                        epochs_->Claim(static_cast<uint64_t>(x))) {
                      ws.frontier.push_back(static_cast<uint64_t>(x));
                    }
                  });
            });
        const uint64_t round_wedges = pool_->TotalWedges() - wedges_before;
        stats->wedges_cd += round_wedges;
        // Dynamic Graph Maintenance (§4.2): compact adjacency once ≥ m
        // wedges were traversed since the last compaction.
        if (maintenance_ != nullptr) {
          maintenance_->OnPeelWedges(round_wedges, num_threads_);
        }
        // Drain the per-thread frontier buffers every round (the workspace
        // invariant), whichever direction rebuilds the active set.
        merged_frontier_.clear();
        for (PeelWorkspace& ws : pool_->workspaces()) {
          for (const uint64_t x : ws.frontier) {
            merged_frontier_.push_back(static_cast<Id>(x));
          }
          ws.frontier.clear();
        }
      }

      pg_->EndRound(active_);
      if (control_ != nullptr) {
        control_->ReportPeeled(active_.size());
        if (control_->Cancelled()) break;
      }

      // Next active set (Alg. 3 line 14): merge the frontier when it is
      // sparse; re-scan when it is dense or a re-count invalidated the
      // tracking. Identical output either way (see class comment).
      if (need_full_scan) {
        ParallelFilterInto(n, num_threads_, active_, in_range, as_id,
                           &filter_offsets_);
        ++stats->scan_rounds;
        stats->active_scan_elements += n;
      } else if (merged_frontier_.empty()) {
        // No entity dropped into range this round, so the range is
        // exhausted (the claimed set equals the scan set) — a terminal
        // check, not a rebuild; counts toward neither direction.
        active_.clear();
      } else if (UseScan(merged_frontier_.size(), alive_count)) {
        ParallelFilterInto(n, num_threads_, active_, in_range, as_id,
                           &filter_offsets_);
        ++stats->scan_rounds;
        stats->active_scan_elements += n;
      } else {
        // Order-preserving merge: per-thread buffers arrive in arbitrary
        // interleavings, so sort by id to restore the scan order (this
        // also makes subset member order independent of thread count).
        std::sort(merged_frontier_.begin(), merged_frontier_.end());
        stats->active_scan_elements += merged_frontier_.size();
        ++stats->frontier_rounds;
        active_.clear();
        for (const Id e : merged_frontier_) {
          if (pg_->IsAlive(e) && pg_->Support(e) < hi) active_.push_back(e);
        }
      }
    }
    return alive_count;
  }

  PeelGraph* pg_;
  std::span<const Count> static_cost_;
  uint32_t max_partitions_;
  int num_threads_;
  WorkspacePool* pool_;
  GraphMaintenance* maintenance_;
  PeelControl* control_;
  double frontier_density_;
  FrontierEpochs* epochs_ = nullptr;

  // Round-loop scratch, reused across ranges within one Run().
  std::vector<std::pair<Count, Count>> range_scratch_;
  std::vector<size_t> filter_offsets_;  // ParallelFilterInto scratch
  std::vector<Id> active_;
  std::vector<Id> merged_frontier_;
};

// ===========================================================================
// Sequential bottom-up drivers: the fine-grained / baseline peeling loops.
// ===========================================================================

/// Configuration for SequentialTipPeel.
struct SequentialPeelConfig {
  MinExtraction min_extraction = MinExtraction::kDAryHeap;
  bool use_huc = false;
  bool use_dgm = false;
  /// θ starts here — 0 for whole-graph BUP, the subset's range lower bound
  /// θ(i) for a RECEIPT FD task.
  Count floor0 = 0;
  /// Break as soon as the last entity pops (FD tasks) instead of draining
  /// the extractor through the final — traversal-free by then — update
  /// (BUP keeps the seed semantics of counting those wedges).
  bool stop_when_peeled = false;
  /// Optional cancellation/progress hook, polled once per peeled entity.
  PeelControl* control = nullptr;
};

/// Counters reported by a sequential peel; the caller maps them onto the
/// right PeelStats fields (wedges_other for BUP, wedges_fd for FD).
struct SequentialPeelOutcome {
  uint64_t wedges = 0;
  uint64_t iterations = 0;
  uint64_t huc_recounts = 0;
  uint64_t dgm_compactions = 0;
};

/// Sequential bottom-up tip peeling of U vertices [0, num_peel) of `live` —
/// the unified kernel behind BupDecompose (whole graph, no optimizations)
/// and every RECEIPT FD task (induced subgraph, HUC + DGM, Alg. 4 lines
/// 5-10). `graph` is the static structure `live` was built from (used for
/// the HUC cost model); `support` spans live.num_vertices() and must be
/// initialized by the caller. `assign(u, θ)` fires once per peeled vertex.
template <typename AssignTheta>
SequentialPeelOutcome SequentialTipPeel(const BipartiteGraph& graph,
                                        DynamicGraph& live,
                                        std::span<Count> support,
                                        VertexId num_peel,
                                        const SequentialPeelConfig& config,
                                        PeelWorkspace& ws,
                                        AssignTheta&& assign) {
  SequentialPeelOutcome out;
  ws.EnsureVertexCapacity(live.num_vertices());
  GraphMaintenance maintenance(live, config.use_huc, config.use_dgm,
                               graph.num_edges());

  std::span<Count> fresh;
  if (config.use_huc) {
    // HUC bookkeeping: the external contribution of each vertex
    // (butterflies shared with peers outside `live`) is fixed during
    // peeling and equals ⊲⊳init − (butterflies inside live) — §4.1.
    const VertexId n = live.num_vertices();
    if (ws.count_buffer.size() < n) {
      ws.count_buffer.resize(n);
      ++ws.growths;
    }
    fresh = std::span<Count>(ws.count_buffer.data(), n);
    out.wedges += CountVertexButterfliesSeq(live, ws, fresh);
    ws.external.assign(num_peel, 0);
    ws.static_cost.assign(num_peel, 0);
    for (VertexId lu = 0; lu < num_peel; ++lu) {
      ws.external[lu] =
          support[lu] >= fresh[lu] ? support[lu] - fresh[lu] : 0;
      ws.static_cost[lu] = graph.WedgeCount(lu);
    }
  }

  // Workspace-resident extraction: re-seeded per task, backing stores
  // reused across every FD partition this thread processes.
  MinExtractor& extractor = ws.extractor;
  extractor.Reset(config.min_extraction, support, num_peel);

  VertexId alive_count = num_peel;
  Count theta = config.floor0;
  while (auto entry = extractor.PopMin(support)) {
    if (config.control != nullptr && config.control->Cancelled()) break;
    const auto [key, u] = *entry;
    theta = std::max(theta, key);
    assign(u, theta);
    if (config.control != nullptr) config.control->ReportPeeled(1);
    live.Kill(u);
    ++out.iterations;
    --alive_count;
    if (config.stop_when_peeled && alive_count == 0) break;

    if (config.use_huc && maintenance.ShouldRecount(ws.static_cost[u])) {
      // Re-counting this (small, induced) graph is cheaper than exploring
      // the peeled vertex's wedges.
      ++out.huc_recounts;
      maintenance.BeginRecount(/*num_threads=*/1);
      out.wedges += CountVertexButterfliesSeq(live, ws, fresh);
      for (VertexId lu = 0; lu < num_peel; ++lu) {
        if (!live.IsAlive(lu)) continue;
        support[lu] = std::max(theta, fresh[lu] + ws.external[lu]);
      }
      extractor.Rebuild(support);
      maintenance.EndRecount();
    } else {
      const uint64_t wedges = PeelVertex</*kAtomic=*/false>(
          live, u, theta, support, ws,
          [&extractor](VertexId u2, Count new_support) {
            extractor.NotifyUpdate(u2, new_support);
          });
      out.wedges += wedges;
      maintenance.OnPeelWedges(wedges, /*num_threads=*/1);
    }
  }

  out.dgm_compactions = maintenance.compactions();
  return out;
}

/// Counters reported by a sequential wing peel.
struct WingPeelOutcome {
  uint64_t wedges = 0;
  uint64_t iterations = 0;
};

/// Sequential bottom-up wing (edge) peeling — the unified kernel behind
/// WingDecompose (whole graph) and every RECEIPT-W fine task (environment
/// graph of a subset). The heap must be pre-seeded with the peelable edges;
/// `updatable(x)` filters both extraction and updates (environment edges of
/// higher subsets are enumerated but never updated); `assign(e, θ)` fires
/// once per peeled edge. `remaining` = number of peelable edges (0 = peel
/// until the heap runs dry). `control` (optional) is polled per iteration.
template <typename Updatable, typename OnAssign>
WingPeelOutcome SequentialWingPeel(const BipartiteGraph& graph,
                                   const EdgeTopology& topo,
                                   std::vector<uint8_t>& state,
                                   std::span<Count> support,
                                   LazyMinHeap<4>& heap, uint64_t remaining,
                                   Count floor0, PeelWorkspace& ws,
                                   Updatable&& updatable, OnAssign&& assign,
                                   PeelControl* control = nullptr) {
  WingPeelOutcome out;
  ws.EnsureMarkCapacity(graph.num_v());
  Count theta = floor0;
  const auto peelable = [&](VertexId k) {
    return state[k] == kEdgeAlive && updatable(static_cast<EdgeOffset>(k));
  };
  while (auto entry = heap.PopValid(support, peelable)) {
    if (control != nullptr && control->Cancelled()) break;
    const auto [key, k32] = *entry;
    const EdgeOffset k = k32;
    theta = std::max(theta, key);
    assign(k, theta);
    if (control != nullptr) control->ReportPeeled(1);
    state[k] = kEdgePeeling;  // sole peeling edge: priority rule is trivial
    ++out.iterations;
    out.wedges += PeelEdgeButterflies(
        graph, topo, state, k, ws, [&](EdgeOffset x) {
          if (!updatable(x)) return;  // higher subsets are never updated
          const Count cur = support[x];
          const Count next = cur > theta + 1 ? cur - 1 : theta;
          if (next != cur) {
            support[x] = next;
            heap.Push(next, static_cast<VertexId>(x));
          }
        });
    state[k] = kEdgeDead;
    if (remaining > 0 && --remaining == 0) break;
  }
  return out;
}

// ===========================================================================
// Round peeling (ParB): one concurrent batch with atomic clamped updates.
// ===========================================================================

/// Peels `peel_set` (whose members the caller already killed and assigned)
/// concurrently. `on_updated(ws, u2, new_support)` runs on the worker
/// thread that produced the update, with that thread's workspace — typical
/// use buffers (u2, new_support) into ws.updates for post-barrier
/// re-bucketing. Returns wedges traversed.
template <typename OnUpdated>
uint64_t ParallelPeelRound(const DynamicGraph& live,
                           std::span<const VertexId> peel_set, Count floor,
                           std::span<Count> support, WorkspacePool& pool,
                           int num_threads, OnUpdated&& on_updated) {
  pool.Prepare(std::max(1, num_threads), live.num_vertices());
  const uint64_t wedges_before = pool.TotalWedges();
  ParallelForWithContext(
      peel_set.size(), num_threads, pool.workspaces(),
      [&](PeelWorkspace& ws, size_t i) {
        ws.wedges_traversed += PeelVertex</*kAtomic=*/true>(
            live, peel_set[i], floor, support, ws,
            [&](VertexId u2, Count new_support) {
              on_updated(ws, u2, new_support);
            });
      });
  return pool.TotalWedges() - wedges_before;
}

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_PEEL_ENGINE_H_
