#ifndef RECEIPT_ENGINE_PEEL_ENGINE_H_
#define RECEIPT_ENGINE_PEEL_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "engine/cost_model.h"
#include "engine/counting.h"
#include "engine/extraction.h"
#include "engine/graph_maintenance.h"
#include "engine/min_heap.h"
#include "engine/peel_control.h"
#include "engine/peel_kernels.h"
#include "engine/range_result.h"
#include "engine/support_index.h"
#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/types.h"
#include "wing/edge_topology.h"

namespace receipt::engine {

// ===========================================================================
// Peel-entity adapters: the two instantiations of the engine's entity
// parameter. Both expose the same surface — liveness, support access, the
// peel life-cycle, and an atomic peel-one kernel — so RangeDecomposer below
// is written once for vertices (tip) and edges (wing).
// ===========================================================================

/// Vertex (tip) peel entity: U vertices of a DynamicGraph, support updated
/// by the Alg. 2 wedge-aggregation kernel.
class TipPeelGraph {
 public:
  using Id = VertexId;
  /// Vertex peeling supports HUC re-counts (the per-vertex counting kernel
  /// re-derives supports); edge peeling does not.
  static constexpr bool kSupportsRecount = true;

  TipPeelGraph(DynamicGraph& live, std::span<Count> support)
      : live_(&live), support_(support) {}

  uint64_t num_entities() const { return live_->num_u(); }
  /// Workspace shape this entity's kernels need (dense wedge array over
  /// the combined vertex space; no V-side mark array).
  VertexId WorkspaceVertexCapacity() const { return live_->num_vertices(); }
  VertexId WorkspaceMarkCapacity() const { return 0; }
  bool IsAlive(Id u) const { return live_->IsAlive(u); }
  Count Support(Id u) const { return support_[u]; }
  /// Direct support write for the incremental replay path, which advances
  /// survivors to their recorded boundary values instead of re-traversing
  /// the wedges that would have decremented them.
  void SetSupport(Id u, Count v) { support_[u] = v; }
  /// Vertices die before their updates flow (Lemma 2, case 3).
  void BeginPeel(Id u) { live_->Kill(u); }
  void EndRound(std::span<const Id>) {}

  template <typename OnUpdated>
  uint64_t PeelOneAtomic(Id u, Count floor, PeelWorkspace& ws,
                         OnUpdated&& on_updated) {
    return PeelVertex</*kAtomic=*/true>(*live_, u, floor, support_, ws,
                                        std::forward<OnUpdated>(on_updated));
  }

  /// HUC re-count (§4.1): re-derives every live support by a fresh parallel
  /// count, clamped from below at the range bound `lo` (Lemma 1). Returns
  /// wedges traversed. `scratch.count_buffer` holds the fresh counts.
  uint64_t RecountSupports(Count lo, WorkspacePool& pool, int num_threads,
                           PeelWorkspace& scratch) {
    const VertexId n = live_->num_vertices();
    if (scratch.count_buffer.size() < n) {
      scratch.count_buffer.resize(n);
      ++scratch.growths;
    }
    std::span<Count> fresh(scratch.count_buffer.data(), n);
    const uint64_t wedges =
        CountVertexButterflies(*live_, pool, num_threads, fresh);
    const VertexId num_u = live_->num_u();
    ParallelFor(num_u, num_threads, [&](size_t u) {
      if (live_->IsAlive(static_cast<VertexId>(u))) {
        support_[u] = std::max(lo, fresh[u]);
      }
    });
    return wedges;
  }

 private:
  DynamicGraph* live_;
  std::span<Count> support_;
};

/// Edge (wing) peel entity: U-side CSR slots of a BipartiteGraph with an
/// explicit EdgeState array, support updated one butterfly at a time by the
/// §7 enumeration kernel under the minimum-id priority rule.
class WingPeelGraph {
 public:
  using Id = EdgeOffset;
  static constexpr bool kSupportsRecount = false;

  WingPeelGraph(const BipartiteGraph& graph, const EdgeTopology& topo,
                std::vector<uint8_t>& state, std::span<Count> support)
      : graph_(&graph), topo_(&topo), state_(&state), support_(support) {}

  uint64_t num_entities() const { return graph_->num_edges(); }
  /// Workspace shape this entity's kernels need (V-side mark array only).
  VertexId WorkspaceVertexCapacity() const { return 0; }
  VertexId WorkspaceMarkCapacity() const { return graph_->num_v(); }
  bool IsAlive(Id e) const { return (*state_)[e] == kEdgeAlive; }
  Count Support(Id e) const { return support_[e]; }
  /// Direct support write for the incremental replay path (see
  /// TipPeelGraph::SetSupport).
  void SetSupport(Id e, Count v) { support_[e] = v; }
  /// Edges stay enumerable while peeling (all four edges of a butterfly
  /// must be not-dead for it to count); the priority rule arbitrates.
  void BeginPeel(Id e) { (*state_)[e] = kEdgePeeling; }
  void EndRound(std::span<const Id> round) {
    for (const Id e : round) (*state_)[e] = kEdgeDead;
  }

  template <typename OnUpdated>
  uint64_t PeelOneAtomic(Id e, Count floor, PeelWorkspace& ws,
                         OnUpdated&& on_updated) {
    return PeelEdgeButterflies(
        *graph_, *topo_, *state_, e, ws, [&](EdgeOffset x) {
          on_updated(x, AtomicClampedSub(&support_[x], Count{1}, floor));
        });
  }

 private:
  const BipartiteGraph* graph_;
  const EdgeTopology* topo_;
  std::vector<uint8_t>* state_;
  std::span<Count> support_;
};

// ===========================================================================
// RangeDecomposer: the coarse-grained decomposition engine (Alg. 3),
// templated on the peel entity. One implementation serves RECEIPT CD
// (TipPeelGraph, with HUC + DGM through GraphMaintenance) and the RECEIPT-W
// coarse step (WingPeelGraph, maintenance-free).
//
// Scheduling is frontier-driven (Julienne-style direction optimization):
// peel kernels emit newly-in-range entities into per-thread workspace
// frontier buffers, deduplicated through the pool's per-round epoch bitmap,
// and the next active set is the order-preserving merge of those buffers —
// unless the frontier is dense relative to the surviving population (or a
// HUC re-count invalidated the tracking), in which case the engine falls
// back to the full parallel scan. Both directions produce bit-identical
// active sets: every entity alive and in range at the start of round r+1
// must have received its below-`hi` update during round r (all of round r's
// active set was peeled), so the claimed set equals the scan set, and
// sorting the merge restores the scan's ascending-id order.
//
// The per-range work is output-sensitive through the pool's SupportIndex
// (default on): range bounds come from a histogram prefix walk plus a
// bounded one-bucket refine, and ⊲⊳init is written once up front and then
// patched at each boundary from the entities whose support actually changed
// — the scan fallback (use_support_index = false: per-range alive filter +
// selection, per-range ⊲⊳init snapshot) is retained and bit-identical.
// ===========================================================================

/// Per-range record of the ⊲⊳init boundary patches a coarse run applied:
/// `ranges[i]` lists (entity, support at the close of range i) for every
/// entity whose support changed while range i peeled and that survived to
/// the i+1 boundary. An incremental re-run replays these entries to advance
/// its shadow of the recorded run's support trajectory without re-traversing
/// any wedges. `valid` drops to false when the recording run cannot vouch
/// for completeness: the scan fallback (no delta tracking at all) or a HUC
/// re-count (which rewrites every alive support behind the tracking).
struct CoarsePatchLog {
  std::vector<std::vector<std::pair<uint64_t, Count>>> ranges;
  bool valid = true;

  void Reset() {
    ranges.clear();
    valid = true;
  }
  uint64_t TotalEntries() const {
    uint64_t total = 0;
    for (const auto& range : ranges) total += range.size();
    return total;
  }
};

/// Baseline a RunIncremental call folds an edge-update batch against. All
/// spans are in the *current* entity-id space — the caller remaps wing edge
/// ids across graph rebuilds before handing the baseline over.
template <typename Id>
struct IncrementalSeed {
  /// The sealed coarse result of the previous run on the pre-batch graph.
  const RangeResult<Id>* sealed = nullptr;
  /// The boundary patch log that run recorded (must be `valid`).
  const CoarsePatchLog* log = nullptr;
  /// `old_support[e]`: the support entity e had when the sealed run
  /// started, or kInvalidCount for entities that did not exist then.
  std::span<const Count> old_support;
  /// `structural_dirty[e]` must be 1 for every entity that can belong to a
  /// butterfly the update batch created or destroyed (a conservative
  /// superset is fine; completeness is what soundness rests on).
  std::span<const uint8_t> structural_dirty;
  /// Optional per-sealed-subset override (1 = never reuse): the wing
  /// caller marks subsets that contained since-deleted edges, whose
  /// remapped member lists are no longer the sealed peel order.
  std::span<const uint8_t> force_dirty_subset;
  /// Once more than this fraction of the sealed range count has been
  /// re-peeled, the rest of the run stops attempting reuse and proceeds as
  /// a plain full recompute (results are bit-identical either way; the
  /// clean checks just stop paying for themselves).
  double dirty_fraction_limit = 0.5;
};

/// What an incremental run did: how many ranges it reused verbatim vs
/// re-peeled, and per-produced-subset dirty flags the caller uses to re-run
/// the fine phase selectively (0 = the sealed subset's fine results are
/// still exact).
struct IncrementalOutcome {
  /// True when no reuse was possible (unusable baseline) or the
  /// dirty-fraction limit tripped mid-run.
  bool fell_back_full = false;
  uint64_t ranges_reused = 0;
  uint64_t ranges_repeeled = 0;
  std::vector<uint8_t> subset_dirty;
};

/// Knobs of the coarse decomposition engine, bundled so drivers forward
/// their option structs in one hop. Every combination is bit-identical —
/// the knobs trade rebuild and bound-determination cost, never results.
struct CoarseOptions {
  /// P: subsets with caller-chosen bounds; one unbounded subset absorbs
  /// the rest once exhausted (§3.1.1).
  uint32_t max_partitions = 1;
  int num_threads = 1;
  /// Direction rule under kFixedDensity (see kDefaultFrontierDensity):
  /// ≤ 0 forces full scans, > 1 forces frontier merges.
  double frontier_density_threshold = kDefaultFrontierDensity;
  /// Fixed-fraction vs measured-cost direction switching. Measured cost is
  /// the default: the run adapts to the machine's actual rebuild costs and
  /// falls back to the density rule until both directions are sampled.
  /// Pin kFixedDensity to force directions via the threshold (the
  /// direction-forcing suites and micro-benches do).
  FrontierSwitch frontier_switch = FrontierSwitch::kMeasuredCost;
  /// Histogram-indexed range bounds + delta-patched ⊲⊳init (default) vs
  /// the legacy per-range O(n) scan path.
  bool use_support_index = true;
  /// Span sink (null by default): the decomposer emits one
  /// "engine.cd.range" span per produced subset.
  obs::TraceContext trace;
};

/// Builds CoarseOptions from any driver option struct exposing the shared
/// coarse knobs (TipOptions, ReceiptWingOptions) — the single copy site, so
/// a new knob added here cannot be silently dropped by one driver.
template <typename DriverOptions>
CoarseOptions MakeCoarseOptions(const DriverOptions& options,
                                uint32_t max_partitions) {
  CoarseOptions coarse;
  coarse.max_partitions = max_partitions;
  coarse.num_threads = options.num_threads;
  coarse.frontier_density_threshold = options.frontier_density_threshold;
  coarse.frontier_switch = options.frontier_switch;
  coarse.use_support_index = options.use_support_index;
  coarse.trace = options.trace;
  return coarse;
}

template <typename PeelGraph>
class RangeDecomposer {
 public:
  using Id = typename PeelGraph::Id;

  /// `static_cost[e]` is the static peel-cost proxy of entity e (wedge
  /// count for vertices, mark + scan cost for edges) driving both range
  /// determination and — for vertices — the HUC cost model.
  /// `maintenance` may be nullptr (coarse wing); it must outlive Run().
  /// `control` (optional) is polled between rounds: on cancellation Run
  /// returns the ranges peeled so far, and every completed round reports
  /// its peel count as progress.
  RangeDecomposer(PeelGraph& peel_graph, std::span<const Count> static_cost,
                  const CoarseOptions& options, WorkspacePool& pool,
                  GraphMaintenance* maintenance,
                  PeelControl* control = nullptr)
      : pg_(&peel_graph),
        static_cost_(static_cost),
        opts_(options),
        max_partitions_(std::max(1u, options.max_partitions)),
        num_threads_(options.num_threads),
        pool_(&pool),
        maintenance_(maintenance),
        control_(control) {}

  /// Peels every entity, producing subsets with non-overlapping peel-number
  /// ranges. Contributes wedges_cd, sync_rounds, peel_iterations,
  /// huc_recounts, frontier/scan round counters, the SupportIndex counters
  /// (bound_walk_buckets, histogram_refines, init_patch_elements,
  /// index_rebuild_elements) and num_subsets to `*stats` (dgm_compactions
  /// are read off the GraphMaintenance by the caller).
  RangeResult<Id> Run(PeelStats* stats) {
    return RunImpl(nullptr, nullptr, stats);
  }

  /// Incremental coarse pass: produces exactly the RangeResult a full
  /// Run() on the current graph would — bit-identical by construction,
  /// because every range is either re-peeled through the same machinery or
  /// *proven* to reproduce the sealed baseline before being replayed from
  /// it. While the run tracks the sealed trajectory it adopts the sealed
  /// bounds outright (any partition yields the same numbers); a range is
  /// then replayed only when (b) every sealed member is alive with support
  /// equal to the sealed run's trajectory and out of reach of the update
  /// batch (not structurally dirty), (c) no entity whose support diverged
  /// from that trajectory starts the range below the bound, and (d) no
  /// survivor the sealed range dragged down would cross the bound at its
  /// divergence-shifted boundary value (supports only decrease within a
  /// range, so that value is the in-range minimum). Replay then kills the
  /// sealed members, advances survivors to their recorded boundary values
  /// shifted by their current divergence, and copies the sealed peel order
  /// verbatim — no wedge is traversed. Requires use_support_index; with an
  /// unusable baseline this degenerates to Run() (outcome reports it).
  RangeResult<Id> RunIncremental(const IncrementalSeed<Id>& seed,
                                 IncrementalOutcome* outcome,
                                 PeelStats* stats) {
    return RunImpl(&seed, outcome, stats);
  }

  /// Optional boundary-patch recorder: when set, the run records each
  /// range's surviving support changes into `log` (Reset() up front) so
  /// the *next* incremental run can replay this run's trajectory. The log
  /// is marked invalid when completeness cannot be guaranteed (scan
  /// fallback, HUC re-count). `log` must outlive the run.
  void set_patch_log(CoarsePatchLog* log) { record_log_ = log; }

 private:
  RangeResult<Id> RunImpl(const IncrementalSeed<Id>* seed,
                          IncrementalOutcome* outcome, PeelStats* stats) {
    // Enforce the pool contract (one workspace per thread, kernels' dense
    // arrays sized) rather than assuming the caller Prepared; idempotent
    // and free when the pool is already warm.
    pool_->Prepare(std::max(1, num_threads_), pg_->WorkspaceVertexCapacity(),
                   pg_->WorkspaceMarkCapacity());
    const uint64_t n = pg_->num_entities();
    RangeResult<Id> result;
    result.subset_of.assign(n, 0);
    result.init_support.assign(n, 0);
    result.bounds = {0};

    epochs_ = &pool_->frontier_epochs();
    epochs_->Reset(n);

    index_ = opts_.use_support_index ? &pool_->support_index() : nullptr;
    full_patch_needed_ = false;
    if (record_log_ != nullptr) {
      record_log_->Reset();
      if (index_ == nullptr) record_log_->valid = false;
    }

    // An incremental baseline is usable only when the indexed path is on,
    // the sealed run's patch log is complete, and the baseline spans line
    // up with the current entity space; otherwise this is a plain full run
    // (which, with a recorder set, seeds the next seal instead).
    incremental_ = seed != nullptr && index_ != nullptr &&
                   seed->sealed != nullptr && seed->log != nullptr &&
                   seed->log->valid && !seed->sealed->subsets.empty() &&
                   seed->old_support.size() == n &&
                   seed->dirty_fraction_limit > 0.0;
    desynced_ = !incremental_;
    uint64_t repeeled_ranges = 0;
    uint64_t dirty_budget = 0;
    if (incremental_) {
      dirty_budget = static_cast<uint64_t>(
          seed->dirty_fraction_limit *
          static_cast<double>(seed->sealed->subsets.size()));
      // Shadow of the sealed run's support trajectory, plus the candidate
      // set of entities whose current support may diverge from it (kept a
      // superset: re-peeled ranges add everything they or the sealed run
      // touched).
      shadow_.assign(seed->old_support.begin(), seed->old_support.end());
      divergent_bit_.assign(n, 0);
      divergent_list_.clear();
      for (uint64_t e = 0; e < n; ++e) {
        if (pg_->IsAlive(static_cast<Id>(e)) &&
            pg_->Support(static_cast<Id>(e)) != shadow_[e]) {
          divergent_bit_[e] = 1;
          divergent_list_.push_back(e);
        }
      }
    }
    if (outcome != nullptr) {
      *outcome = IncrementalOutcome{};
      outcome->fell_back_full = !incremental_;
    }
    if (index_ != nullptr) {
      // ⊲⊳init is written exactly once up front (every entity is alive
      // before the first range) and patched at later boundaries from the
      // delta tracking — no per-range O(n) snapshot.
      ParallelFor(n, num_threads_, [&](size_t e) {
        if (pg_->IsAlive(static_cast<Id>(e))) {
          result.init_support[e] = pg_->Support(static_cast<Id>(e));
        }
      });
      RebuildIndex(n, stats);
    }

    const Count total_static = ParallelReduceSum<Count>(
        n, num_threads_, [&](size_t e) { return static_cost_[e]; },
        &reduce_scratch_);
    double remaining_cost = static_cast<double>(total_static);
    double target = remaining_cost / max_partitions_;  // Alg. 3 line 4
    // Exact-integer twin of remaining_cost, kept so the final unbounded
    // subset's predicted cost (= all remaining mass) is bit-identical
    // across paths and thread counts (the double track feeds the adaptive
    // target only).
    Count remaining_static = total_static;

    uint64_t alive_count = n;
    while (alive_count > 0) {
      if (control_ != nullptr && control_->Cancelled()) break;
      const uint32_t subset_index =
          static_cast<uint32_t>(result.subsets.size());
      // One span per produced subset: boundary patch + bound determination
      // + the whole range peel. Per-round spans would flood the flight
      // recorder on large graphs; per-range matches the paper's unit of
      // coarse work.
      obs::ScopedSpan range_span(opts_.trace, "engine.cd.range",
                                 subset_index);

      // Bring ⊲⊳init up to the state "after all lower subsets were fully
      // peeled" (Alg. 3 lines 6-7): a delta patch over the entities whose
      // support changed during the previous range (indexed path) or the
      // legacy full snapshot (scan fallback / post-re-count).
      if (index_ != nullptr) {
        PatchBoundary(n, result, stats);
        index_->OpenRangeEpoch();
      } else {
        ParallelFor(n, num_threads_, [&](size_t e) {
          if (pg_->IsAlive(static_cast<Id>(e))) {
            result.init_support[e] = pg_->Support(static_cast<Id>(e));
          }
        });
      }

      // Upper bound of this range (Alg. 3 line 8). Once the user-specified
      // P is exhausted, the final subset takes everything left (§3.1.1).
      Count hi = kInvalidCount;
      // Cost-model prediction for this range (see RangeResult docs): an
      // exact integer both bound paths derive from the same multiset. The
      // final unbounded subset's prediction is everything left.
      Count predicted = remaining_static;
      result.subsets.emplace_back();

      // While the run tracks the sealed trajectory, every range ADOPTS the
      // sealed bound — for replay and for dirty re-peels alike. The
      // tip/wing numbers are partition-independent (RECEIPT's exactness
      // theorem), so the sealed run's bounds are always a valid partition
      // choice; correctness of a replay rests solely on the clean-range
      // proof. Recomputing bounds and demanding they coincide would make
      // reuse collapse whenever the batch shifts total static cost (which
      // every batch does), and re-peeling a dirty range under a fresh
      // bound would desync the trajectory even when the range reproduces
      // the sealed membership exactly.
      bool replayed = false;
      bool bound_from_sealed = false;
      if (incremental_ && !desynced_ &&
          subset_index < seed->sealed->subsets.size()) {
        hi = seed->sealed->bounds[subset_index + 1];
        bound_from_sealed = true;
        if (subset_index < seed->sealed->predicted_costs.size()) {
          predicted = seed->sealed->predicted_costs[subset_index];
        }
        const bool force_dirty =
            subset_index < seed->force_dirty_subset.size() &&
            seed->force_dirty_subset[subset_index];
        if (!force_dirty && SealedRangeMatches(*seed, subset_index, hi)) {
          alive_count = ReplayRange(*seed, subset_index, alive_count, result,
                                    stats);
          replayed = true;
          ++stats->incremental_ranges_reused;
          if (outcome != nullptr) ++outcome->ranges_reused;
        }
      }

      if (!replayed) {
        // Indexed: a histogram prefix walk plus a one-bucket refine, cost
        // proportional to buckets walked, not n. Fallback: one parallel
        // alive filter + partial selection per subset. Skipped while the
        // sealed bound stands in (replay and tracked re-peels), which is
        // itself part of the incremental savings.
        if (!bound_from_sealed && subset_index < max_partitions_) {
          const double clamped = std::max(1.0, target);
          if (index_ != nullptr) {
            hi = index_->FindBound(
                RangeCostNeed(clamped),
                [&](uint64_t e) { return pg_->Support(static_cast<Id>(e)); },
                stats, &predicted);
          } else {
            ParallelFilterInto(
                n, num_threads_, range_scratch_,
                [&](size_t e) { return pg_->IsAlive(static_cast<Id>(e)); },
                [&](size_t e) {
                  return std::pair<Count, Count>(
                      pg_->Support(static_cast<Id>(e)), static_cost_[e]);
                },
                &filter_offsets_);
            hi = FindRangeBound(range_scratch_, clamped);
            predicted = CostMassBelow(range_scratch_, hi);
          }
        }
        alive_count =
            PeelRange(subset_index, result.bounds.back(), hi, alive_count, n,
                      result, stats);
        if (incremental_) {
          ++stats->incremental_ranges_repeeled;
          if (outcome != nullptr) ++outcome->ranges_repeeled;
          if (!desynced_) {
            AdvanceShadowAfterRepeel(*seed, subset_index, result);
            if (++repeeled_ranges > dirty_budget) {
              // Past the dirty-fraction limit: stop paying for clean
              // checks and finish as a full recompute (same results).
              desynced_ = true;
              if (outcome != nullptr) outcome->fell_back_full = true;
            }
          }
        }
      }
      result.predicted_costs.push_back(predicted);
      if (outcome != nullptr) {
        outcome->subset_dirty.push_back(replayed ? 0 : 1);
      }

      // Two-way adaptive range determination (§3.1.1): recompute the target
      // from what remains and damp it by this subset's overshoot. The
      // per-subset cost fold is a deterministic parallel reduction (integer
      // partial sums folded in block order, so the target — and therefore
      // every later bound — is independent of thread count).
      const std::vector<Id>& subset = result.subsets.back();
      const Count subset_static = ParallelReduceSum<Count>(
          subset.size(), num_threads_,
          [&](size_t i) { return static_cost_[subset[i]]; },
          &reduce_scratch_);
      const double subset_cost = static_cast<double>(subset_static);
      remaining_cost -= subset_cost;
      remaining_static -= std::min(remaining_static, subset_static);
      if (subset_index + 1 < max_partitions_) {
        const double base =
            remaining_cost /
            static_cast<double>(max_partitions_ - subset_index - 1);
        const double scale =
            subset_cost > 0.0 ? std::min(1.0, target / subset_cost) : 1.0;
        target = std::max(1.0, base * scale);
      }
      result.bounds.push_back(hi);
    }

    stats->num_subsets = result.subsets.size();
    stats->scan_cost_per_element =
        std::max(stats->scan_cost_per_element, scan_cost_ewma_);
    stats->frontier_cost_per_element =
        std::max(stats->frontier_cost_per_element, frontier_cost_ewma_);
    return result;
  }

 private:
  /// Full SupportIndex rebuild (up front, and after every HUC re-count —
  /// a re-count rewrites all alive supports without emitting deltas).
  void RebuildIndex(uint64_t n, PeelStats* stats) {
    index_->Rebuild(
        n, [&](uint64_t e) { return pg_->IsAlive(static_cast<Id>(e)); },
        [&](uint64_t e) { return pg_->Support(static_cast<Id>(e)); },
        static_cost_, num_threads_);
    stats->index_rebuild_elements += n;
  }

  /// Applies the previous range's deferred bucket moves and patches
  /// ⊲⊳init, touching only changed entities — or the whole entity space
  /// when a re-count invalidated the tracking.
  void PatchBoundary(uint64_t n, RangeResult<Id>& result, PeelStats* stats) {
    // Patch-log recording: this boundary's changed-survivor list is the
    // record of the range that just finished. Replayed ranges write their
    // own entry (leaving the changed list empty), so only record when the
    // log is exactly one entry behind the produced subsets.
    std::vector<std::pair<uint64_t, Count>>* rec = nullptr;
    if (record_log_ != nullptr && !result.subsets.empty() &&
        record_log_->ranges.size() + 1 == result.subsets.size()) {
      record_log_->ranges.emplace_back();
      rec = &record_log_->ranges.back();
    }
    if (full_patch_needed_) {
      // A mid-range re-count rewrote every alive support behind the delta
      // tracking, so the changed list no longer names every moved entity —
      // any log being recorded is unusable from here on.
      if (record_log_ != nullptr) record_log_->valid = false;
      ParallelFor(n, num_threads_, [&](size_t e) {
        if (pg_->IsAlive(static_cast<Id>(e))) {
          result.init_support[e] = pg_->Support(static_cast<Id>(e));
        }
      });
      stats->init_patch_elements += n;
      // The snapshot covers ⊲⊳init, but deltas that arrived between the
      // mid-range rebuild and this boundary still hold deferred bucket
      // moves — apply them or the histogram would serve stale bounds.
      for (const uint64_t x : index_->changed()) {
        ++stats->init_patch_elements;
        if (!index_->Contains(x)) continue;
        index_->MoveTo(x, pg_->Support(static_cast<Id>(x)), static_cost_[x]);
      }
      index_->ClearChanged();
      full_patch_needed_ = false;
      return;
    }
    for (const uint64_t x : index_->changed()) {
      ++stats->init_patch_elements;
      // Entities peeled during the previous range keep the ⊲⊳init of their
      // own subset's start — exactly the legacy snapshot semantics, since
      // the snapshot also never rewrote dead entities.
      if (!index_->Contains(x)) continue;
      const Count s = pg_->Support(static_cast<Id>(x));
      result.init_support[x] = s;
      index_->MoveTo(x, s, static_cost_[x]);
      if (rec != nullptr) rec->emplace_back(x, s);
    }
    index_->ClearChanged();
  }

  /// Clean-range proof for the incremental pass, evaluated against the
  /// SEALED bound hi (which the caller adopts on success — any partition
  /// choice yields the same numbers, so no fresh bound is computed for a
  /// clean range). Read-only: cost is the sealed subset size plus the
  /// divergence candidate set plus the sealed range's patch-log entry.
  bool SealedRangeMatches(const IncrementalSeed<Id>& seed, uint32_t i,
                          Count hi) const {
    const std::vector<Id>& members = seed.sealed->subsets[i];
    const bool final_sealed = i + 1 == seed.sealed->subsets.size();
    // A non-final sealed range without a patch-log entry cannot advance
    // the shadow trajectory — never reuse it.
    if (!final_sealed && i >= seed.log->ranges.size()) return false;
    // (b) Every sealed member must be reproducible: alive, support equal
    // to the sealed trajectory, and out of the update batch's structural
    // reach (a changed butterfly always has all its peelable entities
    // marked dirty, so non-dirty members receive exactly the sealed run's
    // in-range decrements).
    for (const Id m : members) {
      const uint64_t mid = static_cast<uint64_t>(m);
      if (mid >= shadow_.size() || !pg_->IsAlive(m)) return false;
      if (pg_->Support(m) != shadow_[mid]) return false;
      if (mid < seed.structural_dirty.size() && seed.structural_dirty[mid]) {
        return false;
      }
    }
    // (c) No divergent entity may start the range below the bound — it
    // would join a peel the sealed subset never held.
    for (const uint64_t e : divergent_list_) {
      if (!pg_->IsAlive(static_cast<Id>(e))) continue;
      const Count cur = pg_->Support(static_cast<Id>(e));
      if (cur == shadow_[e]) continue;
      if (cur < hi) return false;
    }
    // (d) Nothing the range's peeling drags down may cross the bound
    // mid-range either: a dragged survivor ends the range at its sealed
    // boundary value shifted by its current divergence, and supports only
    // decrease within a range, so that value is the in-range minimum.
    if (!final_sealed) {
      for (const auto& [s, v] : seed.log->ranges[i]) {
        if (s >= shadow_.size() || !pg_->IsAlive(static_cast<Id>(s))) {
          return false;
        }
        const int64_t drift =
            static_cast<int64_t>(pg_->Support(static_cast<Id>(s))) -
            static_cast<int64_t>(shadow_[s]);
        if (static_cast<int64_t>(v) + drift < static_cast<int64_t>(hi)) {
          return false;
        }
      }
    }
    return true;
  }

  /// Replays sealed range i verbatim: kills the sealed members in their
  /// recorded peel order, advances dragged survivors to their recorded
  /// boundary values shifted by their current divergence, and keeps the
  /// histogram, ⊲⊳init, and any log being recorded exactly as a real peel
  /// of the range would have left them. No wedge is traversed.
  uint64_t ReplayRange(const IncrementalSeed<Id>& seed, uint32_t i,
                       uint64_t alive_count, RangeResult<Id>& result,
                       PeelStats* stats) {
    const std::vector<Id>& members = seed.sealed->subsets[i];
    std::vector<Id>& subset = result.subsets.back();
    subset = members;
    for (const Id m : members) {
      result.subset_of[m] = i;
      pg_->BeginPeel(m);
      index_->Remove(static_cast<uint64_t>(m), static_cost_[m]);
    }
    pg_->EndRound(subset);
    alive_count -= members.size();
    stats->incremental_replay_elements += members.size();

    if (i < seed.log->ranges.size()) {
      std::vector<std::pair<uint64_t, Count>>* rec = nullptr;
      if (record_log_ != nullptr && record_log_->ranges.size() == i) {
        record_log_->ranges.emplace_back();
        rec = &record_log_->ranges.back();
      }
      stats->incremental_replay_elements += seed.log->ranges[i].size();
      for (const auto& [s, v] : seed.log->ranges[i]) {
        const Id sid = static_cast<Id>(s);
        const Count drifted = static_cast<Count>(
            static_cast<int64_t>(v) +
            static_cast<int64_t>(pg_->Support(sid)) -
            static_cast<int64_t>(shadow_[s]));
        pg_->SetSupport(sid, drifted);
        shadow_[s] = v;
        result.init_support[s] = drifted;
        index_->MoveTo(s, drifted, static_cost_[s]);
        if (rec != nullptr) rec->emplace_back(s, drifted);
      }
    }
    return alive_count;
  }

  /// After re-peeling range i for real: advance the shadow through the
  /// sealed run's range i and widen the divergence candidate set by
  /// everything either run touched. The produced subset need NOT match the
  /// sealed one for later ranges to stay provable: a sealed member that
  /// died early fails its home range's liveness check (b), and a sealed
  /// member the re-peel left alive gets its shadow poisoned below so it
  /// reads as permanently divergent — condition (c) then blocks replay of
  /// exactly the ranges its support would join. Desync is only forced when
  /// the survivor trajectory itself is unrecorded (no patch-log entry) or
  /// the run has outgrown the sealed baseline.
  void AdvanceShadowAfterRepeel(const IncrementalSeed<Id>& seed, uint32_t i,
                                const RangeResult<Id>& result) {
    (void)result;
    for (const uint64_t x : index_->changed()) MarkDivergent(x);
    if (i >= seed.sealed->subsets.size()) {
      desynced_ = true;
      return;
    }
    if (i < seed.log->ranges.size()) {
      for (const auto& [s, v] : seed.log->ranges[i]) {
        shadow_[s] = v;
        MarkDivergent(s);
      }
    } else if (i + 1 < seed.sealed->subsets.size()) {
      desynced_ = true;  // shadow can no longer be advanced
      return;
    }
    // Sealed members of this range are dead on the sealed trajectory from
    // here on. Any the re-peel left alive have no trajectory to compare
    // against — poison their shadow with a value no live support can take,
    // so they stay divergent until a re-peel consumes them.
    for (const Id m : seed.sealed->subsets[i]) {
      if (pg_->IsAlive(m)) {
        shadow_[static_cast<uint64_t>(m)] = kInvalidCount;
        MarkDivergent(static_cast<uint64_t>(m));
      }
    }
  }

  void MarkDivergent(uint64_t e) {
    if (e < divergent_bit_.size() && !divergent_bit_[e]) {
      divergent_bit_[e] = 1;
      divergent_list_.push_back(e);
    }
  }

  /// True when the next active set should be rebuilt by a full scan instead
  /// of a frontier merge. The fixed-density rule is deterministic across
  /// thread counts (the frontier size is a set property, not a schedule
  /// property); the measured-cost rule compares EWMA per-element rebuild
  /// costs and is timing-dependent — either way the rebuilt set is
  /// bit-identical, only its cost changes.
  bool UseScan(uint64_t frontier_size, uint64_t alive, uint64_t n) {
    if (opts_.frontier_switch == FrontierSwitch::kMeasuredCost &&
        scan_cost_ewma_ > 0.0 && frontier_cost_ewma_ > 0.0) {
      bool scan = static_cast<double>(n) * scan_cost_ewma_ <
                  static_cast<double>(frontier_size) * frontier_cost_ewma_;
      // Samples only come from the direction that runs, so a single bad
      // sample (e.g. fixed merge overhead on a tiny first frontier) could
      // lock the switch into one side forever. Probe the losing direction
      // after a long winning streak to keep its EWMA current; the probe is
      // still a correct rebuild, just a potentially slower one.
      constexpr int kProbeStreak = 16;
      if (scan == measured_last_scan_) {
        if (++measured_streak_ >= kProbeStreak) {
          scan = !scan;
          measured_streak_ = 0;
        }
      } else {
        measured_streak_ = 0;
      }
      measured_last_scan_ = scan;
      return scan;
    }
    if (opts_.frontier_density_threshold <= 0.0) return true;
    return static_cast<double>(frontier_size) >=
           opts_.frontier_density_threshold * static_cast<double>(alive);
  }

  /// The one EWMA update both direction gauges share (the kMeasuredCost
  /// decision compares these, so their weighting must never drift apart).
  static void UpdateEwma(double* ewma, double seconds, uint64_t elements) {
    if (elements == 0) return;
    const double sample = seconds / static_cast<double>(elements);
    *ewma = *ewma == 0.0 ? sample : 0.75 * *ewma + 0.25 * sample;
  }

  /// One timed full-scan active-set rebuild with its direction accounting —
  /// the scan fallback's build-everywhere path and the indexed path's
  /// dense-frontier fallback.
  template <typename InRange, typename AsId>
  void RebuildByScan(uint64_t n, InRange&& in_range, AsId&& as_id,
                     PeelStats* stats) {
    const WallTimer scan_timer;
    ParallelFilterInto(n, num_threads_, active_, in_range, as_id,
                       &filter_offsets_);
    UpdateEwma(&scan_cost_ewma_, scan_timer.Seconds(), n);
    ++stats->scan_rounds;
    stats->scan_build_elements += n;
    stats->active_scan_elements += n;
  }

  /// Index-built full rebuild: collects the in-range entities from the
  /// histogram's member lists — cost proportional to the range population,
  /// not n — then sorts by id to restore the ascending order the scan
  /// produces (member-list order is schedule-dependent; the sorted set is
  /// bit-identical to RebuildByScan's). Only called while bucket
  /// membership is reconciled: the initial build of each range (right
  /// after the boundary patch) and the post-re-count rebuild (right after
  /// RebuildIndex).
  void RebuildByIndex(Count hi, PeelStats* stats) {
    active_.clear();
    index_->ForEachAliveBelow(
        hi, [&](uint64_t e) { return pg_->Support(static_cast<Id>(e)); },
        stats, [&](uint64_t e) { active_.push_back(static_cast<Id>(e)); });
    std::sort(active_.begin(), active_.end());
    ++stats->index_build_rounds;
  }

  /// Full rebuild dispatch for the two reconciled call sites above.
  template <typename InRange, typename AsId>
  void RebuildFull(uint64_t n, Count hi, InRange&& in_range, AsId&& as_id,
                   PeelStats* stats) {
    if (index_ != nullptr) {
      RebuildByIndex(hi, stats);
    } else {
      RebuildByScan(n, in_range, as_id, stats);
    }
  }

  /// Peels every alive entity with support in [lo, hi) — the round loop of
  /// Alg. 3 lines 9-14 for one range — appending them in peel order to
  /// `result.subsets.back()`. Returns the updated alive count.
  uint64_t PeelRange(uint32_t subset_index, Count lo, Count hi,
                     uint64_t alive_count, uint64_t n, RangeResult<Id>& result,
                     PeelStats* stats) {
    std::vector<Id>& subset = result.subsets.back();
    const auto in_range = [&](size_t e) {
      return pg_->IsAlive(static_cast<Id>(e)) &&
             pg_->Support(static_cast<Id>(e)) < hi;
    };
    const auto as_id = [](size_t e) { return static_cast<Id>(e); };

    // First active set of the range: necessarily a full rebuild (Alg. 3
    // line 9) — entities whose support already lay inside the new, wider
    // range were never updated, so no frontier knows them. On the indexed
    // path the histogram was just reconciled at the boundary, so the set
    // comes from its member lists instead of an O(n) scan.
    RebuildFull(n, hi, in_range, as_id, stats);

    while (!active_.empty()) {
      ++stats->sync_rounds;
      ++stats->peel_iterations;

      // Assign and claim the whole round first so no update flows
      // between two entities peeled together (Lemma 2 / priority rule).
      for (const Id e : active_) {
        result.subset_of[e] = subset_index;
        pg_->BeginPeel(e);
        if (index_ != nullptr) {
          index_->Remove(static_cast<uint64_t>(e), static_cost_[e]);
        }
      }
      alive_count -= active_.size();
      subset.insert(subset.end(), active_.begin(), active_.end());

      bool need_full_scan = false;
      bool recounted = false;
      if constexpr (PeelGraph::kSupportsRecount) {
        if (maintenance_ != nullptr && alive_count > 0) {
          Count peel_cost = 0;
          for (const Id e : active_) peel_cost += static_cost_[e];
          if (maintenance_->ShouldRecount(peel_cost)) {
            // Hybrid Update Computation (§4.1): this round's peeling
            // would traverse more wedges than a full re-count.
            ++stats->huc_recounts;
            maintenance_->BeginRecount(num_threads_);
            stats->wedges_cd += pg_->RecountSupports(
                lo, *pool_, num_threads_, pool_->Get(0));
            maintenance_->EndRecount();
            need_full_scan = true;  // re-count invalidated the tracking
            recounted = true;
            if (index_ != nullptr) {
              // The re-count rewrote every alive support behind the delta
              // tracking's back: rebuild the histogram now (later rounds
              // still Remove() against it) and fall back to one full
              // ⊲⊳init snapshot at the next boundary.
              RebuildIndex(n, stats);
              full_patch_needed_ = true;
            }
          }
        }
      }

      if (!recounted) {
        epochs_->NextRound();
        const bool track_deltas = index_ != nullptr;
        const uint64_t wedges_before = pool_->TotalWedges();
        ParallelForWithContext(
            active_.size(), num_threads_, pool_->workspaces(),
            [&](PeelWorkspace& ws, size_t i) {
              ws.wedges_traversed += pg_->PeelOneAtomic(
                  active_[i], lo, ws, [&](Id x, Count new_support) {
                    const uint64_t xid = static_cast<uint64_t>(x);
                    if (track_deltas && index_->ClaimDelta(xid)) {
                      ws.support_delta.push_back(xid);
                    }
                    if (new_support < hi && epochs_->Claim(xid)) {
                      ws.frontier.push_back(xid);
                    }
                  });
            });
        const uint64_t round_wedges = pool_->TotalWedges() - wedges_before;
        stats->wedges_cd += round_wedges;
        // Dynamic Graph Maintenance (§4.2): compact adjacency once ≥ m
        // wedges were traversed since the last compaction.
        if (maintenance_ != nullptr) {
          maintenance_->OnPeelWedges(round_wedges, num_threads_);
        }
        // Drain the per-thread frontier and support-delta buffers every
        // round (the workspace invariant), whichever direction rebuilds
        // the active set. Bucket moves stay deferred until the next range
        // boundary — the only point the histogram is queried.
        merged_frontier_.clear();
        for (PeelWorkspace& ws : pool_->workspaces()) {
          for (const uint64_t x : ws.frontier) {
            merged_frontier_.push_back(static_cast<Id>(x));
          }
          ws.frontier.clear();
          if (index_ != nullptr) {
            index_->AppendChanged(ws.support_delta);
            ws.support_delta.clear();
          }
        }
      }

      pg_->EndRound(active_);
      if (control_ != nullptr) {
        control_->ReportPeeled(active_.size());
        if (control_->Cancelled()) break;
      }

      // Next active set (Alg. 3 line 14): merge the frontier when it is
      // sparse; re-scan when it is dense or a re-count invalidated the
      // tracking. Identical output either way (see class comment).
      if (need_full_scan) {
        // A re-count just rebuilt the index, so its membership is exact —
        // the indexed path rebuilds from member lists here too.
        RebuildFull(n, hi, in_range, as_id, stats);
      } else if (merged_frontier_.empty()) {
        // No entity dropped into range this round, so the range is
        // exhausted (the claimed set equals the scan set) — a terminal
        // check, not a rebuild; counts toward neither direction.
        active_.clear();
      } else if (UseScan(merged_frontier_.size(), alive_count, n)) {
        RebuildByScan(n, in_range, as_id, stats);
      } else {
        // Order-preserving merge: per-thread buffers arrive in arbitrary
        // interleavings, so sort by id to restore the scan order (this
        // also makes subset member order independent of thread count).
        const WallTimer merge_timer;
        std::sort(merged_frontier_.begin(), merged_frontier_.end());
        stats->frontier_build_elements += merged_frontier_.size();
        stats->active_scan_elements += merged_frontier_.size();
        ++stats->frontier_rounds;
        active_.clear();
        for (const Id e : merged_frontier_) {
          if (pg_->IsAlive(e) && pg_->Support(e) < hi) active_.push_back(e);
        }
        UpdateEwma(&frontier_cost_ewma_, merge_timer.Seconds(),
                   merged_frontier_.size());
      }
    }
    return alive_count;
  }

  PeelGraph* pg_;
  std::span<const Count> static_cost_;
  CoarseOptions opts_;
  uint32_t max_partitions_;
  int num_threads_;
  WorkspacePool* pool_;
  GraphMaintenance* maintenance_;
  PeelControl* control_;
  FrontierEpochs* epochs_ = nullptr;
  SupportIndex* index_ = nullptr;
  bool full_patch_needed_ = false;
  // Incremental-pass state (see RunIncremental): the recorder for the next
  // seal, the sealed trajectory shadow, and the divergence candidate set.
  CoarsePatchLog* record_log_ = nullptr;
  bool incremental_ = false;
  bool desynced_ = false;
  std::vector<Count> shadow_;
  std::vector<uint8_t> divergent_bit_;
  std::vector<uint64_t> divergent_list_;
  double scan_cost_ewma_ = 0.0;
  double frontier_cost_ewma_ = 0.0;
  int measured_streak_ = 0;        // consecutive same-direction picks
  bool measured_last_scan_ = false;

  // Round-loop scratch, reused across ranges within one Run().
  std::vector<std::pair<Count, Count>> range_scratch_;
  std::vector<size_t> filter_offsets_;  // ParallelFilterInto scratch
  std::vector<Count> reduce_scratch_;   // ParallelReduceSum scratch
  std::vector<Id> active_;
  std::vector<Id> merged_frontier_;
};

// ===========================================================================
// Sequential bottom-up drivers: the fine-grained / baseline peeling loops.
// ===========================================================================

/// Configuration for SequentialTipPeel.
struct SequentialPeelConfig {
  MinExtraction min_extraction = MinExtraction::kDAryHeap;
  bool use_huc = false;
  bool use_dgm = false;
  /// θ starts here — 0 for whole-graph BUP, the subset's range lower bound
  /// θ(i) for a RECEIPT FD task.
  Count floor0 = 0;
  /// Break as soon as the last entity pops (FD tasks) instead of draining
  /// the extractor through the final — traversal-free by then — update
  /// (BUP keeps the seed semantics of counting those wedges).
  bool stop_when_peeled = false;
  /// Optional cancellation/progress hook, polled once per peeled entity.
  PeelControl* control = nullptr;
};

/// Counters reported by a sequential peel; the caller maps them onto the
/// right PeelStats fields (wedges_other for BUP, wedges_fd for FD).
struct SequentialPeelOutcome {
  uint64_t wedges = 0;
  uint64_t iterations = 0;
  uint64_t huc_recounts = 0;
  uint64_t dgm_compactions = 0;
};

/// Sequential bottom-up tip peeling of U vertices [0, num_peel) of `live` —
/// the unified kernel behind BupDecompose (whole graph, no optimizations)
/// and every RECEIPT FD task (induced subgraph, HUC + DGM, Alg. 4 lines
/// 5-10). `graph` is the static structure `live` was built from (used for
/// the HUC cost model); `support` spans live.num_vertices() and must be
/// initialized by the caller. `assign(u, θ)` fires once per peeled vertex.
template <typename AssignTheta>
SequentialPeelOutcome SequentialTipPeel(const BipartiteGraph& graph,
                                        DynamicGraph& live,
                                        std::span<Count> support,
                                        VertexId num_peel,
                                        const SequentialPeelConfig& config,
                                        PeelWorkspace& ws,
                                        AssignTheta&& assign) {
  SequentialPeelOutcome out;
  ws.EnsureVertexCapacity(live.num_vertices());
  GraphMaintenance maintenance(live, config.use_huc, config.use_dgm,
                               graph.num_edges());

  std::span<Count> fresh;
  if (config.use_huc) {
    // HUC bookkeeping: the external contribution of each vertex
    // (butterflies shared with peers outside `live`) is fixed during
    // peeling and equals ⊲⊳init − (butterflies inside live) — §4.1.
    const VertexId n = live.num_vertices();
    if (ws.count_buffer.size() < n) {
      ws.count_buffer.resize(n);
      ++ws.growths;
    }
    fresh = std::span<Count>(ws.count_buffer.data(), n);
    out.wedges += CountVertexButterfliesSeq(live, ws, fresh);
    ws.external.assign(num_peel, 0);
    ws.static_cost.assign(num_peel, 0);
    for (VertexId lu = 0; lu < num_peel; ++lu) {
      ws.external[lu] =
          support[lu] >= fresh[lu] ? support[lu] - fresh[lu] : 0;
      ws.static_cost[lu] = graph.WedgeCount(lu);
    }
  }

  // Workspace-resident extraction: re-seeded per task, backing stores
  // reused across every FD partition this thread processes.
  MinExtractor& extractor = ws.extractor;
  extractor.Reset(config.min_extraction, support, num_peel);

  VertexId alive_count = num_peel;
  Count theta = config.floor0;
  while (auto entry = extractor.PopMin(support)) {
    if (config.control != nullptr && config.control->Cancelled()) break;
    const auto [key, u] = *entry;
    theta = std::max(theta, key);
    assign(u, theta);
    if (config.control != nullptr) config.control->ReportPeeled(1);
    live.Kill(u);
    ++out.iterations;
    --alive_count;
    if (config.stop_when_peeled && alive_count == 0) break;

    if (config.use_huc && maintenance.ShouldRecount(ws.static_cost[u])) {
      // Re-counting this (small, induced) graph is cheaper than exploring
      // the peeled vertex's wedges.
      ++out.huc_recounts;
      maintenance.BeginRecount(/*num_threads=*/1);
      out.wedges += CountVertexButterfliesSeq(live, ws, fresh);
      for (VertexId lu = 0; lu < num_peel; ++lu) {
        if (!live.IsAlive(lu)) continue;
        support[lu] = std::max(theta, fresh[lu] + ws.external[lu]);
      }
      extractor.Rebuild(support);
      maintenance.EndRecount();
    } else {
      const uint64_t wedges = PeelVertex</*kAtomic=*/false>(
          live, u, theta, support, ws,
          [&extractor](VertexId u2, Count new_support) {
            extractor.NotifyUpdate(u2, new_support);
          });
      out.wedges += wedges;
      maintenance.OnPeelWedges(wedges, /*num_threads=*/1);
    }
  }

  out.dgm_compactions = maintenance.compactions();
  return out;
}

/// Counters reported by a sequential wing peel.
struct WingPeelOutcome {
  uint64_t wedges = 0;
  uint64_t iterations = 0;
};

/// Sequential bottom-up wing (edge) peeling — the unified kernel behind
/// WingDecompose (whole graph) and every RECEIPT-W fine task (environment
/// graph of a subset). The heap must be pre-seeded with the peelable edges;
/// `updatable(x)` filters both extraction and updates (environment edges of
/// higher subsets are enumerated but never updated); `assign(e, θ)` fires
/// once per peeled edge. `remaining` = number of peelable edges (0 = peel
/// until the heap runs dry). `control` (optional) is polled per iteration.
template <typename Updatable, typename OnAssign>
WingPeelOutcome SequentialWingPeel(const BipartiteGraph& graph,
                                   const EdgeTopology& topo,
                                   std::vector<uint8_t>& state,
                                   std::span<Count> support,
                                   LazyMinHeap<4>& heap, uint64_t remaining,
                                   Count floor0, PeelWorkspace& ws,
                                   Updatable&& updatable, OnAssign&& assign,
                                   PeelControl* control = nullptr) {
  WingPeelOutcome out;
  ws.EnsureMarkCapacity(graph.num_v());
  Count theta = floor0;
  const auto peelable = [&](VertexId k) {
    return state[k] == kEdgeAlive && updatable(static_cast<EdgeOffset>(k));
  };
  while (auto entry = heap.PopValid(support, peelable)) {
    if (control != nullptr && control->Cancelled()) break;
    const auto [key, k32] = *entry;
    const EdgeOffset k = k32;
    theta = std::max(theta, key);
    assign(k, theta);
    if (control != nullptr) control->ReportPeeled(1);
    state[k] = kEdgePeeling;  // sole peeling edge: priority rule is trivial
    ++out.iterations;
    out.wedges += PeelEdgeButterflies(
        graph, topo, state, k, ws, [&](EdgeOffset x) {
          if (!updatable(x)) return;  // higher subsets are never updated
          const Count cur = support[x];
          const Count next = cur > theta + 1 ? cur - 1 : theta;
          if (next != cur) {
            support[x] = next;
            heap.Push(next, static_cast<VertexId>(x));
          }
        });
    state[k] = kEdgeDead;
    if (remaining > 0 && --remaining == 0) break;
  }
  return out;
}

// ===========================================================================
// Round peeling (ParB): one concurrent batch with atomic clamped updates.
// ===========================================================================

/// Peels `peel_set` (whose members the caller already killed and assigned)
/// concurrently. `on_updated(ws, u2, new_support)` runs on the worker
/// thread that produced the update, with that thread's workspace — typical
/// use buffers (u2, new_support) into ws.updates for post-barrier
/// re-bucketing. Returns wedges traversed.
template <typename OnUpdated>
uint64_t ParallelPeelRound(const DynamicGraph& live,
                           std::span<const VertexId> peel_set, Count floor,
                           std::span<Count> support, WorkspacePool& pool,
                           int num_threads, OnUpdated&& on_updated) {
  pool.Prepare(std::max(1, num_threads), live.num_vertices());
  const uint64_t wedges_before = pool.TotalWedges();
  ParallelForWithContext(
      peel_set.size(), num_threads, pool.workspaces(),
      [&](PeelWorkspace& ws, size_t i) {
        ws.wedges_traversed += PeelVertex</*kAtomic=*/true>(
            live, peel_set[i], floor, support, ws,
            [&](VertexId u2, Count new_support) {
              on_updated(ws, u2, new_support);
            });
      });
  return pool.TotalWedges() - wedges_before;
}

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_PEEL_ENGINE_H_
