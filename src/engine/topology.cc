#include "engine/topology.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <numeric>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace receipt::engine {
namespace {

/// Usable CPUs of the calling process (sched_getaffinity), ascending.
/// Falls back to {0, …, hardware_concurrency-1} where affinity queries are
/// unsupported.
std::vector<int> ProcessCpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  if (cpus.empty()) {
    const int hw =
        std::max(1u, std::thread::hardware_concurrency());
    cpus.resize(static_cast<size_t>(hw));
    std::iota(cpus.begin(), cpus.end(), 0);
  }
  return cpus;
}

bool ReadFirstLine(const std::string& path, std::string* line) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  if (!std::getline(in, *line)) return false;
  return true;
}

}  // namespace

bool ParseCpuList(const std::string& text, std::vector<int>* cpus) {
  cpus->clear();
  size_t i = 0;
  const auto parse_int = [&](long* out) {
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i])))
      return false;
    long value = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + (text[i] - '0');
      if (value > 1 << 20) return false;  // implausible CPU id
      ++i;
    }
    *out = value;
    return true;
  };
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  if (i == text.size()) return true;  // empty list (memory-only node)
  while (true) {
    long lo = 0;
    if (!parse_int(&lo)) {
      cpus->clear();
      return false;
    }
    long hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parse_int(&hi) || hi < lo) {
        cpus->clear();
        return false;
      }
    }
    for (long c = lo; c <= hi; ++c) cpus->push_back(static_cast<int>(c));
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == text.size()) break;
    if (text[i] != ',') {
      cpus->clear();
      return false;
    }
    ++i;
  }
  std::sort(cpus->begin(), cpus->end());
  cpus->erase(std::unique(cpus->begin(), cpus->end()), cpus->end());
  return true;
}

NumaTopology NumaTopology::Discover() {
  const std::vector<int> usable = ProcessCpus();
  NumaTopology topology;
#if defined(__linux__)
  // Probe node ids densely from 0; sysfs node directories are not required
  // to be contiguous, so tolerate a few holes before giving up.
  constexpr int kMaxHoles = 8;
  int holes = 0;
  for (int id = 0; holes <= kMaxHoles; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    std::string line;
    if (!ReadFirstLine(path, &line)) {
      ++holes;
      continue;
    }
    std::vector<int> cpus;
    if (!ParseCpuList(line, &cpus)) continue;
    std::vector<int> mine;
    std::set_intersection(cpus.begin(), cpus.end(), usable.begin(),
                          usable.end(), std::back_inserter(mine));
    if (mine.empty()) continue;  // memory-only node, or fully masked
    topology.nodes_.push_back({id, std::move(mine)});
  }
#endif
  if (topology.nodes_.empty()) {
    return SingleNode(static_cast<int>(usable.size()));
  }
  return topology;
}

NumaTopology NumaTopology::SingleNode(int num_cpus) {
  NumaTopology topology;
  NumaNode node;
  node.id = 0;
  node.cpus = ProcessCpus();
  if (static_cast<int>(node.cpus.size()) != num_cpus) {
    node.cpus.resize(static_cast<size_t>(std::max(1, num_cpus)));
    std::iota(node.cpus.begin(), node.cpus.end(), 0);
  }
  topology.nodes_.push_back(std::move(node));
  return topology;
}

NumaTopology NumaTopology::Synthetic(int num_nodes, int cpus_per_node) {
  NumaTopology topology;
  topology.synthetic_ = true;
  num_nodes = std::max(1, num_nodes);
  cpus_per_node = std::max(1, cpus_per_node);
  int next_cpu = 0;
  for (int id = 0; id < num_nodes; ++id) {
    NumaNode node;
    node.id = id;
    for (int c = 0; c < cpus_per_node; ++c) node.cpus.push_back(next_cpu++);
    topology.nodes_.push_back(std::move(node));
  }
  return topology;
}

int NumaTopology::total_cpus() const {
  int total = 0;
  for (const NumaNode& node : nodes_) {
    total += static_cast<int>(node.cpus.size());
  }
  return total;
}

std::vector<int> NumaTopology::AssignWorkers(int num_workers) const {
  std::vector<int> assignment;
  if (num_workers <= 0 || nodes_.empty()) return assignment;
  const int n = num_nodes();
  const int cpus = std::max(1, total_cpus());

  // Largest-remainder apportionment of workers to nodes by CPU share, then
  // emit workers round-robin across the nodes that still have quota — so
  // consecutive workers land on different nodes (the batching layer keeps
  // same-graph work together; spreading workers keeps nodes busy).
  std::vector<int> quota(static_cast<size_t>(n), 0);
  std::vector<std::pair<double, int>> remainder;
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    const double share =
        static_cast<double>(num_workers) *
        static_cast<double>(nodes_[static_cast<size_t>(i)].cpus.size()) /
        static_cast<double>(cpus);
    quota[static_cast<size_t>(i)] = static_cast<int>(share);
    assigned += quota[static_cast<size_t>(i)];
    remainder.emplace_back(share - static_cast<double>(
                                       quota[static_cast<size_t>(i)]),
                           i);
  }
  std::sort(remainder.begin(), remainder.end(), [](const auto& a,
                                                   const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break: lower node first
  });
  for (size_t i = 0; assigned < num_workers; i = (i + 1) % remainder.size()) {
    ++quota[static_cast<size_t>(remainder[i].second)];
    ++assigned;
  }

  std::vector<int> left = quota;
  while (static_cast<int>(assignment.size()) < num_workers) {
    for (int i = 0; i < n && static_cast<int>(assignment.size()) < num_workers;
         ++i) {
      if (left[static_cast<size_t>(i)] > 0) {
        --left[static_cast<size_t>(i)];
        assignment.push_back(i);
      }
    }
  }
  return assignment;
}

const NumaTopology& SystemTopology() {
  static const NumaTopology topology = NumaTopology::Discover();
  return topology;
}

bool PinThreadToCpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool PinThreadToNode(const NumaTopology& topology, int node) {
  if (topology.synthetic()) return false;
  if (node < 0 || node >= topology.num_nodes()) return false;
  return PinThreadToCpus(topology.nodes()[static_cast<size_t>(node)].cpus);
}

ScopedAffinity::ScopedAffinity() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) saved_cpus_.push_back(c);
    }
    valid_ = !saved_cpus_.empty();
  }
#endif
}

ScopedAffinity::~ScopedAffinity() {
  if (valid_) PinThreadToCpus(saved_cpus_);
}

void FirstTouch(void* data, size_t bytes) {
  if (data == nullptr || bytes == 0) return;
  constexpr size_t kPage = 4096;
  volatile unsigned char* p = static_cast<unsigned char*>(data);
  for (size_t off = 0; off < bytes; off += kPage) {
    p[off] = p[off];
  }
  p[bytes - 1] = p[bytes - 1];
}

}  // namespace receipt::engine
