#ifndef RECEIPT_ENGINE_WORKSPACE_H_
#define RECEIPT_ENGINE_WORKSPACE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/extraction.h"
#include "engine/frontier_epochs.h"
#include "engine/min_heap.h"
#include "engine/support_index.h"
#include "graph/induced_subgraph.h"
#include "util/relaxed_counter.h"
#include "util/types.h"
#include "wing/edge_topology.h"

namespace receipt::engine {

/// Per-thread reusable scratch for every wedge-traversal kernel in the
/// library: butterfly counting (Alg. 1), tip peel-updates (Alg. 2), RECEIPT
/// CD rounds (Alg. 3), per-partition FD peeling (Alg. 4) and wing (edge)
/// peeling (§7). A decomposition allocates workspaces once through
/// WorkspacePool and reuses them across rounds and partitions, so the hot
/// paths are allocation-free in steady state.
///
/// Invariant between kernel invocations: `wedge_count` and `edge_mark` are
/// all-zero — every kernel resets exactly the entries it touched.
struct PeelWorkspace {
  /// Dense wedge-aggregation array (`wdg_arr` of Alg. 2), indexed by 2-hop
  /// neighbor id. 64-bit: multiplicities are bounded by degree, but a dense
  /// high-degree vertex can collect > 2^32 wedges across one traversal.
  std::vector<uint64_t> wedge_count;
  /// Non-zero entries of wedge_count (nze of Alg. 1).
  std::vector<VertexId> touched;
  /// Wedge list (mid, end) for the counting kernel's opposite-side pass
  /// (nzw of Alg. 1).
  std::vector<std::pair<VertexId, VertexId>> wedge_pairs;
  /// V-side mark array for edge (wing) peeling: stores edge id + 1 while a
  /// peel is in flight, 0 = unmarked.
  std::vector<EdgeOffset> edge_mark;
  /// Frontier buffer: entity ids this thread's peel kernels pushed into the
  /// next round's candidate set (deduplicated via the shared FrontierEpochs
  /// bitmap). EdgeOffset-wide so it serves both vertex and edge peeling.
  std::vector<uint64_t> frontier;
  /// Support-delta buffer: entity ids whose support this thread's kernels
  /// changed, deduplicated per range by the pool SupportIndex's own epoch
  /// bitmap and folded into the index's changed list after each round
  /// barrier (the ⊲⊳init patch + histogram maintenance feed).
  std::vector<uint64_t> support_delta;
  /// (entity, new support) pairs produced in one round, consumed after the
  /// barrier (ParB re-bucketing).
  std::vector<std::pair<uint64_t, Count>> updates;
  /// Re-count target buffer for HUC (§4.1): fresh per-vertex counts.
  std::vector<Count> count_buffer;
  /// Fixed external butterfly contributions during FD (⊲⊳init − in-subgraph
  /// count, §4.1).
  std::vector<Count> external;
  /// Static per-entity wedge counts — the C_peel cost model input.
  std::vector<Count> static_cost;
  /// Per-partition support vector (FD induced subgraphs, wing environment
  /// graphs); assign() keeps the capacity between partitions.
  std::vector<Count> support_buffer;

  /// Workspace-resident min extraction for sequential peel loops: Reset()
  /// re-seeds it per FD task while reusing the heap/bucket backing stores.
  MinExtractor extractor;
  /// Workspace-resident lazy heap for sequential wing (edge) peeling.
  LazyMinHeap<4> edge_heap;
  /// Arena for per-partition induced subgraphs and their DynamicGraph view
  /// (RECEIPT FD) and environment edge lists (RECEIPT-W fine step).
  InducedSubgraphArena subgraph_arena;
  /// Per-partition edge life-cycle states (wing fine step).
  std::vector<uint8_t> state_buffer;
  /// Per-partition membership flags (wing fine step: in-subset edges).
  std::vector<uint8_t> flag_buffer;
  /// Per-partition entity id scratch (wing fine step: environment ids).
  std::vector<EdgeOffset> id_buffer;
  /// Per-partition edge-id maps over the environment graph (wing fine
  /// step), rebuilt in place via BuildEdgeTopologyInto.
  EdgeTopology env_topo;
  /// Cursor scratch for BuildEdgeTopologyInto.
  std::vector<EdgeOffset> topo_cursor;

  /// Wedges traversed by kernels running on this workspace; folded by
  /// WorkspacePool::TotalWedges.
  uint64_t wedges_traversed = 0;

  /// Number of times a dense buffer actually grew. Stable once warm — the
  /// workspace-reuse tests assert no growth across rounds and partitions.
  /// Relaxed-atomic so a live /statz or /metrics scrape can read it while
  /// a request executes.
  util::RelaxedCounter growths;

  /// Grows wedge_count to cover ids [0, n), zero-filling new slots. Never
  /// shrinks, so alternating between a graph and its induced subgraphs
  /// costs nothing.
  void EnsureVertexCapacity(VertexId n) {
    if (wedge_count.size() < static_cast<size_t>(n)) {
      wedge_count.resize(n, 0);
      ++growths;
    }
  }

  /// Grows edge_mark to cover V-side ids [0, num_v), zero-filled.
  void EnsureMarkCapacity(VertexId num_v) {
    if (edge_mark.size() < static_cast<size_t>(num_v)) {
      edge_mark.resize(num_v, 0);
      ++growths;
    }
  }
};

// FrontierEpochs (the shared per-round claim bitmap) lives in
// engine/frontier_epochs.h so the SupportIndex can own an instance of its
// own without an include cycle through this header.

/// The per-decomposition set of workspaces, one per OpenMP thread.
/// Prepare() is idempotent: repeated calls with the same (or smaller) shape
/// do not allocate, which is what lets RECEIPT share one pool between
/// counting, CD rounds and every FD partition.
class WorkspacePool {
 public:
  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Ensures at least `num_threads` workspaces, each covering vertex ids
  /// [0, vertex_capacity) and, when mark_capacity > 0, V-side ids
  /// [0, mark_capacity).
  void Prepare(int num_threads, VertexId vertex_capacity,
               VertexId mark_capacity = 0);

  int num_workspaces() const { return static_cast<int>(workspaces_.size()); }
  PeelWorkspace& Get(int tid) { return workspaces_[static_cast<size_t>(tid)]; }
  /// Direct container access for ParallelForWithContext.
  std::vector<PeelWorkspace>& workspaces() { return workspaces_; }

  /// The pool-wide frontier claim bitmap (one decomposition runs per pool
  /// at a time, so a single shared instance suffices and its stamp array is
  /// reused across requests).
  FrontierEpochs& frontier_epochs() { return frontier_epochs_; }

  /// The pool-wide support histogram of the coarse decomposer (same
  /// single-decomposition-per-pool contract as the frontier bitmap); its
  /// buckets, member links and delta stamps are reused across requests, so
  /// index-driven coarse steps allocate nothing once warm.
  SupportIndex& support_index() { return support_index_; }

  /// Sum of per-workspace wedge counters (monotonic; callers take deltas).
  uint64_t TotalWedges() const;
  /// Sum of per-workspace buffer-growth events (allocation telemetry),
  /// including the workspace-resident extractors, subgraph arenas and the
  /// shared frontier bitmap.
  uint64_t TotalGrowths() const;

 private:
  std::vector<PeelWorkspace> workspaces_;
  FrontierEpochs frontier_epochs_;
  SupportIndex support_index_;
};

/// Pool resolution shared by every decomposition driver: run on the
/// caller-owned pool when one is supplied (service workers reusing scratch
/// across requests), otherwise on the driver's own local pool.
inline WorkspacePool& ResolvePool(WorkspacePool* caller_owned,
                                  WorkspacePool& local) {
  return caller_owned != nullptr ? *caller_owned : local;
}

}  // namespace receipt::engine

#endif  // RECEIPT_ENGINE_WORKSPACE_H_
