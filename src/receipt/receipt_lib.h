#ifndef RECEIPT_RECEIPT_RECEIPT_LIB_H_
#define RECEIPT_RECEIPT_RECEIPT_LIB_H_

/// Umbrella header for the RECEIPT library — everything a downstream user
/// needs for parallel tip decomposition of bipartite graphs:
///
///   BipartiteGraph      CSR bipartite graphs + IO + synthetic generators
///   CountButterflies    parallel per-vertex butterfly counting (Alg. 1)
///   BupDecompose        sequential bottom-up peeling baseline (Alg. 2)
///   ParbDecompose       parallel bottom-up peeling baseline (ParButterfly)
///   ReceiptDecompose    the RECEIPT two-step algorithm (Alg. 3 + Alg. 4)
///   ExtractKTips        k-tip hierarchy retrieval from tip numbers
///   WingDecompose       wing (edge) decomposition extension (§7)
///   ReceiptWingDecompose  parallel two-step wing decomposition (RECEIPT-W)
///   GraphRegistry / DecompositionService / ResultCache
///                       the serving layer: resident multi-graph registry,
///                       batched+coalesced request execution over pooled
///                       workspaces, LRU result caching
///   HttpServer / DecompositionHttpFrontend
///                       the network front-end: HTTP/1.1 + JSON endpoints
///                       over the serving layer (examples/receipt_cli.cpp
///                       `serve --http-port`)

#include "butterfly/approx_count.h"
#include "butterfly/butterfly_count.h"
#include "butterfly/wedge.h"
#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/induced_subgraph.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"
#include "service/service_types.h"
#include "tip/bup.h"
#include "tip/parb.h"
#include "tip/receipt.h"
#include "tip/tip_common.h"
#include "tip/tip_hierarchy.h"
#include "util/stats.h"
#include "util/types.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

#endif  // RECEIPT_RECEIPT_RECEIPT_LIB_H_
