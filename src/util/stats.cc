#include "util/stats.h"

#include <algorithm>
#include <sstream>

namespace receipt {

void PeelStats::Merge(const PeelStats& other) {
  wedges_counting += other.wedges_counting;
  wedges_cd += other.wedges_cd;
  wedges_fd += other.wedges_fd;
  wedges_other += other.wedges_other;
  sync_rounds += other.sync_rounds;
  peel_iterations += other.peel_iterations;
  huc_recounts += other.huc_recounts;
  dgm_compactions += other.dgm_compactions;
  frontier_rounds += other.frontier_rounds;
  scan_rounds += other.scan_rounds;
  index_build_rounds += other.index_build_rounds;
  scan_build_elements += other.scan_build_elements;
  frontier_build_elements += other.frontier_build_elements;
  index_active_elements += other.index_active_elements;
  active_scan_elements += other.active_scan_elements;
  bound_walk_buckets += other.bound_walk_buckets;
  histogram_refines += other.histogram_refines;
  init_patch_elements += other.init_patch_elements;
  index_rebuild_elements += other.index_rebuild_elements;
  incremental_replay_elements += other.incremental_replay_elements;
  incremental_ranges_reused += other.incremental_ranges_reused;
  incremental_ranges_repeeled += other.incremental_ranges_repeeled;
  // Cost gauges, not counters: keep the larger observation when folding.
  scan_cost_per_element = std::max(scan_cost_per_element,
                                   other.scan_cost_per_element);
  frontier_cost_per_element = std::max(frontier_cost_per_element,
                                       other.frontier_cost_per_element);
  placement_local_pops += other.placement_local_pops;
  placement_remote_steals += other.placement_remote_steals;
  // Plan-level gauges, not counters: keep the widest plan when folding.
  placement_nodes = std::max(placement_nodes, other.placement_nodes);
  makespan_predicted = std::max(makespan_predicted, other.makespan_predicted);
  makespan_measured = std::max(makespan_measured, other.makespan_measured);
  num_subsets += other.num_subsets;
  seconds_counting += other.seconds_counting;
  seconds_cd += other.seconds_cd;
  seconds_fd += other.seconds_fd;
  seconds_total += other.seconds_total;
}

std::string PeelStats::ToString() const {
  std::ostringstream os;
  os << "PeelStats{\n"
     << "  wedges: counting=" << wedges_counting << " cd=" << wedges_cd
     << " fd=" << wedges_fd << " other=" << wedges_other
     << " total=" << TotalWedges() << "\n"
     << "  sync_rounds=" << sync_rounds
     << " peel_iterations=" << peel_iterations << "\n"
     << "  huc_recounts=" << huc_recounts
     << " dgm_compactions=" << dgm_compactions
     << " num_subsets=" << num_subsets << "\n"
     << "  frontier_rounds=" << frontier_rounds
     << " scan_rounds=" << scan_rounds
     << " index_build_rounds=" << index_build_rounds << "\n"
     << "  scan_build_elements=" << scan_build_elements
     << " frontier_build_elements=" << frontier_build_elements
     << " index_active_elements=" << index_active_elements
     << " active_scan_elements=" << active_scan_elements << "\n"
     << "  placement: nodes=" << placement_nodes
     << " local_pops=" << placement_local_pops
     << " remote_steals=" << placement_remote_steals
     << " makespan_predicted=" << makespan_predicted
     << " makespan_measured=" << makespan_measured << "\n"
     << "  bound_walk_buckets=" << bound_walk_buckets
     << " histogram_refines=" << histogram_refines
     << " init_patch_elements=" << init_patch_elements
     << " index_rebuild_elements=" << index_rebuild_elements << "\n"
     << "  incremental: replay_elements=" << incremental_replay_elements
     << " ranges_reused=" << incremental_ranges_reused
     << " ranges_repeeled=" << incremental_ranges_repeeled << "\n"
     << "  seconds: counting=" << seconds_counting << " cd=" << seconds_cd
     << " fd=" << seconds_fd << " total=" << seconds_total << "\n"
     << "}";
  return os.str();
}

}  // namespace receipt
