#ifndef RECEIPT_UTIL_TIMER_H_
#define RECEIPT_UTIL_TIMER_H_

#include <chrono>

namespace receipt {

/// Simple wall-clock timer used to attribute execution time to the phases of
/// RECEIPT (pvBcnt / CD / FD, Figs. 8-9).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace receipt

#endif  // RECEIPT_UTIL_TIMER_H_
