#ifndef RECEIPT_UTIL_PARALLEL_H_
#define RECEIPT_UTIL_PARALLEL_H_

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace receipt {

/// Returns the number of OpenMP threads the next parallel region will use.
inline int MaxThreads() { return omp_get_max_threads(); }

/// Returns the calling thread's id inside a parallel region (0 outside).
inline int ThreadId() { return omp_get_thread_num(); }

/// Runs `fn(i)` for i in [0, n) across `num_threads` OpenMP threads with
/// dynamic scheduling (the workloads in this library are highly skewed, e.g.
/// wedge exploration per vertex, so static chunking load-balances poorly).
template <typename Fn>
void ParallelFor(size_t n, int num_threads, Fn&& fn) {
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64) num_threads(num_threads)
  for (size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

/// ParallelFor with a per-thread context object: `fn(ctx[tid], i)`. Used to
/// hand each thread its own wedge-aggregation scratch array (Alg. 1 line 5).
template <typename Ctx, typename Fn>
void ParallelForWithContext(size_t n, int num_threads, std::vector<Ctx>& ctxs,
                            Fn&& fn) {
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(ctxs[0], i);
    return;
  }
#pragma omp parallel num_threads(num_threads)
  {
    Ctx& ctx = ctxs[omp_get_thread_num()];
#pragma omp for schedule(dynamic, 64)
    for (size_t i = 0; i < n; ++i) {
      fn(ctx, i);
    }
  }
}

/// Atomically adds `delta` to `*target` (relaxed ordering; all support
/// counters in this library are reduced/validated after a barrier).
template <typename T>
inline void AtomicAdd(T* target, T delta) {
  reinterpret_cast<std::atomic<T>*>(target)->fetch_add(
      delta, std::memory_order_relaxed);
}

/// Atomically performs `*target = max(floor, *target - delta)` and returns the
/// new value. This is the clamped support-decrement of Alg. 2 line 13 /
/// Lemma 2: concurrent decrements from different peeled vertices must not be
/// lost, and support never drops below the floor (current tip number / range
/// lower bound).
template <typename T>
inline T AtomicClampedSub(T* target, T delta, T floor) {
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  T cur = a->load(std::memory_order_relaxed);
  while (true) {
    T next = (cur > floor + delta) ? cur - delta : floor;
    if (a->compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return next;
    }
  }
}

/// Atomically sets `*target = max(*target, value)`.
template <typename T>
inline void AtomicMax(T* target, T value) {
  auto* a = reinterpret_cast<std::atomic<T>*>(target);
  T cur = a->load(std::memory_order_relaxed);
  while (cur < value &&
         !a->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

/// Exclusive prefix sum over `values`, returning the total. values[i] becomes
/// the sum of the original values[0..i).
template <typename T>
T ExclusivePrefixSum(std::vector<T>& values) {
  T running = 0;
  for (auto& v : values) {
    T next = running + v;
    v = running;
    running = next;
  }
  return running;
}

/// Order-preserving parallel filter: fills `out` with make(i) for every
/// i ∈ [0, n) satisfying pred(i), in ascending i — bit-identical to the
/// sequential loop. Two passes over contiguous blocks (count, prefix-sum,
/// fill), so `pred` must be pure between the passes; every caller in this
/// library evaluates it on state that is frozen between peeling rounds
/// (liveness + support snapshots). Small inputs fall back to the sequential
/// loop: the fork/join overhead dwarfs the scan below a few thousand ids.
/// `offsets_scratch` (optional) supplies the per-block counter buffer so
/// repeated calls in a peeling loop stay allocation-free once warm.
template <typename T, typename Pred, typename Make>
void ParallelFilterInto(size_t n, int num_threads, std::vector<T>& out,
                        Pred&& pred, Make&& make,
                        std::vector<size_t>* offsets_scratch = nullptr) {
  out.clear();
  if (num_threads <= 1 || n < 4096) {
    for (size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(make(i));
    }
    return;
  }
  const size_t num_blocks = static_cast<size_t>(num_threads) * 4;
  const size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<size_t> local_offsets;
  std::vector<size_t>& offsets =
      offsets_scratch != nullptr ? *offsets_scratch : local_offsets;
  offsets.assign(num_blocks, 0);
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t lo = b * block;
    const size_t hi = lo + block < n ? lo + block : n;
    size_t count = 0;
    for (size_t i = lo; i < hi; ++i) count += pred(i) ? 1 : 0;
    offsets[b] = count;
  }
  const size_t total = ExclusivePrefixSum(offsets);
  out.resize(total);
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t lo = b * block;
    const size_t hi = lo + block < n ? lo + block : n;
    size_t pos = offsets[b];
    for (size_t i = lo; i < hi; ++i) {
      if (pred(i)) out[pos++] = make(i);
    }
  }
}

/// Deterministic parallel reduction: sums make(i) over i ∈ [0, n) with
/// per-block partial sums (static blocks) folded sequentially in block
/// order, so for associative element types (the engine sums integer peel
/// costs) the result is independent of thread count and schedule — the
/// property the coarse decomposer's bit-identicality guarantees rest on.
/// Small inputs run sequentially (fork/join overhead dwarfs the sum).
/// `partials_scratch` (optional) supplies the per-block buffer so repeated
/// calls in a peeling loop stay allocation-free once warm.
template <typename T, typename Make>
T ParallelReduceSum(size_t n, int num_threads, Make&& make,
                    std::vector<T>* partials_scratch = nullptr) {
  if (num_threads <= 1 || n < 4096) {
    T total{};
    for (size_t i = 0; i < n; ++i) total += make(i);
    return total;
  }
  const size_t num_blocks = static_cast<size_t>(num_threads) * 4;
  const size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<T> local_partials;
  std::vector<T>& partials =
      partials_scratch != nullptr ? *partials_scratch : local_partials;
  partials.assign(num_blocks, T{});
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t lo = b * block;
    const size_t hi = lo + block < n ? lo + block : n;
    T sum{};
    for (size_t i = lo; i < hi; ++i) sum += make(i);
    partials[b] = sum;
  }
  T total{};
  for (const T& sum : partials) total += sum;
  return total;
}

/// Deterministic parallel maximum of make(i) over i ∈ [0, n): same
/// block-partial scheme as ParallelReduceSum (max is associative and
/// commutative, so the fold order never matters). Small inputs run
/// sequentially.
template <typename T, typename Make>
T ParallelReduceMax(size_t n, int num_threads, Make&& make, T identity = T{}) {
  if (num_threads <= 1 || n < 4096) {
    T best = identity;
    for (size_t i = 0; i < n; ++i) best = std::max<T>(best, make(i));
    return best;
  }
  const size_t num_blocks = static_cast<size_t>(num_threads) * 4;
  const size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<T> partials(num_blocks, identity);
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t lo = b * block;
    const size_t hi = lo + block < n ? lo + block : n;
    T best = identity;
    for (size_t i = lo; i < hi; ++i) best = std::max<T>(best, make(i));
    partials[b] = best;
  }
  T best = identity;
  for (const T& candidate : partials) best = std::max<T>(best, candidate);
  return best;
}

/// A cache-line padded counter; one per thread, folded at the end of a phase.
/// Avoids false sharing on the hot wedge-traversal counters.
struct alignas(64) PaddedCounter {
  uint64_t value = 0;
};

/// A fixed-size set of per-thread counters with a fold operation.
class PerThreadCounters {
 public:
  explicit PerThreadCounters(int num_threads)
      : counters_(static_cast<size_t>(num_threads)) {}

  /// Adds `delta` to the calling thread's slice. Must be called with a thread
  /// id < num_threads used at construction.
  void Add(int tid, uint64_t delta) {
    counters_[static_cast<size_t>(tid)].value += delta;
  }

  /// Sums all per-thread slices.
  uint64_t Total() const {
    uint64_t total = 0;
    for (const auto& c : counters_) total += c.value;
    return total;
  }

 private:
  std::vector<PaddedCounter> counters_;
};

}  // namespace receipt

#endif  // RECEIPT_UTIL_PARALLEL_H_
