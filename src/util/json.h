#ifndef RECEIPT_UTIL_JSON_H_
#define RECEIPT_UTIL_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace receipt::util {

/// Appends `text` to *out as a JSON string literal (surrounding quotes
/// included, control characters and quote/backslash escaped).
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Streaming JSON writer over a growing string: comma placement and
/// key/value alternation are tracked by a small nesting stack, so callers
/// only state structure (Begin/End) and content (Key/scalars). Emits
/// compact single-line JSON. Shared by the HTTP front-end's response
/// bodies and bench_common's BENCH_*.json trajectory files — one escaping
/// and number-formatting implementation for every byte of JSON the repo
/// produces.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("status").String("ok").Key("n").Uint(3).EndObject();
///   send(w.str());
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Int(int64_t value);
  /// Non-finite doubles have no JSON representation; they are written as
  /// null rather than producing an unparseable document.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();  ///< comma bookkeeping shared by every value emitter

  std::string out_;
  /// One entry per open container: true while the next emission at this
  /// level needs a separating comma.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// A parsed JSON document: immutable tree of tagged values. Small,
/// dependency-free recursive-descent parser sized for the HTTP front-end's
/// request bodies (objects a few levels deep, numbers, strings) — not a
/// general high-throughput JSON library. Integers that fit int64/uint64
/// round-trip exactly (IsInt()); every number is also available as double.
class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses one JSON document (with nothing but whitespace after it).
  /// Returns nullopt and sets *error (when provided) on malformed input.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error = nullptr);

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  /// True for numbers written without fraction/exponent that fit int64
  /// (or uint64 — see AsUint).
  bool IsInt() const { return type_ == Type::kNumber && is_int_; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsObject() const { return type_ == Type::kObject; }
  bool IsArray() const { return type_ == Type::kArray; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return double_; }
  int64_t AsInt() const { return int_; }
  uint64_t AsUint() const { return uint_; }
  const std::string& AsString() const { return string_; }

  /// Array elements (empty unless IsArray).
  const std::vector<JsonValue>& Items() const { return items_; }
  /// Object members in document order (empty unless IsObject).
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object. Duplicate
  /// keys resolve to the first occurrence.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member accessors: true and *out set only when `key` is present
  /// with the matching type. GetInt additionally requires the value to be
  /// int64-representable (a member in (INT64_MAX, UINT64_MAX] fails
  /// instead of truncating — read it through Find + AsUint).
  bool GetString(std::string_view key, std::string* out) const;
  bool GetInt(std::string_view key, int64_t* out) const;
  bool GetBool(std::string_view key, bool* out) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  bool is_int_ = false;
  bool fits_int64_ = false;  ///< int_ is the exact value (not just uint_)
  double double_ = 0.0;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace receipt::util

#endif  // RECEIPT_UTIL_JSON_H_
