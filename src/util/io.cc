#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <utility>

namespace receipt::util::io {

namespace {

// Injection state. `g_armed` is the fast path: with no plan armed every
// hook is a single relaxed load. The rest lives behind a mutex because
// fault tests are about determinism, not throughput.
std::atomic<bool> g_armed{false};
std::atomic<bool> g_halted{false};

struct InjectionState {
  FaultPlan plan;
  uint64_t writes_seen = 0;
  uint64_t syncs_seen = 0;
  uint64_t renames_seen = 0;
  uint64_t crash_hits = 0;
};

std::mutex g_mu;
InjectionState g_state;

void FormatError(std::string* error, const char* op, const std::string& path,
                 int err) {
  if (error != nullptr) {
    *error = std::string(op) + " " + path + ": " + std::strerror(err);
  }
}

bool HaltedError(std::string* error, const char* op, const std::string& path) {
  if (g_halted.load(std::memory_order_relaxed)) {
    FormatError(error, op, path, EIO);
    return true;
  }
  return false;
}

// Returns the number of bytes WriteFully may write before failing with the
// plan's errno, or SIZE_MAX for "no injection on this call". When the
// failure fires with halt_on_write_failure, the shim halts.
size_t WriteBudget(size_t size) {
  if (!g_armed.load(std::memory_order_relaxed)) return SIZE_MAX;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_state.plan.fail_write_at == 0) return SIZE_MAX;
  if (++g_state.writes_seen != g_state.plan.fail_write_at) return SIZE_MAX;
  if (g_state.plan.halt_on_write_failure) {
    g_halted.store(true, std::memory_order_relaxed);
  }
  return std::min<size_t>(size, g_state.plan.short_write_bytes);
}

bool SyncShouldFail() {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_state.plan.fail_sync_at == 0) return false;
  return ++g_state.syncs_seen == g_state.plan.fail_sync_at;
}

bool RenameShouldFail() {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_state.plan.fail_rename_at == 0) return false;
  return ++g_state.renames_seen == g_state.plan.fail_rename_at;
}

int PlanErrno() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_state.plan.fail_errno;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

void SetFaultPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_state = InjectionState{};
  g_state.plan = plan;
  g_halted.store(false, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

void ClearFaultPlan() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_state = InjectionState{};
  g_armed.store(false, std::memory_order_relaxed);
  g_halted.store(false, std::memory_order_relaxed);
}

bool LoadFaultPlanFromEnv() {
  const char* raw = std::getenv("RECEIPT_FAULT_PLAN");
  if (raw == nullptr || raw[0] == '\0') {
    ClearFaultPlan();
    return true;
  }
  FaultPlan plan;
  std::string spec(raw);
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string directive = spec.substr(start, comma - start);
    start = comma + 1;
    if (directive.empty()) continue;
    size_t eq = directive.find('=');
    if (eq == std::string::npos) return false;
    std::string key = directive.substr(0, eq);
    std::string value = directive.substr(eq + 1);
    if (key == "crash-exit" || key == "crash-halt") {
      size_t colon = value.rfind(':');
      plan.crash_at = 1;
      if (colon != std::string::npos &&
          ParseU64(value.substr(colon + 1), &plan.crash_at)) {
        value = value.substr(0, colon);
      }
      if (value.empty() || plan.crash_at == 0) return false;
      plan.crash_site = value;
      plan.crash_exit = (key == "crash-exit");
    } else if (key == "fail-write") {
      // fail-write=<n>[:<short>[:halt]]
      size_t c1 = value.find(':');
      std::string n = value.substr(0, c1);
      if (!ParseU64(n, &plan.fail_write_at) || plan.fail_write_at == 0) {
        return false;
      }
      if (c1 != std::string::npos) {
        std::string rest = value.substr(c1 + 1);
        size_t c2 = rest.find(':');
        std::string short_part = rest.substr(0, c2);
        if (!ParseU64(short_part, &plan.short_write_bytes)) return false;
        if (c2 != std::string::npos) {
          if (rest.substr(c2 + 1) != "halt") return false;
          plan.halt_on_write_failure = true;
        }
      }
    } else if (key == "fail-sync") {
      if (!ParseU64(value, &plan.fail_sync_at) || plan.fail_sync_at == 0) {
        return false;
      }
    } else if (key == "fail-rename") {
      if (!ParseU64(value, &plan.fail_rename_at) || plan.fail_rename_at == 0) {
        return false;
      }
    } else {
      return false;
    }
  }
  SetFaultPlan(plan);
  return true;
}

bool Halted() { return g_halted.load(std::memory_order_relaxed); }

void CrashPoint(const char* site) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  bool exit_now = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_state.plan.crash_site.empty() || g_state.plan.crash_site != site) {
      return;
    }
    if (++g_state.crash_hits != g_state.plan.crash_at) return;
    if (g_state.plan.crash_exit) {
      exit_now = true;
    } else {
      g_halted.store(true, std::memory_order_relaxed);
    }
  }
  if (exit_now) {
    // SIGKILL's exit code, so harnesses treat hook crashes and real kills
    // alike. _exit: no atexit handlers, no flushing — this is a crash.
    _exit(137);
  }
}

File::~File() { Close(); }

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File File::OpenAppend(const std::string& path, std::string* error) {
  File file;
  if (HaltedError(error, "open", path)) return file;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    FormatError(error, "open", path, errno);
    return file;
  }
  file.fd_ = fd;
  file.path_ = path;
  return file;
}

File File::Create(const std::string& path, std::string* error) {
  File file;
  if (HaltedError(error, "create", path)) return file;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    FormatError(error, "create", path, errno);
    return file;
  }
  file.fd_ = fd;
  file.path_ = path;
  return file;
}

bool File::WriteFully(const void* data, size_t size, std::string* error) {
  if (fd_ < 0) {
    FormatError(error, "write", path_, EBADF);
    return false;
  }
  if (HaltedError(error, "write", path_)) return false;
  size_t budget = WriteBudget(size);
  bool inject = budget != SIZE_MAX;
  size_t limit = inject ? budget : size;
  const char* bytes = static_cast<const char*>(data);
  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd_, bytes + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      FormatError(error, "write", path_, errno);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  if (inject) {
    FormatError(error, "write", path_, PlanErrno());
    return false;
  }
  return true;
}

bool File::Sync(std::string* error) {
  if (fd_ < 0) {
    FormatError(error, "fsync", path_, EBADF);
    return false;
  }
  if (HaltedError(error, "fsync", path_)) return false;
  if (SyncShouldFail()) {
    FormatError(error, "fsync", path_, PlanErrno());
    return false;
  }
  if (::fsync(fd_) != 0) {
    FormatError(error, "fsync", path_, errno);
    return false;
  }
  return true;
}

bool File::Truncate(uint64_t size, std::string* error) {
  if (fd_ < 0) {
    FormatError(error, "ftruncate", path_, EBADF);
    return false;
  }
  if (HaltedError(error, "ftruncate", path_)) return false;
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    FormatError(error, "ftruncate", path_, errno);
    return false;
  }
  return true;
}

uint64_t File::Size() const {
  if (fd_ < 0) return 0;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

void File::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    FormatError(error, "open", path, errno);
    return false;
  }
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      FormatError(error, "read", path, errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

bool AtomicRename(const std::string& from, const std::string& to,
                  std::string* error) {
  if (HaltedError(error, "rename", from)) return false;
  if (RenameShouldFail()) {
    FormatError(error, "rename", from, PlanErrno());
    return false;
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    FormatError(error, "rename", from, errno);
    return false;
  }
  return true;
}

bool SyncDir(const std::string& dir, std::string* error) {
  if (HaltedError(error, "fsync-dir", dir)) return false;
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    FormatError(error, "open-dir", dir, errno);
    return false;
  }
  bool ok = ::fsync(fd) == 0;
  if (!ok) FormatError(error, "fsync-dir", dir, errno);
  ::close(fd);
  return ok;
}

bool EnsureDir(const std::string& path, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "mkdir " + path + ": " + ec.message();
    }
    return false;
  }
  return true;
}

std::vector<std::string> ListDir(const std::string& dir, std::string* error) {
  std::vector<std::string> names;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) return names;
    if (error != nullptr) {
      *error = "listdir " + dir + ": " + ec.message();
    }
    return names;
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool RemoveFile(const std::string& path, std::string* error) {
  if (HaltedError(error, "unlink", path)) return false;
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    FormatError(error, "unlink", path, errno);
    return false;
  }
  return true;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool TruncateFile(const std::string& path, uint64_t size, std::string* error) {
  if (HaltedError(error, "truncate", path)) return false;
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    FormatError(error, "truncate", path, errno);
    return false;
  }
  return true;
}

}  // namespace receipt::util::io
