#ifndef RECEIPT_UTIL_RELAXED_COUNTER_H_
#define RECEIPT_UTIL_RELAXED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace receipt::util {

/// A monotonically-growing event counter whose writers never contend on a
/// lock and whose readers may sample it from any thread at any time.
///
/// The engine's growth counters (workspace arenas, SupportIndex storage,
/// frontier epochs) used to be plain uint64_t: cheap to bump from the one
/// thread that owns the workspace, but undefined behaviour to read while a
/// request executes — which is exactly what a live /statz or /metrics
/// scrape does. This wrapper keeps the single-writer bump as one relaxed
/// fetch_add (no fence on x86/ARM beyond the RMW itself) and makes the
/// cross-thread read well-defined. Relaxed ordering is sufficient: each
/// counter is an independent statistic, never used to publish other data.
///
/// Unlike std::atomic, it is copyable (a copy snapshots the value), so
/// structs holding one remain vector-resizable, and it converts implicitly
/// to uint64_t so existing call sites — `uint64_t warm = arena.growths;`,
/// `total += ws.growths;` — compile unchanged.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t value) : value_(value) {}  // NOLINT: implicit
  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    store(other.load());
    return *this;
  }
  RelaxedCounter& operator=(uint64_t value) {
    store(value);
    return *this;
  }

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return load(); }  // NOLINT: implicit
  uint64_t load() const { return value_.load(std::memory_order_relaxed); }
  void store(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace receipt::util

#endif  // RECEIPT_UTIL_RELAXED_COUNTER_H_
