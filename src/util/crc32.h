#ifndef RECEIPT_UTIL_CRC32_H_
#define RECEIPT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace receipt::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// Chainable: pass a previous call's return value as `seed` to extend the
/// checksum over discontiguous buffers. Crc32(data, n) of the standard
/// check input "123456789" is 0xCBF43926, which the durability suite
/// asserts so the journal framing stays wire-compatible across refactors.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace receipt::util

#endif  // RECEIPT_UTIL_CRC32_H_
