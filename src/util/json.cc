#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace receipt::util {

void AppendJsonEscaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  BeforeValue();
  AppendJsonEscaped(&out_, key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonEscaped(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::GetString(std::string_view key, std::string* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->IsString()) return false;
  *out = value->AsString();
  return true;
}

bool JsonValue::GetInt(std::string_view key, int64_t* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->IsInt() || !value->fits_int64_) {
    return false;
  }
  *out = value->AsInt();
  return true;
}

bool JsonValue::GetBool(std::string_view key, bool* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->IsBool()) return false;
  *out = value->AsBool();
  return true;
}

/// Single-pass recursive-descent parser over a string_view. Depth-limited
/// so a hostile body ("[[[[…") cannot blow the handler thread's stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out, std::string* error) {
    if (!ParseValue(out, 0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters after JSON value at offset " +
                 std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& message) {
    error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("invalid literal");
        out->type_ = JsonValue::Type::kNull;
        return true;
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool AppendCodePoint(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
    return true;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code_point = 0;
          if (!ParseHex4(&code_point)) return false;
          // Surrogates are only meaningful as a high+low pair; a lone one
          // would encode to invalid UTF-8 that strict consumers (e.g.
          // python's json) reject, so fail instead of emitting WTF-8.
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid surrogate pair");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendCodePoint(code_point, out);
          break;
        }
        default: return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    bool integral = true;
    if (Consume('-')) {}
    const size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == int_start) return Fail("invalid number");
    // RFC 8259: no leading zeros ("007" is not a JSON number).
    if (text_[int_start] == '0' && pos_ > int_start + 1) {
      return Fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      const size_t frac_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_start) return Fail("invalid number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp_start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_start) return Fail("invalid number");
    }

    const std::string token(text_.substr(start, pos_ - start));
    out->type_ = JsonValue::Type::kNumber;
    out->double_ = std::strtod(token.c_str(), nullptr);
    if (integral) {
      // Exact integer forms: int64 via strtoll, and additionally uint64 for
      // non-negative values up to 2^64-1 (tip numbers can exceed int64-safe
      // doubles; counters round-trip through AsUint exactly). A value in
      // (INT64_MAX, UINT64_MAX] is IsInt() but not fits_int64_, so GetInt
      // fails rather than silently handing back a truncated value.
      errno = 0;
      const long long as_int = std::strtoll(token.c_str(), nullptr, 10);
      if (errno == 0) {
        out->is_int_ = true;
        out->fits_int64_ = true;
        out->int_ = as_int;
        out->uint_ = as_int < 0 ? 0 : static_cast<uint64_t>(as_int);
      }
      if (token[0] != '-') {
        errno = 0;
        const unsigned long long as_uint =
            std::strtoull(token.c_str(), nullptr, 10);
        if (errno == 0) {
          out->is_int_ = true;
          out->uint_ = as_uint;
        }
      }
    }
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> JsonValue::Parse(std::string_view text,
                                          std::string* error) {
  JsonValue value;
  JsonParser parser(text);
  if (!parser.ParseDocument(&value, error)) return std::nullopt;
  return value;
}

}  // namespace receipt::util
