#ifndef RECEIPT_UTIL_TYPES_H_
#define RECEIPT_UTIL_TYPES_H_

#include <cstdint>

namespace receipt {

/// Vertex identifier. The combined vertex space W = U ∪ V is addressed with a
/// single 32-bit id: U occupies [0, num_u) and V occupies [num_u, num_u+num_v).
using VertexId = uint32_t;

/// Edge-array offset. 64-bit so graphs with more than 4B directed edge slots
/// (each undirected edge is stored twice in the CSR) remain addressable.
using EdgeOffset = uint64_t;

/// Butterfly/support/tip-number count. Tip numbers in the paper reach 3×10^12
/// (Table 2), so counts must be 64-bit.
using Count = uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Sentinel for "no count / unassigned tip number".
inline constexpr Count kInvalidCount = static_cast<Count>(-1);

/// Which side of the bipartition an algorithm peels (decomposes).
enum class Side {
  kU,  ///< peel the U vertex set (ids [0, num_u))
  kV,  ///< peel the V vertex set (ids [num_u, num_u + num_v))
};

/// Returns "U" or "V"; used when labelling datasets, e.g. "TrU" vs "TrV".
inline const char* SideName(Side side) { return side == Side::kU ? "U" : "V"; }

/// n choose 2 without overflow for the magnitudes we care about.
inline constexpr Count Choose2(Count n) { return n < 2 ? 0 : n * (n - 1) / 2; }

/// Default frontier-density threshold for range peeling (Julienne-style
/// direction optimization): while the round's frontier holds fewer than
/// this fraction of the remaining alive entities, the next active set is
/// built by merging workspace frontiers; at or above it, the engine falls
/// back to a full parallel scan. Values ≤ 0 force scan-only rebuilds;
/// values > 1 force frontier-only rebuilds. Both directions are
/// bit-identical — the knob trades sparse-list handling against dense
/// sequential scans. Defined here (the leaf header) so both the engine and
/// the driver option structs share one default.
inline constexpr double kDefaultFrontierDensity = 0.2;

/// How range peeling picks the active-set rebuild direction each round.
/// Both strategies produce bit-identical decompositions — they only trade
/// rebuild cost — so the switch is safe to flip per run.
enum class FrontierSwitch {
  /// Fixed fraction rule: merge frontiers while the round's frontier holds
  /// fewer than frontier_density_threshold × (remaining alive) entities.
  /// Deterministic round counters across repeated runs.
  kFixedDensity,
  /// Adaptive rule: compare the measured per-element rebuild cost of the
  /// two directions (EWMAs over this run's observed rebuilds) and take the
  /// cheaper predicted side; falls back to the density rule until both
  /// directions have been sampled. Round counters become timing-dependent,
  /// results never do.
  kMeasuredCost,
};

}  // namespace receipt

#endif  // RECEIPT_UTIL_TYPES_H_
