#ifndef RECEIPT_UTIL_STATS_H_
#define RECEIPT_UTIL_STATS_H_

#include <cstdint>
#include <string>

namespace receipt {

/// Instrumentation counters reported by every decomposition algorithm.
///
/// These are exactly the quantities the paper evaluates: wedges traversed (Ó,
/// Table 3 / Figs. 6 & 8), synchronization rounds (ρ, Table 3), and per-phase
/// wall-clock time (Figs. 7 & 9). Counting a "wedge traversed" means one
/// execution of the innermost loop body in Alg. 1 (counting) or Alg. 2
/// (peeling update).
struct PeelStats {
  // -- wedge traversal, by phase ------------------------------------------
  uint64_t wedges_counting = 0;   ///< pvBcnt wedges (initial support init).
  uint64_t wedges_cd = 0;         ///< wedges traversed while peeling in CD
                                  ///  (includes HUC re-count traversals).
  uint64_t wedges_fd = 0;         ///< wedges traversed in FD (induced graphs,
                                  ///  includes subgraph-local counting).
  uint64_t wedges_other = 0;      ///< wedges traversed by baselines (BUP/ParB
                                  ///  peeling phase).

  // -- synchronization ----------------------------------------------------
  /// Number of peeling rounds that end in a thread barrier. For ParB this is
  /// one per minimum-support iteration; for RECEIPT CD one per range-peeling
  /// iteration. RECEIPT FD contributes 0 (threads only join once at the end).
  uint64_t sync_rounds = 0;

  /// Total peeling iterations (same as sync_rounds for parallel algorithms;
  /// for sequential BUP it is the number of vertices peeled).
  uint64_t peel_iterations = 0;

  // -- optimization activity ----------------------------------------------
  uint64_t huc_recounts = 0;      ///< # iterations where HUC chose re-count.
  uint64_t dgm_compactions = 0;   ///< # dynamic-graph compaction passes.

  // -- frontier scheduling: what ran ---------------------------------------
  // Per-direction build counts and elements examined. These report the
  // work that actually executed; the EWMA gauges further down report what
  // each element cost. Keeping the two groups separate is what lets the
  // measured-cost switch be the default without muddying the "what ran"
  // counters the equivalence suites and bench gates assert on.
  /// Active-set builds served by merging the workspace frontier buffers
  /// (sparse direction: cost proportional to the frontier, not to n).
  uint64_t frontier_rounds = 0;
  /// Active-set builds that ran as full parallel scans — every
  /// post-re-count rebuild and dense-frontier fallback, plus (scan
  /// fallback only) the first build of every range.
  uint64_t scan_rounds = 0;
  /// Active-set builds collected from SupportIndex member lists instead of
  /// an O(n) scan — the first build of every range and every post-re-count
  /// rebuild on the indexed path.
  uint64_t index_build_rounds = 0;
  /// Entities examined by full-scan builds (n per scan round).
  uint64_t scan_build_elements = 0;
  /// Entities examined by frontier-merge builds (merged frontier sizes).
  uint64_t frontier_build_elements = 0;
  /// Entities examined by index-built builds (in-range histogram members,
  /// including the crossing bucket's filtered members).
  uint64_t index_active_elements = 0;
  /// Total entities examined across scan and frontier builds — the
  /// quantity the direction optimization minimizes (bench_frontier_micro
  /// reports it). Always scan_build_elements + frontier_build_elements.
  uint64_t active_scan_elements = 0;

  // -- output-sensitive coarse index (SupportIndex) ------------------------
  /// Histogram buckets (summary groups + leaf buckets) examined by the
  /// range-bound prefix walks that replace the per-range sort.
  uint64_t bound_walk_buckets = 0;
  /// Bucket members examined by in-bucket refines (resolving the exact
  /// crossing support inside the bucket the prefix walk stopped at).
  uint64_t histogram_refines = 0;
  /// Entities examined while patching ⊲⊳init at range boundaries: the
  /// changed-since-last-boundary list per patch, or n when a HUC re-count
  /// forced the full-snapshot fallback.
  uint64_t init_patch_elements = 0;
  /// Entities re-inserted by full SupportIndex rebuilds (the one up-front
  /// build plus one per HUC re-count, which invalidates delta tracking).
  uint64_t index_rebuild_elements = 0;

  // -- incremental coarse pass (live-update serving) ------------------------
  /// Entities touched while *replaying* clean ranges from the sealed
  /// baseline (subset members killed without wedge traversal + patch-log
  /// entries re-applied). This is the incremental path's whole cost for a
  /// reused range, so the bench gate counts it against the full run's
  /// wedge + build work.
  uint64_t incremental_replay_elements = 0;
  /// Ranges the incremental pass reused verbatim from the sealed result.
  uint64_t incremental_ranges_reused = 0;
  /// Ranges the incremental pass re-peeled (dirty bucket membership, or
  /// desynced after an earlier divergence).
  uint64_t incremental_ranges_repeeled = 0;

  // -- frontier scheduling: what it cost -----------------------------------
  // EWMA gauges backing the kMeasuredCost direction switch (the default).
  // Timing-dependent by nature — never asserted for determinism.
  /// EWMA seconds per examined element of full-scan active-set rebuilds,
  /// as last observed by the run (0 while unsampled).
  double scan_cost_per_element = 0.0;
  /// EWMA seconds per examined element of frontier-merge rebuilds, as last
  /// observed by the run (0 while unsampled).
  double frontier_cost_per_element = 0.0;

  // -- placement & scheduling (cost-model-driven FD / service) -------------
  /// Nodes the placement plan spanned (gauge: Merge keeps the max).
  uint64_t placement_nodes = 0;
  /// FD tasks a worker popped from its own node's queue.
  uint64_t placement_local_pops = 0;
  /// FD tasks a worker stole from another node's queue (same-node-first
  /// stealing makes this the cross-node traffic counter).
  uint64_t placement_remote_steals = 0;
  /// Predicted makespan of the placement plan: the largest per-node sum of
  /// predicted partition costs (gauge: Merge keeps the max).
  uint64_t makespan_predicted = 0;
  /// Measured makespan in deterministic work units: the largest per-node
  /// sum of wedges actually traversed peeling the partitions *assigned* to
  /// that node (attribution follows the plan, not the stealing thread, so
  /// the gauge is schedule-independent; gauge: Merge keeps the max).
  uint64_t makespan_measured = 0;

  // -- structure ----------------------------------------------------------
  uint64_t num_subsets = 0;       ///< P actually produced by RECEIPT CD.

  // -- time, seconds ------------------------------------------------------
  double seconds_counting = 0.0;  ///< pvBcnt.
  double seconds_cd = 0.0;        ///< RECEIPT CD peeling.
  double seconds_fd = 0.0;        ///< RECEIPT FD.
  double seconds_total = 0.0;     ///< whole decomposition.

  /// Sum of all wedge counters.
  uint64_t TotalWedges() const {
    return wedges_counting + wedges_cd + wedges_fd + wedges_other;
  }

  /// Accumulates `other` into this object (used to fold per-thread stats).
  void Merge(const PeelStats& other);

  /// Human-readable one-object dump (multi-line) for logs and examples.
  std::string ToString() const;
};

}  // namespace receipt

#endif  // RECEIPT_UTIL_STATS_H_
