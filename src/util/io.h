#ifndef RECEIPT_UTIL_IO_H_
#define RECEIPT_UTIL_IO_H_

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace receipt::util::io {

// ---------------------------------------------------------------------------
// Fault injection. Every filesystem primitive below consults one global
// plan, so the durability layer's failure handling can be *proven* against
// injected EIO, torn writes, and crashes at named sites instead of hoped
// correct. The plan is armed either programmatically (tests) or through the
// RECEIPT_FAULT_PLAN environment variable (child-process harnesses, the CI
// crash smoke).
// ---------------------------------------------------------------------------

/// A deterministic fault-injection plan. Counters are 1-based and global
/// across all files: `fail_write_at = 3` fails the third WriteFully call
/// issued anywhere in the process after the plan was armed.
struct FaultPlan {
  /// Fail the Nth WriteFully with `fail_errno` after writing only
  /// `short_write_bytes` of the buffer (0 = fail before writing anything —
  /// a clean EIO; nonzero = a torn write). 0 disables.
  uint64_t fail_write_at = 0;
  uint64_t short_write_bytes = 0;
  /// When true, an injected write failure also halts the shim (see
  /// `crash_site`): the torn bytes stay on disk because even the caller's
  /// cleanup truncate fails — the torn-tail recovery scenario.
  bool halt_on_write_failure = false;

  /// Fail the Nth Sync call. 0 disables.
  uint64_t fail_sync_at = 0;

  /// Fail the Nth AtomicRename call. 0 disables.
  uint64_t fail_rename_at = 0;

  int fail_errno = EIO;

  /// Crash-point hook: when CrashPoint(`crash_site`) is reached for the
  /// `crash_at`th time, either _exit(137) immediately (`crash_exit`, for
  /// forked child processes) or *halt* the shim — every subsequent
  /// primitive fails with EIO, exactly the disk state a real crash at that
  /// site would leave behind, without killing the test process.
  std::string crash_site;
  uint64_t crash_at = 1;
  bool crash_exit = false;
};

/// Arms `plan` and resets all injection counters. Thread-safe.
void SetFaultPlan(const FaultPlan& plan);

/// Disarms injection (including a halted shim) and resets counters.
void ClearFaultPlan();

/// Arms the plan described by the RECEIPT_FAULT_PLAN environment variable,
/// a comma-separated list of directives:
///   crash-exit=<site>:<n>   _exit(137) at the nth hit of <site>
///   crash-halt=<site>:<n>   halt the shim at the nth hit of <site>
///   fail-write=<n>[:<short>[:halt]]   fail the nth write (torn by <short>)
///   fail-sync=<n>           fail the nth fsync
///   fail-rename=<n>         fail the nth rename
/// Unset or empty disarms. Returns false on a malformed value.
bool LoadFaultPlanFromEnv();

/// True once a crash-halt site (or halting write failure) has tripped:
/// every shim primitive now fails with EIO.
bool Halted();

/// Named crash-point hook. Durability code calls this between the IO
/// operations whose ordering it stakes correctness on (e.g.
/// "journal.append.pre-fsync", "snapshot.rename"); with no armed plan it is
/// one relaxed atomic load.
void CrashPoint(const char* site);

// ---------------------------------------------------------------------------
// File shim: thin RAII wrappers over POSIX fds with full-write/EINTR
// handling and the injection hooks above. All functions set *error (when
// provided) to "<op> <path>: <strerror>" on failure.
// ---------------------------------------------------------------------------

/// A writable file. Move-only; the destructor closes without syncing.
class File {
 public:
  File() = default;
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;

  /// Opens for appending, creating the file if needed.
  static File OpenAppend(const std::string& path, std::string* error);
  /// Creates (or truncates) for writing.
  static File Create(const std::string& path, std::string* error);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Writes all `size` bytes, looping on EINTR and partial writes.
  bool WriteFully(const void* data, size_t size, std::string* error);
  /// fsync().
  bool Sync(std::string* error);
  /// ftruncate() to `size` bytes.
  bool Truncate(uint64_t size, std::string* error);
  /// Current size in bytes (0 on error).
  uint64_t Size() const;

  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Reads the whole file into *out. Not injection-counted (recovery must be
/// able to read whatever the crash left).
bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error);

/// rename(), injection-counted — the atomic-install primitive snapshots
/// stake their all-or-nothing guarantee on.
bool AtomicRename(const std::string& from, const std::string& to,
                  std::string* error);

/// fsync() on a directory, making renames/creates/unlinks inside durable.
bool SyncDir(const std::string& dir, std::string* error);

/// mkdir -p. Existing directories are fine.
bool EnsureDir(const std::string& path, std::string* error);

/// Regular-file names inside `dir`, sorted. Missing dir = empty list.
std::vector<std::string> ListDir(const std::string& dir, std::string* error);

bool RemoveFile(const std::string& path, std::string* error);

bool FileExists(const std::string& path);

/// ftruncate via path (recovery's torn-tail cut).
bool TruncateFile(const std::string& path, uint64_t size, std::string* error);

}  // namespace receipt::util::io

#endif  // RECEIPT_UTIL_IO_H_
