#include "tip/parb.h"

#include <numeric>
#include <utility>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/dynamic_graph.h"
#include "tip/bucket.h"
#include "tip/peel_update.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {
namespace {

/// Per-thread buffer of (vertex, new_support) updates produced in one round,
/// consumed for re-bucketing after the barrier.
struct RoundBuffer {
  std::vector<std::pair<VertexId, Count>> updates;
  UpdateScratch scratch;
};

}  // namespace

TipResult ParbDecompose(const BipartiteGraph& graph,
                        const TipOptions& options) {
  const WallTimer total_timer;
  const BipartiteGraph swapped =
      options.side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = options.side == Side::kV ? swapped : graph;
  const int num_threads = options.num_threads;

  TipResult result;
  result.tip_numbers.assign(g.num_u(), 0);

  DynamicGraph live(g, g.DegreeDescendingRanks());

  WallTimer count_timer;
  std::vector<Count> support(g.num_vertices(), 0);
  PerVertexButterflyCount(live, num_threads, support,
                          &result.stats.wedges_counting);
  result.stats.seconds_counting = count_timer.Seconds();

  std::vector<VertexId> all_u(g.num_u());
  std::iota(all_u.begin(), all_u.end(), 0);
  BucketQueue queue(support, all_u, /*window=*/128);

  std::vector<RoundBuffer> buffers(static_cast<size_t>(num_threads));
  for (auto& b : buffers) b.scratch.Resize(g.num_vertices());
  PerThreadCounters wedge_counters(num_threads);

  while (auto round = queue.PopMin()) {
    const auto& [theta, peel_set] = *round;
    ++result.stats.sync_rounds;
    ++result.stats.peel_iterations;

    // Delete the whole round's set first so concurrent updates never flow
    // between two vertices peeled in the same round (Lemma 2, case 3).
    for (const VertexId u : peel_set) {
      result.tip_numbers[u] = theta;
      live.Kill(u);
    }

    ParallelForWithContext(
        peel_set.size(), num_threads, buffers,
        [&](RoundBuffer& buf, size_t i) {
          const VertexId u = peel_set[i];
          const uint64_t wedges = PeelUpdate</*kAtomic=*/true>(
              live, u, theta, support, buf.scratch,
              [&buf](VertexId u2, Count new_support) {
                buf.updates.emplace_back(u2, new_support);
              });
          wedge_counters.Add(ThreadId(), wedges);
        });

    // Re-bucket touched vertices (sequential; BucketQueue::Update dedups
    // repeated updates that landed on the same key).
    for (auto& buf : buffers) {
      for (const auto& [vertex, ignored] : buf.updates) {
        if (live.IsAlive(vertex)) queue.Update(vertex, support[vertex]);
      }
      buf.updates.clear();
    }
  }

  result.stats.wedges_other = wedge_counters.Total();
  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
