#include "tip/parb.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "engine/bucket.h"
#include "engine/counting.h"
#include "engine/peel_engine.h"
#include "graph/dynamic_graph.h"
#include "util/timer.h"

namespace receipt {

TipResult ParbDecompose(const BipartiteGraph& graph,
                        const TipOptions& options) {
  const WallTimer total_timer;
  const BipartiteGraph swapped =
      options.side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = options.side == Side::kV ? swapped : graph;
  const int num_threads = options.num_threads;

  TipResult result;
  result.tip_numbers.assign(g.num_u(), 0);

  DynamicGraph live(g, g.DegreeDescendingRanks());
  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);
  pool.Prepare(std::max(1, num_threads), g.num_vertices());

  WallTimer count_timer;
  std::vector<Count> support(g.num_vertices(), 0);
  result.stats.wedges_counting =
      engine::CountVertexButterflies(live, pool, num_threads, support);
  result.stats.seconds_counting = count_timer.Seconds();

  std::vector<VertexId> all_u(g.num_u());
  std::iota(all_u.begin(), all_u.end(), 0);
  BucketQueue queue(support, all_u, /*window=*/128);

  while (auto round = queue.PopMin()) {
    if (options.control != nullptr && options.control->Cancelled()) break;
    const auto& [theta, peel_set] = *round;
    ++result.stats.sync_rounds;
    ++result.stats.peel_iterations;

    // Delete the whole round's set first so concurrent updates never flow
    // between two vertices peeled in the same round (Lemma 2, case 3).
    for (const VertexId u : peel_set) {
      result.tip_numbers[u] = theta;
      live.Kill(u);
    }
    if (options.control != nullptr) {
      options.control->ReportPeeled(peel_set.size());
    }

    result.stats.wedges_other += engine::ParallelPeelRound(
        live, peel_set, theta, support, pool, num_threads,
        [](engine::PeelWorkspace& ws, VertexId u2, Count new_support) {
          ws.updates.emplace_back(u2, new_support);
        });

    // Re-bucket touched vertices (sequential; BucketQueue::Update dedups
    // repeated updates that landed on the same key).
    for (engine::PeelWorkspace& ws : pool.workspaces()) {
      for (const auto& [vertex, ignored] : ws.updates) {
        const VertexId v = static_cast<VertexId>(vertex);
        if (live.IsAlive(v)) queue.Update(v, support[v]);
      }
      ws.updates.clear();
    }
  }

  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
