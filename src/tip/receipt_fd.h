#ifndef RECEIPT_TIP_RECEIPT_FD_H_
#define RECEIPT_TIP_RECEIPT_FD_H_

#include <span>
#include <vector>

#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "tip/receipt_cd.h"
#include "tip/tip_common.h"
#include "util/stats.h"

namespace receipt {

/// Number of wedges with both endpoints in each subset — Σ_v C(c_{v,i}, 2)
/// where c_{v,i} = |N(v) ∩ U_i|. This is the induced-subgraph workload proxy
/// used to order the FD task queue (Longest-Processing-Time rule, §3.2.1).
std::vector<Count> ComputeSubsetWedgeCounts(const BipartiteGraph& graph,
                                            std::span<const uint32_t> subset_of,
                                            uint32_t num_subsets,
                                            int num_threads);

/// RECEIPT FD (Alg. 4): computes exact tip numbers by peeling each CD subset
/// independently. Subsets are placed onto nodes up front by the cost-model
/// plan (LPT over cd.predicted_costs when workload_aware_scheduling is on,
/// round-robin otherwise — see TipOptions::fd_assignment /
/// placement_nodes / pin_numa); worker threads then pop from their own
/// node's queue first and steal from other nodes' queues only when theirs
/// runs dry, so hot task state stays node-local. Each popped subset is
/// peeled whole: build the induced subgraph, initialize supports from
/// ⊲⊳init, run the engine's sequential bottom-up peeler with a k-way
/// min-heap. No thread synchronization occurs until the final join, so FD
/// adds 0 to sync_rounds. Placement, pinning and steal order never change
/// results — subsets are independent — only the placement counters.
///
/// Falls back to the legacy induced wedge-count pass
/// (ComputeSubsetWedgeCounts) when `cd` carries no predicted costs.
///
/// Honours options.use_huc (re-count within the induced subgraph plus the
/// fixed external contribution ⊲⊳init − ⊲⊳in_G_i, §4.1) and options.use_dgm.
///
/// Writes θ_u into tip_numbers[u] (side-local ids of `graph`, which must be
/// oriented with the peeled side as U — same orientation given to ReceiptCd).
void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, std::span<Count> tip_numbers,
               PeelStats* stats);

/// Pool-sharing overload: each worker thread peels its subsets with its own
/// workspace from `pool`, so successive partitions reuse the same scratch.
void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, engine::WorkspacePool& pool,
               std::span<Count> tip_numbers, PeelStats* stats);

/// Selective overload for the incremental serving path: peels only the
/// subsets with `only_subsets[sid] != 0` (an empty span means all), leaving
/// every other entry of `tip_numbers` untouched — the caller reuses the
/// sealed numbers for clean subsets. Subset independence makes the peeled
/// subsets' numbers bit-identical to a full FD pass.
void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, engine::WorkspacePool& pool,
               std::span<Count> tip_numbers, PeelStats* stats,
               std::span<const uint8_t> only_subsets);

}  // namespace receipt

#endif  // RECEIPT_TIP_RECEIPT_FD_H_
