#include "tip/tip_hierarchy.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "graph/induced_subgraph.h"

namespace receipt {
namespace {

/// Minimal union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<KTip> ExtractKTips(const BipartiteGraph& graph, Side side,
                               std::span<const Count> tip_numbers, Count k) {
  const BipartiteGraph swapped =
      side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = side == Side::kV ? swapped : graph;

  std::vector<VertexId> members;
  for (VertexId u = 0; u < g.num_u(); ++u) {
    if (tip_numbers[u] >= k) members.push_back(u);
  }
  if (members.empty()) return {};

  const InducedSubgraph induced = BuildInducedSubgraph(g, members);
  const BipartiteGraph& sg = induced.graph;

  // Union vertices sharing at least one butterfly (≥ 2 common neighbors).
  UnionFind components(members.size());
  std::vector<uint32_t> wedge_count(sg.num_u(), 0);
  std::vector<VertexId> touched;
  for (VertexId lu = 0; lu < sg.num_u(); ++lu) {
    touched.clear();
    for (const VertexId lv : sg.Neighbors(lu)) {
      for (const VertexId lu2 : sg.Neighbors(lv)) {
        if (lu2 == lu) continue;
        if (wedge_count[lu2]++ == 0) touched.push_back(lu2);
      }
    }
    for (const VertexId lu2 : touched) {
      if (wedge_count[lu2] >= 2) components.Union(lu, lu2);
      wedge_count[lu2] = 0;
    }
  }

  std::map<size_t, KTip> by_root;
  for (size_t i = 0; i < members.size(); ++i) {
    by_root[components.Find(i)].vertices.push_back(members[i]);
  }
  std::vector<KTip> tips;
  tips.reserve(by_root.size());
  for (auto& [root, tip] : by_root) {
    std::sort(tip.vertices.begin(), tip.vertices.end());
    tips.push_back(std::move(tip));
  }
  std::stable_sort(tips.begin(), tips.end(),
                   [](const KTip& a, const KTip& b) {
                     return a.vertices.size() > b.vertices.size();
                   });
  return tips;
}

std::vector<std::pair<Count, uint64_t>> TipHistogram(
    std::span<const Count> tip_numbers) {
  std::map<Count, uint64_t> histogram;
  for (const Count t : tip_numbers) ++histogram[t];
  return {histogram.begin(), histogram.end()};
}

}  // namespace receipt
