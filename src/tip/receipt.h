#ifndef RECEIPT_TIP_RECEIPT_H_
#define RECEIPT_TIP_RECEIPT_H_

#include "graph/bipartite_graph.h"
#include "tip/tip_common.h"

namespace receipt {

/// RECEIPT — REfine CoarsE-grained IndePendent Tasks (§3): the paper's
/// two-step parallel tip decomposition.
///
/// Step 1 (Coarse-grained Decomposition) partitions the peeled side into
/// ≤ P+1 subsets with non-overlapping tip-number ranges by concurrently
/// peeling *all* vertices whose support lies in the current range; step 2
/// (Fine-grained Decomposition) peels each subset's induced subgraph
/// independently — subsets in parallel, each sequentially — to obtain exact
/// tip numbers. Both the Hybrid Update Computation and Dynamic Graph
/// Maintenance optimizations (§4) are on by default; disable them through
/// `options` to reproduce the paper's RECEIPT- / RECEIPT-- ablations.
///
/// The result's tip_numbers are indexed by side-local vertex id of
/// options.side and match sequential bottom-up peeling exactly (Theorem 2).
TipResult ReceiptDecompose(const BipartiteGraph& graph,
                           const TipOptions& options);

}  // namespace receipt

#endif  // RECEIPT_TIP_RECEIPT_H_
