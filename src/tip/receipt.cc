#include "tip/receipt.h"

#include <utility>

#include "engine/peel_control.h"
#include "engine/workspace.h"
#include "tip/receipt_cd.h"
#include "tip/receipt_fd.h"
#include "util/timer.h"

namespace receipt {

TipResult ReceiptDecompose(const BipartiteGraph& graph,
                           const TipOptions& options) {
  const WallTimer total_timer;
  const BipartiteGraph swapped =
      options.side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = options.side == Side::kV ? swapped : graph;

  TipResult result;
  result.tip_numbers.assign(g.num_u(), 0);

  // One workspace pool for the whole decomposition: counting, every CD
  // round and every FD partition reuse the same per-thread scratch. A
  // caller-owned pool (the service layer's per-worker pool) extends that
  // reuse across requests.
  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);
  CdResult cd = ReceiptCd(g, options, pool, &result.stats);
  if (options.control == nullptr || !options.control->Cancelled()) {
    ReceiptFd(g, cd, options, pool, result.tip_numbers, &result.stats);
  }

  result.range_bounds = std::move(cd.bounds);
  result.subset_of = std::move(cd.subset_of);
  result.subsets = std::move(cd.subsets);
  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
