#include "tip/bup.h"

#include <algorithm>
#include <span>
#include <vector>

#include "engine/counting.h"
#include "engine/peel_engine.h"
#include "graph/dynamic_graph.h"
#include "util/timer.h"

namespace receipt {

TipResult BupDecompose(const BipartiteGraph& graph,
                       const TipOptions& options) {
  const WallTimer total_timer;
  const BipartiteGraph swapped =
      options.side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = options.side == Side::kV ? swapped : graph;

  TipResult result;
  result.tip_numbers.assign(g.num_u(), 0);

  DynamicGraph live(g, g.DegreeDescendingRanks());
  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);
  pool.Prepare(std::max(1, options.num_threads), g.num_vertices());

  // Initial support via pvBcnt (Alg. 2 line 1).
  WallTimer count_timer;
  std::vector<Count> support(g.num_vertices(), 0);
  result.stats.wedges_counting = engine::CountVertexButterflies(
      live, pool, options.num_threads, support);
  result.stats.seconds_counting = count_timer.Seconds();

  // The sequential peel extracts through the workspace-resident
  // MinExtractor (engine/extraction.h), so repeated runs on a caller-owned
  // pool re-seed retained backing stores instead of allocating.
  engine::SequentialPeelConfig config;
  config.min_extraction = options.min_extraction;
  config.control = options.control;
  const engine::SequentialPeelOutcome outcome = engine::SequentialTipPeel(
      g, live, std::span<Count>(support), g.num_u(), config, pool.Get(0),
      [&result](VertexId u, Count theta) { result.tip_numbers[u] = theta; });
  result.stats.wedges_other = outcome.wedges;
  result.stats.peel_iterations = outcome.iterations;

  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
