#include "tip/bup.h"

#include <utility>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/dynamic_graph.h"
#include "tip/extraction.h"
#include "tip/peel_update.h"
#include "util/timer.h"

namespace receipt {

TipResult BupDecompose(const BipartiteGraph& graph,
                       const TipOptions& options) {
  const WallTimer total_timer;
  const BipartiteGraph swapped =
      options.side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = options.side == Side::kV ? swapped : graph;

  TipResult result;
  result.tip_numbers.assign(g.num_u(), 0);

  DynamicGraph live(g, g.DegreeDescendingRanks());

  // Initial support via pvBcnt (Alg. 2 line 1).
  WallTimer count_timer;
  std::vector<Count> support(g.num_vertices(), 0);
  PerVertexButterflyCount(live, options.num_threads, support,
                          &result.stats.wedges_counting);
  result.stats.seconds_counting = count_timer.Seconds();

  MinExtractor extractor(options.min_extraction, support, g.num_u());

  UpdateScratch scratch;
  scratch.Resize(g.num_vertices());

  Count theta = 0;
  while (auto entry = extractor.PopMin(support)) {
    const auto [key, u] = *entry;
    theta = std::max(theta, key);
    result.tip_numbers[u] = theta;
    live.Kill(u);
    ++result.stats.peel_iterations;
    result.stats.wedges_other += PeelUpdate</*kAtomic=*/false>(
        live, u, theta, support, scratch,
        [&extractor](VertexId u2, Count new_support) {
          extractor.NotifyUpdate(u2, new_support);
        });
  }

  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
