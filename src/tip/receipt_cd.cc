#include "tip/receipt_cd.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/dynamic_graph.h"
#include "tip/peel_update.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {
namespace {

/// Per-thread state for one CD peeling round.
struct CdThreadBuffer {
  UpdateScratch scratch;
  std::vector<VertexId> candidates;  // potential members of the next round
};

/// findHi (Alg. 3 lines 16-21): the smallest support value s such that the
/// cumulative static wedge count of alive vertices with support ≤ s reaches
/// `target`, returned as the exclusive bound s+1. Falls back to
/// max_support+1 when the total wedge mass is below the target (the range
/// then absorbs every remaining vertex).
Count FindHi(std::vector<std::pair<Count, Count>>& support_and_wedges,
             double target) {
  std::sort(support_and_wedges.begin(), support_and_wedges.end());
  double cumulative = 0.0;
  for (const auto& [support, wedges] : support_and_wedges) {
    cumulative += static_cast<double>(wedges);
    if (cumulative >= target) return support + 1;
  }
  return support_and_wedges.back().first + 1;
}

/// Claims `v` for the current round exactly once across threads.
bool ClaimStamp(std::vector<uint32_t>& stamps, VertexId v, uint32_t round) {
  auto* slot = reinterpret_cast<std::atomic<uint32_t>*>(&stamps[v]);
  uint32_t seen = slot->load(std::memory_order_relaxed);
  while (seen != round) {
    if (slot->compare_exchange_weak(seen, round,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   PeelStats* stats) {
  const int num_threads = options.num_threads;
  const VertexId num_u = graph.num_u();
  const uint64_t num_edges = graph.num_edges();
  const uint32_t max_partitions =
      static_cast<uint32_t>(std::max(1, options.num_partitions));

  CdResult cd;
  cd.subset_of.assign(num_u, 0);
  cd.init_support.assign(num_u, 0);
  cd.bounds = {0};

  DynamicGraph live(graph, graph.DegreeDescendingRanks());

  // Support initialization via pvBcnt (Alg. 3 line 2).
  WallTimer count_timer;
  std::vector<Count> support(graph.num_vertices(), 0);
  PerVertexButterflyCount(live, num_threads, support,
                          &stats->wedges_counting);
  stats->seconds_counting = count_timer.Seconds();

  const WallTimer cd_timer;

  // Static per-vertex wedge counts w[u] — the workload proxy for range
  // determination and the C_peel cost model (§3.1, §4.1).
  std::vector<Count> wedge_static(num_u);
  ParallelFor(num_u, num_threads, [&](size_t u) {
    wedge_static[u] = graph.WedgeCount(static_cast<VertexId>(u));
  });
  double remaining_wedges = 0.0;
  for (const Count w : wedge_static) {
    remaining_wedges += static_cast<double>(w);
  }
  double target = remaining_wedges / max_partitions;  // Alg. 3 line 4

  Count recount_bound = options.use_huc ? live.RecountCostBound() : 0;
  uint64_t wedges_since_compact = 0;

  std::vector<CdThreadBuffer> buffers(static_cast<size_t>(num_threads));
  for (auto& b : buffers) b.scratch.Resize(graph.num_vertices());
  std::vector<uint32_t> stamps(num_u, 0);
  uint32_t round_stamp = 0;

  std::vector<Count> fresh_support(graph.num_vertices());
  std::vector<std::pair<Count, Count>> range_scratch;
  std::vector<VertexId> active;
  std::vector<VertexId> candidates;

  VertexId alive_count = num_u;
  while (alive_count > 0) {
    const uint32_t subset_index = static_cast<uint32_t>(cd.subsets.size());
    const Count lo = cd.bounds.back();

    // Snapshot ⊲⊳init before any vertex of this subset is peeled
    // (Alg. 3 lines 6-7).
    ParallelFor(num_u, num_threads, [&](size_t u) {
      if (live.IsAlive(static_cast<VertexId>(u))) {
        cd.init_support[u] = support[u];
      }
    });

    // Upper bound of this range (Alg. 3 line 8). Once the user-specified P
    // is exhausted, the final subset takes everything that remains (§3.1.1).
    Count hi = kInvalidCount;
    if (subset_index < max_partitions) {
      range_scratch.clear();
      for (VertexId u = 0; u < num_u; ++u) {
        if (live.IsAlive(u)) range_scratch.emplace_back(support[u],
                                                        wedge_static[u]);
      }
      hi = FindHi(range_scratch, std::max(1.0, target));
    }

    cd.subsets.emplace_back();
    std::vector<VertexId>& subset = cd.subsets.back();

    // First active set of the range: full scan (Alg. 3 line 9).
    active.clear();
    for (VertexId u = 0; u < num_u; ++u) {
      if (live.IsAlive(u) && support[u] < hi) active.push_back(u);
    }

    while (!active.empty()) {
      ++stats->sync_rounds;
      ++stats->peel_iterations;

      // Assign and delete the whole round first so no update flows between
      // two vertices peeled together (Lemma 2).
      for (const VertexId u : active) {
        cd.subset_of[u] = subset_index;
        live.Kill(u);
      }
      alive_count -= static_cast<VertexId>(active.size());
      subset.insert(subset.end(), active.begin(), active.end());

      Count peel_cost = 0;
      for (const VertexId u : active) peel_cost += wedge_static[u];

      bool need_full_scan = false;
      if (options.use_huc && alive_count > 0 && peel_cost > recount_bound) {
        // Hybrid Update Computation (§4.1): this round's peeling would
        // traverse more wedges than a full re-count, so re-count instead.
        ++stats->huc_recounts;
        live.Compact(num_threads);
        ++stats->dgm_compactions;
        wedges_since_compact = 0;
        uint64_t recount_wedges = 0;
        PerVertexButterflyCount(live, num_threads, fresh_support,
                                &recount_wedges);
        stats->wedges_cd += recount_wedges;
        ParallelFor(num_u, num_threads, [&](size_t u) {
          if (live.IsAlive(static_cast<VertexId>(u))) {
            support[u] = std::max(lo, fresh_support[u]);
          }
        });
        recount_bound = live.RecountCostBound();
        need_full_scan = true;
      } else {
        ++round_stamp;
        const uint32_t current_stamp = round_stamp;
        PerThreadCounters wedge_counters(num_threads);
        ParallelForWithContext(
            active.size(), num_threads, buffers,
            [&](CdThreadBuffer& buf, size_t i) {
              const uint64_t wedges = PeelUpdate</*kAtomic=*/true>(
                  live, active[i], lo, support, buf.scratch,
                  [&](VertexId u2, Count new_support) {
                    if (new_support < hi &&
                        ClaimStamp(stamps, u2, current_stamp)) {
                      buf.candidates.push_back(u2);
                    }
                  });
              wedge_counters.Add(ThreadId(), wedges);
            });
        const uint64_t round_wedges = wedge_counters.Total();
        stats->wedges_cd += round_wedges;
        wedges_since_compact += round_wedges;

        candidates.clear();
        for (auto& buf : buffers) {
          candidates.insert(candidates.end(), buf.candidates.begin(),
                            buf.candidates.end());
          buf.candidates.clear();
        }
      }

      // Dynamic Graph Maintenance (§4.2): compact adjacency once ≥ m wedges
      // were traversed since the last compaction.
      if (options.use_dgm && wedges_since_compact > num_edges) {
        live.Compact(num_threads);
        ++stats->dgm_compactions;
        wedges_since_compact = 0;
        if (options.use_huc) recount_bound = live.RecountCostBound();
      }

      // Next active set (Alg. 3 line 14): tracked candidates, or a full
      // scan right after a re-count invalidated the tracking.
      active.clear();
      if (need_full_scan) {
        for (VertexId u = 0; u < num_u; ++u) {
          if (live.IsAlive(u) && support[u] < hi) active.push_back(u);
        }
      } else {
        for (const VertexId u : candidates) {
          if (live.IsAlive(u) && support[u] < hi) active.push_back(u);
        }
      }
    }

    // Two-way adaptive range determination (§3.1.1): recompute the target
    // from what remains and damp it by this subset's overshoot.
    double subset_wedges = 0.0;
    for (const VertexId u : subset) {
      subset_wedges += static_cast<double>(wedge_static[u]);
    }
    remaining_wedges -= subset_wedges;
    if (subset_index + 1 < max_partitions) {
      const double base =
          remaining_wedges /
          static_cast<double>(max_partitions - subset_index - 1);
      const double scale =
          subset_wedges > 0.0 ? std::min(1.0, target / subset_wedges) : 1.0;
      target = std::max(1.0, base * scale);
    }
    cd.bounds.push_back(hi);
  }

  stats->num_subsets = cd.subsets.size();
  stats->seconds_cd = cd_timer.Seconds();
  return cd;
}

}  // namespace receipt
