#include "tip/receipt_cd.h"

#include <algorithm>
#include <vector>

#include "engine/counting.h"
#include "engine/graph_maintenance.h"
#include "engine/peel_engine.h"
#include "graph/dynamic_graph.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {

CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   PeelStats* stats) {
  engine::WorkspacePool pool;
  return ReceiptCd(graph, options, pool, stats);
}

CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   engine::WorkspacePool& pool, PeelStats* stats) {
  return ReceiptCd(graph, options, pool, stats, CdIncremental{});
}

CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   engine::WorkspacePool& pool, PeelStats* stats,
                   const CdIncremental& inc) {
  const int num_threads = options.num_threads;
  const VertexId num_u = graph.num_u();
  const uint32_t max_partitions =
      static_cast<uint32_t>(std::max(1, options.num_partitions));

  DynamicGraph live(graph, graph.DegreeDescendingRanks());
  pool.Prepare(std::max(1, num_threads), graph.num_vertices());

  // Support initialization via pvBcnt (Alg. 3 line 2).
  const uint64_t count_start_ns = options.trace.enabled()
                                      ? obs::TraceRecorder::NowNs()
                                      : 0;
  WallTimer count_timer;
  std::vector<Count> support(graph.num_vertices(), 0);
  stats->wedges_counting +=
      engine::CountVertexButterflies(live, pool, num_threads, support);
  stats->seconds_counting = count_timer.Seconds();
  options.trace.EmitSince("engine.count", count_start_ns,
                          stats->wedges_counting);
  if (inc.initial_support != nullptr) {
    inc.initial_support->assign(support.begin(), support.begin() + num_u);
  }

  const uint64_t cd_start_ns =
      options.trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  const WallTimer cd_timer;

  // Static per-vertex wedge counts w[u] — the workload proxy for range
  // determination and the C_peel cost model (§3.1, §4.1).
  std::vector<Count> wedge_static(num_u);
  ParallelFor(num_u, num_threads, [&](size_t u) {
    wedge_static[u] = graph.WedgeCount(static_cast<VertexId>(u));
  });

  engine::GraphMaintenance maintenance(live, options.use_huc,
                                       options.use_dgm, graph.num_edges());
  engine::TipPeelGraph peel_graph(live, support);
  engine::RangeDecomposer<engine::TipPeelGraph> decomposer(
      peel_graph, wedge_static,
      engine::MakeCoarseOptions(options, max_partitions), pool, &maintenance,
      options.control);
  decomposer.set_patch_log(inc.record);
  CdResult cd = inc.seed != nullptr
                    ? decomposer.RunIncremental(*inc.seed, inc.outcome, stats)
                    : decomposer.Run(stats);

  stats->dgm_compactions += maintenance.compactions();
  stats->seconds_cd = cd_timer.Seconds();
  options.trace.EmitSince("engine.cd", cd_start_ns, cd.subsets.size());
  return cd;
}

}  // namespace receipt
