#ifndef RECEIPT_TIP_TIP_HIERARCHY_H_
#define RECEIPT_TIP_TIP_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// One maximal k-tip: a butterfly-connected set of peeled-side vertices
/// (Definition 1). The induced subgraph is the listed vertices plus the
/// entire opposite side.
struct KTip {
  std::vector<VertexId> vertices;  ///< side-local ids, sorted ascending.
};

/// Reconstructs all maximal k-tips of `side` from tip numbers: takes the
/// vertices with θ ≥ k (the union of all k-tips) and splits them into
/// butterfly-connected components (u ~ u' iff they share ≥ 2 common
/// neighbors, i.e. at least one butterfly, within the induced subgraph).
/// Components are returned largest-first.
///
/// This is the space-efficient retrieval that motivates computing tip
/// numbers instead of materializing the hierarchy (§2.2).
std::vector<KTip> ExtractKTips(const BipartiteGraph& graph, Side side,
                               std::span<const Count> tip_numbers, Count k);

/// Histogram of tip numbers: sorted (θ value, #vertices) pairs. The running
/// sum over it is exactly the cumulative distribution of Fig. 4.
std::vector<std::pair<Count, uint64_t>> TipHistogram(
    std::span<const Count> tip_numbers);

}  // namespace receipt

#endif  // RECEIPT_TIP_TIP_HIERARCHY_H_
