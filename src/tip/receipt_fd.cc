#include "tip/receipt_fd.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "engine/cost_model.h"
#include "engine/peel_engine.h"
#include "engine/topology.h"
#include "graph/dynamic_graph.h"
#include "graph/induced_subgraph.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {
namespace {

/// Peels one subset to completion (the body of Alg. 4 lines 5-10), entirely
/// on one thread: builds the induced subgraph into the workspace's arena,
/// seeds supports from ⊲⊳init, and hands the loop to the engine's
/// sequential peeler. In steady state (arena warm from earlier partitions)
/// this performs no heap allocation.
void PeelSubset(const BipartiteGraph& graph, const CdResult& cd, uint32_t sid,
                const TipOptions& options, engine::PeelWorkspace& ws,
                std::span<Count> tip_numbers, PeelStats* local_stats) {
  const std::vector<VertexId>& members = cd.subsets[sid];
  if (members.empty()) return;

  // Induce G_i on (U_i, V) and re-sort by local degree priority (Alg. 4
  // line 5), rebuilding the arena-resident subgraph and DynamicGraph view
  // in place.
  InducedSubgraphArena& arena = ws.subgraph_arena;
  const InducedSubgraph& induced = BuildInducedSubgraph(graph, members, arena);
  const BipartiteGraph& sg = induced.graph;
  sg.DegreeDescendingRanksInto(arena.ranks, arena.rank_scratch);
  DynamicGraph& live = arena.live;
  live.Reset(sg, arena.ranks);
  const VertexId num_local = sg.num_u();

  // Support initialization from ⊲⊳init (Alg. 4 line 6).
  ws.support_buffer.assign(sg.num_vertices(), 0);
  for (VertexId lu = 0; lu < num_local; ++lu) {
    ws.support_buffer[lu] = cd.init_support[members[lu]];
  }

  engine::SequentialPeelConfig config;
  config.min_extraction = options.min_extraction;
  config.use_huc = options.use_huc;
  config.use_dgm = options.use_dgm;
  config.floor0 = cd.bounds[sid];  // tip numbers of this subset start here
  config.stop_when_peeled = true;
  config.control = options.control;
  const engine::SequentialPeelOutcome outcome = engine::SequentialTipPeel(
      sg, live, std::span<Count>(ws.support_buffer.data(), sg.num_vertices()),
      num_local, config, ws, [&](VertexId lu, Count theta) {
        tip_numbers[members[lu]] = theta;
      });
  local_stats->wedges_fd += outcome.wedges;
  local_stats->huc_recounts += outcome.huc_recounts;
  local_stats->dgm_compactions += outcome.dgm_compactions;
}

}  // namespace

std::vector<Count> ComputeSubsetWedgeCounts(const BipartiteGraph& graph,
                                            std::span<const uint32_t> subset_of,
                                            uint32_t num_subsets,
                                            int num_threads) {
  std::vector<Count> counts(num_subsets, 0);
  ParallelFor(graph.num_v(), num_threads, [&](size_t v_local) {
    const VertexId gv = graph.VGlobal(static_cast<VertexId>(v_local));
    const auto nbrs = graph.Neighbors(gv);
    std::vector<uint32_t> ids;
    ids.reserve(nbrs.size());
    for (const VertexId u : nbrs) ids.push_back(subset_of[u]);
    std::sort(ids.begin(), ids.end());
    size_t i = 0;
    while (i < ids.size()) {
      size_t j = i;
      while (j < ids.size() && ids[j] == ids[i]) ++j;
      const Count run = static_cast<Count>(j - i);
      if (run >= 2) AtomicAdd(&counts[ids[i]], Choose2(run));
      i = j;
    }
  });
  return counts;
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, std::span<Count> tip_numbers,
               PeelStats* stats) {
  engine::WorkspacePool pool;
  ReceiptFd(graph, cd, options, pool, tip_numbers, stats);
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, engine::WorkspacePool& pool,
               std::span<Count> tip_numbers, PeelStats* stats) {
  ReceiptFd(graph, cd, options, pool, tip_numbers, stats, {});
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, engine::WorkspacePool& pool,
               std::span<Count> tip_numbers, PeelStats* stats,
               std::span<const uint8_t> only_subsets) {
  const WallTimer fd_timer;
  const uint64_t fd_start_ns =
      options.trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  const uint32_t num_subsets = static_cast<uint32_t>(cd.subsets.size());
  if (num_subsets == 0) return;
  const int num_threads = std::max(1, options.num_threads);
  pool.Prepare(num_threads, graph.num_vertices());

  // Per-partition cost prediction: the coarse histogram's range prediction
  // rides along in cd.predicted_costs; legacy callers without it fall back
  // to the O(m) induced wedge-count pass (§3.2.1's original proxy).
  std::vector<Count> costs;
  if (cd.predicted_costs.size() == num_subsets) {
    costs = cd.predicted_costs;
  } else if (options.workload_aware_scheduling) {
    costs = ComputeSubsetWedgeCounts(graph, cd.subset_of, num_subsets,
                                     options.num_threads);
  } else {
    costs.assign(num_subsets, 1);
  }

  // Node layout: forced virtual nodes (benches/tests), else the machine's.
  const engine::NumaTopology* topology = nullptr;
  int num_nodes = 1;
  if (options.placement_nodes > 0) {
    num_nodes = options.placement_nodes;
  } else {
    topology = &engine::SystemTopology();
    num_nodes = topology->num_nodes();
  }
  num_nodes = std::max(1, num_nodes);

  // Place partitions onto nodes (§3.2.1's LPT rule lifted from a sort
  // order to a node assignment). Deterministic: a pure function of the
  // predicted costs and the node count.
  const bool cost_guided =
      options.workload_aware_scheduling &&
      options.fd_assignment == engine::PlacementAssign::kCostLpt;
  const engine::PlacementPlan plan =
      cost_guided ? engine::AssignLpt(costs, static_cast<uint32_t>(num_nodes))
                  : engine::AssignRoundRobin(costs,
                                             static_cast<uint32_t>(num_nodes));
  stats->placement_nodes =
      std::max(stats->placement_nodes, static_cast<uint64_t>(num_nodes));
  stats->makespan_predicted =
      std::max(stats->makespan_predicted, plan.Makespan());

  // Workers spread across nodes proportional to CPU counts on a real
  // topology, round-robin over virtual nodes otherwise.
  std::vector<int> node_of_thread;
  if (topology != nullptr && topology->num_nodes() == num_nodes) {
    node_of_thread = topology->AssignWorkers(num_threads);
  }
  if (static_cast<int>(node_of_thread.size()) != num_threads) {
    node_of_thread.resize(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) node_of_thread[t] = t % num_nodes;
  }
  const bool pin = options.pin_numa && topology != nullptr &&
                   !topology->synthetic() && topology->num_nodes() > 1;

  // Per-node pop cursors over the plan's queues, plus the measured work
  // units each *assigned* node accumulated — attribution follows the plan,
  // not the executing thread, so makespan_measured is schedule-independent
  // even with stealing.
  std::unique_ptr<std::atomic<uint32_t>[]> cursors(
      new std::atomic<uint32_t>[static_cast<size_t>(num_nodes)]);
  std::unique_ptr<std::atomic<uint64_t>[]> node_work(
      new std::atomic<uint64_t>[static_cast<size_t>(num_nodes)]);
  for (int b = 0; b < num_nodes; ++b) {
    cursors[b].store(0, std::memory_order_relaxed);
    node_work[b].store(0, std::memory_order_relaxed);
  }

  // Dynamic task allocation (Alg. 4 lines 2-4), locality-aware: each
  // thread drains its home node's queue, then steals from the other nodes
  // in ring order. Threads only synchronize at the terminal join.
  std::vector<PeelStats> local_stats(static_cast<size_t>(num_threads));
#pragma omp parallel num_threads(options.num_threads)
  {
    const int tid = ThreadId();
    PeelStats& local = local_stats[static_cast<size_t>(tid)];
    engine::PeelWorkspace& ws = pool.Get(tid);
    const int home = node_of_thread[static_cast<size_t>(tid) %
                                    node_of_thread.size()];
    // Pin for the duration of this region only; the OpenMP pool thread's
    // original mask is restored at scope exit.
    std::optional<engine::ScopedAffinity> saved_affinity;
    if (pin) {
      saved_affinity.emplace();
      engine::PinThreadToNode(*topology, home);
    }
    while (true) {
      if (options.control != nullptr && options.control->Cancelled()) break;
      int source = -1;
      uint32_t sid = 0;
      for (int k = 0; k < num_nodes; ++k) {
        const int node = (home + k) % num_nodes;
        const uint32_t pos =
            cursors[node].fetch_add(1, std::memory_order_relaxed);
        if (pos < plan.bin_items[static_cast<size_t>(node)].size()) {
          source = node;
          sid = plan.bin_items[static_cast<size_t>(node)][pos];
          break;
        }
      }
      if (source < 0) break;
      // Selective FD (incremental serving): unselected subsets keep their
      // sealed numbers; popping and skipping keeps the plan cursors shared.
      if (!only_subsets.empty() &&
          (sid >= only_subsets.size() || only_subsets[sid] == 0)) {
        continue;
      }
      if (source == home) {
        ++local.placement_local_pops;
      } else {
        ++local.placement_remote_steals;
      }
      const uint64_t wedges_before = local.wedges_fd;
      PeelSubset(graph, cd, sid, options, ws, tip_numbers, &local);
      node_work[plan.bin_of[sid]].fetch_add(local.wedges_fd - wedges_before,
                                            std::memory_order_relaxed);
    }
  }
  for (const PeelStats& local : local_stats) {
    stats->wedges_fd += local.wedges_fd;
    stats->huc_recounts += local.huc_recounts;
    stats->dgm_compactions += local.dgm_compactions;
    stats->placement_local_pops += local.placement_local_pops;
    stats->placement_remote_steals += local.placement_remote_steals;
  }
  uint64_t measured = 0;
  for (int b = 0; b < num_nodes; ++b) {
    measured = std::max(measured, node_work[b].load(std::memory_order_relaxed));
  }
  stats->makespan_measured = std::max(stats->makespan_measured, measured);
  stats->seconds_fd = fd_timer.Seconds();
  options.trace.EmitSince("engine.fd", fd_start_ns, num_subsets);
}

}  // namespace receipt
