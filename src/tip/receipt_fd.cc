#include "tip/receipt_fd.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "engine/peel_engine.h"
#include "graph/dynamic_graph.h"
#include "graph/induced_subgraph.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {
namespace {

/// Peels one subset to completion (the body of Alg. 4 lines 5-10), entirely
/// on one thread: builds the induced subgraph into the workspace's arena,
/// seeds supports from ⊲⊳init, and hands the loop to the engine's
/// sequential peeler. In steady state (arena warm from earlier partitions)
/// this performs no heap allocation.
void PeelSubset(const BipartiteGraph& graph, const CdResult& cd, uint32_t sid,
                const TipOptions& options, engine::PeelWorkspace& ws,
                std::span<Count> tip_numbers, PeelStats* local_stats) {
  const std::vector<VertexId>& members = cd.subsets[sid];
  if (members.empty()) return;

  // Induce G_i on (U_i, V) and re-sort by local degree priority (Alg. 4
  // line 5), rebuilding the arena-resident subgraph and DynamicGraph view
  // in place.
  InducedSubgraphArena& arena = ws.subgraph_arena;
  const InducedSubgraph& induced = BuildInducedSubgraph(graph, members, arena);
  const BipartiteGraph& sg = induced.graph;
  sg.DegreeDescendingRanksInto(arena.ranks, arena.rank_scratch);
  DynamicGraph& live = arena.live;
  live.Reset(sg, arena.ranks);
  const VertexId num_local = sg.num_u();

  // Support initialization from ⊲⊳init (Alg. 4 line 6).
  ws.support_buffer.assign(sg.num_vertices(), 0);
  for (VertexId lu = 0; lu < num_local; ++lu) {
    ws.support_buffer[lu] = cd.init_support[members[lu]];
  }

  engine::SequentialPeelConfig config;
  config.min_extraction = options.min_extraction;
  config.use_huc = options.use_huc;
  config.use_dgm = options.use_dgm;
  config.floor0 = cd.bounds[sid];  // tip numbers of this subset start here
  config.stop_when_peeled = true;
  config.control = options.control;
  const engine::SequentialPeelOutcome outcome = engine::SequentialTipPeel(
      sg, live, std::span<Count>(ws.support_buffer.data(), sg.num_vertices()),
      num_local, config, ws, [&](VertexId lu, Count theta) {
        tip_numbers[members[lu]] = theta;
      });
  local_stats->wedges_fd += outcome.wedges;
  local_stats->huc_recounts += outcome.huc_recounts;
  local_stats->dgm_compactions += outcome.dgm_compactions;
}

}  // namespace

std::vector<Count> ComputeSubsetWedgeCounts(const BipartiteGraph& graph,
                                            std::span<const uint32_t> subset_of,
                                            uint32_t num_subsets,
                                            int num_threads) {
  std::vector<Count> counts(num_subsets, 0);
  ParallelFor(graph.num_v(), num_threads, [&](size_t v_local) {
    const VertexId gv = graph.VGlobal(static_cast<VertexId>(v_local));
    const auto nbrs = graph.Neighbors(gv);
    std::vector<uint32_t> ids;
    ids.reserve(nbrs.size());
    for (const VertexId u : nbrs) ids.push_back(subset_of[u]);
    std::sort(ids.begin(), ids.end());
    size_t i = 0;
    while (i < ids.size()) {
      size_t j = i;
      while (j < ids.size() && ids[j] == ids[i]) ++j;
      const Count run = static_cast<Count>(j - i);
      if (run >= 2) AtomicAdd(&counts[ids[i]], Choose2(run));
      i = j;
    }
  });
  return counts;
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, std::span<Count> tip_numbers,
               PeelStats* stats) {
  engine::WorkspacePool pool;
  ReceiptFd(graph, cd, options, pool, tip_numbers, stats);
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, engine::WorkspacePool& pool,
               std::span<Count> tip_numbers, PeelStats* stats) {
  const WallTimer fd_timer;
  const uint32_t num_subsets = static_cast<uint32_t>(cd.subsets.size());
  if (num_subsets == 0) return;
  pool.Prepare(std::max(1, options.num_threads), graph.num_vertices());

  // Workload-aware scheduling (§3.2.1): largest induced wedge count first.
  std::vector<uint32_t> order(num_subsets);
  std::iota(order.begin(), order.end(), 0);
  if (options.workload_aware_scheduling) {
    const std::vector<Count> subset_wedges = ComputeSubsetWedgeCounts(
        graph, cd.subset_of, num_subsets, options.num_threads);
    std::stable_sort(order.begin(), order.end(),
                     [&subset_wedges](uint32_t a, uint32_t b) {
                       return subset_wedges[a] > subset_wedges[b];
                     });
  }

  // Dynamic task allocation: idle threads atomically pop the next subset id
  // (Alg. 4 lines 2-4). Threads only synchronize at the terminal join.
  std::atomic<uint32_t> next_task{0};
  std::vector<PeelStats> local_stats(
      static_cast<size_t>(options.num_threads));
#pragma omp parallel num_threads(options.num_threads)
  {
    const int tid = ThreadId();
    PeelStats& local = local_stats[static_cast<size_t>(tid)];
    engine::PeelWorkspace& ws = pool.Get(tid);
    while (true) {
      if (options.control != nullptr && options.control->Cancelled()) break;
      const uint32_t k = next_task.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_subsets) break;
      PeelSubset(graph, cd, order[k], options, ws, tip_numbers, &local);
    }
  }
  for (const PeelStats& local : local_stats) {
    stats->wedges_fd += local.wedges_fd;
    stats->huc_recounts += local.huc_recounts;
    stats->dgm_compactions += local.dgm_compactions;
  }
  stats->seconds_fd = fd_timer.Seconds();
}

}  // namespace receipt
