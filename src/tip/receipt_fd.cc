#include "tip/receipt_fd.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/dynamic_graph.h"
#include "graph/induced_subgraph.h"
#include "tip/extraction.h"
#include "tip/peel_update.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace receipt {
namespace {

/// Peels one subset to completion (the body of Alg. 4 lines 5-10), entirely
/// on one thread. Accumulates wedge/HUC/DGM counters into `*local_stats`.
void PeelSubset(const BipartiteGraph& graph, const CdResult& cd, uint32_t sid,
                const TipOptions& options, std::span<Count> tip_numbers,
                PeelStats* local_stats) {
  const std::vector<VertexId>& members = cd.subsets[sid];
  if (members.empty()) return;

  // Induce G_i on (U_i, V) and re-sort by local degree priority (Alg. 4
  // line 5).
  const InducedSubgraph induced = BuildInducedSubgraph(graph, members);
  const BipartiteGraph& sg = induced.graph;
  DynamicGraph live(sg, sg.DegreeDescendingRanks());
  const VertexId num_local = sg.num_u();
  const uint64_t local_edges = sg.num_edges();

  // Support initialization from ⊲⊳init (Alg. 4 line 6).
  std::vector<Count> support(sg.num_vertices(), 0);
  for (VertexId lu = 0; lu < num_local; ++lu) {
    support[lu] = cd.init_support[members[lu]];
  }

  // HUC bookkeeping: the external contribution of each vertex (butterflies
  // shared with higher subsets) is fixed during FD and equals
  // ⊲⊳init − (butterflies inside G_i) — §4.1.
  std::vector<Count> external;
  std::vector<Count> wedge_static;
  std::vector<Count> recount_buffer;
  Count recount_bound = 0;
  if (options.use_huc) {
    recount_buffer.assign(sg.num_vertices(), 0);
    uint64_t count_wedges = 0;
    PerVertexButterflyCount(live, /*num_threads=*/1, recount_buffer,
                            &count_wedges);
    local_stats->wedges_fd += count_wedges;
    external.resize(num_local);
    for (VertexId lu = 0; lu < num_local; ++lu) {
      external[lu] = support[lu] >= recount_buffer[lu]
                         ? support[lu] - recount_buffer[lu]
                         : 0;
    }
    recount_bound = live.RecountCostBound();
    wedge_static.resize(num_local);
    for (VertexId lu = 0; lu < num_local; ++lu) {
      wedge_static[lu] = sg.WedgeCount(lu);
    }
  }

  MinExtractor extractor(options.min_extraction, support, num_local);

  UpdateScratch scratch;
  scratch.Resize(sg.num_vertices());

  uint64_t wedges_since_compact = 0;
  VertexId alive_count = num_local;
  Count theta = cd.bounds[sid];  // tip numbers of this subset start at θ(i)

  while (auto entry = extractor.PopMin(support)) {
    const auto [key, lu] = *entry;
    theta = std::max(theta, key);
    tip_numbers[members[lu]] = theta;
    live.Kill(lu);
    --alive_count;
    if (alive_count == 0) break;

    if (options.use_huc && wedge_static[lu] > recount_bound) {
      // Re-counting this small induced graph is cheaper than exploring the
      // peeled vertex's wedges.
      ++local_stats->huc_recounts;
      live.Compact(/*num_threads=*/1);
      ++local_stats->dgm_compactions;
      wedges_since_compact = 0;
      uint64_t recount_wedges = 0;
      PerVertexButterflyCount(live, /*num_threads=*/1, recount_buffer,
                              &recount_wedges);
      local_stats->wedges_fd += recount_wedges;
      for (VertexId lu2 = 0; lu2 < num_local; ++lu2) {
        if (!live.IsAlive(lu2)) continue;
        support[lu2] = std::max(theta, recount_buffer[lu2] + external[lu2]);
      }
      extractor.Rebuild(support);
      recount_bound = live.RecountCostBound();
    } else {
      const uint64_t wedges = PeelUpdate</*kAtomic=*/false>(
          live, lu, theta, support, scratch,
          [&extractor](VertexId u2, Count new_support) {
            extractor.NotifyUpdate(u2, new_support);
          });
      local_stats->wedges_fd += wedges;
      wedges_since_compact += wedges;
    }

    if (options.use_dgm && wedges_since_compact > local_edges) {
      live.Compact(/*num_threads=*/1);
      ++local_stats->dgm_compactions;
      wedges_since_compact = 0;
      if (options.use_huc) recount_bound = live.RecountCostBound();
    }
  }
}

}  // namespace

std::vector<Count> ComputeSubsetWedgeCounts(const BipartiteGraph& graph,
                                            std::span<const uint32_t> subset_of,
                                            uint32_t num_subsets,
                                            int num_threads) {
  std::vector<Count> counts(num_subsets, 0);
  ParallelFor(graph.num_v(), num_threads, [&](size_t v_local) {
    const VertexId gv = graph.VGlobal(static_cast<VertexId>(v_local));
    const auto nbrs = graph.Neighbors(gv);
    std::vector<uint32_t> ids;
    ids.reserve(nbrs.size());
    for (const VertexId u : nbrs) ids.push_back(subset_of[u]);
    std::sort(ids.begin(), ids.end());
    size_t i = 0;
    while (i < ids.size()) {
      size_t j = i;
      while (j < ids.size() && ids[j] == ids[i]) ++j;
      const Count run = static_cast<Count>(j - i);
      if (run >= 2) AtomicAdd(&counts[ids[i]], Choose2(run));
      i = j;
    }
  });
  return counts;
}

void ReceiptFd(const BipartiteGraph& graph, const CdResult& cd,
               const TipOptions& options, std::span<Count> tip_numbers,
               PeelStats* stats) {
  const WallTimer fd_timer;
  const uint32_t num_subsets = static_cast<uint32_t>(cd.subsets.size());
  if (num_subsets == 0) return;

  // Workload-aware scheduling (§3.2.1): largest induced wedge count first.
  std::vector<uint32_t> order(num_subsets);
  std::iota(order.begin(), order.end(), 0);
  if (options.workload_aware_scheduling) {
    const std::vector<Count> subset_wedges = ComputeSubsetWedgeCounts(
        graph, cd.subset_of, num_subsets, options.num_threads);
    std::stable_sort(order.begin(), order.end(),
                     [&subset_wedges](uint32_t a, uint32_t b) {
                       return subset_wedges[a] > subset_wedges[b];
                     });
  }

  // Dynamic task allocation: idle threads atomically pop the next subset id
  // (Alg. 4 lines 2-4). Threads only synchronize at the terminal join.
  std::atomic<uint32_t> next_task{0};
  std::vector<PeelStats> local_stats(
      static_cast<size_t>(options.num_threads));
#pragma omp parallel num_threads(options.num_threads)
  {
    PeelStats& local = local_stats[static_cast<size_t>(ThreadId())];
    while (true) {
      const uint32_t k = next_task.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_subsets) break;
      PeelSubset(graph, cd, order[k], options, tip_numbers, &local);
    }
  }
  for (const PeelStats& local : local_stats) {
    stats->wedges_fd += local.wedges_fd;
    stats->huc_recounts += local.huc_recounts;
    stats->dgm_compactions += local.dgm_compactions;
  }
  stats->seconds_fd = fd_timer.Seconds();
}

}  // namespace receipt
