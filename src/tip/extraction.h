#ifndef RECEIPT_TIP_EXTRACTION_H_
#define RECEIPT_TIP_EXTRACTION_H_

#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "tip/bucket.h"
#include "tip/min_heap.h"
#include "tip/pairing_heap.h"
#include "tip/tip_common.h"
#include "util/types.h"

namespace receipt {

/// Uniform single-vertex min extraction over the three backends. Supports
/// must only decrease between pops (the peeling invariant). Extracted
/// vertices never return.
class MinExtractor {
 public:
  /// Inserts vertices [0, n) with keys taken from `support`.
  MinExtractor(MinExtraction kind, std::span<const Count> support,
               VertexId n)
      : kind_(kind), extracted_(n, 0) {
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Reserve(n);
        for (VertexId v = 0; v < n; ++v) heap_.Push(support[v], v);
        break;
      case MinExtraction::kBucketQueue: {
        std::vector<VertexId> items(n);
        std::iota(items.begin(), items.end(), 0);
        bucket_ = std::make_unique<BucketQueue>(support, items);
        break;
      }
      case MinExtraction::kPairingHeap:
        pairing_.Reset(n);
        for (VertexId v = 0; v < n; ++v) pairing_.Insert(v, support[v]);
        break;
    }
  }

  /// Records that v's support decreased to `new_support`.
  void NotifyUpdate(VertexId v, Count new_support) {
    if (extracted_[v]) return;
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Push(new_support, v);
        break;
      case MinExtraction::kBucketQueue:
        bucket_->Update(v, new_support);
        break;
      case MinExtraction::kPairingHeap:
        pairing_.DecreaseKey(v, new_support);
        break;
    }
  }

  /// Extracts the vertex with minimum current support; nullopt when all
  /// vertices have been extracted.
  std::optional<std::pair<Count, VertexId>> PopMin(
      std::span<const Count> support) {
    switch (kind_) {
      case MinExtraction::kDAryHeap: {
        auto entry = heap_.PopValid(support, [this](VertexId v) {
          return extracted_[v] == 0;
        });
        if (entry) extracted_[entry->second] = 1;
        return entry;
      }
      case MinExtraction::kBucketQueue: {
        // BucketQueue yields whole equal-support batches; serving them one
        // by one is exact because peeling updates are clamped at the batch
        // value, so cached members keep that support until extracted.
        if (batch_position_ >= batch_.size()) {
          auto round = bucket_->PopMin();
          if (!round) return std::nullopt;
          batch_value_ = round->first;
          batch_ = std::move(round->second);
          batch_position_ = 0;
        }
        const VertexId v = batch_[batch_position_++];
        extracted_[v] = 1;
        return std::make_pair(batch_value_, v);
      }
      case MinExtraction::kPairingHeap: {
        auto entry = pairing_.PopMin();
        if (entry) extracted_[entry->second] = 1;
        return entry;
      }
    }
    return std::nullopt;
  }

  /// Re-seeds the structure with the current supports of all unextracted
  /// vertices (used after a HUC re-count replaced the support array
  /// wholesale).
  void Rebuild(std::span<const Count> support) {
    const VertexId n = static_cast<VertexId>(extracted_.size());
    switch (kind_) {
      case MinExtraction::kDAryHeap:
        heap_.Clear();
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) heap_.Push(support[v], v);
        }
        break;
      case MinExtraction::kBucketQueue: {
        std::vector<VertexId> items;
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) items.push_back(v);
        }
        bucket_ = std::make_unique<BucketQueue>(support, items);
        batch_.clear();
        batch_position_ = 0;
        break;
      }
      case MinExtraction::kPairingHeap:
        // Re-counted supports never exceed the tracked keys (Lemma 1), so
        // decrease-key is sufficient.
        for (VertexId v = 0; v < n; ++v) {
          if (!extracted_[v]) pairing_.DecreaseKey(v, support[v]);
        }
        break;
    }
  }

 private:
  MinExtraction kind_;
  std::vector<uint8_t> extracted_;
  LazyMinHeap<4> heap_;
  std::unique_ptr<BucketQueue> bucket_;
  std::vector<VertexId> batch_;
  size_t batch_position_ = 0;
  Count batch_value_ = 0;
  PairingHeap pairing_;
};

}  // namespace receipt

#endif  // RECEIPT_TIP_EXTRACTION_H_
