#ifndef RECEIPT_TIP_RECEIPT_CD_H_
#define RECEIPT_TIP_RECEIPT_CD_H_

#include <cstdint>
#include <vector>

#include "engine/peel_engine.h"
#include "engine/range_result.h"
#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "tip/tip_common.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt {

/// Output of the Coarse-grained Decomposition step: the engine's range
/// decomposition instantiated for vertices. Fields:
///   bounds       θ(1)=0, θ(2), …, θ(P'+1): subset i (0-based) covers tip
///                numbers in [bounds[i], bounds[i+1]); the final bound is
///                kInvalidCount if the last subset is unbounded.
///   subsets      U_1 … U_P' in side-local U ids, in peeling order.
///   subset_of    subset_of[u] = subset index of u.
///   init_support ⊲⊳init — the FD initialization vector.
using CdResult = engine::RangeResult<VertexId>;

/// RECEIPT CD (Alg. 3): partitions the U side of `graph` into ≤ P+1 vertex
/// subsets with non-overlapping tip-number ranges, by iteratively peeling
/// *every* vertex whose support falls inside the current range (not just the
/// minimum). Range upper bounds are chosen by the two-way adaptive rule of
/// §3.1.1 so induced-subgraph workloads are balanced for FD.
///
/// Honours options.use_huc (Hybrid Update Computation, §4.1) and
/// options.use_dgm (Dynamic Graph Maintenance, §4.2).
///
/// `graph` must already be oriented so the peeled side is U. Contributes
/// wedges_counting/wedges_cd, sync_rounds, HUC/DGM counters and
/// seconds_counting/seconds_cd to `*stats`.
CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   PeelStats* stats);

/// Pool-sharing overload: reuses `pool`'s per-thread workspaces for
/// counting and every peeling round (ReceiptDecompose passes one pool
/// through CD and FD so the whole decomposition allocates scratch once).
CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   engine::WorkspacePool& pool, PeelStats* stats);

/// Incremental hookup for the live-update serving path. Every field is
/// optional: `record` makes the run record its boundary patch log for the
/// next seal, `initial_support` receives a copy of the freshly counted
/// per-U-vertex supports (the next seal's old_support baseline — the run
/// itself mutates the working array), and `seed`/`outcome` switch the
/// coarse pass to RunIncremental against a sealed baseline.
struct CdIncremental {
  engine::CoarsePatchLog* record = nullptr;
  std::vector<Count>* initial_support = nullptr;
  const engine::IncrementalSeed<VertexId>* seed = nullptr;
  engine::IncrementalOutcome* outcome = nullptr;
};

/// Incremental-aware overload: a plain full run when `inc` is all-null.
CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   engine::WorkspacePool& pool, PeelStats* stats,
                   const CdIncremental& inc);

}  // namespace receipt

#endif  // RECEIPT_TIP_RECEIPT_CD_H_
