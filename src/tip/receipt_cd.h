#ifndef RECEIPT_TIP_RECEIPT_CD_H_
#define RECEIPT_TIP_RECEIPT_CD_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "tip/tip_common.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt {

/// Output of the Coarse-grained Decomposition step.
struct CdResult {
  /// θ(1)=0, θ(2), …, θ(P'+1): subset i (0-based) covers tip numbers in
  /// [bounds[i], bounds[i+1]). The final bound is kInvalidCount if the
  /// last subset absorbed every leftover vertex (its range is unbounded).
  std::vector<Count> bounds;

  /// U_1 … U_P' in side-local U ids, each in the order vertices were peeled.
  std::vector<std::vector<VertexId>> subsets;

  /// subset_of[u] = subset index of u.
  std::vector<uint32_t> subset_of;

  /// ⊲⊳init: the support of u after all lower subsets were fully peeled and
  /// before its own subset's peeling began — the FD initialization vector.
  std::vector<Count> init_support;
};

/// RECEIPT CD (Alg. 3): partitions the U side of `graph` into ≤ P+1 vertex
/// subsets with non-overlapping tip-number ranges, by iteratively peeling
/// *every* vertex whose support falls inside the current range (not just the
/// minimum). Range upper bounds are chosen by the two-way adaptive rule of
/// §3.1.1 so induced-subgraph workloads are balanced for FD.
///
/// Honours options.use_huc (Hybrid Update Computation, §4.1) and
/// options.use_dgm (Dynamic Graph Maintenance, §4.2).
///
/// `graph` must already be oriented so the peeled side is U. Contributes
/// wedges_counting/wedges_cd, sync_rounds, HUC/DGM counters and
/// seconds_counting/seconds_cd to `*stats`.
CdResult ReceiptCd(const BipartiteGraph& graph, const TipOptions& options,
                   PeelStats* stats);

}  // namespace receipt

#endif  // RECEIPT_TIP_RECEIPT_CD_H_
