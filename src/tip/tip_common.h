#ifndef RECEIPT_TIP_TIP_COMMON_H_
#define RECEIPT_TIP_TIP_COMMON_H_

#include <cstdint>
#include <vector>

#include "engine/cost_model.h"
#include "engine/extraction.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt {

namespace engine {
class PeelControl;
class WorkspacePool;
}  // namespace engine

/// Configuration for a tip decomposition run.
struct TipOptions {
  /// Which vertex set to decompose. Internally the graph is transposed for
  /// Side::kV, so algorithms always peel "U".
  Side side = Side::kU;

  /// Number of OpenMP threads (T in the paper).
  int num_threads = 1;

  /// RECEIPT only: number of vertex subsets / tip-number ranges (P). The
  /// paper uses 150 for all datasets (§5.1, Fig. 5).
  int num_partitions = 150;

  /// RECEIPT only: enable Hybrid Update Computation (§4.1). Disabling this
  /// and DGM yields the paper's RECEIPT-- configuration.
  bool use_huc = true;

  /// RECEIPT only: enable Dynamic Graph Maintenance (§4.2). Disabling only
  /// this yields the paper's RECEIPT- configuration.
  bool use_dgm = true;

  /// RECEIPT FD only: cost-model-driven scheduling — partitions are placed
  /// onto nodes by the Longest-Processing-Time rule over their predicted
  /// peel costs (§3.2.1 / Fig. 3, lifted to a node assignment), and each
  /// node's queue pops highest cost first. Disabling deals partitions
  /// round-robin in creation order (equivalent to fd_assignment =
  /// kRoundRobin). Results are bit-identical either way.
  bool workload_aware_scheduling = true;

  /// RECEIPT FD only: how partitions are assigned to nodes when
  /// workload_aware_scheduling is on. kCostLpt (default) is the
  /// cost-guided placement; kRoundRobin is the baseline the placement
  /// micro-bench gates against. Results are bit-identical either way.
  engine::PlacementAssign fd_assignment = engine::PlacementAssign::kCostLpt;

  /// RECEIPT FD only: schedule against this many virtual nodes instead of
  /// the discovered topology (0 = auto). Benches and the placement
  /// determinism tests force multi-node scheduling on any machine this
  /// way; pinning is a no-op for virtual nodes.
  int placement_nodes = 0;

  /// RECEIPT FD only: pin each FD worker thread to its assigned NUMA
  /// node's CPUs for the duration of the FD phase (affinity restored
  /// afterwards), so induced-subgraph arenas stay node-local. Effective
  /// only on real topologies with more than one node; results are
  /// bit-identical either way.
  bool pin_numa = false;

  /// BUP and RECEIPT FD: the min-support extraction structure (§5.1
  /// implementation ablation; see bench_ablation_extraction).
  MinExtraction min_extraction = MinExtraction::kDAryHeap;

  /// RECEIPT CD only: the frontier-density threshold of the engine's
  /// direction optimization. While a round's frontier holds fewer than this
  /// fraction of the remaining alive vertices, the next active set is the
  /// merged workspace frontiers; otherwise a full parallel scan. ≤ 0 forces
  /// scan-only rebuilds (the pre-frontier behavior), > 1 forces
  /// frontier-only rebuilds; results are bit-identical either way.
  double frontier_density_threshold = kDefaultFrontierDensity;

  /// RECEIPT CD only: how the rebuild direction is picked each round —
  /// the measured per-element rebuild costs (default: adaptive,
  /// timing-dependent counters) or the fixed density fraction above
  /// (deterministic counters; the direction-forcing tests and benches pin
  /// it). Results are bit-identical under either rule.
  FrontierSwitch frontier_switch = FrontierSwitch::kMeasuredCost;

  /// RECEIPT CD only: maintain the coarse step's SupportIndex (a
  /// frontier-fed, cost-weighted support histogram) so range bounds come
  /// from a histogram prefix walk and ⊲⊳init snapshots become boundary
  /// patches — per-range cost tracks what changed, not graph size. `false`
  /// retains the legacy per-range O(n) scan path; both are bit-identical.
  bool use_support_index = true;

  /// Caller-owned per-thread scratch. When set, the decomposition runs on
  /// these workspaces instead of allocating its own pool — the service layer
  /// passes each worker's pool here so scratch reuse spans *requests*, not
  /// just rounds within one run. Must stay alive for the whole call; sized
  /// up via Prepare() as needed (never shrunk).
  engine::WorkspacePool* workspace_pool = nullptr;

  /// Optional cancellation/progress hook polled by every peel loop. When
  /// cancellation fires mid-run the returned tip numbers are incomplete;
  /// callers must check control->Cancelled() before trusting the result.
  engine::PeelControl* control = nullptr;

  /// Span sink + request identity for phase tracing. Default-constructed it
  /// is a null sink: every emission bails on one pointer test before
  /// touching the clock (bench_obs_micro gates that the disabled path adds
  /// no measurable overhead). Tracing never changes results.
  obs::TraceContext trace;
};

/// Output of a tip decomposition.
struct TipResult {
  /// tip_numbers[i] = θ of the i-th vertex of the decomposed side
  /// (side-local id).
  std::vector<Count> tip_numbers;

  /// Instrumentation (wedges, sync rounds, per-phase time).
  PeelStats stats;

  /// RECEIPT only — the coarse decomposition artifacts, kept for analysis
  /// and tests (empty for BUP/ParB):
  /// range_bounds = {θ(1), θ(2), …, θ(P'+1)}; subset i covers
  /// [range_bounds[i], range_bounds[i+1]). The final bound is
  /// kInvalidCount when the last subset is unbounded.
  std::vector<Count> range_bounds;
  /// subset_of[u] = index of the subset that u was assigned to.
  std::vector<uint32_t> subset_of;
  /// The subsets U_1 … U_P' in side-local ids, in peeling order.
  std::vector<std::vector<VertexId>> subsets;

  /// Maximum tip number (θ_max of Table 2).
  Count MaxTipNumber() const {
    Count max_tip = 0;
    for (const Count t : tip_numbers) max_tip = max_tip < t ? t : max_tip;
    return max_tip;
  }
};

}  // namespace receipt

#endif  // RECEIPT_TIP_TIP_COMMON_H_
