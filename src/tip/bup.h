#ifndef RECEIPT_TIP_BUP_H_
#define RECEIPT_TIP_BUP_H_

#include "graph/bipartite_graph.h"
#include "tip/tip_common.h"

namespace receipt {

/// Sequential Bottom-Up Peeling (Alg. 2) — the baseline tip decomposition of
/// Sariyuce & Pinar: initialize supports with per-vertex butterfly counting,
/// then repeatedly peel the minimum-support vertex, recording its support as
/// its tip number and decrementing the supports of its 2-hop neighbors by
/// the butterflies shared with the peeled vertex.
///
/// Only `options.side` is honoured (BUP is single-threaded; counting uses
/// `options.num_threads`). Complexity O(Σ_{u∈U} Σ_{v∈N_u} d_v).
TipResult BupDecompose(const BipartiteGraph& graph, const TipOptions& options);

}  // namespace receipt

#endif  // RECEIPT_TIP_BUP_H_
