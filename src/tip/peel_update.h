#ifndef RECEIPT_TIP_PEEL_UPDATE_H_
#define RECEIPT_TIP_PEEL_UPDATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "util/parallel.h"
#include "util/types.h"

namespace receipt {

/// Scratch space for one peel-update call (the `wdg_arr` of Alg. 2). One
/// instance per thread; Resize() once per decomposition.
struct UpdateScratch {
  std::vector<uint32_t> wedge_count;  // dense, indexed by 2-hop neighbor id
  std::vector<VertexId> touched;      // non-zero entries of wedge_count

  void Resize(VertexId n) {
    wedge_count.assign(n, 0);
    touched.clear();
  }
};

/// The support-update routine of Alg. 2 (lines 6-13), shared by BUP, ParB
/// and both RECEIPT steps.
///
/// Peels `u` (which must already be marked dead in `graph`): traverses all
/// live wedges (u, v, u2), aggregates shared-butterfly counts
/// ⊲⊳_{u,u2} = C(common_live_neighbors, 2), and decrements each live u2's
/// support, clamped from below at `floor` (the tip number of u, or the range
/// lower bound θ(i) in RECEIPT CD — Lemma 2).
///
/// kAtomic selects lock-free clamped decrements for concurrent peeling.
/// `on_updated(u2, new_support)` fires once per updated vertex (used to
/// track candidates for the next active set / heap pushes / re-bucketing).
///
/// Returns the number of wedges traversed.
template <bool kAtomic, typename OnUpdated>
uint64_t PeelUpdate(const DynamicGraph& graph, VertexId u, Count floor,
                    std::span<Count> support, UpdateScratch& scratch,
                    OnUpdated&& on_updated) {
  uint64_t wedges = 0;
  for (const VertexId v : graph.Neighbors(u)) {
    if (!graph.IsAlive(v)) continue;
    for (const VertexId u2 : graph.Neighbors(v)) {
      ++wedges;
      if (!graph.IsAlive(u2)) continue;  // includes u itself (already dead)
      if (scratch.wedge_count[u2]++ == 0) scratch.touched.push_back(u2);
    }
  }
  for (const VertexId u2 : scratch.touched) {
    const Count delta = Choose2(scratch.wedge_count[u2]);
    scratch.wedge_count[u2] = 0;
    if (delta == 0) continue;
    Count new_support;
    if constexpr (kAtomic) {
      new_support = AtomicClampedSub(&support[u2], delta, floor);
    } else {
      const Count cur = support[u2];
      new_support = (cur > floor + delta) ? cur - delta : floor;
      support[u2] = new_support;
    }
    on_updated(u2, new_support);
  }
  scratch.touched.clear();
  return wedges;
}

}  // namespace receipt

#endif  // RECEIPT_TIP_PEEL_UPDATE_H_
