#ifndef RECEIPT_TIP_PARB_H_
#define RECEIPT_TIP_PARB_H_

#include "graph/bipartite_graph.h"
#include "tip/tip_common.h"

namespace receipt {

/// ParB — the parallel bottom-up peeling baseline (§5.1): ParButterfly with
/// BATCH-mode peeling [Shi & Shun] re-implemented on the Julienne bucketing
/// structure with 128 open buckets. Every round extracts all vertices with
/// the minimum support, peels them concurrently with atomic clamped support
/// updates, and re-buckets the touched vertices. One thread barrier set per
/// round ⇒ stats.sync_rounds = ρ of Table 3.
TipResult ParbDecompose(const BipartiteGraph& graph,
                        const TipOptions& options);

}  // namespace receipt

#endif  // RECEIPT_TIP_PARB_H_
