#ifndef RECEIPT_DURABILITY_SNAPSHOT_H_
#define RECEIPT_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "durability/journal.h"
#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt::durability {

/// One tracked (kind, partitions) configuration's sealed baseline: the
/// final decomposition numbers, the coarse range bounds, and the supports
/// the incremental seal path diffs against.
struct SnapshotConfig {
  uint8_t kind = 0;  // service::RequestKind as its underlying value
  uint32_t partitions = 0;
  std::vector<Count> numbers;
  std::vector<Count> bounds;
  std::vector<Count> old_support;
};

/// Complete durable state of one live graph. Includes the *pending* edge
/// buffer: an on-demand snapshot must cover the journal up to now, and
/// acked-but-unsealed batches are part of "now".
struct SnapshotData {
  std::string graph;
  uint64_t epoch = 0;
  /// Journal position this snapshot covers: every record with
  /// lsn < (covered_segment, covered_offset) is reflected here and must be
  /// skipped on replay.
  uint64_t covered_segment = 0;
  uint64_t covered_offset = 0;
  uint32_t num_u = 0;
  uint32_t num_v = 0;
  std::vector<BipartiteGraph::Edge> edges;
  std::vector<EdgeOp> pending;
  std::vector<SnapshotConfig> configs;
};

/// Serializes to the versioned, checksummed snapshot format:
/// magic "RCPTSNP1" | version u32 | payload length u64 | crc32 | payload.
std::string EncodeSnapshot(const SnapshotData& data);

/// Parses `bytes`; fails on bad magic, version mismatch, checksum
/// mismatch, or truncation. A snapshot is all-or-nothing — there is no
/// torn-tail tolerance here, because files are only ever installed by
/// atomic rename of a fully written temp file.
bool DecodeSnapshot(const std::string& bytes, SnapshotData* data,
                    std::string* error);

/// Writes `data` to `<dir>/<sanitized graph name>.snap` via temp file +
/// fsync + atomic rename + directory fsync. The crash-point site
/// "snapshot.rename" sits between data fsync and rename.
bool WriteSnapshotFile(const std::string& dir, const SnapshotData& data,
                       std::string* error);

/// Filesystem-safe encoding of a graph name ([A-Za-z0-9._-] kept, the rest
/// hex-escaped as %XX). Injective, so distinct graphs never collide.
std::string SanitizeSnapshotName(const std::string& graph);

std::string SnapshotPath(const std::string& dir, const std::string& graph);

}  // namespace receipt::durability

#endif  // RECEIPT_DURABILITY_SNAPSHOT_H_
