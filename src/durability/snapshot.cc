#include "durability/snapshot.h"

#include <cstdio>
#include <cstring>

#include "durability/wire.h"
#include "util/crc32.h"
#include "util/io.h"

namespace receipt::durability {

namespace {

// "RCPTSNP1" little-endian.
constexpr uint64_t kSnapshotMagic = 0x31504E5354504352ull;
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint64_t kSnapshotHeaderBytes = 8 + 4 + 8 + 4;
constexpr uint64_t kMaxSnapshotPayload = 8ull << 30;

void PutCounts(ByteWriter* w, const std::vector<Count>& counts) {
  w->U64(counts.size());
  for (Count c : counts) w->U64(c);
}

bool GetCounts(ByteReader* r, std::vector<Count>* counts) {
  uint64_t n = r->U64();
  if (!r->ok || n * 8 > r->size - r->pos) return false;
  counts->resize(n);
  for (auto& c : *counts) c = r->U64();
  return r->ok;
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& data) {
  ByteWriter w;
  w.Str(data.graph);
  w.U64(data.epoch);
  w.U64(data.covered_segment);
  w.U64(data.covered_offset);
  w.U32(data.num_u);
  w.U32(data.num_v);
  w.U64(data.edges.size());
  for (const auto& e : data.edges) {
    w.U32(e.u);
    w.U32(e.v);
  }
  w.U64(data.pending.size());
  for (const auto& op : data.pending) {
    w.U8(op.insert ? 1 : 0);
    w.U32(op.u);
    w.U32(op.v);
  }
  w.U32(static_cast<uint32_t>(data.configs.size()));
  for (const auto& config : data.configs) {
    w.U8(config.kind);
    w.U32(config.partitions);
    PutCounts(&w, config.numbers);
    PutCounts(&w, config.bounds);
    PutCounts(&w, config.old_support);
  }

  ByteWriter out;
  out.U64(kSnapshotMagic);
  out.U32(kSnapshotVersion);
  out.U64(w.out.size());
  out.U32(util::Crc32(w.out.data(), w.out.size()));
  out.out.append(w.out);
  return std::move(out.out);
}

bool DecodeSnapshot(const std::string& bytes, SnapshotData* data,
                    std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (bytes.size() < kSnapshotHeaderBytes) return fail("snapshot truncated");
  ByteReader header(bytes.data(), kSnapshotHeaderBytes);
  if (header.U64() != kSnapshotMagic) return fail("bad snapshot magic");
  uint32_t version = header.U32();
  if (version != kSnapshotVersion) {
    return fail("snapshot version mismatch: got " + std::to_string(version) +
                ", want " + std::to_string(kSnapshotVersion));
  }
  uint64_t payload_len = header.U64();
  uint32_t crc = header.U32();
  if (payload_len > kMaxSnapshotPayload ||
      bytes.size() - kSnapshotHeaderBytes != payload_len) {
    return fail("snapshot payload length mismatch");
  }
  const char* payload = bytes.data() + kSnapshotHeaderBytes;
  if (util::Crc32(payload, payload_len) != crc) {
    return fail("snapshot checksum mismatch");
  }

  ByteReader r(payload, payload_len);
  data->graph = r.Str();
  data->epoch = r.U64();
  data->covered_segment = r.U64();
  data->covered_offset = r.U64();
  data->num_u = r.U32();
  data->num_v = r.U32();
  uint64_t num_edges = r.U64();
  if (!r.ok || num_edges * 8 > payload_len) {
    return fail("undecodable snapshot payload");
  }
  data->edges.resize(num_edges);
  for (auto& e : data->edges) {
    e.u = r.U32();
    e.v = r.U32();
  }
  uint64_t num_pending = r.U64();
  if (!r.ok || num_pending * 9 > payload_len) {
    return fail("undecodable snapshot payload");
  }
  data->pending.resize(num_pending);
  for (auto& op : data->pending) {
    op.insert = r.U8() != 0;
    op.u = r.U32();
    op.v = r.U32();
  }
  uint32_t num_configs = r.U32();
  if (!r.ok || num_configs > (1u << 20)) {
    return fail("undecodable snapshot payload");
  }
  data->configs.resize(num_configs);
  for (auto& config : data->configs) {
    config.kind = r.U8();
    config.partitions = r.U32();
    if (!GetCounts(&r, &config.numbers) || !GetCounts(&r, &config.bounds) ||
        !GetCounts(&r, &config.old_support)) {
      return fail("undecodable snapshot payload");
    }
  }
  if (!r.AtEnd()) return fail("undecodable snapshot payload");
  return true;
}

std::string SanitizeSnapshotName(const std::string& graph) {
  std::string out;
  out.reserve(graph.size());
  for (unsigned char c : graph) {
    bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    // '%' itself must be escaped to keep the encoding injective.
    if (safe && c != '%') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out.append(buf);
    }
  }
  if (out.empty()) out = "%00empty";
  return out;
}

std::string SnapshotPath(const std::string& dir, const std::string& graph) {
  return dir + "/" + SanitizeSnapshotName(graph) + ".snap";
}

bool WriteSnapshotFile(const std::string& dir, const SnapshotData& data,
                       std::string* error) {
  std::string bytes = EncodeSnapshot(data);
  std::string final_path = SnapshotPath(dir, data.graph);
  std::string tmp_path = final_path + ".tmp";
  {
    util::io::File file = util::io::File::Create(tmp_path, error);
    if (!file.valid()) return false;
    if (!file.WriteFully(bytes.data(), bytes.size(), error) ||
        !file.Sync(error)) {
      util::io::RemoveFile(tmp_path, nullptr);
      return false;
    }
  }
  util::io::CrashPoint("snapshot.rename");
  if (!util::io::AtomicRename(tmp_path, final_path, error)) {
    util::io::RemoveFile(tmp_path, nullptr);
    return false;
  }
  return util::io::SyncDir(dir, error);
}

}  // namespace receipt::durability
