#ifndef RECEIPT_DURABILITY_RECOVERY_H_
#define RECEIPT_DURABILITY_RECOVERY_H_

#include <memory>
#include <string>

#include "durability/manager.h"
#include "obs/observability.h"
#include "service/graph_registry.h"
#include "service/live_graph.h"

namespace receipt::durability {

/// What recovery found and replayed.
struct RecoveryReport {
  bool fresh_start = false;  ///< empty/missing data dir: nothing to recover
  uint64_t snapshots_loaded = 0;
  uint64_t graphs_recovered = 0;  ///< graphs registered after recovery
  uint64_t records_scanned = 0;
  uint64_t records_skipped = 0;  ///< below a snapshot's covered LSN
  uint64_t registrations_replayed = 0;
  uint64_t unregistrations_replayed = 0;
  uint64_t batches_replayed = 0;
  uint64_t updates_replayed = 0;
  uint64_t seals_replayed = 0;
  bool torn_tail = false;
  uint64_t torn_bytes = 0;
  double seconds = 0.0;
};

/// Recovers the registry + live-graph state from `options.data_dir`, then
/// opens (and returns) the durability manager for the recovered state —
/// the one startup entry point for `serve --data-dir`.
///
/// Loads the snapshot per graph, replays the journal suffix through the
/// LiveGraphManager's own replay path (skipping records each graph's
/// snapshot already covers), asserting the epoch chain is contiguous.
/// Replayed seals run the real seal path, so the recovered process serves
/// bit-identical results to the never-crashed one.
///
/// Fails (returns nullptr + *error) on anything that would mean serving
/// wrong data: corrupt snapshots, CRC-bad journal records, version
/// mismatches, broken epoch chains. A torn final record — the append a
/// crash interrupted — is the one expected artifact: it is truncated away
/// and reported, never fatal. An empty or missing data dir is a fresh
/// start, not an error.
std::unique_ptr<DurabilityManager> OpenWithRecovery(
    const DurabilityOptions& options, service::GraphRegistry& registry,
    service::LiveGraphManager& live, obs::Observability* obs,
    RecoveryReport* report, std::string* error);

}  // namespace receipt::durability

#endif  // RECEIPT_DURABILITY_RECOVERY_H_
