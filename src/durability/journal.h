#ifndef RECEIPT_DURABILITY_JOURNAL_H_
#define RECEIPT_DURABILITY_JOURNAL_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/io.h"

namespace receipt::durability {

/// When appends reach the disk. `kAlways` fsyncs every record (acknowledged
/// means power-loss durable), `kBatch` fsyncs once at least `batch_bytes`
/// are unsynced (acknowledged means process-crash durable, power-loss
/// durable within one batch window), `kOff` never fsyncs (process-crash
/// durable only — the page cache still survives kill -9).
enum class FsyncPolicy : uint8_t { kAlways = 0, kBatch = 1, kOff = 2 };

const char* FsyncPolicyName(FsyncPolicy policy);
/// Parses "always" / "batch" / "off"; false on anything else.
bool FsyncPolicyFromName(const std::string& name, FsyncPolicy* out);

/// One edge mutation inside a journaled batch.
struct EdgeOp {
  bool insert = true;
  uint32_t u = 0;
  uint32_t v = 0;
};

/// A journal record. One struct covers all types; unused fields stay empty.
struct JournalRecord {
  enum class Type : uint8_t {
    kRegister = 1,    // graph registered: epoch, shape, full edge list
    kUnregister = 2,  // graph evicted
    kEdgeBatch = 3,   // accepted batch: epoch it was accepted against, ops
    kSeal = 4,        // seal committed: epoch (old) -> new_epoch
  };

  Type type = Type::kEdgeBatch;
  std::string graph;
  uint64_t epoch = 0;
  uint64_t new_epoch = 0;
  uint32_t num_u = 0;
  uint32_t num_v = 0;
  std::vector<BipartiteGraph::Edge> edges;  // kRegister only
  std::vector<EdgeOp> updates;              // kEdgeBatch only
};

/// Position of a record: (segment sequence number, byte offset within it).
struct JournalLsn {
  uint64_t segment = 0;
  uint64_t offset = 0;
  auto operator<=>(const JournalLsn&) const = default;
};

struct JournalOptions {
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Rotate to a new segment once the current one exceeds this.
  uint64_t segment_bytes = 64ull << 20;
  /// kBatch: fsync once this many unsynced bytes accumulate.
  uint64_t batch_bytes = 256ull << 10;
};

struct JournalStats {
  uint64_t appends = 0;
  uint64_t append_failures = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;
  uint64_t rotations = 0;
  uint64_t segments_dropped = 0;
  uint64_t current_segment = 0;
  bool broken = false;
};

/// Append-only write-ahead journal over CRC32-framed records in rotating
/// segment files (`<dir>/<seq>.wal`). Thread-safe. Fail-stop: if a failed
/// append cannot be rolled back (the on-disk tail no longer matches the
/// acknowledged prefix), the journal marks itself broken and refuses all
/// further appends — callers surface that as 503, never as a silent ack.
class Journal {
 public:
  /// Opens for writing, always starting a fresh segment numbered above any
  /// existing one (recovery reads the old ones; the writer never appends
  /// to a tail whose validity it has not examined).
  static std::unique_ptr<Journal> Open(const JournalOptions& options,
                                       std::string* error);
  ~Journal();

  /// Encodes, frames, and writes `record`; fsyncs per policy. Returns true
  /// only once the record is durable to the policy's standard — the
  /// caller's acknowledgment gate.
  bool Append(const JournalRecord& record, std::string* error);

  /// Forces an fsync regardless of policy (no-op if nothing is unsynced).
  bool Sync(std::string* error);

  /// Position the *next* record will get. Everything a snapshot captures
  /// is covered by records strictly below this.
  JournalLsn CurrentLsn();

  /// Deletes sealed segments with sequence < `min_seq`. The active segment
  /// is never deleted. Best-effort: failures leave extra segments behind,
  /// which recovery skips via snapshot coverage.
  void DropSegmentsBelow(uint64_t min_seq);

  JournalStats stats();

  const std::string& dir() const { return options_.dir; }

 private:
  explicit Journal(const JournalOptions& options) : options_(options) {}
  bool RotateLocked(std::string* error);
  bool SyncLocked(std::string* error);

  JournalOptions options_;
  std::mutex mu_;
  util::io::File segment_;
  uint64_t segment_seq_ = 0;
  uint64_t segment_size_ = 0;
  uint64_t unsynced_bytes_ = 0;
  bool broken_ = false;
  JournalStats stats_;
};

/// Everything ScanJournal learned besides the records themselves.
struct JournalScanResult {
  uint64_t records = 0;
  uint64_t segments = 0;
  /// True when the final segment ended in a partial record — the write a
  /// crash interrupted. The torn bytes are truncated away in place so the
  /// next scan is clean. Never an error.
  bool torn_tail = false;
  uint64_t torn_bytes = 0;
};

/// Reads every segment in `dir` in sequence order, invoking `visit` per
/// record with its LSN; `visit` returning false stops the scan (still a
/// success). Hard errors — CRC mismatch on a complete record, bad segment
/// header, version mismatch, sequence gap, torn frame in a non-final
/// segment — fail the scan: refusing to serve beats serving from a journal
/// that lies.
bool ScanJournal(
    const std::string& dir,
    const std::function<bool(const JournalRecord&, const JournalLsn&)>& visit,
    JournalScanResult* result, std::string* error);

/// Exposed for tests: exact byte framing of one record (no segment header).
std::string EncodeFrame(const JournalRecord& record);

}  // namespace receipt::durability

#endif  // RECEIPT_DURABILITY_JOURNAL_H_
