#include "durability/recovery.h"

#include <algorithm>
#include <map>

#include "util/io.h"
#include "util/timer.h"

namespace receipt::durability {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::unique_ptr<DurabilityManager> OpenWithRecovery(
    const DurabilityOptions& options, service::GraphRegistry& registry,
    service::LiveGraphManager& live, obs::Observability* obs,
    RecoveryReport* report, std::string* error) {
  WallTimer timer;
  *report = RecoveryReport{};
  const std::string journal_dir =
      DurabilityManager::JournalDirFor(options.data_dir);
  const std::string snapshot_dir =
      DurabilityManager::SnapshotDirFor(options.data_dir);

  // -- 1. snapshots: newest durable baseline per graph --------------------
  // graph -> journal LSN its snapshot covers; records below it are already
  // reflected in the restored state and must not replay twice.
  std::map<std::string, JournalLsn> covered;
  // graph -> lowest segment recovery still needed (snapshot coverage, or
  // the registration record's segment for never-snapshotted graphs).
  std::map<std::string, uint64_t> needed_segment;
  for (const std::string& name : util::io::ListDir(snapshot_dir, nullptr)) {
    const std::string path = snapshot_dir + "/" + name;
    if (EndsWith(name, ".tmp")) {
      // An install a crash interrupted before the rename; the real file —
      // if any — still holds the previous complete snapshot.
      util::io::RemoveFile(path, nullptr);
      continue;
    }
    if (!EndsWith(name, ".snap")) continue;
    std::string bytes;
    if (!util::io::ReadFileBytes(path, &bytes, error)) return nullptr;
    SnapshotData data;
    std::string decode_error;
    if (!DecodeSnapshot(bytes, &data, &decode_error)) {
      // Snapshots are installed atomically, so a bad one is media
      // corruption, not a crash artifact — refuse to serve guessed state.
      if (error != nullptr) *error = path + ": " + decode_error;
      return nullptr;
    }
    std::string restore_error;
    if (live.RestoreSnapshot(data, &restore_error) != service::Status::kOk) {
      if (error != nullptr) *error = path + ": " + restore_error;
      return nullptr;
    }
    covered[data.graph] = JournalLsn{data.covered_segment,
                                     data.covered_offset};
    needed_segment[data.graph] = data.covered_segment;
    report->snapshots_loaded += 1;
  }

  // -- 2. journal suffix: replay everything the snapshots don't cover -----
  std::string replay_error;
  auto visit = [&](const JournalRecord& record, const JournalLsn& lsn) {
    report->records_scanned += 1;
    const auto it = covered.find(record.graph);
    if (it != covered.end() && lsn < it->second) {
      report->records_skipped += 1;
      return true;
    }
    service::Status status = service::Status::kOk;
    switch (record.type) {
      case JournalRecord::Type::kRegister: {
        for (const auto& e : record.edges) {
          if (e.u >= record.num_u || e.v >= record.num_v) {
            replay_error = "journaled registration of '" + record.graph +
                           "' has out-of-shape edges";
            return false;
          }
        }
        // A re-registration supersedes the snapshot and everything
        // buffered: from here on this graph replays from the record.
        live.DropState(record.graph);
        covered.erase(record.graph);
        registry.RegisterAtEpoch(
            record.graph,
            BipartiteGraph::FromEdges(record.num_u, record.num_v,
                                      {record.edges.begin(),
                                       record.edges.end()}),
            record.epoch);
        needed_segment[record.graph] = lsn.segment;
        report->registrations_replayed += 1;
        break;
      }
      case JournalRecord::Type::kUnregister:
        live.DropState(record.graph);
        registry.Evict(record.graph);
        covered.erase(record.graph);
        needed_segment.erase(record.graph);
        report->unregistrations_replayed += 1;
        break;
      case JournalRecord::Type::kEdgeBatch:
        status = live.ReplayBatch(record.graph, record.epoch, record.updates,
                                  &replay_error);
        if (status == service::Status::kOk) {
          report->batches_replayed += 1;
          report->updates_replayed += record.updates.size();
        }
        break;
      case JournalRecord::Type::kSeal:
        status = live.ReplaySeal(record.graph, record.epoch, record.new_epoch,
                                 /*threads=*/0, &replay_error);
        if (status == service::Status::kOk) report->seals_replayed += 1;
        break;
    }
    return status == service::Status::kOk;
  };
  JournalScanResult scan;
  if (!ScanJournal(journal_dir, visit, &scan, error)) return nullptr;
  if (!replay_error.empty()) {
    if (error != nullptr) *error = "journal replay: " + replay_error;
    return nullptr;
  }
  report->torn_tail = scan.torn_tail;
  report->torn_bytes = scan.torn_bytes;
  report->graphs_recovered = registry.size();
  report->fresh_start =
      report->snapshots_loaded == 0 && report->records_scanned == 0;

  // -- 3. open the journal for the new life of the process ----------------
  std::unique_ptr<DurabilityManager> manager =
      DurabilityManager::Open(options, obs, error);
  if (manager == nullptr) return nullptr;
  manager->SeedCoverage(needed_segment);
  live.SetDurability(manager.get());
  report->seconds = timer.Seconds();
  return manager;
}

}  // namespace receipt::durability
