#ifndef RECEIPT_DURABILITY_WIRE_H_
#define RECEIPT_DURABILITY_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace receipt::durability {

/// Little-endian append-only encoder for journal/snapshot payloads.
/// Deliberately dumb: fixed-width ints + length-prefixed strings, so the
/// on-disk format is describable in one sentence per record type.
struct ByteWriter {
  std::string out;

  void U8(uint8_t v) { out.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
  }

  void U64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
  }

  void Bytes(const void* data, size_t size) {
    out.append(static_cast<const char*>(data), size);
  }

  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    out.append(s);
  }
};

/// Matching decoder. Any short read flips `ok` and every later read
/// returns zero, so callers validate once at the end.
struct ByteReader {
  const char* data = nullptr;
  size_t size = 0;
  size_t pos = 0;
  bool ok = true;

  ByteReader(const void* d, size_t n)
      : data(static_cast<const char*>(d)), size(n) {}

  bool Need(size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data[pos++]);
  }

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v;
    std::memcpy(&v, data + pos, 8);
    pos += 8;
    return v;
  }

  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(data + pos, n);
    pos += n;
    return s;
  }

  bool AtEnd() const { return ok && pos == size; }
};

}  // namespace receipt::durability

#endif  // RECEIPT_DURABILITY_WIRE_H_
