#ifndef RECEIPT_DURABILITY_MANAGER_H_
#define RECEIPT_DURABILITY_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "durability/journal.h"
#include "durability/snapshot.h"
#include "obs/observability.h"

namespace receipt::durability {

struct DurabilityOptions {
  /// Root data directory. Layout: `<data_dir>/journal/<seq>.wal` and
  /// `<data_dir>/snapshots/<graph>.snap`.
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  uint64_t segment_bytes = 64ull << 20;
  uint64_t batch_bytes = 256ull << 10;
  /// Write a snapshot after every seal (and truncate covered journal
  /// segments). Off leaves the journal to grow until an admin snapshot.
  bool snapshot_on_seal = true;
};

struct DurabilityStats {
  JournalStats journal;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  bool snapshot_on_seal = true;
};

/// The service-facing durability facade: owns the journal and the snapshot
/// directory, tracks which journal segment each live graph still needs,
/// and truncates segments no graph needs. Knows nothing about the service
/// layer — `recovery.{h,cc}` is the one file that bridges the two.
class DurabilityManager {
 public:
  /// Creates directories, opens a fresh journal segment. `obs` may be
  /// null (instruments are skipped).
  static std::unique_ptr<DurabilityManager> Open(
      const DurabilityOptions& options, obs::Observability* obs,
      std::string* error);

  /// Recovery seeding: graph -> lowest journal segment still holding
  /// records the graph's snapshot does not cover.
  void SeedCoverage(const std::map<std::string, uint64_t>& needed_segment);

  // -- write-ahead logging. Each returns true once durable per policy. ----
  bool LogRegister(const std::string& graph, uint64_t epoch, uint32_t num_u,
                   uint32_t num_v, std::span<const BipartiteGraph::Edge> edges,
                   std::string* error);
  bool LogUnregister(const std::string& graph, std::string* error);
  bool LogEdgeBatch(const std::string& graph, uint64_t epoch,
                    std::span<const EdgeOp> updates, std::string* error);
  bool LogSeal(const std::string& graph, uint64_t old_epoch,
               uint64_t new_epoch, std::string* error);

  /// Writes `data` as the graph's snapshot. Fills in the covered LSN from
  /// the journal's current position — the caller must hold whatever lock
  /// makes `data` consistent with "no concurrent appends for this graph".
  /// On success, drops journal segments no live graph needs any more.
  bool WriteSnapshot(SnapshotData* data, std::string* error);

  bool snapshot_on_seal() const { return options_.snapshot_on_seal; }
  const std::string& data_dir() const { return options_.data_dir; }
  std::string journal_dir() const { return options_.data_dir + "/journal"; }
  std::string snapshot_dir() const {
    return options_.data_dir + "/snapshots";
  }

  DurabilityStats stats();

  static std::string JournalDirFor(const std::string& data_dir) {
    return data_dir + "/journal";
  }
  static std::string SnapshotDirFor(const std::string& data_dir) {
    return data_dir + "/snapshots";
  }

 private:
  explicit DurabilityManager(const DurabilityOptions& options)
      : options_(options) {}
  bool AppendInstrumented(const JournalRecord& record, std::string* error);
  void NoteGraphActivityLocked(const std::string& graph);

  DurabilityOptions options_;
  std::unique_ptr<Journal> journal_;
  obs::Counter* journal_appends_ = nullptr;
  obs::Counter* journal_bytes_ = nullptr;
  obs::Counter* journal_failures_ = nullptr;
  obs::Counter* snapshot_writes_ = nullptr;
  obs::Counter* snapshot_failures_counter_ = nullptr;
  obs::Histogram* append_latency_ = nullptr;
  obs::Histogram* snapshot_latency_ = nullptr;

  std::mutex mu_;
  /// graph -> lowest journal segment whose records the graph still needs
  /// on replay. Min over all graphs = the truncation floor.
  std::map<std::string, uint64_t> needed_segment_;
  uint64_t snapshots_written_ = 0;
  uint64_t snapshot_failures_ = 0;
};

}  // namespace receipt::durability

#endif  // RECEIPT_DURABILITY_MANAGER_H_
