#include "durability/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "durability/wire.h"
#include "util/crc32.h"

namespace receipt::durability {

namespace {

// "RCPTWAL1" little-endian, followed by a format version and the segment's
// own sequence number (so a renamed file cannot impersonate another slot).
constexpr uint64_t kSegmentMagic = 0x314C415754504352ull;
constexpr uint32_t kSegmentVersion = 1;
constexpr uint64_t kSegmentHeaderBytes = 8 + 4 + 8;
// Frames above this are rejected as corruption rather than attempted as a
// 4GB allocation.
constexpr uint32_t kMaxFrameBytes = 1u << 30;

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08" PRIu64 ".wal", seq);
  return buf;
}

/// Parses "<8 digits>.wal" into *seq; false for any other file name.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() != 12 || name.substr(8) != ".wal") return false;
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

std::string EncodePayload(const JournalRecord& record) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(record.type));
  w.Str(record.graph);
  w.U64(record.epoch);
  w.U64(record.new_epoch);
  w.U32(record.num_u);
  w.U32(record.num_v);
  w.U32(static_cast<uint32_t>(record.edges.size()));
  for (const auto& e : record.edges) {
    w.U32(e.u);
    w.U32(e.v);
  }
  w.U32(static_cast<uint32_t>(record.updates.size()));
  for (const auto& op : record.updates) {
    w.U8(op.insert ? 1 : 0);
    w.U32(op.u);
    w.U32(op.v);
  }
  return std::move(w.out);
}

bool DecodePayload(const char* data, size_t size, JournalRecord* record) {
  ByteReader r(data, size);
  record->type = static_cast<JournalRecord::Type>(r.U8());
  record->graph = r.Str();
  record->epoch = r.U64();
  record->new_epoch = r.U64();
  record->num_u = r.U32();
  record->num_v = r.U32();
  uint32_t num_edges = r.U32();
  if (!r.ok || static_cast<size_t>(num_edges) * 8 > size) return false;
  record->edges.resize(num_edges);
  for (auto& e : record->edges) {
    e.u = r.U32();
    e.v = r.U32();
  }
  uint32_t num_updates = r.U32();
  if (!r.ok || static_cast<size_t>(num_updates) * 9 > size) return false;
  record->updates.resize(num_updates);
  for (auto& op : record->updates) {
    op.insert = r.U8() != 0;
    op.u = r.U32();
    op.v = r.U32();
  }
  if (!r.AtEnd()) return false;
  switch (record->type) {
    case JournalRecord::Type::kRegister:
    case JournalRecord::Type::kUnregister:
    case JournalRecord::Type::kEdgeBatch:
    case JournalRecord::Type::kSeal:
      return true;
  }
  return false;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

bool FsyncPolicyFromName(const std::string& name, FsyncPolicy* out) {
  if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (name == "batch") {
    *out = FsyncPolicy::kBatch;
  } else if (name == "off") {
    *out = FsyncPolicy::kOff;
  } else {
    return false;
  }
  return true;
}

std::string EncodeFrame(const JournalRecord& record) {
  std::string payload = EncodePayload(record);
  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(util::Crc32(payload.data(), payload.size()));
  frame.out.append(payload);
  return std::move(frame.out);
}

std::unique_ptr<Journal> Journal::Open(const JournalOptions& options,
                                       std::string* error) {
  if (!util::io::EnsureDir(options.dir, error)) return nullptr;
  uint64_t max_seq = 0;
  for (const auto& name : util::io::ListDir(options.dir, nullptr)) {
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) max_seq = std::max(max_seq, seq);
  }
  std::unique_ptr<Journal> journal(new Journal(options));
  journal->segment_seq_ = max_seq;  // RotateLocked bumps to max_seq + 1
  if (!journal->RotateLocked(error)) return nullptr;
  journal->stats_.rotations = 0;  // the opening segment is not a rotation
  return journal;
}

Journal::~Journal() {
  std::string error;
  std::lock_guard<std::mutex> lock(mu_);
  if (!broken_ && unsynced_bytes_ > 0) SyncLocked(&error);
}

bool Journal::RotateLocked(std::string* error) {
  util::io::CrashPoint("journal.rotate");
  segment_seq_ += 1;
  std::string path = options_.dir + "/" + SegmentName(segment_seq_);
  util::io::File file = util::io::File::OpenAppend(path, error);
  if (!file.valid()) return false;
  ByteWriter header;
  header.U64(kSegmentMagic);
  header.U32(kSegmentVersion);
  header.U64(segment_seq_);
  if (!file.WriteFully(header.out.data(), header.out.size(), error)) {
    return false;
  }
  if (!file.Sync(error)) return false;
  if (!util::io::SyncDir(options_.dir, error)) return false;
  segment_ = std::move(file);
  segment_size_ = kSegmentHeaderBytes;
  unsynced_bytes_ = 0;
  stats_.rotations += 1;
  stats_.current_segment = segment_seq_;
  return true;
}

bool Journal::SyncLocked(std::string* error) {
  if (!segment_.Sync(error)) return false;
  unsynced_bytes_ = 0;
  stats_.fsyncs += 1;
  return true;
}

bool Journal::Append(const JournalRecord& record, std::string* error) {
  std::string frame = EncodeFrame(record);
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    if (error != nullptr) *error = "journal is broken (fail-stop)";
    stats_.append_failures += 1;
    return false;
  }
  if (segment_size_ >= options_.segment_bytes) {
    if (!RotateLocked(error)) {
      // segment_seq_ may already be bumped with no file installed; the
      // writer's position is no longer trustworthy. Fail-stop.
      broken_ = true;
      stats_.broken = true;
      stats_.append_failures += 1;
      return false;
    }
  }
  uint64_t pre_offset = segment_size_;
  util::io::CrashPoint("journal.append.pre-write");
  if (!segment_.WriteFully(frame.data(), frame.size(), error)) {
    // Roll the on-disk tail back to the acknowledged prefix. If even that
    // fails (halted shim, dead device) the tail may hold torn bytes we can
    // no longer remove — fail-stop so no later append lands after them.
    std::string trunc_error;
    if (!segment_.Truncate(pre_offset, &trunc_error)) {
      broken_ = true;
      stats_.broken = true;
    }
    stats_.append_failures += 1;
    return false;
  }
  segment_size_ += frame.size();
  unsynced_bytes_ += frame.size();
  util::io::CrashPoint("journal.append.pre-fsync");
  bool need_sync = options_.fsync == FsyncPolicy::kAlways ||
                   (options_.fsync == FsyncPolicy::kBatch &&
                    unsynced_bytes_ >= options_.batch_bytes);
  if (need_sync && !SyncLocked(error)) {
    // The record reached the page cache but not necessarily the platter;
    // the caller must not ack. Roll back so the acked prefix stays exact.
    std::string trunc_error;
    if (segment_.Truncate(pre_offset, &trunc_error)) {
      segment_size_ = pre_offset;
      unsynced_bytes_ = unsynced_bytes_ >= frame.size()
                            ? unsynced_bytes_ - frame.size()
                            : 0;
    } else {
      broken_ = true;
      stats_.broken = true;
    }
    stats_.append_failures += 1;
    return false;
  }
  stats_.appends += 1;
  stats_.bytes_written += frame.size();
  return true;
}

bool Journal::Sync(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    if (error != nullptr) *error = "journal is broken (fail-stop)";
    return false;
  }
  if (unsynced_bytes_ == 0) return true;
  return SyncLocked(error);
}

JournalLsn Journal::CurrentLsn() {
  std::lock_guard<std::mutex> lock(mu_);
  return {segment_seq_, segment_size_};
}

void Journal::DropSegmentsBelow(uint64_t min_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  util::io::CrashPoint("journal.truncate");
  bool dropped = false;
  for (const auto& name : util::io::ListDir(options_.dir, nullptr)) {
    uint64_t seq = 0;
    if (!ParseSegmentName(name, &seq)) continue;
    if (seq >= min_seq || seq == segment_seq_) continue;
    if (util::io::RemoveFile(options_.dir + "/" + name, nullptr)) {
      stats_.segments_dropped += 1;
      dropped = true;
    }
  }
  if (dropped) util::io::SyncDir(options_.dir, nullptr);
}

JournalStats Journal::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool ScanJournal(
    const std::string& dir,
    const std::function<bool(const JournalRecord&, const JournalLsn&)>& visit,
    JournalScanResult* result, std::string* error) {
  *result = JournalScanResult{};
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const auto& name : util::io::ListDir(dir, nullptr)) {
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) segments.emplace_back(seq, name);
  }
  std::sort(segments.begin(), segments.end());
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first != segments[i].first + 1) {
      if (error != nullptr) {
        *error = "journal segment gap: " + segments[i].second + " -> " +
                 segments[i + 1].second;
      }
      return false;
    }
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, name] = segments[i];
    const bool final_segment = i + 1 == segments.size();
    std::string path = dir + "/" + name;
    std::string bytes;
    if (!util::io::ReadFileBytes(path, &bytes, error)) return false;
    result->segments += 1;
    ByteReader header(bytes.data(),
                      std::min<size_t>(bytes.size(), kSegmentHeaderBytes));
    uint64_t magic = header.U64();
    uint32_t version = header.U32();
    uint64_t header_seq = header.U64();
    if (!header.ok || magic != kSegmentMagic) {
      if (error != nullptr) *error = "bad journal segment header: " + path;
      return false;
    }
    if (version != kSegmentVersion) {
      if (error != nullptr) {
        *error = "journal segment version mismatch in " + path + ": got " +
                 std::to_string(version) + ", want " +
                 std::to_string(kSegmentVersion);
      }
      return false;
    }
    if (header_seq != seq) {
      if (error != nullptr) {
        *error = "journal segment sequence mismatch: " + path;
      }
      return false;
    }
    size_t pos = kSegmentHeaderBytes;
    while (pos < bytes.size()) {
      uint32_t len = 0;
      uint32_t crc = 0;
      bool torn = bytes.size() - pos < 8;
      if (!torn) {
        std::memcpy(&len, bytes.data() + pos, 4);
        std::memcpy(&crc, bytes.data() + pos + 4, 4);
        if (len > kMaxFrameBytes) {
          if (error != nullptr) {
            *error = "journal frame length " + std::to_string(len) +
                     " exceeds limit in " + path;
          }
          return false;
        }
        torn = bytes.size() - pos - 8 < len;
      }
      if (torn) {
        if (!final_segment) {
          if (error != nullptr) {
            *error = "torn record in non-final journal segment: " + path;
          }
          return false;
        }
        result->torn_tail = true;
        result->torn_bytes = bytes.size() - pos;
        util::io::TruncateFile(path, pos, nullptr);
        return true;
      }
      const char* payload = bytes.data() + pos + 8;
      if (util::Crc32(payload, len) != crc) {
        if (error != nullptr) {
          *error = "journal CRC mismatch at " + path + " offset " +
                   std::to_string(pos);
        }
        return false;
      }
      JournalRecord record;
      if (!DecodePayload(payload, len, &record)) {
        if (error != nullptr) {
          *error = "undecodable journal record at " + path + " offset " +
                   std::to_string(pos);
        }
        return false;
      }
      result->records += 1;
      if (!visit(record, JournalLsn{seq, pos})) return true;
      pos += 8 + len;
    }
  }
  return true;
}

}  // namespace receipt::durability
