#include "durability/manager.h"

#include <algorithm>
#include <limits>

#include "util/timer.h"

namespace receipt::durability {

std::unique_ptr<DurabilityManager> DurabilityManager::Open(
    const DurabilityOptions& options, obs::Observability* obs,
    std::string* error) {
  if (options.data_dir.empty()) {
    if (error != nullptr) *error = "durability: empty data_dir";
    return nullptr;
  }
  std::unique_ptr<DurabilityManager> manager(new DurabilityManager(options));
  if (!util::io::EnsureDir(manager->journal_dir(), error) ||
      !util::io::EnsureDir(manager->snapshot_dir(), error)) {
    return nullptr;
  }
  JournalOptions journal_options;
  journal_options.dir = manager->journal_dir();
  journal_options.fsync = options.fsync;
  journal_options.segment_bytes = options.segment_bytes;
  journal_options.batch_bytes = options.batch_bytes;
  manager->journal_ = Journal::Open(journal_options, error);
  if (manager->journal_ == nullptr) return nullptr;
  if (obs != nullptr) {
    auto& m = obs->metrics;
    manager->journal_appends_ = m.GetCounter(
        "receipt_journal_appends_total", "Journal records appended");
    manager->journal_bytes_ = m.GetCounter("receipt_journal_bytes_total",
                                           "Journal bytes written");
    manager->journal_failures_ = m.GetCounter(
        "receipt_journal_append_failures_total", "Journal append failures");
    manager->snapshot_writes_ = m.GetCounter(
        "receipt_snapshot_writes_total", "Snapshot files written");
    manager->snapshot_failures_counter_ = m.GetCounter(
        "receipt_snapshot_failures_total", "Snapshot write failures");
    manager->append_latency_ = m.GetHistogram(
        "receipt_journal_append_seconds", "Journal append latency");
    manager->snapshot_latency_ = m.GetHistogram(
        "receipt_snapshot_write_seconds", "Snapshot write latency");
  }
  return manager;
}

void DurabilityManager::SeedCoverage(
    const std::map<std::string, uint64_t>& needed_segment) {
  std::lock_guard<std::mutex> lock(mu_);
  needed_segment_ = needed_segment;
}

void DurabilityManager::NoteGraphActivityLocked(const std::string& graph) {
  // First journaled activity for a graph with no snapshot coverage yet:
  // it needs the active segment onward.
  needed_segment_.emplace(graph, journal_->CurrentLsn().segment);
}

bool DurabilityManager::AppendInstrumented(const JournalRecord& record,
                                           std::string* error) {
  WallTimer timer;
  size_t bytes = 0;
  bool ok = journal_->Append(record, error);
  if (ok && journal_appends_ != nullptr) {
    bytes = EncodeFrame(record).size();
  }
  if (ok) {
    if (journal_appends_ != nullptr) journal_appends_->Increment();
    if (journal_bytes_ != nullptr) journal_bytes_->Increment(bytes);
    if (append_latency_ != nullptr) {
      append_latency_->ObserveSeconds(timer.Seconds());
    }
  } else if (journal_failures_ != nullptr) {
    journal_failures_->Increment();
  }
  return ok;
}

bool DurabilityManager::LogRegister(const std::string& graph, uint64_t epoch,
                                    uint32_t num_u, uint32_t num_v,
                                    std::span<const BipartiteGraph::Edge> edges,
                                    std::string* error) {
  JournalRecord record;
  record.type = JournalRecord::Type::kRegister;
  record.graph = graph;
  record.epoch = epoch;
  record.num_u = num_u;
  record.num_v = num_v;
  record.edges.assign(edges.begin(), edges.end());
  {
    // A re-register supersedes all earlier records for the name, so the
    // registration record itself is the graph's new replay floor.
    std::lock_guard<std::mutex> lock(mu_);
    needed_segment_[graph] = journal_->CurrentLsn().segment;
  }
  return AppendInstrumented(record, error);
}

bool DurabilityManager::LogUnregister(const std::string& graph,
                                      std::string* error) {
  JournalRecord record;
  record.type = JournalRecord::Type::kUnregister;
  record.graph = graph;
  bool ok = AppendInstrumented(record, error);
  if (ok) {
    std::lock_guard<std::mutex> lock(mu_);
    needed_segment_.erase(graph);
  }
  return ok;
}

bool DurabilityManager::LogEdgeBatch(const std::string& graph, uint64_t epoch,
                                     std::span<const EdgeOp> updates,
                                     std::string* error) {
  JournalRecord record;
  record.type = JournalRecord::Type::kEdgeBatch;
  record.graph = graph;
  record.epoch = epoch;
  record.updates.assign(updates.begin(), updates.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    NoteGraphActivityLocked(graph);
  }
  return AppendInstrumented(record, error);
}

bool DurabilityManager::LogSeal(const std::string& graph, uint64_t old_epoch,
                                uint64_t new_epoch, std::string* error) {
  JournalRecord record;
  record.type = JournalRecord::Type::kSeal;
  record.graph = graph;
  record.epoch = old_epoch;
  record.new_epoch = new_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NoteGraphActivityLocked(graph);
  }
  return AppendInstrumented(record, error);
}

bool DurabilityManager::WriteSnapshot(SnapshotData* data, std::string* error) {
  WallTimer timer;
  JournalLsn lsn = journal_->CurrentLsn();
  data->covered_segment = lsn.segment;
  data->covered_offset = lsn.offset;
  if (!WriteSnapshotFile(snapshot_dir(), *data, error)) {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_failures_ += 1;
    if (snapshot_failures_counter_ != nullptr) {
      snapshot_failures_counter_->Increment();
    }
    return false;
  }
  uint64_t floor;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The snapshot covers everything below the current segment; this
    // graph only needs the active segment onward now.
    needed_segment_[data->graph] = lsn.segment;
    floor = lsn.segment;
    for (const auto& [name, seq] : needed_segment_) {
      floor = std::min(floor, seq);
    }
    snapshots_written_ += 1;
  }
  journal_->DropSegmentsBelow(floor);
  if (snapshot_writes_ != nullptr) snapshot_writes_->Increment();
  if (snapshot_latency_ != nullptr) {
    snapshot_latency_->ObserveSeconds(timer.Seconds());
  }
  return true;
}

DurabilityStats DurabilityManager::stats() {
  DurabilityStats stats;
  stats.journal = journal_->stats();
  stats.fsync = options_.fsync;
  stats.snapshot_on_seal = options_.snapshot_on_seal;
  std::lock_guard<std::mutex> lock(mu_);
  stats.snapshots_written = snapshots_written_;
  stats.snapshot_failures = snapshot_failures_;
  return stats;
}

}  // namespace receipt::durability
