#ifndef RECEIPT_WING_RECEIPT_WING_H_
#define RECEIPT_WING_RECEIPT_WING_H_

#include <span>
#include <vector>

#include "engine/peel_engine.h"
#include "engine/range_result.h"
#include "graph/bipartite_graph.h"
#include "obs/trace.h"
#include "wing/wing_decomposition.h"

namespace receipt {

/// Options for the parallel RECEIPT-style wing decomposition.
struct ReceiptWingOptions {
  int num_threads = 1;

  /// Number of wing-number ranges / edge subsets. Wing-number ranges are
  /// much narrower than tip-number ranges (§7), so a handful of partitions
  /// suffices; large values inflate the fine-grained environment graphs.
  int num_partitions = 8;

  /// Coarse step only: frontier-density threshold of the engine's direction
  /// optimization (see TipOptions::frontier_density_threshold — ≤ 0 forces
  /// scan-only rebuilds, > 1 frontier-only; bit-identical either way).
  double frontier_density_threshold = kDefaultFrontierDensity;

  /// Coarse step only: rebuild-direction rule (see
  /// TipOptions::frontier_switch; bit-identical either way).
  FrontierSwitch frontier_switch = FrontierSwitch::kMeasuredCost;

  /// Coarse step only: histogram-indexed range bounds + delta-patched
  /// ⊲⊳init (see TipOptions::use_support_index; `false` retains the legacy
  /// per-range O(m) scan path, bit-identical either way).
  bool use_support_index = true;

  /// Caller-owned per-thread scratch (see TipOptions::workspace_pool).
  engine::WorkspacePool* workspace_pool = nullptr;

  /// Optional cancellation/progress hook (see TipOptions::control).
  engine::PeelControl* control = nullptr;

  /// Span sink + request identity (see TipOptions::trace). Null by
  /// default; tracing never changes results.
  obs::TraceContext trace;
};

/// Runs only the coarse step of RECEIPT-W: edge-butterfly counting plus the
/// range decomposition of the edge set, without the fine-grained per-subset
/// peeling. Exposed so the coarse artifacts (bounds, subsets, subset_of,
/// ⊲⊳init) can be inspected and equivalence-tested directly — the
/// indexed-vs-scan coarse sweeps and bench_coarse_micro compare these
/// RangeResults bit-for-bit. Contributes wedges_counting, the CD counters
/// and num_subsets to `*stats`.
engine::RangeResult<EdgeOffset> ReceiptWingCoarse(
    const BipartiteGraph& graph, const ReceiptWingOptions& options,
    PeelStats* stats);

/// Incremental hookup for the live-update serving path (edge analogue of
/// CdIncremental): `record` captures this run's boundary patch log,
/// `initial_support` receives the freshly counted per-edge supports, and
/// `seed`/`outcome` switch the coarse pass to RunIncremental. Edge ids in
/// the seed must already be remapped into this graph's id space.
struct WingIncremental {
  engine::CoarsePatchLog* record = nullptr;
  std::vector<Count>* initial_support = nullptr;
  const engine::IncrementalSeed<EdgeOffset>* seed = nullptr;
  engine::IncrementalOutcome* outcome = nullptr;
};

/// Incremental-aware overload: a plain full run when `inc` is all-null.
engine::RangeResult<EdgeOffset> ReceiptWingCoarse(
    const BipartiteGraph& graph, const ReceiptWingOptions& options,
    PeelStats* stats, const WingIncremental& inc);

/// Fine step only, selectively: peels the subsets with
/// `only_subsets[sid] != 0` (an empty span means all) against their
/// environment graphs, leaving every other entry of `wing_numbers`
/// untouched — the incremental serving path reuses sealed numbers for
/// clean subsets. Subset peels only read the coarse artifacts and the
/// graph, so the peeled subsets' numbers are bit-identical to a full pass.
void ReceiptWingFine(const BipartiteGraph& graph,
                     const engine::RangeResult<EdgeOffset>& coarse,
                     const ReceiptWingOptions& options,
                     std::span<Count> wing_numbers, PeelStats* stats,
                     std::span<const uint8_t> only_subsets);

/// RECEIPT-W — the §7 extension direction made concrete: the two-step
/// RECEIPT scheme applied to *edge* peeling (wing decomposition).
///
/// Step 1 (coarse): edges are partitioned into subsets with non-overlapping
/// wing-number ranges by concurrently peeling every edge whose support lies
/// in the current range. The §7 conflict the paper warns about — multiple
/// edges of one butterfly peeled in the same iteration must not each apply
/// the butterfly's update — is resolved by a priority rule: among the
/// edges of a butterfly peeled in the same round, only the smallest edge id
/// applies the decrement to the butterfly's surviving edges.
///
/// Step 2 (fine): each subset is peeled sequentially against its
/// *environment graph* (the union of its own and all higher subsets'
/// edges — unlike tip decomposition, a butterfly's other two edges can lie
/// in higher subsets), with supports initialized from the coarse step.
/// Subsets are processed concurrently by a dynamic task queue.
///
/// Produces exactly the wing numbers of sequential WingDecompose.
WingResult ReceiptWingDecompose(const BipartiteGraph& graph,
                                const ReceiptWingOptions& options);

}  // namespace receipt

#endif  // RECEIPT_WING_RECEIPT_WING_H_
