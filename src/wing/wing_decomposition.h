#ifndef RECEIPT_WING_WING_DECOMPOSITION_H_
#define RECEIPT_WING_WING_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt {

namespace engine {
class PeelControl;
class WorkspacePool;
}  // namespace engine

/// Edge identifiers for wing decomposition: edge e ∈ [0, m) is the e-th slot
/// of the U-side CSR region, i.e. the pair (EdgeSourceU(g, e),
/// g.adjacency()[e]). U vertices own the contiguous prefix of the adjacency
/// array, so this needs no extra storage.
VertexId EdgeSourceU(const BipartiteGraph& graph, EdgeOffset edge_id);

/// Per-edge butterfly counts: bcnt(u,v) = # butterflies containing edge
/// (u,v) = Σ_{u'∈N(v)\{u}} (|N(u) ∩ N(u')| − 1). O(Σ wedges) via the
/// Chiba–Nishizeki triple traversal; parallel over U vertices (each owns its
/// edges, so no atomics are needed).
std::vector<Count> PerEdgeButterflyCount(const BipartiteGraph& graph,
                                         int num_threads,
                                         uint64_t* wedges_traversed = nullptr);

/// O(butterflies)-style reference per-edge counter for tests (explicit
/// butterfly enumeration per vertex pair).
std::vector<Count> BruteForcePerEdgeCount(const BipartiteGraph& graph);

/// Result of a wing decomposition (edge peeling).
struct WingResult {
  /// wing_numbers[e] = largest k such that edge e is in a k-wing (every
  /// edge of the subgraph participates in ≥ k butterflies).
  std::vector<Count> wing_numbers;
  PeelStats stats;

  Count MaxWingNumber() const {
    Count max_wing = 0;
    for (const Count w : wing_numbers) max_wing = std::max(max_wing, w);
    return max_wing;
  }
};

/// Sequential bottom-up wing decomposition (edge peeling) — the §7
/// extension direction: peel the minimum-support edge, enumerate its
/// surviving butterflies, and decrement the other three edges of each
/// (clamped at the current wing number). Counting uses `num_threads`.
/// `workspace_pool` (optional) supplies caller-owned scratch for cross-run
/// reuse; `control` (optional) is the cancellation/progress hook — on
/// cancellation the returned wing numbers are incomplete. `trace`
/// (optional) receives "engine.count" / "engine.peel" phase spans.
WingResult WingDecompose(const BipartiteGraph& graph, int num_threads = 1,
                         engine::WorkspacePool* workspace_pool = nullptr,
                         engine::PeelControl* control = nullptr,
                         obs::TraceContext trace = {});

}  // namespace receipt

#endif  // RECEIPT_WING_WING_DECOMPOSITION_H_
