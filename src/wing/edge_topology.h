#ifndef RECEIPT_WING_EDGE_TOPOLOGY_H_
#define RECEIPT_WING_EDGE_TOPOLOGY_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// Edge-id addressing used by wing (edge-peeling) algorithms. Edge e ∈
/// [0, m) is the e-th slot of the U-side CSR region; this structure adds the
/// reverse maps needed to walk butterflies edge-wise in O(1) per step.
struct EdgeTopology {
  /// edge id -> source U vertex.
  std::vector<VertexId> source;
  /// For every V-side adjacency slot (offset by v_region), the U-side edge
  /// id of the same edge.
  std::vector<EdgeOffset> v_slot_edge;
  /// First V-side slot = offsets[num_u].
  EdgeOffset v_region = 0;
};

/// Builds the maps for `graph`. O(m).
EdgeTopology BuildEdgeTopology(const BipartiteGraph& graph);

/// In-place variant reusing `topo`'s (and `cursor_scratch`'s) capacity —
/// the allocation-free path for per-partition environment graphs.
void BuildEdgeTopologyInto(const BipartiteGraph& graph, EdgeTopology& topo,
                           std::vector<EdgeOffset>& cursor_scratch);

}  // namespace receipt

#endif  // RECEIPT_WING_EDGE_TOPOLOGY_H_
