#include "wing/wing_decomposition.h"

#include <algorithm>
#include <utility>

#include "engine/counting.h"
#include "engine/min_heap.h"
#include "engine/peel_engine.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wing/edge_topology.h"

namespace receipt {

VertexId EdgeSourceU(const BipartiteGraph& graph, EdgeOffset edge_id) {
  const auto offsets = graph.offsets();
  const auto it = std::upper_bound(offsets.begin(),
                                   offsets.begin() + graph.num_u() + 1,
                                   edge_id);
  return static_cast<VertexId>(it - offsets.begin()) - 1;
}

std::vector<Count> PerEdgeButterflyCount(const BipartiteGraph& graph,
                                         int num_threads,
                                         uint64_t* wedges_traversed) {
  // Convenience entry point with a transient workspace pool. Decomposition
  // hot paths call engine::CountEdgeButterflies with their own pool.
  std::vector<Count> support(graph.num_edges(), 0);
  engine::WorkspacePool pool;
  const uint64_t wedges =
      engine::CountEdgeButterflies(graph, pool, num_threads, support);
  if (wedges_traversed != nullptr) *wedges_traversed += wedges;
  return support;
}

std::vector<Count> BruteForcePerEdgeCount(const BipartiteGraph& graph) {
  std::vector<Count> support(graph.num_edges(), 0);
  const auto edge_id = [&graph](VertexId u, VertexId gv) -> EdgeOffset {
    const auto nbrs = graph.Neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), gv);
    return graph.NeighborOffset(u) +
           static_cast<EdgeOffset>(it - nbrs.begin());
  };
  for (VertexId u1 = 0; u1 < graph.num_u(); ++u1) {
    for (VertexId u2 = u1 + 1; u2 < graph.num_u(); ++u2) {
      const auto n1 = graph.Neighbors(u1);
      const auto n2 = graph.Neighbors(u2);
      std::vector<VertexId> common;
      std::set_intersection(n1.begin(), n1.end(), n2.begin(), n2.end(),
                            std::back_inserter(common));
      for (size_t i = 0; i < common.size(); ++i) {
        for (size_t j = i + 1; j < common.size(); ++j) {
          for (const VertexId u : {u1, u2}) {
            ++support[edge_id(u, common[i])];
            ++support[edge_id(u, common[j])];
          }
        }
      }
    }
  }
  return support;
}

WingResult WingDecompose(const BipartiteGraph& graph, int num_threads,
                         engine::WorkspacePool* workspace_pool,
                         engine::PeelControl* control,
                         obs::TraceContext trace) {
  const WallTimer total_timer;
  WingResult result;
  const uint64_t m = graph.num_edges();
  result.wing_numbers.assign(m, 0);
  if (m == 0) {
    result.stats.seconds_total = total_timer.Seconds();
    return result;
  }

  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool = engine::ResolvePool(workspace_pool, local_pool);
  pool.Prepare(std::max(1, num_threads), graph.num_u(), graph.num_v());

  const uint64_t count_start_ns =
      trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  WallTimer count_timer;
  std::vector<Count> support(m, 0);
  result.stats.wedges_counting =
      engine::CountEdgeButterflies(graph, pool, num_threads, support);
  result.stats.seconds_counting = count_timer.Seconds();
  trace.EmitSince("engine.count", count_start_ns,
                  result.stats.wedges_counting);

  const uint64_t peel_start_ns =
      trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  const EdgeTopology topo = BuildEdgeTopology(graph);

  std::vector<uint8_t> state(m, engine::kEdgeAlive);
  // Workspace-resident heap: Clear() keeps the backing store, so repeated
  // decompositions on a caller-owned pool are allocation-free once warm.
  engine::LazyMinHeap<4>& heap = pool.Get(0).edge_heap;
  heap.Clear();
  heap.Reserve(m);
  for (EdgeOffset e = 0; e < m; ++e) {
    heap.Push(support[e], static_cast<VertexId>(e));
  }

  const engine::WingPeelOutcome outcome = engine::SequentialWingPeel(
      graph, topo, state, support, heap, /*remaining=*/m, /*floor0=*/0,
      pool.Get(0), [](EdgeOffset) { return true; },
      [&result](EdgeOffset e, Count theta) {
        result.wing_numbers[e] = theta;
      },
      control);
  result.stats.wedges_other = outcome.wedges;
  result.stats.peel_iterations = outcome.iterations;
  trace.EmitSince("engine.peel", peel_start_ns, outcome.iterations);

  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
