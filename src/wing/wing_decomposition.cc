#include "wing/wing_decomposition.h"

#include <algorithm>
#include <map>
#include <utility>

#include "tip/min_heap.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wing/edge_topology.h"

namespace receipt {

VertexId EdgeSourceU(const BipartiteGraph& graph, EdgeOffset edge_id) {
  const auto offsets = graph.offsets();
  const auto it = std::upper_bound(offsets.begin(),
                                   offsets.begin() + graph.num_u() + 1,
                                   edge_id);
  return static_cast<VertexId>(it - offsets.begin()) - 1;
}

std::vector<Count> PerEdgeButterflyCount(const BipartiteGraph& graph,
                                         int num_threads,
                                         uint64_t* wedges_traversed) {
  const uint64_t m = graph.num_edges();
  std::vector<Count> support(m, 0);

  struct Scratch {
    std::vector<uint32_t> wedge_count;  // |N(u) ∩ N(u2)| per 2-hop neighbor
    std::vector<VertexId> touched;
    uint64_t wedges = 0;
  };
  std::vector<Scratch> scratch(static_cast<size_t>(num_threads));
  for (auto& s : scratch) s.wedge_count.assign(graph.num_u(), 0);

  ParallelForWithContext(
      graph.num_u(), num_threads, scratch, [&](Scratch& ctx, size_t ui) {
        const VertexId u = static_cast<VertexId>(ui);
        ctx.touched.clear();
        for (const VertexId gv : graph.Neighbors(u)) {
          for (const VertexId u2 : graph.Neighbors(gv)) {
            ++ctx.wedges;
            if (u2 == u) continue;
            if (ctx.wedge_count[u2]++ == 0) ctx.touched.push_back(u2);
          }
        }
        // bcnt(u, v) = Σ_{u2 ∈ N(v)\{u}} (common(u, u2) − 1).
        const EdgeOffset base = graph.NeighborOffset(u);
        const auto nbrs = graph.Neighbors(u);
        for (size_t j = 0; j < nbrs.size(); ++j) {
          Count bcnt = 0;
          for (const VertexId u2 : graph.Neighbors(nbrs[j])) {
            ++ctx.wedges;
            if (u2 == u) continue;
            const uint32_t common = ctx.wedge_count[u2];
            if (common >= 2) bcnt += common - 1;
          }
          support[base + j] = bcnt;
        }
        for (const VertexId u2 : ctx.touched) ctx.wedge_count[u2] = 0;
      });

  if (wedges_traversed != nullptr) {
    for (const auto& s : scratch) *wedges_traversed += s.wedges;
  }
  return support;
}

std::vector<Count> BruteForcePerEdgeCount(const BipartiteGraph& graph) {
  std::vector<Count> support(graph.num_edges(), 0);
  const auto edge_id = [&graph](VertexId u, VertexId gv) -> EdgeOffset {
    const auto nbrs = graph.Neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), gv);
    return graph.NeighborOffset(u) +
           static_cast<EdgeOffset>(it - nbrs.begin());
  };
  for (VertexId u1 = 0; u1 < graph.num_u(); ++u1) {
    for (VertexId u2 = u1 + 1; u2 < graph.num_u(); ++u2) {
      const auto n1 = graph.Neighbors(u1);
      const auto n2 = graph.Neighbors(u2);
      std::vector<VertexId> common;
      std::set_intersection(n1.begin(), n1.end(), n2.begin(), n2.end(),
                            std::back_inserter(common));
      for (size_t i = 0; i < common.size(); ++i) {
        for (size_t j = i + 1; j < common.size(); ++j) {
          for (const VertexId u : {u1, u2}) {
            ++support[edge_id(u, common[i])];
            ++support[edge_id(u, common[j])];
          }
        }
      }
    }
  }
  return support;
}

WingResult WingDecompose(const BipartiteGraph& graph, int num_threads) {
  const WallTimer total_timer;
  WingResult result;
  const uint64_t m = graph.num_edges();

  WallTimer count_timer;
  std::vector<Count> support =
      PerEdgeButterflyCount(graph, num_threads,
                            &result.stats.wedges_counting);
  result.stats.seconds_counting = count_timer.Seconds();

  const EdgeTopology topo = BuildEdgeTopology(graph);

  std::vector<uint8_t> edge_alive(m, 1);
  // mark[v_local] = edge id of live (u, v') + 1 while processing u; 0 = none.
  std::vector<EdgeOffset> mark(graph.num_v(), 0);

  LazyMinHeap<4> heap;
  heap.Reserve(m);
  for (EdgeOffset e = 0; e < m; ++e) {
    heap.Push(support[e], static_cast<VertexId>(e));
  }

  result.wing_numbers.assign(m, 0);
  Count theta = 0;
  const auto alive = [&edge_alive](VertexId e) {
    return edge_alive[e] != 0;
  };
  const auto clamped_dec = [&support, &theta, &heap](EdgeOffset e) {
    const Count cur = support[e];
    const Count next = cur > theta + 1 ? cur - 1 : theta;
    if (next != cur) {
      support[e] = next;
      heap.Push(next, static_cast<VertexId>(e));
    }
  };

  while (auto entry = heap.PopValid(support, alive)) {
    const auto [key, e32] = *entry;
    const EdgeOffset e = e32;
    theta = std::max(theta, key);
    result.wing_numbers[e] = theta;
    edge_alive[e] = 0;
    ++result.stats.peel_iterations;

    const VertexId u = topo.source[e];
    const VertexId gv = graph.adjacency()[e];

    // Mark u's other live edges by their V endpoint.
    const EdgeOffset u_base = graph.NeighborOffset(u);
    const auto u_nbrs = graph.Neighbors(u);
    for (size_t j = 0; j < u_nbrs.size(); ++j) {
      const EdgeOffset h = u_base + j;
      if (edge_alive[h]) mark[u_nbrs[j] - graph.num_u()] = h + 1;
    }

    // Every butterfly (u, u2, v, v') with all three other edges alive loses
    // this butterfly: decrement (u2,v), (u2,v') and (u,v').
    const EdgeOffset v_base = graph.NeighborOffset(gv);
    const auto v_nbrs = graph.Neighbors(gv);
    for (size_t s = 0; s < v_nbrs.size(); ++s) {
      const VertexId u2 = v_nbrs[s];
      const EdgeOffset f = topo.v_slot_edge[v_base + s - topo.v_region];
      if (u2 == u || !edge_alive[f]) continue;
      const EdgeOffset u2_base = graph.NeighborOffset(u2);
      const auto u2_nbrs = graph.Neighbors(u2);
      for (size_t t = 0; t < u2_nbrs.size(); ++t) {
        ++result.stats.wedges_other;
        const VertexId gv2 = u2_nbrs[t];
        if (gv2 == gv) continue;
        const EdgeOffset g2 = u2_base + t;
        if (!edge_alive[g2]) continue;
        const EdgeOffset h_plus1 = mark[gv2 - graph.num_u()];
        if (h_plus1 == 0) continue;
        clamped_dec(f);
        clamped_dec(g2);
        clamped_dec(h_plus1 - 1);
      }
    }

    for (const VertexId nbr : u_nbrs) mark[nbr - graph.num_u()] = 0;
  }

  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
