#include "wing/edge_topology.h"

namespace receipt {

EdgeTopology BuildEdgeTopology(const BipartiteGraph& graph) {
  EdgeTopology topo;
  std::vector<EdgeOffset> cursor;
  BuildEdgeTopologyInto(graph, topo, cursor);
  return topo;
}

void BuildEdgeTopologyInto(const BipartiteGraph& graph, EdgeTopology& topo,
                           std::vector<EdgeOffset>& cursor_scratch) {
  const uint64_t num_edges = graph.num_edges();
  topo.source.resize(num_edges);
  for (VertexId u = 0; u < graph.num_u(); ++u) {
    const EdgeOffset begin = graph.NeighborOffset(u);
    const EdgeOffset end = begin + graph.Degree(u);
    for (EdgeOffset e = begin; e < end; ++e) topo.source[e] = u;
  }

  topo.v_region = graph.offsets()[graph.num_u()];
  topo.v_slot_edge.resize(num_edges);
  cursor_scratch.assign(graph.num_v(), 0);
  // Walking U-side edges in id order visits each v's neighbors in ascending
  // source order, which matches v's sorted adjacency list.
  for (EdgeOffset e = 0; e < num_edges; ++e) {
    const VertexId gv = graph.adjacency()[e];
    const VertexId v_local = gv - graph.num_u();
    const EdgeOffset slot =
        graph.NeighborOffset(gv) + cursor_scratch[v_local]++ - topo.v_region;
    topo.v_slot_edge[slot] = e;
  }
}

}  // namespace receipt
