#include "wing/receipt_wing.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>
#include <vector>

#include "engine/counting.h"
#include "engine/min_heap.h"
#include "engine/peel_engine.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wing/edge_topology.h"

namespace receipt {
namespace {

using CoarseWingResult = engine::RangeResult<EdgeOffset>;

/// Coarse-grained edge decomposition: the engine's range decomposer
/// instantiated for edges, with the §7 priority rule for same-round
/// butterfly conflicts handled inside the edge peel kernel.
CoarseWingResult CoarseWingDecompose(const BipartiteGraph& graph,
                                     const EdgeTopology& topo,
                                     const ReceiptWingOptions& options,
                                     std::vector<Count>& support,
                                     engine::WorkspacePool& pool,
                                     PeelStats* stats,
                                     const WingIncremental& inc) {
  const uint64_t num_edges = graph.num_edges();
  const int num_threads = options.num_threads;
  const uint32_t max_partitions =
      static_cast<uint32_t>(std::max(1, options.num_partitions));

  // Static peel-cost proxy for edge (u, v): marking N(u) plus scanning the
  // neighborhoods of N(v).
  std::vector<Count> cost_static(num_edges);
  ParallelFor(num_edges, num_threads, [&](size_t e) {
    const VertexId u = topo.source[e];
    const VertexId gv = graph.adjacency()[e];
    cost_static[e] =
        graph.Degree(u) + graph.WedgeCount(gv) + graph.Degree(gv);
  });

  std::vector<uint8_t> state(num_edges, engine::kEdgeAlive);
  engine::WingPeelGraph peel_graph(graph, topo, state, support);
  engine::RangeDecomposer<engine::WingPeelGraph> decomposer(
      peel_graph, cost_static,
      engine::MakeCoarseOptions(options, max_partitions), pool,
      /*maintenance=*/nullptr, options.control);
  decomposer.set_patch_log(inc.record);
  return inc.seed != nullptr
             ? decomposer.RunIncremental(*inc.seed, inc.outcome, stats)
             : decomposer.Run(stats);
}

/// Fine-grained step for one edge subset: sequential bottom-up edge peeling
/// against the environment graph of all equal-or-higher subsets. Every
/// per-partition structure (environment graph, edge topology, states, heap)
/// lives in the workspace and is rebuilt in place, so steady-state FD tasks
/// allocate nothing.
void FineWingSubset(const BipartiteGraph& graph,
                    const CoarseWingResult& coarse, uint32_t sid,
                    const std::vector<BipartiteGraph::Edge>& all_edges,
                    engine::PeelWorkspace& ws, std::span<Count> wing_numbers,
                    engine::PeelControl* control, PeelStats* local_stats) {
  if (coarse.subsets[sid].empty()) return;
  const uint64_t num_edges = graph.num_edges();

  // Environment: edges of subsets ≥ sid, in global edge-id order so the
  // environment graph's edge ids map back positionally (all_edges is in
  // (u, v) order — the same order AssignFromEdges sorts into).
  std::vector<EdgeOffset>& env_ids = ws.id_buffer;
  std::vector<BipartiteGraph::Edge>& env_edges = ws.subgraph_arena.edges;
  env_ids.clear();
  env_edges.clear();
  for (EdgeOffset e = 0; e < num_edges; ++e) {
    if (coarse.subset_of[e] >= sid) {
      env_ids.push_back(e);
      env_edges.push_back(all_edges[e]);
    }
  }
  BipartiteGraph& env = ws.subgraph_arena.subgraph.graph;
  env.AssignFromEdges(graph.num_u(), graph.num_v(), env_edges,
                      &ws.subgraph_arena.cursor_scratch);
  EdgeTopology& topo = ws.env_topo;
  BuildEdgeTopologyInto(env, topo, ws.topo_cursor);
  const uint64_t env_size = env.num_edges();

  std::vector<uint8_t>& state = ws.state_buffer;
  std::vector<uint8_t>& in_subset = ws.flag_buffer;
  state.assign(env_size, engine::kEdgeAlive);
  in_subset.assign(env_size, 0);
  ws.support_buffer.assign(env_size, 0);
  engine::LazyMinHeap<4>& heap = ws.edge_heap;
  heap.Clear();
  uint64_t remaining = 0;
  for (uint64_t k = 0; k < env_size; ++k) {
    const EdgeOffset global = env_ids[k];
    ws.support_buffer[k] = coarse.init_support[global];
    if (coarse.subset_of[global] == sid) {
      in_subset[k] = 1;
      heap.Push(ws.support_buffer[k], static_cast<VertexId>(k));
      ++remaining;
    }
  }

  const engine::WingPeelOutcome outcome = engine::SequentialWingPeel(
      env, topo, state, std::span<Count>(ws.support_buffer.data(), env_size),
      heap, remaining, /*floor0=*/coarse.bounds[sid], ws,
      [&in_subset](EdgeOffset x) { return in_subset[x] != 0; },
      [&](EdgeOffset k, Count theta) { wing_numbers[env_ids[k]] = theta; },
      control);
  local_stats->wedges_fd += outcome.wedges;
}

}  // namespace

engine::RangeResult<EdgeOffset> ReceiptWingCoarse(
    const BipartiteGraph& graph, const ReceiptWingOptions& options,
    PeelStats* stats) {
  return ReceiptWingCoarse(graph, options, stats, WingIncremental{});
}

engine::RangeResult<EdgeOffset> ReceiptWingCoarse(
    const BipartiteGraph& graph, const ReceiptWingOptions& options,
    PeelStats* stats, const WingIncremental& inc) {
  const uint64_t num_edges = graph.num_edges();
  CoarseWingResult coarse;
  coarse.bounds = {0};
  if (num_edges == 0) return coarse;

  const EdgeTopology topo = BuildEdgeTopology(graph);
  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);
  pool.Prepare(std::max(1, options.num_threads), graph.num_u(),
               graph.num_v());

  const uint64_t count_start_ns =
      options.trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  WallTimer count_timer;
  std::vector<Count> support(num_edges, 0);
  stats->wedges_counting +=
      engine::CountEdgeButterflies(graph, pool, options.num_threads, support);
  stats->seconds_counting += count_timer.Seconds();
  options.trace.EmitSince("engine.count", count_start_ns,
                          stats->wedges_counting);
  if (inc.initial_support != nullptr) *inc.initial_support = support;

  const uint64_t cd_start_ns =
      options.trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  const WallTimer cd_timer;
  coarse =
      CoarseWingDecompose(graph, topo, options, support, pool, stats, inc);
  stats->seconds_cd += cd_timer.Seconds();
  options.trace.EmitSince("engine.cd", cd_start_ns, coarse.subsets.size());
  return coarse;
}

void ReceiptWingFine(const BipartiteGraph& graph,
                     const engine::RangeResult<EdgeOffset>& coarse,
                     const ReceiptWingOptions& options,
                     std::span<Count> wing_numbers, PeelStats* stats,
                     std::span<const uint8_t> only_subsets) {
  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);
  pool.Prepare(std::max(1, options.num_threads), graph.num_u(),
               graph.num_v());

  const WallTimer fd_timer;
  const uint64_t fd_start_ns =
      options.trace.enabled() ? obs::TraceRecorder::NowNs() : 0;
  const std::vector<BipartiteGraph::Edge> all_edges = graph.ToEdges();
  const uint32_t num_subsets = static_cast<uint32_t>(coarse.subsets.size());
  // Workload-aware order: big subsets first (cost ≈ member count here).
  std::vector<uint32_t> order(num_subsets);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return coarse.subsets[a].size() > coarse.subsets[b].size();
  });
  std::atomic<uint32_t> next_task{0};
  std::vector<PeelStats> local_stats(
      static_cast<size_t>(options.num_threads));
#pragma omp parallel num_threads(options.num_threads)
  {
    const int tid = ThreadId();
    PeelStats& local = local_stats[static_cast<size_t>(tid)];
    engine::PeelWorkspace& ws = pool.Get(tid);
    while (true) {
      if (options.control != nullptr && options.control->Cancelled()) break;
      const uint32_t k = next_task.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_subsets) break;
      const uint32_t sid = order[k];
      // Selective FD (incremental serving): clean subsets keep their
      // sealed numbers.
      if (!only_subsets.empty() &&
          (sid >= only_subsets.size() || only_subsets[sid] == 0)) {
        continue;
      }
      FineWingSubset(graph, coarse, sid, all_edges, ws, wing_numbers,
                     options.control, &local);
    }
  }
  for (const PeelStats& local : local_stats) {
    stats->wedges_fd += local.wedges_fd;
  }
  stats->seconds_fd += fd_timer.Seconds();
  options.trace.EmitSince("engine.fd", fd_start_ns, num_subsets);
}

WingResult ReceiptWingDecompose(const BipartiteGraph& graph,
                                const ReceiptWingOptions& options) {
  const WallTimer total_timer;
  WingResult result;
  const uint64_t num_edges = graph.num_edges();
  result.wing_numbers.assign(num_edges, 0);
  if (num_edges == 0) {
    result.stats.seconds_total = total_timer.Seconds();
    return result;
  }

  engine::WorkspacePool local_pool;
  engine::WorkspacePool& pool =
      engine::ResolvePool(options.workspace_pool, local_pool);

  // One coarse preamble implementation: route through the public coarse
  // entry point, pinning the resolved pool so the fine step below peels on
  // the same warm workspaces.
  ReceiptWingOptions coarse_options = options;
  coarse_options.workspace_pool = &pool;
  const CoarseWingResult coarse =
      ReceiptWingCoarse(graph, coarse_options, &result.stats);

  ReceiptWingFine(graph, coarse, coarse_options,
                  std::span<Count>(result.wing_numbers), &result.stats, {});
  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
