#include "wing/receipt_wing.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <utility>
#include <vector>

#include "tip/min_heap.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wing/edge_topology.h"

namespace receipt {
namespace {

/// Edge life-cycle during coarse peeling. kPeeling marks the current
/// round's extraction set: still part of butterflies for enumeration
/// purposes, but already claimed (the priority rule arbitrates updates).
enum EdgeState : uint8_t { kDead = 0, kAlive = 1, kPeeling = 2 };

/// Enumerates every butterfly of `e` whose four edges are all not-dead and
/// for which `e` is the applier (the minimum-id kPeeling edge in the
/// butterfly), invoking `apply(x)` for each of the butterfly's other edges
/// x that are still kAlive. Returns wedges traversed.
///
/// `mark` is caller-provided scratch of size num_v, zero before and after.
template <typename Apply>
uint64_t PeelEdgeButterflies(const BipartiteGraph& graph,
                             const EdgeTopology& topo,
                             const std::vector<uint8_t>& state, EdgeOffset e,
                             std::vector<EdgeOffset>& mark, Apply&& apply) {
  uint64_t wedges = 0;
  const VertexId u = topo.source[e];
  const VertexId gv = graph.adjacency()[e];

  const EdgeOffset u_base = graph.NeighborOffset(u);
  const auto u_nbrs = graph.Neighbors(u);
  for (size_t j = 0; j < u_nbrs.size(); ++j) {
    const EdgeOffset h = u_base + j;
    if (state[h] != kDead) mark[u_nbrs[j] - graph.num_u()] = h + 1;
  }
  mark[gv - graph.num_u()] = 0;  // exclude e itself

  const EdgeOffset v_base = graph.NeighborOffset(gv);
  const auto v_nbrs = graph.Neighbors(gv);
  for (size_t s = 0; s < v_nbrs.size(); ++s) {
    const VertexId u2 = v_nbrs[s];
    const EdgeOffset f = topo.v_slot_edge[v_base + s - topo.v_region];
    if (f == e || state[f] == kDead) continue;
    const EdgeOffset u2_base = graph.NeighborOffset(u2);
    const auto u2_nbrs = graph.Neighbors(u2);
    for (size_t t = 0; t < u2_nbrs.size(); ++t) {
      ++wedges;
      const VertexId gv2 = u2_nbrs[t];
      if (gv2 == gv) continue;
      const EdgeOffset g2 = u2_base + t;
      if (state[g2] == kDead) continue;
      const EdgeOffset h_plus1 = mark[gv2 - graph.num_u()];
      if (h_plus1 == 0) continue;
      const EdgeOffset h = h_plus1 - 1;
      // Butterfly {e, f, g2, h}. Priority rule: the minimum-id peeling
      // edge applies the update; everyone else skips.
      if ((state[f] == kPeeling && f < e) ||
          (state[g2] == kPeeling && g2 < e) ||
          (state[h] == kPeeling && h < e)) {
        continue;
      }
      if (state[f] == kAlive) apply(f);
      if (state[g2] == kAlive) apply(g2);
      if (state[h] == kAlive) apply(h);
    }
  }

  for (const VertexId nbr : u_nbrs) mark[nbr - graph.num_u()] = 0;
  return wedges;
}

/// findHi over edges: smallest support s whose cumulative peel-cost mass
/// reaches `target`, as the exclusive bound s+1.
Count FindEdgeHi(std::vector<std::pair<Count, Count>>& support_and_cost,
                 double target) {
  std::sort(support_and_cost.begin(), support_and_cost.end());
  double cumulative = 0.0;
  for (const auto& [support, cost] : support_and_cost) {
    cumulative += static_cast<double>(cost);
    if (cumulative >= target) return support + 1;
  }
  return support_and_cost.back().first + 1;
}

bool ClaimStamp(std::vector<uint32_t>& stamps, EdgeOffset e, uint32_t round) {
  auto* slot = reinterpret_cast<std::atomic<uint32_t>*>(&stamps[e]);
  uint32_t seen = slot->load(std::memory_order_relaxed);
  while (seen != round) {
    if (slot->compare_exchange_weak(seen, round,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

struct CoarseWingResult {
  std::vector<Count> bounds;                    // θ(1)=0 … θ(P'+1)
  std::vector<uint32_t> subset_of;              // per edge
  std::vector<Count> init_support;              // per edge
  std::vector<std::vector<EdgeOffset>> subsets;
};

struct WingThreadBuffer {
  std::vector<EdgeOffset> mark;        // V-side scratch
  std::vector<EdgeOffset> candidates;  // next-round candidates
};

/// Coarse-grained edge decomposition: the RECEIPT CD loop transplanted to
/// edges, with the §7 priority rule for same-round butterfly conflicts.
CoarseWingResult CoarseWingDecompose(const BipartiteGraph& graph,
                                     const EdgeTopology& topo,
                                     const ReceiptWingOptions& options,
                                     std::vector<Count>& support,
                                     PeelStats* stats) {
  const uint64_t num_edges = graph.num_edges();
  const int num_threads = options.num_threads;
  const uint32_t max_partitions =
      static_cast<uint32_t>(std::max(1, options.num_partitions));

  CoarseWingResult coarse;
  coarse.subset_of.assign(num_edges, 0);
  coarse.init_support.assign(num_edges, 0);
  coarse.bounds = {0};

  // Static peel-cost proxy for edge (u, v): marking N(u) plus scanning the
  // neighborhoods of N(v).
  std::vector<Count> cost_static(num_edges);
  ParallelFor(num_edges, num_threads, [&](size_t e) {
    const VertexId u = topo.source[e];
    const VertexId gv = graph.adjacency()[e];
    cost_static[e] =
        graph.Degree(u) + graph.WedgeCount(gv) + graph.Degree(gv);
  });
  double remaining_cost = 0.0;
  for (const Count c : cost_static) remaining_cost += static_cast<double>(c);
  double target = remaining_cost / max_partitions;

  std::vector<uint8_t> state(num_edges, kAlive);
  std::vector<uint32_t> stamps(num_edges, 0);
  uint32_t round_stamp = 0;

  std::vector<WingThreadBuffer> buffers(static_cast<size_t>(num_threads));
  for (auto& b : buffers) b.mark.assign(graph.num_v(), 0);

  std::vector<std::pair<Count, Count>> range_scratch;
  std::vector<EdgeOffset> active;
  std::vector<EdgeOffset> candidates;

  uint64_t alive_count = num_edges;
  while (alive_count > 0) {
    const uint32_t subset_index = static_cast<uint32_t>(coarse.subsets.size());
    const Count lo = coarse.bounds.back();

    ParallelFor(num_edges, num_threads, [&](size_t e) {
      if (state[e] == kAlive) coarse.init_support[e] = support[e];
    });

    Count hi = kInvalidCount;
    if (subset_index < max_partitions) {
      range_scratch.clear();
      for (EdgeOffset e = 0; e < num_edges; ++e) {
        if (state[e] == kAlive) {
          range_scratch.emplace_back(support[e], cost_static[e]);
        }
      }
      hi = FindEdgeHi(range_scratch, std::max(1.0, target));
    }

    coarse.subsets.emplace_back();
    std::vector<EdgeOffset>& subset = coarse.subsets.back();

    active.clear();
    for (EdgeOffset e = 0; e < num_edges; ++e) {
      if (state[e] == kAlive && support[e] < hi) active.push_back(e);
    }

    while (!active.empty()) {
      ++stats->sync_rounds;
      ++stats->peel_iterations;
      for (const EdgeOffset e : active) {
        coarse.subset_of[e] = subset_index;
        state[e] = kPeeling;
      }
      alive_count -= active.size();
      subset.insert(subset.end(), active.begin(), active.end());

      ++round_stamp;
      const uint32_t current_stamp = round_stamp;
      PerThreadCounters wedge_counters(num_threads);
      ParallelForWithContext(
          active.size(), num_threads, buffers,
          [&](WingThreadBuffer& buf, size_t i) {
            const EdgeOffset e = active[i];
            const uint64_t wedges = PeelEdgeButterflies(
                graph, topo, state, e, buf.mark, [&](EdgeOffset x) {
                  const Count next =
                      AtomicClampedSub(&support[x], Count{1}, lo);
                  if (next < hi && ClaimStamp(stamps, x, current_stamp)) {
                    buf.candidates.push_back(x);
                  }
                });
            wedge_counters.Add(ThreadId(), wedges);
          });
      stats->wedges_cd += wedge_counters.Total();

      for (const EdgeOffset e : active) state[e] = kDead;
      candidates.clear();
      for (auto& buf : buffers) {
        candidates.insert(candidates.end(), buf.candidates.begin(),
                          buf.candidates.end());
        buf.candidates.clear();
      }
      active.clear();
      for (const EdgeOffset e : candidates) {
        if (state[e] == kAlive && support[e] < hi) active.push_back(e);
      }
    }

    double subset_cost = 0.0;
    for (const EdgeOffset e : subset) {
      subset_cost += static_cast<double>(cost_static[e]);
    }
    remaining_cost -= subset_cost;
    if (subset_index + 1 < max_partitions) {
      const double base =
          remaining_cost /
          static_cast<double>(max_partitions - subset_index - 1);
      const double scale =
          subset_cost > 0.0 ? std::min(1.0, target / subset_cost) : 1.0;
      target = std::max(1.0, base * scale);
    }
    coarse.bounds.push_back(hi);
  }
  stats->num_subsets = coarse.subsets.size();
  return coarse;
}

/// Fine-grained step for one edge subset: sequential bottom-up edge peeling
/// against the environment graph of all equal-or-higher subsets.
void FineWingSubset(const BipartiteGraph& graph,
                    const CoarseWingResult& coarse, uint32_t sid,
                    const std::vector<BipartiteGraph::Edge>& all_edges,
                    std::span<Count> wing_numbers, PeelStats* local_stats) {
  if (coarse.subsets[sid].empty()) return;
  const uint64_t num_edges = graph.num_edges();

  // Environment: edges of subsets ≥ sid, in global edge-id order so the
  // environment graph's edge ids map back positionally.
  std::vector<EdgeOffset> env_ids;
  std::vector<BipartiteGraph::Edge> env_edges;
  for (EdgeOffset e = 0; e < num_edges; ++e) {
    if (coarse.subset_of[e] >= sid) {
      env_ids.push_back(e);
      env_edges.push_back(all_edges[e]);
    }
  }
  const BipartiteGraph env =
      BipartiteGraph::FromEdges(graph.num_u(), graph.num_v(), env_edges);
  const EdgeTopology topo = BuildEdgeTopology(env);
  const uint64_t env_size = env.num_edges();

  std::vector<uint8_t> state(env_size, kAlive);
  std::vector<uint8_t> in_subset(env_size, 0);
  std::vector<Count> support(env_size, 0);
  LazyMinHeap<4> heap;
  uint64_t remaining = 0;
  for (uint64_t k = 0; k < env_size; ++k) {
    const EdgeOffset global = env_ids[k];
    support[k] = coarse.init_support[global];
    if (coarse.subset_of[global] == sid) {
      in_subset[k] = 1;
      heap.Push(support[k], static_cast<VertexId>(k));
      ++remaining;
    }
  }

  std::vector<EdgeOffset> mark(env.num_v(), 0);
  Count theta = coarse.bounds[sid];
  const auto peelable = [&](VertexId k) {
    return state[k] == kAlive && in_subset[k] != 0;
  };
  while (auto entry = heap.PopValid(support, peelable)) {
    const auto [key, k32] = *entry;
    const EdgeOffset k = k32;
    theta = std::max(theta, key);
    wing_numbers[env_ids[k]] = theta;
    state[k] = kPeeling;  // single peeling edge: priority rule is trivial
    local_stats->wedges_fd += PeelEdgeButterflies(
        env, topo, state, k, mark, [&](EdgeOffset x) {
          if (!in_subset[x]) return;  // higher subsets are never updated
          const Count cur = support[x];
          const Count next = cur > theta + 1 ? cur - 1 : theta;
          if (next != cur) {
            support[x] = next;
            heap.Push(next, static_cast<VertexId>(x));
          }
        });
    state[k] = kDead;
    if (--remaining == 0) break;
  }
}

}  // namespace

WingResult ReceiptWingDecompose(const BipartiteGraph& graph,
                                const ReceiptWingOptions& options) {
  const WallTimer total_timer;
  WingResult result;
  const uint64_t num_edges = graph.num_edges();
  result.wing_numbers.assign(num_edges, 0);
  if (num_edges == 0) {
    result.stats.seconds_total = total_timer.Seconds();
    return result;
  }

  const EdgeTopology topo = BuildEdgeTopology(graph);

  WallTimer count_timer;
  std::vector<Count> support = PerEdgeButterflyCount(
      graph, options.num_threads, &result.stats.wedges_counting);
  result.stats.seconds_counting = count_timer.Seconds();

  const WallTimer cd_timer;
  const CoarseWingResult coarse = CoarseWingDecompose(
      graph, topo, options, support, &result.stats);
  result.stats.seconds_cd = cd_timer.Seconds();

  const WallTimer fd_timer;
  const std::vector<BipartiteGraph::Edge> all_edges = graph.ToEdges();
  const uint32_t num_subsets = static_cast<uint32_t>(coarse.subsets.size());
  // Workload-aware order: big subsets first (cost ≈ member count here).
  std::vector<uint32_t> order(num_subsets);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return coarse.subsets[a].size() > coarse.subsets[b].size();
  });
  std::atomic<uint32_t> next_task{0};
  std::vector<PeelStats> local_stats(
      static_cast<size_t>(options.num_threads));
#pragma omp parallel num_threads(options.num_threads)
  {
    PeelStats& local = local_stats[static_cast<size_t>(ThreadId())];
    while (true) {
      const uint32_t k = next_task.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_subsets) break;
      FineWingSubset(graph, coarse, order[k], all_edges,
                     result.wing_numbers, &local);
    }
  }
  for (const PeelStats& local : local_stats) {
    result.stats.wedges_fd += local.wedges_fd;
  }
  result.stats.seconds_fd = fd_timer.Seconds();
  result.stats.seconds_total = total_timer.Seconds();
  return result;
}

}  // namespace receipt
