#ifndef RECEIPT_CLUSTER_HTTP_CLIENT_H_
#define RECEIPT_CLUSTER_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace receipt::cluster {

struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< names lower-cased
  std::string body;
};

/// Minimal blocking HTTP/1.1 client for replica fan-out and the router:
/// one connection per request (Connection: close), IPv4 only, send/recv
/// deadlines so a hung peer surfaces as a transport error instead of a
/// stuck handler. Stateless and therefore thread-safe — any thread may
/// call Request on a shared instance.
class HttpClient {
 public:
  explicit HttpClient(int timeout_ms = 5000) : timeout_ms_(timeout_ms) {}

  /// False on any transport failure (connect, send, recv, malformed
  /// status line); `error` says which. HTTP error statuses are *not*
  /// transport failures — the caller inspects response->status.
  bool Request(const std::string& method, const std::string& host,
               uint16_t port, const std::string& path,
               const std::string& body,
               const std::vector<std::pair<std::string, std::string>>& headers,
               HttpClientResponse* response, std::string* error) const;

  bool Get(const std::string& host, uint16_t port, const std::string& path,
           HttpClientResponse* response, std::string* error) const {
    return Request("GET", host, port, path, "", {}, response, error);
  }

  bool Post(const std::string& host, uint16_t port, const std::string& path,
            const std::string& body,
            const std::vector<std::pair<std::string, std::string>>& headers,
            HttpClientResponse* response, std::string* error) const {
    return Request("POST", host, port, path, body, headers, response, error);
  }

 private:
  int timeout_ms_;
};

}  // namespace receipt::cluster

#endif  // RECEIPT_CLUSTER_HTTP_CLIENT_H_
