#ifndef RECEIPT_CLUSTER_ROUTER_H_
#define RECEIPT_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/http_client.h"
#include "cluster/node.h"
#include "obs/client_trace.h"
#include "server/http_server.h"

namespace receipt::cluster {

struct RouterOptions {
  server::HttpServerOptions http;  ///< port 0 = ephemeral (default)
  /// Must match the replicas' --replication so reads spread over exactly
  /// the members that hold each graph.
  size_t replication_factor = 2;
  int peer_timeout_ms = 5000;
  /// Active /healthz probe period. 0 disables the prober (passive
  /// marking on forward failures still applies) — used by tests.
  int health_interval_ms = 250;
  /// JSONL client trace sink (see obs::ClientTraceLog); "" disables.
  std::string trace_log_path;
};

/// The thin front-end of the replicated tier: clients talk to one
/// address, the router spreads reads and steers writes.
///
///   reads   POST /v1/decompose round-robins over the healthy holders of
///           the graph, carrying X-Cluster-Min-Epoch — the highest epoch
///           any response has reported for that graph — so a lagging
///           replica answers 412 and the read fails over instead of
///           going backwards in time (monotonic reads by construction).
///   writes  POST /v1/graphs and /v1/graphs/{name}/edges go to the shard
///           owner; the owner replicates (see ClusterNode).
///   health  a prober thread GETs /healthz on every replica; transport
///           failures also mark a replica down passively. Requests fail
///           over on down/412/429/5xx responses and the first healthy
///           answer wins.
///
/// X-Request-Id is propagated end to end: accepted from the client or
/// minted here, forwarded to the replica (whose frontend adopts it as
/// the trace id), and echoed in the response. When a trace log is
/// configured, every successful client op is appended as one JSONL line
/// (client id from X-Client-Id, op, graph, epoch, request id) — the
/// input to tools/consistency_check.
class Router {
 public:
  Router(std::vector<ClusterMember> members, const RouterOptions& options);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  bool Start(std::string* error);
  void Stop();
  uint16_t port() const;

  struct Stats {
    uint64_t reads_routed = 0;
    uint64_t writes_routed = 0;
    uint64_t failovers = 0;       ///< per-candidate retries on reads
    uint64_t no_replica = 0;      ///< 503s: every candidate failed
    uint64_t trace_records = 0;
    size_t healthy_replicas = 0;
  };
  Stats stats() const;

 private:
  struct Member {
    ClusterMember endpoint;
    std::atomic<bool> healthy{true};
  };

  server::HttpResponse HandleDecompose(const server::HttpRequest& request);
  server::HttpResponse HandleWrite(const server::HttpRequest& request);
  server::HttpResponse HandleListGraphs(const server::HttpRequest& request);
  server::HttpResponse HandleHealthz(const server::HttpRequest& request);
  server::HttpResponse HandleStatz(const server::HttpRequest& request);
  server::HttpResponse HandleRoute(const server::HttpRequest& request);

  /// Forwards to one member; false on transport failure (marks it down).
  bool Forward(Member& member, const server::HttpRequest& request,
               const std::vector<std::pair<std::string, std::string>>& headers,
               HttpClientResponse* upstream);

  uint64_t KnownMinEpoch(const std::string& graph) const;
  void ObserveEpoch(const std::string& graph, uint64_t epoch);

  void RecordTrace(const server::HttpRequest& request,
                   const std::string& request_id, bool read,
                   const std::string& graph, uint64_t epoch);

  void ProbeLoop();

  const RouterOptions options_;
  HashRing ring_;
  HttpClient client_;
  server::HttpServer server_;
  std::map<std::string, std::unique_ptr<Member>> members_;
  obs::ClientTraceLog trace_log_;

  mutable std::mutex epochs_mu_;
  std::map<std::string, uint64_t> epochs_;  ///< per-graph monotonic floor

  std::thread prober_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> rr_{0};

  std::atomic<uint64_t> reads_routed_{0};
  std::atomic<uint64_t> writes_routed_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> no_replica_{0};
};

}  // namespace receipt::cluster

#endif  // RECEIPT_CLUSTER_ROUTER_H_
