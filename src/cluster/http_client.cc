#include "cluster/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace receipt::cluster {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

bool SendAll(int fd, const char* data, size_t size, std::string* error) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("send: ") + strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool HttpClient::Request(
    const std::string& method, const std::string& host, uint16_t port,
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    HttpClientResponse* response, std::string* error) const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address '" + host + "'";
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               strerror(errno);
    }
    ::close(fd);
    return false;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + ":" + std::to_string(port) + "\r\n";
  request += "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!SendAll(fd, request.data(), request.size(), error)) {
    ::close(fd);
    return false;
  }

  // Connection: close — the full response is everything until EOF.
  std::string raw;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("recv: ") + strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    if (error != nullptr) *error = "malformed HTTP response";
    return false;
  }
  const size_t status_pos = raw.find(' ');
  if (status_pos == std::string::npos || status_pos + 4 > header_end) {
    if (error != nullptr) *error = "malformed HTTP status line";
    return false;
  }
  response->status = std::atoi(raw.c_str() + status_pos + 1);
  if (response->status < 100 || response->status > 599) {
    if (error != nullptr) *error = "malformed HTTP status code";
    return false;
  }

  response->headers.clear();
  size_t line_start = raw.find("\r\n") + 2;
  while (line_start < header_end) {
    const size_t line_end = raw.find("\r\n", line_start);
    const std::string line = raw.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      response->headers[ToLower(line.substr(0, colon))] =
          line.substr(value_start);
    }
    line_start = line_end + 2;
  }
  response->body = raw.substr(header_end + 4);
  return true;
}

}  // namespace receipt::cluster
