#include "cluster/consistency.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/json.h"

namespace receipt::cluster {

bool ParseTraceFile(const std::string& path, std::vector<TraceOp>* out,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open trace file '" + path + "'";
    return false;
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string parse_error;
    const auto json = util::JsonValue::Parse(line, &parse_error);
    if (!json.has_value() || !json->IsObject()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }
    TraceOp op;
    op.file = path;
    op.line = line_number;
    std::string op_name;
    const util::JsonValue* seq = json->Find("seq");
    const util::JsonValue* epoch = json->Find("epoch");
    if (seq == nullptr || !seq->IsInt() || epoch == nullptr ||
        !epoch->IsInt() || !json->GetString("client", &op.client) ||
        !json->GetString("op", &op_name) ||
        !json->GetString("graph", &op.graph) ||
        !json->GetString("request_id", &op.request_id) ||
        (op_name != "read" && op_name != "write")) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) +
                 ": missing or mistyped trace fields";
      }
      return false;
    }
    op.seq = seq->AsUint();
    op.epoch = epoch->AsUint();
    op.read = op_name == "read";
    out->push_back(std::move(op));
  }
  return true;
}

namespace {

std::string DescribeOp(const TraceOp& op) {
  std::ostringstream text;
  text << op.file << ":" << op.line << " seq=" << op.seq << " client="
       << op.client << " " << (op.read ? "read" : "write") << " graph="
       << op.graph << " epoch=" << op.epoch;
  if (!op.request_id.empty()) text << " request_id=" << op.request_id;
  return text.str();
}

}  // namespace

std::string FormatViolation(const ConsistencyViolation& violation) {
  std::ostringstream text;
  text << "violating pair (" << violation.rule << "): " << violation.detail
       << "\n  first:  " << DescribeOp(violation.first)
       << "\n  second: " << DescribeOp(violation.second);
  return text.str();
}

std::optional<ConsistencyViolation> CheckPramConsistency(
    const std::vector<TraceOp>& ops) {
  // The global write-epoch set per graph, position-independent (see the
  // header: a sealed epoch is readable before its own trace line lands).
  std::map<std::string, std::set<uint64_t>> written;
  std::map<std::string, const TraceOp*> last_write_of_graph;
  for (const TraceOp& op : ops) {
    if (!op.read) {
      written[op.graph].insert(op.epoch);
      auto& last = last_write_of_graph[op.graph];
      if (last == nullptr || op.epoch >= last->epoch) last = &op;
    }
  }

  struct PerClientGraph {
    const TraceOp* last_read = nullptr;
    const TraceOp* max_write = nullptr;
    const TraceOp* last_write = nullptr;
  };
  std::map<std::pair<std::string, std::string>, PerClientGraph> streams;

  for (const TraceOp& op : ops) {
    PerClientGraph& s = streams[{op.client, op.graph}];
    if (op.read) {
      if (s.last_read != nullptr && op.epoch < s.last_read->epoch) {
        return ConsistencyViolation{
            "read-monotonic",
            "client '" + op.client + "' read graph '" + op.graph +
                "' at epoch " + std::to_string(op.epoch) +
                " after reading epoch " + std::to_string(s.last_read->epoch),
            *s.last_read, op};
      }
      if (s.max_write != nullptr && op.epoch < s.max_write->epoch) {
        return ConsistencyViolation{
            "read-your-writes",
            "client '" + op.client + "' read graph '" + op.graph +
                "' at epoch " + std::to_string(op.epoch) +
                " after being acked a write at epoch " +
                std::to_string(s.max_write->epoch),
            *s.max_write, op};
      }
      const auto graph_writes = written.find(op.graph);
      if (graph_writes != written.end() &&
          graph_writes->second.count(op.epoch) == 0) {
        return ConsistencyViolation{
            "read-of-unwritten-epoch",
            "client '" + op.client + "' read graph '" + op.graph +
                "' at epoch " + std::to_string(op.epoch) +
                ", which no traced write produced",
            *last_write_of_graph[op.graph], op};
      }
      s.last_read = &op;
    } else {
      if (s.last_write != nullptr && op.epoch < s.last_write->epoch) {
        return ConsistencyViolation{
            "write-monotonic",
            "client '" + op.client + "' was acked a write to graph '" +
                op.graph + "' at epoch " + std::to_string(op.epoch) +
                " after a write at epoch " +
                std::to_string(s.last_write->epoch),
            *s.last_write, op};
      }
      if (s.max_write == nullptr || op.epoch >= s.max_write->epoch) {
        s.max_write = &op;
      }
      s.last_write = &op;
    }
  }
  return std::nullopt;
}

}  // namespace receipt::cluster
