#ifndef RECEIPT_CLUSTER_NODE_H_
#define RECEIPT_CLUSTER_NODE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/http_client.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"

namespace receipt::cluster {

struct ClusterMember {
  std::string id;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "a=127.0.0.1:18201,b=127.0.0.1:18202" (host defaults to
/// 127.0.0.1 when "id=port" is given). False + `error` on malformed specs.
bool ParseClusterMembers(const std::string& spec,
                         std::vector<ClusterMember>* out, std::string* error);

struct ClusterNodeOptions {
  std::string self_id;
  std::vector<ClusterMember> members;
  /// Copies of each graph, owner included. Placement is the first
  /// `replication_factor` distinct members clockwise on the hash ring.
  size_t replication_factor = 2;
  /// True: a non-holder answers for the owner by proxying server-side.
  /// False: it answers 307 with a Location header and the client retries.
  bool proxy = true;
  int peer_timeout_ms = 5000;
};

/// One replica process of the sharded serving tier. Wraps the single-node
/// stack (registry + service + HTTP frontend) with cluster-aware routes:
///
///   reads   /v1/decompose is served locally whenever the graph is
///           resident (any holder — reads scale with the replication
///           factor), honoring X-Cluster-Min-Epoch: a replica whose chain
///           is behind answers 412 so the router can fail over without
///           ever serving a client a past epoch.
///   writes  /v1/graphs and /v1/graphs/{name}/edges are applied by the
///           shard owner (non-owners proxy or redirect). The owner
///           journals + applies locally first, then fans the batch out to
///           the other holders pinned to its own epochs — epochs are the
///           replication token, so replica chains are identical by
///           construction, and a follower whose chain diverged (it missed
///           batches while down) answers 409 and is caught up with a
///           full-state sync.
///
/// Internal endpoints (replica-to-replica, same HTTP surface):
///   POST /v1/cluster/register   install a graph at the owner's epoch
///   POST /v1/cluster/edges      apply a replicated batch (+ pinned seal)
///   POST /v1/cluster/sync       full-state catch-up after a 409
///   GET  /v1/cluster/info       membership, placement, resident graphs
///   GET  /v1/cluster/route?graph=g   owner + holders for one name
///
/// Crash/rejoin: followers journal replicated batches and seals under the
/// owner's epochs (journal-before-ack, like the local path), so a killed
/// replica recovers from its *own* --data-dir at its recorded
/// (graph, epoch) — no peer resync — and the next replicated write either
/// chains cleanly or triggers the 409 → sync catch-up.
class ClusterNode {
 public:
  /// Registers cluster routes on `server` (construct the frontend with
  /// register_routes=false). All referenced objects must outlive the node.
  ClusterNode(const ClusterNodeOptions& options,
              service::GraphRegistry& registry,
              service::DecompositionService& service,
              server::DecompositionHttpFrontend& frontend,
              server::HttpServer& server);

  /// Post-bind endpoint fix-up for ephemeral ports: tells this node where
  /// a member actually listens. Ring placement depends only on member
  /// *ids*, so updating an endpoint never moves ownership.
  void SetMemberEndpoint(const std::string& id, const std::string& host,
                         uint16_t port);

  const std::string& self_id() const { return options_.self_id; }
  bool IsOwner(const std::string& graph) const;
  /// Holder ids for `graph`, owner first.
  std::vector<std::string> HoldersOf(const std::string& graph) const;

  struct Stats {
    uint64_t local_reads = 0;        ///< decomposes served from this replica
    uint64_t proxied = 0;            ///< requests answered via a peer
    uint64_t redirected = 0;         ///< 307s answered (proxy=false)
    uint64_t stale_rejects = 0;      ///< 412s (behind X-Cluster-Min-Epoch)
    uint64_t replicated_out = 0;     ///< batches/registrations fanned out
    uint64_t replication_failures = 0;
    uint64_t chain_syncs = 0;        ///< full-state syncs sent after a 409
    uint64_t replicated_applies = 0; ///< internal applies served
  };
  Stats stats() const;

 private:
  server::HttpResponse HandleDecompose(const server::HttpRequest& request);
  server::HttpResponse HandleRegister(const server::HttpRequest& request);
  server::HttpResponse HandleEdges(const server::HttpRequest& request);
  server::HttpResponse HandleClusterRegister(
      const server::HttpRequest& request);
  server::HttpResponse HandleClusterEdges(const server::HttpRequest& request);
  server::HttpResponse HandleClusterSync(const server::HttpRequest& request);
  server::HttpResponse HandleInfo(const server::HttpRequest& request);
  server::HttpResponse HandleRoute(const server::HttpRequest& request);

  /// Proxies `request` to `member` verbatim (plus propagated headers) or
  /// answers 307, per options_.proxy.
  server::HttpResponse ForwardToMember(const std::string& member_id,
                                       const server::HttpRequest& request);

  /// Owner-side register fan-out: ships (name, epoch, shape, edges) to
  /// every other holder.
  void ReplicateRegister(const std::string& name);

  /// Owner-side batch fan-out of a pre-built /v1/cluster/edges body; a
  /// 409 (diverged follower) triggers a full-state sync to that follower.
  void ReplicateEdges(const std::string& name, const std::string& edges_json);

  bool SyncPeer(const ClusterMember& member, const std::string& name);

  ClusterMember MemberById(const std::string& id) const;

  const ClusterNodeOptions options_;
  service::GraphRegistry* registry_;
  service::DecompositionService* service_;
  server::DecompositionHttpFrontend* frontend_;
  HashRing ring_;
  HttpClient client_;

  mutable std::mutex members_mu_;  ///< guards endpoints of members_
  std::map<std::string, ClusterMember> members_;

  /// Serializes the owner-side write path (local apply + fan-out), so
  /// followers see batches in the owner's journal order.
  std::mutex write_mu_;

  std::atomic<uint64_t> local_reads_{0};
  std::atomic<uint64_t> proxied_{0};
  std::atomic<uint64_t> redirected_{0};
  std::atomic<uint64_t> stale_rejects_{0};
  std::atomic<uint64_t> replicated_out_{0};
  std::atomic<uint64_t> replication_failures_{0};
  std::atomic<uint64_t> chain_syncs_{0};
  std::atomic<uint64_t> replicated_applies_{0};
};

}  // namespace receipt::cluster

#endif  // RECEIPT_CLUSTER_NODE_H_
