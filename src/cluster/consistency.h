#ifndef RECEIPT_CLUSTER_CONSISTENCY_H_
#define RECEIPT_CLUSTER_CONSISTENCY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace receipt::cluster {

/// One parsed line of a ClientTraceLog JSONL file.
struct TraceOp {
  uint64_t seq = 0;
  std::string client;
  bool read = true;
  std::string graph;
  uint64_t epoch = 0;
  std::string request_id;
  std::string file;  ///< where the op came from, for reporting
  size_t line = 0;   ///< 1-based line number in `file`
};

/// Parses a trace file as written by obs::ClientTraceLog, appending to
/// `out` in file order (which is per-client program order for sequential
/// clients). Blank lines are skipped; any malformed line fails the parse.
bool ParseTraceFile(const std::string& path, std::vector<TraceOp>* out,
                    std::string* error);

/// A PRAM/epoch-monotonicity violation: the *pair* of operations that
/// cannot both be explained by any per-client-sequential execution.
struct ConsistencyViolation {
  std::string rule;
  std::string detail;
  TraceOp first;   ///< the earlier op of the violating pair
  TraceOp second;  ///< the op that contradicts it
};

/// Human-readable multi-line rendering, naming both ops of the pair.
std::string FormatViolation(const ConsistencyViolation& violation);

/// Checks a trace against PRAM consistency with epochs as the version
/// order, per (client, graph):
///
///   read-monotonic      a client's reads never go backwards in epoch
///   read-your-writes    a read reflects every earlier write the same
///                       client was acked for (read epoch >= the client's
///                       max prior write epoch)
///   write-monotonic     a client's acked write epochs never decrease
///                       (non-strict: unsealed batches repeat the epoch)
///   read-of-unwritten-epoch
///                       every read epoch was produced by some write in
///                       the trace (checked only for graphs the trace
///                       writes at all — reads of pre-registered graphs
///                       have nothing to match). The write set is global,
///                       not a prefix: a seal's epoch is readable the
///                       moment it installs, possibly before the write's
///                       own trace line lands.
///
/// `ops` must be in trace order (ParseTraceFile order). Returns the first
/// violation found, or nullopt when the trace is PRAM-consistent.
std::optional<ConsistencyViolation> CheckPramConsistency(
    const std::vector<TraceOp>& ops);

}  // namespace receipt::cluster

#endif  // RECEIPT_CLUSTER_CONSISTENCY_H_
