#ifndef RECEIPT_CLUSTER_HASH_RING_H_
#define RECEIPT_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace receipt::cluster {

/// Consistent-hash ring over member ids: each member contributes
/// `vnodes` points (FNV-1a 64 of "id#k"), a key is owned by the first
/// point at or clockwise after its hash. Placement depends only on the
/// member-id set — every process (replicas, router, tests) that builds a
/// ring from the same ids computes the same owner for every graph name,
/// with no coordination. Removing a member moves only the keys it owned
/// (the consistent-hashing minimal-remap property, asserted by the
/// cluster tests).
class HashRing {
 public:
  explicit HashRing(std::vector<std::string> member_ids, int vnodes = 64);

  /// The member owning `key`. Empty string when the ring has no members.
  const std::string& Owner(std::string_view key) const;

  /// The first `count` *distinct* members clockwise from `key`'s hash:
  /// holders[0] is the owner, the rest are its replicas. Shorter than
  /// `count` when the ring has fewer members.
  std::vector<std::string> Holders(std::string_view key, size_t count) const;

  const std::vector<std::string>& members() const { return members_; }

  static uint64_t Fnv1a64(std::string_view bytes);

 private:
  struct Point {
    uint64_t hash = 0;
    uint32_t member = 0;  ///< index into members_
  };

  std::vector<std::string> members_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace receipt::cluster

#endif  // RECEIPT_CLUSTER_HASH_RING_H_
