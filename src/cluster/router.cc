#include "cluster/router.h"

#include <chrono>
#include <condition_variable>
#include <utility>

#include "obs/trace.h"
#include "util/json.h"

namespace receipt::cluster {

namespace {

using server::HttpRequest;
using server::HttpResponse;

HttpResponse JsonError(int status, const std::string& message) {
  util::JsonWriter json;
  json.BeginObject()
      .Key("status").String("error")
      .Key("error").String(message)
      .EndObject();
  HttpResponse response;
  response.status = status;
  response.body = json.Take();
  if (status == 429 || status == 503) {
    response.extra_headers.emplace_back("Retry-After", "1");
  }
  return response;
}

std::string ClientId(const HttpRequest& request) {
  const auto it = request.headers.find("x-client-id");
  return it == request.headers.end() ? "anon" : it->second;
}

/// The request id this hop propagates: the client's X-Request-Id
/// verbatim, or a freshly minted one.
std::string RequestId(const HttpRequest& request) {
  const auto it = request.headers.find("x-request-id");
  if (it != request.headers.end() && !it->second.empty()) return it->second;
  return obs::FormatTraceId(obs::MintTraceId());
}

std::string GraphNameFromBody(const std::string& body,
                              std::string_view field) {
  const auto json = util::JsonValue::Parse(body);
  if (!json.has_value() || !json->IsObject()) return "";
  std::string name;
  json->GetString(std::string(field), &name);
  return name;
}

std::string GraphNameFromEdgesPath(const std::string& path) {
  constexpr std::string_view kPrefix = "/v1/graphs/";
  constexpr std::string_view kSuffix = "/edges";
  if (path.size() <= kPrefix.size() + kSuffix.size() ||
      path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return "";
  }
  const std::string name = path.substr(
      kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
  if (name.find('/') != std::string::npos) return "";
  return name;
}

uint64_t EpochFromResponse(const std::string& body, std::string_view field) {
  const auto json = util::JsonValue::Parse(body);
  if (!json.has_value() || !json->IsObject()) return 0;
  const util::JsonValue* epoch = json->Find(std::string(field));
  return epoch != nullptr && epoch->IsInt() ? epoch->AsUint() : 0;
}

HttpResponse RelayUpstream(HttpClientResponse upstream,
                           const std::string& request_id) {
  HttpResponse response;
  response.status = upstream.status;
  response.body = std::move(upstream.body);
  if (const auto it = upstream.headers.find("content-type");
      it != upstream.headers.end()) {
    response.content_type = it->second;
  }
  if (const auto it = upstream.headers.find("retry-after");
      it != upstream.headers.end()) {
    response.extra_headers.emplace_back("Retry-After", it->second);
  }
  response.extra_headers.emplace_back("X-Request-Id", request_id);
  return response;
}

/// Statuses worth trying another replica for: the replica is down,
/// behind the monotonic floor, or shedding load — another holder may
/// answer. Semantic statuses (200, 400, 404...) are relayed as-is.
bool ShouldFailOver(int status) {
  return status == 412 || status == 429 || status >= 500;
}

}  // namespace

Router::Router(std::vector<ClusterMember> members,
               const RouterOptions& options)
    : options_(options),
      ring_([&members] {
        std::vector<std::string> ids;
        ids.reserve(members.size());
        for (const ClusterMember& m : members) ids.push_back(m.id);
        return ids;
      }()),
      client_(options.peer_timeout_ms),
      server_(options.http) {
  for (ClusterMember& member : members) {
    auto entry = std::make_unique<Member>();
    entry->endpoint = std::move(member);
    members_[entry->endpoint.id] = std::move(entry);
  }
  server_.Handle("POST", "/v1/decompose", [this](const HttpRequest& r) {
    return HandleDecompose(r);
  });
  server_.Handle("POST", "/v1/graphs", [this](const HttpRequest& r) {
    return HandleWrite(r);
  });
  server_.HandlePrefix("POST", "/v1/graphs/", [this](const HttpRequest& r) {
    return HandleWrite(r);
  });
  server_.Handle("GET", "/v1/graphs", [this](const HttpRequest& r) {
    return HandleListGraphs(r);
  });
  server_.Handle("GET", "/healthz", [this](const HttpRequest& r) {
    return HandleHealthz(r);
  });
  server_.Handle("GET", "/statz", [this](const HttpRequest& r) {
    return HandleStatz(r);
  });
  server_.Handle("GET", "/v1/cluster/route", [this](const HttpRequest& r) {
    return HandleRoute(r);
  });
}

Router::~Router() { Stop(); }

bool Router::Start(std::string* error) {
  if (!options_.trace_log_path.empty() &&
      !trace_log_.Open(options_.trace_log_path, error)) {
    return false;
  }
  if (!server_.Start(error)) return false;
  if (options_.health_interval_ms > 0) {
    prober_ = std::thread([this] { ProbeLoop(); });
  }
  return true;
}

void Router::Stop() {
  if (stopping_.exchange(true)) return;
  server_.Stop();
  if (prober_.joinable()) prober_.join();
}

uint16_t Router::port() const { return server_.port(); }

Router::Stats Router::stats() const {
  Stats s;
  s.reads_routed = reads_routed_.load(std::memory_order_relaxed);
  s.writes_routed = writes_routed_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.no_replica = no_replica_.load(std::memory_order_relaxed);
  s.trace_records = trace_log_.records_written();
  for (const auto& [id, member] : members_) {
    if (member->healthy.load(std::memory_order_relaxed)) {
      ++s.healthy_replicas;
    }
  }
  return s;
}

bool Router::Forward(
    Member& member, const HttpRequest& request,
    const std::vector<std::pair<std::string, std::string>>& headers,
    HttpClientResponse* upstream) {
  std::string target = request.path;
  if (!request.query.empty()) target += "?" + request.query;
  std::string error;
  if (!client_.Request(request.method, member.endpoint.host,
                       member.endpoint.port, target, request.body, headers,
                       upstream, &error)) {
    member.healthy.store(false, std::memory_order_relaxed);
    return false;
  }
  member.healthy.store(true, std::memory_order_relaxed);
  return true;
}

uint64_t Router::KnownMinEpoch(const std::string& graph) const {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  const auto it = epochs_.find(graph);
  return it == epochs_.end() ? 0 : it->second;
}

void Router::ObserveEpoch(const std::string& graph, uint64_t epoch) {
  if (epoch == 0) return;
  std::lock_guard<std::mutex> lock(epochs_mu_);
  uint64_t& known = epochs_[graph];
  if (epoch > known) known = epoch;
}

void Router::RecordTrace(const HttpRequest& request,
                         const std::string& request_id, bool read,
                         const std::string& graph, uint64_t epoch) {
  if (!trace_log_.enabled()) return;
  obs::ClientTraceRecord record;
  record.client = ClientId(request);
  record.read = read;
  record.graph = graph;
  record.epoch = epoch;
  record.request_id = request_id;
  trace_log_.Record(record);
}

HttpResponse Router::HandleDecompose(const HttpRequest& request) {
  const std::string graph = GraphNameFromBody(request.body, "graph");
  if (graph.empty()) {
    return JsonError(400, "missing required string field 'graph'");
  }
  const std::string request_id = RequestId(request);
  const uint64_t min_epoch = KnownMinEpoch(graph);

  std::vector<std::pair<std::string, std::string>> headers;
  headers.emplace_back("X-Request-Id", request_id);
  headers.emplace_back("X-Client-Id", ClientId(request));
  if (min_epoch != 0) {
    headers.emplace_back("X-Cluster-Min-Epoch", std::to_string(min_epoch));
  }

  const std::vector<std::string> holders =
      ring_.Holders(graph, options_.replication_factor);
  if (holders.empty()) return JsonError(503, "cluster has no members");

  // Round-robin start, two passes: healthy candidates first, then the
  // rest — a replica marked down may be back before the prober notices.
  const size_t start = rr_.fetch_add(1, std::memory_order_relaxed);
  std::optional<HttpResponse> last_response;
  for (const bool healthy_only : {true, false}) {
    for (size_t i = 0; i < holders.size(); ++i) {
      Member* member =
          members_[holders[(start + i) % holders.size()]].get();
      if (member == nullptr || member->endpoint.port == 0) continue;
      if (healthy_only !=
          member->healthy.load(std::memory_order_relaxed)) {
        continue;
      }
      HttpClientResponse upstream;
      if (!Forward(*member, request, headers, &upstream)) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (ShouldFailOver(upstream.status)) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        last_response = RelayUpstream(std::move(upstream), request_id);
        continue;
      }
      reads_routed_.fetch_add(1, std::memory_order_relaxed);
      if (upstream.status == 200) {
        const uint64_t epoch =
            EpochFromResponse(upstream.body, "graph_epoch");
        ObserveEpoch(graph, epoch);
        RecordTrace(request, request_id, /*read=*/true, graph, epoch);
      }
      return RelayUpstream(std::move(upstream), request_id);
    }
  }
  no_replica_.fetch_add(1, std::memory_order_relaxed);
  if (last_response.has_value()) return std::move(*last_response);
  return JsonError(503, "no replica holding '" + graph + "' is reachable");
}

HttpResponse Router::HandleWrite(const HttpRequest& request) {
  std::string graph = GraphNameFromEdgesPath(request.path);
  if (request.path == "/v1/graphs") {
    graph = GraphNameFromBody(request.body, "name");
  }
  if (graph.empty()) {
    return JsonError(400, "cannot determine the target graph");
  }
  const std::string request_id = RequestId(request);
  const std::string owner = ring_.Owner(graph);
  Member* member = nullptr;
  if (const auto it = members_.find(owner); it != members_.end()) {
    member = it->second.get();
  }
  if (member == nullptr || member->endpoint.port == 0) {
    return JsonError(503, "no endpoint for shard owner '" + owner + "'");
  }

  std::vector<std::pair<std::string, std::string>> headers;
  headers.emplace_back("X-Request-Id", request_id);
  headers.emplace_back("X-Client-Id", ClientId(request));

  HttpClientResponse upstream;
  if (!Forward(*member, request, headers, &upstream)) {
    no_replica_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(503, "shard owner '" + owner + "' for '" + graph +
                              "' is unreachable");
  }
  writes_routed_.fetch_add(1, std::memory_order_relaxed);
  if (upstream.status == 200) {
    const uint64_t epoch = EpochFromResponse(upstream.body, "epoch");
    ObserveEpoch(graph, epoch);
    RecordTrace(request, request_id, /*read=*/false, graph, epoch);
  }
  return RelayUpstream(std::move(upstream), request_id);
}

HttpResponse Router::HandleListGraphs(const HttpRequest& request) {
  const std::string request_id = RequestId(request);
  for (const bool healthy_only : {true, false}) {
    for (const auto& [id, member] : members_) {
      if (member->endpoint.port == 0) continue;
      if (healthy_only !=
          member->healthy.load(std::memory_order_relaxed)) {
        continue;
      }
      HttpClientResponse upstream;
      if (Forward(*member, request, {{"X-Request-Id", request_id}},
                  &upstream)) {
        return RelayUpstream(std::move(upstream), request_id);
      }
    }
  }
  return JsonError(503, "no replica is reachable");
}

HttpResponse Router::HandleHealthz(const HttpRequest&) {
  const Stats s = stats();
  util::JsonWriter json;
  json.BeginObject()
      .Key("status").String("ok")
      .Key("role").String("router")
      .Key("healthy_replicas").Uint(s.healthy_replicas)
      .Key("replicas").Uint(members_.size())
      .EndObject();
  HttpResponse response;
  response.body = json.Take();
  return response;
}

HttpResponse Router::HandleStatz(const HttpRequest&) {
  const Stats s = stats();
  util::JsonWriter json;
  json.BeginObject()
      .Key("role").String("router")
      .Key("reads_routed").Uint(s.reads_routed)
      .Key("writes_routed").Uint(s.writes_routed)
      .Key("failovers").Uint(s.failovers)
      .Key("no_replica").Uint(s.no_replica)
      .Key("trace_records").Uint(s.trace_records)
      .Key("members").BeginArray();
  for (const auto& [id, member] : members_) {
    json.BeginObject()
        .Key("id").String(id)
        .Key("host").String(member->endpoint.host)
        .Key("port").Uint(member->endpoint.port)
        .Key("healthy")
        .Bool(member->healthy.load(std::memory_order_relaxed))
        .EndObject();
  }
  json.EndArray();
  json.Key("epochs").BeginObject();
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    for (const auto& [graph, epoch] : epochs_) {
      json.Key(graph).Uint(epoch);
    }
  }
  json.EndObject().EndObject();
  HttpResponse response;
  response.body = json.Take();
  return response;
}

HttpResponse Router::HandleRoute(const HttpRequest& request) {
  std::string graph;
  const std::string& query = request.query;
  const size_t pos = query.find("graph=");
  if (pos != std::string::npos) {
    const size_t end = query.find('&', pos);
    graph = query.substr(pos + 6, end == std::string::npos
                                      ? std::string::npos
                                      : end - pos - 6);
  }
  if (graph.empty()) {
    return JsonError(400, "missing required query parameter 'graph'");
  }
  util::JsonWriter json;
  json.BeginObject()
      .Key("graph").String(graph)
      .Key("owner").String(ring_.Owner(graph))
      .Key("holders").BeginArray();
  for (const std::string& holder :
       ring_.Holders(graph, options_.replication_factor)) {
    json.String(holder);
  }
  json.EndArray().Key("endpoints").BeginObject();
  for (const auto& [id, member] : members_) {
    json.Key(id).String(member->endpoint.host + ":" +
                        std::to_string(member->endpoint.port));
  }
  json.EndObject().EndObject();
  HttpResponse response;
  response.body = json.Take();
  return response;
}

void Router::ProbeLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    for (const auto& [id, member] : members_) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (member->endpoint.port == 0) continue;
      HttpClientResponse response;
      std::string error;
      const bool ok = client_.Get(member->endpoint.host,
                                  member->endpoint.port, "/healthz",
                                  &response, &error) &&
                      response.status == 200;
      member->healthy.store(ok, std::memory_order_relaxed);
    }
    // Sliced sleep so Stop() is prompt without a condition variable.
    for (int waited = 0;
         waited < options_.health_interval_ms &&
         !stopping_.load(std::memory_order_relaxed);
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace receipt::cluster
