#include "cluster/hash_ring.h"

#include <algorithm>

namespace receipt::cluster {

uint64_t HashRing::Fnv1a64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Raw FNV-1a disperses short keys ("a#3", "g1") poorly — without a
  // finalizer one member of a 3-member ring can end up owning <10% of the
  // arc. The splitmix64 avalanche restores uniform vnode spread.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

HashRing::HashRing(std::vector<std::string> member_ids, int vnodes)
    : members_(std::move(member_ids)) {
  // Sort the ids so the ring is a pure function of the member *set* —
  // callers passing the same ids in any order build identical rings.
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  if (vnodes < 1) vnodes = 1;
  points_.reserve(members_.size() * static_cast<size_t>(vnodes));
  for (uint32_t m = 0; m < members_.size(); ++m) {
    for (int k = 0; k < vnodes; ++k) {
      points_.push_back(
          {Fnv1a64(members_[m] + "#" + std::to_string(k)), m});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.member < b.member;
            });
}

const std::string& HashRing::Owner(std::string_view key) const {
  static const std::string kEmpty;
  if (points_.empty()) return kEmpty;
  const uint64_t h = Fnv1a64(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t hash) {
                               return p.hash < hash;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap
  return members_[it->member];
}

std::vector<std::string> HashRing::Holders(std::string_view key,
                                           size_t count) const {
  std::vector<std::string> holders;
  if (points_.empty() || count == 0) return holders;
  const uint64_t h = Fnv1a64(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t hash) {
                               return p.hash < hash;
                             });
  std::vector<bool> seen(members_.size(), false);
  for (size_t walked = 0;
       walked < points_.size() && holders.size() < std::min(count, members_.size());
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (!seen[it->member]) {
      seen[it->member] = true;
      holders.push_back(members_[it->member]);
    }
  }
  return holders;
}

}  // namespace receipt::cluster
