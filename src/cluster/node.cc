#include "cluster/node.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "graph/bipartite_graph.h"
#include "service/live_graph.h"
#include "util/json.h"

namespace receipt::cluster {

namespace {

using server::HttpRequest;
using server::HttpResponse;

HttpResponse JsonError(int status, const std::string& message) {
  util::JsonWriter json;
  json.BeginObject()
      .Key("status").String("error")
      .Key("error").String(message)
      .EndObject();
  HttpResponse response;
  response.status = status;
  response.body = json.Take();
  return response;
}

int HttpStatusFor(service::Status status) {
  switch (status) {
    case service::Status::kOk: return 200;
    case service::Status::kNotFound: return 404;
    case service::Status::kBadRequest: return 400;
    case service::Status::kCancelled: return 499;
    case service::Status::kShutdown: return 503;
  }
  return 500;
}

/// The graph name a request addresses: the "graph" body field for
/// /v1/decompose, the "name" field for /v1/graphs. Empty when absent —
/// the caller delegates to the frontend, whose validation produces the
/// right 400.
std::string GraphNameFromBody(const std::string& body,
                              std::string_view field) {
  const auto json = util::JsonValue::Parse(body);
  if (!json.has_value() || !json->IsObject()) return "";
  std::string name;
  json->GetString(std::string(field), &name);
  return name;
}

/// /v1/graphs/{name}/edges -> name ("" when the path is not that shape).
std::string GraphNameFromEdgesPath(const std::string& path) {
  constexpr std::string_view kPrefix = "/v1/graphs/";
  constexpr std::string_view kSuffix = "/edges";
  if (path.size() <= kPrefix.size() + kSuffix.size() ||
      path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return "";
  }
  const std::string name = path.substr(
      kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
  if (name.find('/') != std::string::npos) return "";
  return name;
}

std::string QueryParam(const std::string& query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        std::string_view(query).substr(pos, eq - pos) == key) {
      return query.substr(eq + 1, end - eq - 1);
    }
    pos = end + 1;
  }
  return "";
}

uint64_t MinEpochHeader(const HttpRequest& request) {
  const auto it = request.headers.find("x-cluster-min-epoch");
  if (it == request.headers.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

/// Headers a proxied request carries onward: the end-to-end request id,
/// the client identity, and the router's monotonic-read floor.
std::vector<std::pair<std::string, std::string>> PropagatedHeaders(
    const HttpRequest& request) {
  std::vector<std::pair<std::string, std::string>> headers;
  for (const char* name :
       {"x-request-id", "x-client-id", "x-cluster-min-epoch"}) {
    if (const auto it = request.headers.find(name);
        it != request.headers.end()) {
      headers.emplace_back(name, it->second);
    }
  }
  return headers;
}

/// Parses the client-facing edges body ({"edges":[{"op","u","v"}]}) with
/// the same rules as the frontend. False means the frontend will reject
/// it too — the owner skips fan-out and lets the local 400 stand.
bool ParseEdgeUpdates(const util::JsonValue& json,
                      std::vector<service::EdgeUpdate>* updates) {
  const util::JsonValue* edges = json.Find("edges");
  if (edges == nullptr || !edges->IsArray()) return false;
  updates->reserve(edges->Items().size());
  for (const util::JsonValue& item : edges->Items()) {
    if (!item.IsObject()) return false;
    service::EdgeUpdate update;
    std::string op;
    if (item.GetString("op", &op)) {
      if (op == "insert" || op == "+") {
        update.insert = true;
      } else if (op == "delete" || op == "-") {
        update.insert = false;
      } else {
        return false;
      }
    }
    int64_t u = -1;
    int64_t v = -1;
    if (!item.GetInt("u", &u) || !item.GetInt("v", &v) || u < 0 || v < 0 ||
        u > UINT32_MAX || v > UINT32_MAX) {
      return false;
    }
    update.u = static_cast<VertexId>(u);
    update.v = static_cast<VertexId>(v);
    updates->push_back(update);
  }
  return true;
}

void WriteEdgeUpdates(util::JsonWriter* json,
                      const std::vector<service::EdgeUpdate>& updates) {
  json->Key("edges").BeginArray();
  for (const service::EdgeUpdate& update : updates) {
    json->BeginObject()
        .Key("op").String(update.insert ? "+" : "-")
        .Key("u").Uint(update.u)
        .Key("v").Uint(update.v)
        .EndObject();
  }
  json->EndArray();
}

bool ParseEdgePairs(const util::JsonValue* edges,
                    std::vector<BipartiteGraph::Edge>* out) {
  if (edges == nullptr || !edges->IsArray()) return false;
  out->reserve(edges->Items().size());
  for (const util::JsonValue& item : edges->Items()) {
    if (!item.IsArray() || item.Items().size() != 2 ||
        !item.Items()[0].IsInt() || !item.Items()[1].IsInt()) {
      return false;
    }
    out->push_back({static_cast<VertexId>(item.Items()[0].AsUint()),
                    static_cast<VertexId>(item.Items()[1].AsUint())});
  }
  return true;
}

void WriteEdgePairs(util::JsonWriter* json,
                    const std::vector<BipartiteGraph::Edge>& edges) {
  json->Key("edges").BeginArray();
  for (const BipartiteGraph::Edge& edge : edges) {
    json->BeginArray().Uint(edge.u).Uint(edge.v).EndArray();
  }
  json->EndArray();
}

}  // namespace

bool ParseClusterMembers(const std::string& spec,
                         std::vector<ClusterMember>* out,
                         std::string* error) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (pos > spec.size()) break;
      if (error != nullptr) *error = "empty member entry in '" + spec + "'";
      return false;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "member entry '" + entry + "' is not id=host:port";
      }
      return false;
    }
    ClusterMember member;
    member.id = entry.substr(0, eq);
    std::string endpoint = entry.substr(eq + 1);
    const size_t colon = endpoint.rfind(':');
    if (colon != std::string::npos) {
      member.host = endpoint.substr(0, colon);
      endpoint = endpoint.substr(colon + 1);
    }
    char* parse_end = nullptr;
    const unsigned long port = std::strtoul(endpoint.c_str(), &parse_end, 10);
    if (endpoint.empty() || *parse_end != '\0' || port > 65535) {
      if (error != nullptr) {
        *error = "member entry '" + entry + "' has an invalid port";
      }
      return false;
    }
    member.port = static_cast<uint16_t>(port);
    out->push_back(std::move(member));
  }
  if (out->empty()) {
    if (error != nullptr) *error = "no cluster members in '" + spec + "'";
    return false;
  }
  return true;
}

ClusterNode::ClusterNode(const ClusterNodeOptions& options,
                         service::GraphRegistry& registry,
                         service::DecompositionService& service,
                         server::DecompositionHttpFrontend& frontend,
                         server::HttpServer& server)
    : options_(options),
      registry_(&registry),
      service_(&service),
      frontend_(&frontend),
      ring_([&options] {
        std::vector<std::string> ids;
        ids.reserve(options.members.size());
        for (const ClusterMember& m : options.members) ids.push_back(m.id);
        return ids;
      }()),
      client_(options.peer_timeout_ms) {
  for (const ClusterMember& member : options.members) {
    members_[member.id] = member;
  }

  server.Handle("POST", "/v1/decompose", [this](const HttpRequest& r) {
    return HandleDecompose(r);
  });
  server.Handle("GET", "/v1/graphs", [this](const HttpRequest& r) {
    return frontend_->HandleListGraphs(r);
  });
  server.Handle("POST", "/v1/graphs", [this](const HttpRequest& r) {
    return HandleRegister(r);
  });
  server.HandlePrefix("POST", "/v1/graphs/", [this](const HttpRequest& r) {
    return HandleEdges(r);
  });
  server.Handle("POST", "/v1/admin/snapshot", [this](const HttpRequest& r) {
    return frontend_->HandleAdminSnapshot(r);
  });
  server.Handle("GET", "/healthz", [this](const HttpRequest& r) {
    return frontend_->HandleHealthz(r);
  });
  server.Handle("GET", "/statz", [this](const HttpRequest& r) {
    return frontend_->HandleStatz(r);
  });
  server.Handle("GET", "/metrics", [this](const HttpRequest& r) {
    return frontend_->HandleMetrics(r);
  });
  server.Handle("GET", "/v1/traces", [this](const HttpRequest& r) {
    return frontend_->HandleTraces(r);
  });
  server.HandlePrefix("GET", "/v1/traces/", [this](const HttpRequest& r) {
    return frontend_->HandleTraceById(r);
  });
  server.Handle("POST", "/v1/cluster/register", [this](const HttpRequest& r) {
    return HandleClusterRegister(r);
  });
  server.Handle("POST", "/v1/cluster/edges", [this](const HttpRequest& r) {
    return HandleClusterEdges(r);
  });
  server.Handle("POST", "/v1/cluster/sync", [this](const HttpRequest& r) {
    return HandleClusterSync(r);
  });
  server.Handle("GET", "/v1/cluster/info", [this](const HttpRequest& r) {
    return HandleInfo(r);
  });
  server.Handle("GET", "/v1/cluster/route", [this](const HttpRequest& r) {
    return HandleRoute(r);
  });
}

void ClusterNode::SetMemberEndpoint(const std::string& id,
                                    const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(members_mu_);
  const auto it = members_.find(id);
  if (it == members_.end()) return;
  it->second.host = host;
  it->second.port = port;
}

ClusterMember ClusterNode::MemberById(const std::string& id) const {
  std::lock_guard<std::mutex> lock(members_mu_);
  const auto it = members_.find(id);
  return it == members_.end() ? ClusterMember{} : it->second;
}

bool ClusterNode::IsOwner(const std::string& graph) const {
  return ring_.Owner(graph) == options_.self_id;
}

std::vector<std::string> ClusterNode::HoldersOf(
    const std::string& graph) const {
  return ring_.Holders(graph, options_.replication_factor);
}

ClusterNode::Stats ClusterNode::stats() const {
  Stats s;
  s.local_reads = local_reads_.load(std::memory_order_relaxed);
  s.proxied = proxied_.load(std::memory_order_relaxed);
  s.redirected = redirected_.load(std::memory_order_relaxed);
  s.stale_rejects = stale_rejects_.load(std::memory_order_relaxed);
  s.replicated_out = replicated_out_.load(std::memory_order_relaxed);
  s.replication_failures =
      replication_failures_.load(std::memory_order_relaxed);
  s.chain_syncs = chain_syncs_.load(std::memory_order_relaxed);
  s.replicated_applies = replicated_applies_.load(std::memory_order_relaxed);
  return s;
}

HttpResponse ClusterNode::ForwardToMember(const std::string& member_id,
                                          const HttpRequest& request) {
  const ClusterMember member = MemberById(member_id);
  if (member.id.empty() || member.port == 0) {
    return JsonError(503, "no endpoint known for cluster member '" +
                              member_id + "'");
  }
  std::string target = request.path;
  if (!request.query.empty()) target += "?" + request.query;
  if (!options_.proxy) {
    redirected_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.status = 307;
    response.extra_headers.emplace_back(
        "Location", "http://" + member.host + ":" +
                        std::to_string(member.port) + target);
    util::JsonWriter json;
    json.BeginObject()
        .Key("status").String("redirect")
        .Key("owner").String(member.id)
        .EndObject();
    response.body = json.Take();
    return response;
  }
  HttpClientResponse upstream;
  std::string error;
  if (!client_.Request(request.method, member.host, member.port, target,
                       request.body, PropagatedHeaders(request), &upstream,
                       &error)) {
    return JsonError(503, "cluster member '" + member.id +
                              "' is unreachable: " + error);
  }
  proxied_.fetch_add(1, std::memory_order_relaxed);
  HttpResponse response;
  response.status = upstream.status;
  response.body = std::move(upstream.body);
  if (const auto it = upstream.headers.find("content-type");
      it != upstream.headers.end()) {
    response.content_type = it->second;
  }
  if (const auto it = upstream.headers.find("x-request-id");
      it != upstream.headers.end()) {
    response.extra_headers.emplace_back("X-Request-Id", it->second);
  }
  if (const auto it = upstream.headers.find("retry-after");
      it != upstream.headers.end()) {
    response.extra_headers.emplace_back("Retry-After", it->second);
  }
  return response;
}

HttpResponse ClusterNode::HandleDecompose(const HttpRequest& request) {
  const std::string graph = GraphNameFromBody(request.body, "graph");
  if (graph.empty()) return frontend_->HandleDecompose(request);

  if (const service::GraphHandle handle = registry_->Acquire(graph)) {
    // Monotonic reads: never serve below the client's known epoch. The
    // router fails over to a holder that has caught up (the owner always
    // qualifies — it minted the epoch).
    const uint64_t min_epoch = MinEpochHeader(request);
    if (min_epoch != 0 && handle.epoch() < min_epoch) {
      stale_rejects_.fetch_add(1, std::memory_order_relaxed);
      return JsonError(412, "replica '" + options_.self_id + "' holds '" +
                                graph + "' at epoch " +
                                std::to_string(handle.epoch()) +
                                ", below required " +
                                std::to_string(min_epoch));
    }
    local_reads_.fetch_add(1, std::memory_order_relaxed);
    return frontend_->HandleDecompose(request);
  }

  // Not resident here. A holder that simply never saw the registration
  // defers to the owner; a non-holder routes to the owner outright; the
  // owner itself answers the authoritative 404.
  const std::string owner = ring_.Owner(graph);
  if (owner == options_.self_id || owner.empty()) {
    return frontend_->HandleDecompose(request);
  }
  return ForwardToMember(owner, request);
}

HttpResponse ClusterNode::HandleRegister(const HttpRequest& request) {
  const std::string name = GraphNameFromBody(request.body, "name");
  if (name.empty()) return frontend_->HandleRegisterGraph(request);
  if (!IsOwner(name)) return ForwardToMember(ring_.Owner(name), request);

  std::lock_guard<std::mutex> lock(write_mu_);
  HttpResponse response = frontend_->HandleRegisterGraph(request);
  if (response.status == 200) ReplicateRegister(name);
  return response;
}

HttpResponse ClusterNode::HandleEdges(const HttpRequest& request) {
  const std::string name = GraphNameFromEdgesPath(request.path);
  if (name.empty()) return frontend_->HandleGraphEdges(request);
  if (!IsOwner(name)) return ForwardToMember(ring_.Owner(name), request);

  std::lock_guard<std::mutex> lock(write_mu_);
  const service::GraphHandle before = registry_->Acquire(name);
  const uint64_t expected_epoch = before ? before.epoch() : 0;

  HttpResponse response = frontend_->HandleGraphEdges(request);
  if (response.status != 200 || expected_epoch == 0) return response;

  // Mirror what the frontend just accepted. Both parses see the same
  // body, so a parse failure here is unreachable on a 200 — checked
  // anyway to keep fan-out from shipping garbage.
  std::vector<service::EdgeUpdate> updates;
  const auto body_json = util::JsonValue::Parse(request.body);
  if (!body_json.has_value() || !body_json->IsObject() ||
      !ParseEdgeUpdates(*body_json, &updates)) {
    return response;
  }
  const auto response_json = util::JsonValue::Parse(response.body);
  bool sealed = false;
  uint64_t sealed_epoch = 0;
  int64_t threads = 0;
  if (response_json.has_value()) {
    response_json->GetBool("sealed", &sealed);
    if (const util::JsonValue* epoch = response_json->Find("epoch");
        epoch != nullptr && epoch->IsInt()) {
      sealed_epoch = epoch->AsUint();
    }
  }
  body_json->GetInt("threads", &threads);

  util::JsonWriter json;
  json.BeginObject()
      .Key("graph").String(name)
      .Key("expected_epoch").Uint(expected_epoch)
      .Key("seal").Bool(sealed)
      .Key("sealed_epoch").Uint(sealed ? sealed_epoch : 0)
      .Key("threads").Int(threads);
  WriteEdgeUpdates(&json, updates);
  json.EndObject();
  ReplicateEdges(name, json.Take());
  return response;
}

void ClusterNode::ReplicateRegister(const std::string& name) {
  const service::GraphHandle handle = registry_->Acquire(name);
  if (!handle) return;
  util::JsonWriter json;
  json.BeginObject()
      .Key("name").String(name)
      .Key("epoch").Uint(handle.epoch())
      .Key("num_u").Uint(handle.graph().num_u())
      .Key("num_v").Uint(handle.graph().num_v());
  WriteEdgePairs(&json, handle.graph().ToEdges());
  json.EndObject();
  const std::string body = json.Take();

  for (const std::string& holder : HoldersOf(name)) {
    if (holder == options_.self_id) continue;
    const ClusterMember member = MemberById(holder);
    if (member.port == 0) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    HttpClientResponse peer;
    std::string error;
    if (!client_.Post(member.host, member.port, "/v1/cluster/register", body,
                      {}, &peer, &error) ||
        peer.status != 200) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    replicated_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ClusterNode::ReplicateEdges(const std::string& name,
                                 const std::string& edges_json) {
  for (const std::string& holder : HoldersOf(name)) {
    if (holder == options_.self_id) continue;
    const ClusterMember member = MemberById(holder);
    if (member.port == 0) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    HttpClientResponse peer;
    std::string error;
    if (!client_.Post(member.host, member.port, "/v1/cluster/edges",
                      edges_json, {}, &peer, &error)) {
      // Down or unreachable: it will 409 on its next replicated batch
      // after rejoining, which triggers the sync below.
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (peer.status == 409) {
      // Diverged chain (the follower missed batches while down): catch it
      // up with the full current state instead of the incremental batch.
      chain_syncs_.fetch_add(1, std::memory_order_relaxed);
      if (SyncPeer(member, name)) {
        replicated_out_.fetch_add(1, std::memory_order_relaxed);
      } else {
        replication_failures_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (peer.status != 200) {
      replication_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    replicated_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ClusterNode::SyncPeer(const ClusterMember& member,
                           const std::string& name) {
  service::LiveGraphManager::ExportedState exported;
  if (!service_->live().ExportState(name, &exported)) return false;
  util::JsonWriter json;
  json.BeginObject()
      .Key("name").String(name)
      .Key("epoch").Uint(exported.epoch)
      .Key("num_u").Uint(exported.num_u)
      .Key("num_v").Uint(exported.num_v);
  WriteEdgePairs(&json, exported.edges);
  json.Key("pending").BeginArray();
  for (const service::EdgeUpdate& update : exported.pending) {
    json.BeginObject()
        .Key("op").String(update.insert ? "+" : "-")
        .Key("u").Uint(update.u)
        .Key("v").Uint(update.v)
        .EndObject();
  }
  json.EndArray();
  json.EndObject();

  HttpClientResponse peer;
  std::string error;
  return client_.Post(member.host, member.port, "/v1/cluster/sync",
                      json.Take(), {}, &peer, &error) &&
         peer.status == 200;
}

HttpResponse ClusterNode::HandleClusterRegister(const HttpRequest& request) {
  const auto json = util::JsonValue::Parse(request.body);
  if (!json.has_value() || !json->IsObject()) {
    return JsonError(400, "malformed cluster register body");
  }
  std::string name;
  int64_t num_u = 0;
  int64_t num_v = 0;
  const util::JsonValue* epoch = json->Find("epoch");
  std::vector<BipartiteGraph::Edge> edges;
  if (!json->GetString("name", &name) || epoch == nullptr ||
      !epoch->IsInt() || !json->GetInt("num_u", &num_u) ||
      !json->GetInt("num_v", &num_v) || num_u < 0 || num_v < 0 ||
      !ParseEdgePairs(json->Find("edges"), &edges)) {
    return JsonError(400, "cluster register body needs name, epoch, "
                          "num_u, num_v and [u,v] edge pairs");
  }
  std::string error;
  const service::Status status = service_->RegisterGraphAtEpoch(
      name,
      BipartiteGraph::FromEdges(static_cast<VertexId>(num_u),
                                static_cast<VertexId>(num_v),
                                std::move(edges)),
      epoch->AsUint(), &error);
  if (status != service::Status::kOk) {
    return JsonError(HttpStatusFor(status), error);
  }
  replicated_applies_.fetch_add(1, std::memory_order_relaxed);
  util::JsonWriter out;
  out.BeginObject()
      .Key("status").String("ok")
      .Key("graph").String(name)
      .Key("epoch").Uint(epoch->AsUint())
      .EndObject();
  HttpResponse response;
  response.body = out.Take();
  return response;
}

HttpResponse ClusterNode::HandleClusterEdges(const HttpRequest& request) {
  const auto json = util::JsonValue::Parse(request.body);
  if (!json.has_value() || !json->IsObject()) {
    return JsonError(400, "malformed cluster edges body");
  }
  std::string graph;
  const util::JsonValue* expected = json->Find("expected_epoch");
  const util::JsonValue* sealed_epoch = json->Find("sealed_epoch");
  bool seal = false;
  int64_t threads = 0;
  std::vector<service::EdgeUpdate> updates;
  if (!json->GetString("graph", &graph) || expected == nullptr ||
      !expected->IsInt() || !ParseEdgeUpdates(*json, &updates)) {
    return JsonError(400, "cluster edges body needs graph, expected_epoch "
                          "and edges");
  }
  json->GetBool("seal", &seal);
  json->GetInt("threads", &threads);

  const service::ApplyResult result = service_->live().ApplyReplicated(
      graph, updates, seal, expected->AsUint(),
      sealed_epoch != nullptr && sealed_epoch->IsInt()
          ? sealed_epoch->AsUint()
          : 0,
      static_cast<int>(threads));
  if (result.status != service::Status::kOk) {
    const bool chain_mismatch =
        result.error.find("epoch chain mismatch") != std::string::npos;
    util::JsonWriter out;
    out.BeginObject()
        .Key("status").String("error")
        .Key("error").String(result.error)
        .Key("current_epoch").Uint(result.epoch)
        .EndObject();
    HttpResponse response;
    response.status = chain_mismatch ? 409 : HttpStatusFor(result.status);
    response.body = out.Take();
    return response;
  }
  replicated_applies_.fetch_add(1, std::memory_order_relaxed);
  util::JsonWriter out;
  out.BeginObject()
      .Key("status").String("ok")
      .Key("graph").String(graph)
      .Key("accepted").Uint(result.accepted)
      .Key("pending").Uint(result.pending)
      .Key("sealed").Bool(result.sealed)
      .Key("epoch").Uint(result.epoch)
      .EndObject();
  HttpResponse response;
  response.body = out.Take();
  return response;
}

HttpResponse ClusterNode::HandleClusterSync(const HttpRequest& request) {
  const auto json = util::JsonValue::Parse(request.body);
  if (!json.has_value() || !json->IsObject()) {
    return JsonError(400, "malformed cluster sync body");
  }
  std::string name;
  int64_t num_u = 0;
  int64_t num_v = 0;
  const util::JsonValue* epoch = json->Find("epoch");
  std::vector<BipartiteGraph::Edge> edges;
  std::vector<service::EdgeUpdate> pending;
  if (!json->GetString("name", &name) || epoch == nullptr ||
      !epoch->IsInt() || !json->GetInt("num_u", &num_u) ||
      !json->GetInt("num_v", &num_v) || num_u < 0 || num_v < 0 ||
      !ParseEdgePairs(json->Find("edges"), &edges)) {
    return JsonError(400, "cluster sync body needs name, epoch, num_u, "
                          "num_v and [u,v] edge pairs");
  }
  if (const util::JsonValue* pending_json = json->Find("pending");
      pending_json != nullptr && pending_json->IsArray()) {
    for (const util::JsonValue& item : pending_json->Items()) {
      if (!item.IsObject()) {
        return JsonError(400, "'pending' entries must be objects");
      }
      service::EdgeUpdate update;
      std::string op;
      if (item.GetString("op", &op)) update.insert = op != "-";
      int64_t u = -1;
      int64_t v = -1;
      if (!item.GetInt("u", &u) || !item.GetInt("v", &v) || u < 0 || v < 0) {
        return JsonError(400, "'pending' entries need 'u' and 'v'");
      }
      update.u = static_cast<VertexId>(u);
      update.v = static_cast<VertexId>(v);
      pending.push_back(update);
    }
  }

  std::string error;
  const service::Status status = service_->RegisterGraphAtEpoch(
      name,
      BipartiteGraph::FromEdges(static_cast<VertexId>(num_u),
                                static_cast<VertexId>(num_v),
                                std::move(edges)),
      epoch->AsUint(), &error);
  if (status != service::Status::kOk) {
    return JsonError(HttpStatusFor(status), error);
  }
  if (!pending.empty()) {
    const service::ApplyResult result = service_->live().ApplyReplicated(
        name, pending, /*seal=*/false, epoch->AsUint(), 0, 0);
    if (result.status != service::Status::kOk) {
      return JsonError(HttpStatusFor(result.status), result.error);
    }
  }
  replicated_applies_.fetch_add(1, std::memory_order_relaxed);
  util::JsonWriter out;
  out.BeginObject()
      .Key("status").String("ok")
      .Key("graph").String(name)
      .Key("epoch").Uint(epoch->AsUint())
      .EndObject();
  HttpResponse response;
  response.body = out.Take();
  return response;
}

HttpResponse ClusterNode::HandleInfo(const HttpRequest&) {
  util::JsonWriter json;
  json.BeginObject()
      .Key("id").String(options_.self_id)
      .Key("replication").Uint(options_.replication_factor)
      .Key("proxy").Bool(options_.proxy)
      .Key("members").BeginArray();
  {
    std::lock_guard<std::mutex> lock(members_mu_);
    for (const auto& [id, member] : members_) {
      json.BeginObject()
          .Key("id").String(id)
          .Key("host").String(member.host)
          .Key("port").Uint(member.port)
          .EndObject();
    }
  }
  json.EndArray().Key("graphs").BeginArray();
  for (const std::string& name : registry_->Names()) {
    const service::GraphHandle handle = registry_->Acquire(name);
    if (!handle) continue;
    json.BeginObject()
        .Key("name").String(name)
        .Key("epoch").Uint(handle.epoch())
        .Key("owner").Bool(IsOwner(name))
        .EndObject();
  }
  json.EndArray();
  const Stats s = stats();
  json.Key("stats").BeginObject()
      .Key("local_reads").Uint(s.local_reads)
      .Key("proxied").Uint(s.proxied)
      .Key("redirected").Uint(s.redirected)
      .Key("stale_rejects").Uint(s.stale_rejects)
      .Key("replicated_out").Uint(s.replicated_out)
      .Key("replication_failures").Uint(s.replication_failures)
      .Key("chain_syncs").Uint(s.chain_syncs)
      .Key("replicated_applies").Uint(s.replicated_applies)
      .EndObject();
  json.EndObject();
  HttpResponse response;
  response.body = json.Take();
  return response;
}

HttpResponse ClusterNode::HandleRoute(const HttpRequest& request) {
  const std::string graph = QueryParam(request.query, "graph");
  if (graph.empty()) {
    return JsonError(400, "missing required query parameter 'graph'");
  }
  util::JsonWriter json;
  json.BeginObject()
      .Key("graph").String(graph)
      .Key("owner").String(ring_.Owner(graph))
      .Key("self").String(options_.self_id)
      .Key("holders").BeginArray();
  for (const std::string& holder : HoldersOf(graph)) json.String(holder);
  json.EndArray().EndObject();
  HttpResponse response;
  response.body = json.Take();
  return response;
}

}  // namespace receipt::cluster
