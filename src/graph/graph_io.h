#ifndef RECEIPT_GRAPH_GRAPH_IO_H_
#define RECEIPT_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/bipartite_graph.h"

namespace receipt {

/// Reads a KONECT-style bipartite edge list: one "u v" pair per line,
/// 1-indexed ids, lines starting with '%' or '#' skipped. Vertex counts are
/// inferred from the maximum ids. Returns std::nullopt (and sets *error when
/// provided) on malformed input: non-numeric tokens, ids below 1, missing
/// second column, or a zero-length file (a comments-only file still loads,
/// as the empty graph).
///
/// This is the format of the six datasets in Table 2 (KOBLENZ collection);
/// drop a real KONECT "out.*" file here to run the benchmarks on it.
std::optional<BipartiteGraph> LoadKonect(const std::string& path,
                                         std::string* error = nullptr);

/// Writes the graph in the KONECT text format accepted by LoadKonect.
/// Returns false on IO failure.
bool SaveKonect(const BipartiteGraph& graph, const std::string& path);

/// Binary snapshot: magic, counts, CSR arrays. Fast reload for benchmarks.
/// Returns std::nullopt on malformed/truncated files.
std::optional<BipartiteGraph> LoadBinary(const std::string& path,
                                         std::string* error = nullptr);

/// Writes the binary snapshot format accepted by LoadBinary.
bool SaveBinary(const BipartiteGraph& graph, const std::string& path);

/// Loads a graph file, dispatching on the extension: `.bin` snapshots go
/// through LoadBinary, everything else through LoadKonect. The single place
/// that owns the suffix rule — the CLI and the service registry both route
/// through it.
std::optional<BipartiteGraph> LoadGraphFile(const std::string& path,
                                            std::string* error = nullptr);

}  // namespace receipt

#endif  // RECEIPT_GRAPH_GRAPH_IO_H_
