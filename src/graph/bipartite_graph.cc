#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>

namespace receipt {

BipartiteGraph BipartiteGraph::FromEdges(VertexId num_u, VertexId num_v,
                                         std::vector<Edge> edges) {
  BipartiteGraph g;
  g.AssignFromEdges(num_u, num_v, edges);
  return g;
}

void BipartiteGraph::AssignFromEdges(VertexId num_u, VertexId num_v,
                                     std::vector<Edge>& edges,
                                     std::vector<EdgeOffset>* cursor_scratch) {
  for (const Edge& e : edges) {
    if (e.u >= num_u || e.v >= num_v) {
      std::fprintf(stderr,
                   "BipartiteGraph::AssignFromEdges: edge (%u, %u) out of "
                   "range (num_u=%u, num_v=%u)\n",
                   e.u, e.v, num_u, num_v);
      std::abort();
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  num_u_ = num_u;
  num_v_ = num_v;
  const VertexId n = num_u + num_v;
  offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++offsets_[e.u + 1];
    ++offsets_[num_u + e.v + 1];
  }
  for (VertexId w = 0; w < n; ++w) offsets_[w + 1] += offsets_[w];

  adjacency_.resize(2 * edges.size());
  std::vector<EdgeOffset> local_cursor;
  std::vector<EdgeOffset>& cursor =
      cursor_scratch != nullptr ? *cursor_scratch : local_cursor;
  cursor.assign(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    const VertexId gu = e.u;
    const VertexId gv = num_u + e.v;
    adjacency_[cursor[gu]++] = gv;
    adjacency_[cursor[gv]++] = gu;
  }
  // Edges were sorted by (u, v), so U adjacency is already ascending; V
  // adjacency is ascending too because u grows monotonically while filling.
  // Sort defensively anyway (cheap, keeps the invariant independent of the
  // fill order above).
  for (VertexId w = 0; w < n; ++w) {
    std::sort(adjacency_.begin() + static_cast<int64_t>(offsets_[w]),
              adjacency_.begin() + static_cast<int64_t>(offsets_[w + 1]));
  }
}

Count BipartiteGraph::WedgeCount(VertexId w) const {
  Count total = 0;
  for (VertexId x : Neighbors(w)) total += Degree(x) - 1;
  return total;
}

Count BipartiteGraph::TotalWedges(Side side) const {
  Count total = 0;
  for (VertexId w = SideBegin(side); w < SideEnd(side); ++w) {
    total += WedgeCount(w);
  }
  return total;
}

Count BipartiteGraph::CountingCostBound() const {
  Count total = 0;
  for (VertexId u = 0; u < num_u_; ++u) {
    const Count du = Degree(u);
    for (VertexId v : Neighbors(u)) total += std::min(du, Count{Degree(v)});
  }
  return total;
}

double BipartiteGraph::AverageDegree(Side side) const {
  const VertexId n = SideSize(side);
  if (n == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(n);
}

BipartiteGraph BipartiteGraph::SwappedCopy() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_u_; ++u) {
    for (VertexId gv : Neighbors(u)) {
      edges.push_back(Edge{.u = gv - num_u_, .v = u});
    }
  }
  return FromEdges(num_v_, num_u_, std::move(edges));
}

std::vector<VertexId> BipartiteGraph::DegreeDescendingRanks() const {
  std::vector<VertexId> rank;
  std::vector<VertexId> order;
  DegreeDescendingRanksInto(rank, order);
  return rank;
}

void BipartiteGraph::DegreeDescendingRanksInto(
    std::vector<VertexId>& rank, std::vector<VertexId>& order_scratch) const {
  const VertexId n = num_vertices();
  order_scratch.resize(n);
  std::iota(order_scratch.begin(), order_scratch.end(), 0);
  std::sort(order_scratch.begin(), order_scratch.end(),
            [this](VertexId a, VertexId b) {
              const uint64_t da = Degree(a), db = Degree(b);
              if (da != db) return da > db;
              return a < b;
            });
  rank.resize(n);
  for (VertexId i = 0; i < n; ++i) rank[order_scratch[i]] = i;
}

std::vector<BipartiteGraph::Edge> BipartiteGraph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_u_; ++u) {
    for (VertexId gv : Neighbors(u)) {
      edges.push_back(Edge{.u = u, .v = gv - num_u_});
    }
  }
  return edges;
}

std::string BipartiteGraph::Validate() const {
  std::ostringstream err;
  const VertexId n = num_vertices();
  if (offsets_.size() != static_cast<size_t>(n) + 1) {
    err << "offsets size " << offsets_.size() << " != n+1";
    return err.str();
  }
  if (offsets_[0] != 0 || offsets_[n] != adjacency_.size()) {
    err << "offset endpoints invalid";
    return err.str();
  }
  for (VertexId w = 0; w < n; ++w) {
    if (offsets_[w] > offsets_[w + 1]) {
      err << "offsets not monotone at " << w;
      return err.str();
    }
    auto nbrs = Neighbors(w);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId x = nbrs[i];
      if (x >= n) {
        err << "neighbor out of range: " << w << " -> " << x;
        return err.str();
      }
      if (IsU(w) == IsU(x)) {
        err << "edge within one side: " << w << " -> " << x;
        return err.str();
      }
      if (i > 0 && nbrs[i - 1] >= x) {
        err << "adjacency of " << w << " not strictly ascending";
        return err.str();
      }
      // Symmetry: w must appear in x's list.
      auto back = Neighbors(x);
      if (!std::binary_search(back.begin(), back.end(), w)) {
        err << "edge " << w << " -> " << x << " not symmetric";
        return err.str();
      }
    }
  }
  return "";
}

}  // namespace receipt
