#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>

namespace receipt {

BipartiteGraph BipartiteGraph::FromEdges(VertexId num_u, VertexId num_v,
                                         std::vector<Edge> edges) {
  for (const Edge& e : edges) {
    if (e.u >= num_u || e.v >= num_v) {
      std::fprintf(stderr,
                   "BipartiteGraph::FromEdges: edge (%u, %u) out of range "
                   "(num_u=%u, num_v=%u)\n",
                   e.u, e.v, num_u, num_v);
      std::abort();
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  BipartiteGraph g;
  g.num_u_ = num_u;
  g.num_v_ = num_v;
  const VertexId n = num_u + num_v;
  g.offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[num_u + e.v + 1];
  }
  for (VertexId w = 0; w < n; ++w) g.offsets_[w + 1] += g.offsets_[w];

  g.adjacency_.resize(2 * edges.size());
  std::vector<EdgeOffset> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    const VertexId gu = e.u;
    const VertexId gv = num_u + e.v;
    g.adjacency_[cursor[gu]++] = gv;
    g.adjacency_[cursor[gv]++] = gu;
  }
  // Edges were sorted by (u, v), so U adjacency is already ascending; V
  // adjacency is ascending too because u grows monotonically while filling.
  // Sort defensively anyway (cheap, keeps the invariant independent of the
  // fill order above).
  for (VertexId w = 0; w < n; ++w) {
    std::sort(g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[w]),
              g.adjacency_.begin() + static_cast<int64_t>(g.offsets_[w + 1]));
  }
  return g;
}

Count BipartiteGraph::WedgeCount(VertexId w) const {
  Count total = 0;
  for (VertexId x : Neighbors(w)) total += Degree(x) - 1;
  return total;
}

Count BipartiteGraph::TotalWedges(Side side) const {
  Count total = 0;
  for (VertexId w = SideBegin(side); w < SideEnd(side); ++w) {
    total += WedgeCount(w);
  }
  return total;
}

Count BipartiteGraph::CountingCostBound() const {
  Count total = 0;
  for (VertexId u = 0; u < num_u_; ++u) {
    const Count du = Degree(u);
    for (VertexId v : Neighbors(u)) total += std::min(du, Count{Degree(v)});
  }
  return total;
}

double BipartiteGraph::AverageDegree(Side side) const {
  const VertexId n = SideSize(side);
  if (n == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(n);
}

BipartiteGraph BipartiteGraph::SwappedCopy() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_u_; ++u) {
    for (VertexId gv : Neighbors(u)) {
      edges.push_back(Edge{.u = gv - num_u_, .v = u});
    }
  }
  return FromEdges(num_v_, num_u_, std::move(edges));
}

std::vector<VertexId> BipartiteGraph::DegreeDescendingRanks() const {
  const VertexId n = num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
    const uint64_t da = Degree(a), db = Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<VertexId> rank(n);
  for (VertexId i = 0; i < n; ++i) rank[order[i]] = i;
  return rank;
}

std::vector<BipartiteGraph::Edge> BipartiteGraph::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_u_; ++u) {
    for (VertexId gv : Neighbors(u)) {
      edges.push_back(Edge{.u = u, .v = gv - num_u_});
    }
  }
  return edges;
}

std::string BipartiteGraph::Validate() const {
  std::ostringstream err;
  const VertexId n = num_vertices();
  if (offsets_.size() != static_cast<size_t>(n) + 1) {
    err << "offsets size " << offsets_.size() << " != n+1";
    return err.str();
  }
  if (offsets_[0] != 0 || offsets_[n] != adjacency_.size()) {
    err << "offset endpoints invalid";
    return err.str();
  }
  for (VertexId w = 0; w < n; ++w) {
    if (offsets_[w] > offsets_[w + 1]) {
      err << "offsets not monotone at " << w;
      return err.str();
    }
    auto nbrs = Neighbors(w);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId x = nbrs[i];
      if (x >= n) {
        err << "neighbor out of range: " << w << " -> " << x;
        return err.str();
      }
      if (IsU(w) == IsU(x)) {
        err << "edge within one side: " << w << " -> " << x;
        return err.str();
      }
      if (i > 0 && nbrs[i - 1] >= x) {
        err << "adjacency of " << w << " not strictly ascending";
        return err.str();
      }
      // Symmetry: w must appear in x's list.
      auto back = Neighbors(x);
      if (!std::binary_search(back.begin(), back.end(), w)) {
        err << "edge " << w << " -> " << x << " not symmetric";
        return err.str();
      }
    }
  }
  return "";
}

}  // namespace receipt
