#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace receipt {
namespace {

constexpr uint64_t kBinaryMagic = 0x5245434549505431ULL;  // "RECEIPT1"

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<BipartiteGraph> LoadKonect(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open file: " + path);
    return std::nullopt;
  }
  if (in.peek() == std::ifstream::traits_type::eof()) {
    SetError(error, "empty file: " + path);
    return std::nullopt;
  }
  std::vector<BipartiteGraph::Edge> edges;
  VertexId max_u = 0;
  VertexId max_v = 0;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '%' || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t u = 0;
    int64_t v = 0;
    if (!(ls >> u >> v)) {
      SetError(error, "malformed line " + std::to_string(line_no) + ": '" +
                          line + "'");
      return std::nullopt;
    }
    if (u < 1 || v < 1) {
      SetError(error, "ids must be >= 1 at line " + std::to_string(line_no));
      return std::nullopt;
    }
    const VertexId lu = static_cast<VertexId>(u - 1);
    const VertexId lv = static_cast<VertexId>(v - 1);
    max_u = std::max(max_u, lu + 1);
    max_v = std::max(max_v, lv + 1);
    edges.push_back({lu, lv});
  }
  return BipartiteGraph::FromEdges(max_u, max_v, std::move(edges));
}

bool SaveKonect(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "% bip unweighted\n";
  out << "% " << graph.num_edges() << " " << graph.num_u() << " "
      << graph.num_v() << "\n";
  for (const auto& e : graph.ToEdges()) {
    out << (e.u + 1) << " " << (e.v + 1) << "\n";
  }
  return static_cast<bool>(out);
}

std::optional<BipartiteGraph> LoadBinary(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open file: " + path);
    return std::nullopt;
  }
  if (in.peek() == std::ifstream::traits_type::eof()) {
    SetError(error, "empty file: " + path);
    return std::nullopt;
  }
  uint64_t magic = 0;
  uint64_t num_u = 0;
  uint64_t num_v = 0;
  uint64_t num_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&num_u), sizeof(num_u));
  in.read(reinterpret_cast<char*>(&num_v), sizeof(num_v));
  in.read(reinterpret_cast<char*>(&num_edges), sizeof(num_edges));
  if (!in || magic != kBinaryMagic) {
    SetError(error, "bad magic or truncated header");
    return std::nullopt;
  }
  std::vector<BipartiteGraph::Edge> edges(num_edges);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(num_edges * sizeof(edges[0])));
  if (!in) {
    SetError(error, "truncated edge payload");
    return std::nullopt;
  }
  for (const auto& e : edges) {
    if (e.u >= num_u || e.v >= num_v) {
      SetError(error, "edge out of declared range");
      return std::nullopt;
    }
  }
  return BipartiteGraph::FromEdges(static_cast<VertexId>(num_u),
                                   static_cast<VertexId>(num_v),
                                   std::move(edges));
}

std::optional<BipartiteGraph> LoadGraphFile(const std::string& path,
                                            std::string* error) {
  const bool binary =
      path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
  return binary ? LoadBinary(path, error) : LoadKonect(path, error);
}

bool SaveBinary(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint64_t magic = kBinaryMagic;
  const uint64_t num_u = graph.num_u();
  const uint64_t num_v = graph.num_v();
  const auto edges = graph.ToEdges();
  const uint64_t num_edges = edges.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&num_u), sizeof(num_u));
  out.write(reinterpret_cast<const char*>(&num_v), sizeof(num_v));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(num_edges * sizeof(edges[0])));
  return static_cast<bool>(out);
}

}  // namespace receipt
