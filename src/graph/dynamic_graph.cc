#include "graph/dynamic_graph.h"

#include <algorithm>

#include "util/parallel.h"

namespace receipt {

void DynamicGraph::Reset(const BipartiteGraph& graph,
                         std::span<const VertexId> rank) {
  num_u_ = graph.num_u();
  num_v_ = graph.num_v();
  offsets_.assign(graph.offsets().begin(), graph.offsets().end());
  adjacency_.assign(graph.adjacency().begin(), graph.adjacency().end());
  const VertexId n = num_vertices();
  degree_.resize(n);
  alive_.assign(n, 1);
  rank_.assign(rank.begin(), rank.end());
  for (VertexId w = 0; w < n; ++w) {
    degree_[w] = offsets_[w + 1] - offsets_[w];
    // Re-sort this vertex's neighbors by ascending priority rank; the
    // counting kernel's break rule (Alg. 1 line 10) requires it.
    auto begin = adjacency_.begin() + static_cast<int64_t>(offsets_[w]);
    auto end = adjacency_.begin() + static_cast<int64_t>(offsets_[w + 1]);
    std::sort(begin, end, [this](VertexId a, VertexId b) {
      return rank_[a] < rank_[b];
    });
  }
}

void DynamicGraph::Compact(int num_threads) {
  const VertexId n = num_vertices();
  ParallelFor(n, num_threads, [this](size_t w) {
    if (!alive_[w]) {
      degree_[w] = 0;
      return;
    }
    VertexId* begin = adjacency_.data() + offsets_[w];
    uint64_t kept = 0;
    const uint64_t deg = degree_[w];
    for (uint64_t i = 0; i < deg; ++i) {
      const VertexId x = begin[i];
      if (alive_[x]) begin[kept++] = x;  // stable: preserves rank order
    }
    degree_[w] = kept;
  });
}

uint64_t DynamicGraph::LiveEdgeSlots() const {
  uint64_t total = 0;
  const VertexId n = num_vertices();
  for (VertexId w = 0; w < n; ++w) {
    if (alive_[w]) total += degree_[w];
  }
  return total;
}

Count DynamicGraph::RecountCostBound() const {
  Count total = 0;
  for (VertexId u = 0; u < num_u_; ++u) {
    if (!alive_[u]) continue;
    const uint64_t du = degree_[u];
    for (VertexId v : Neighbors(u)) {
      if (alive_[v]) total += std::min<Count>(du, degree_[v]);
    }
  }
  return total;
}

Count DynamicGraph::LiveWedgeCount(VertexId w) const {
  Count total = 0;
  for (VertexId x : Neighbors(w)) {
    if (alive_[x] && degree_[x] > 0) total += degree_[x] - 1;
  }
  return total;
}

VertexId DynamicGraph::NumAlive(Side side) const {
  const VertexId begin = side == Side::kU ? 0 : num_u_;
  const VertexId end = side == Side::kU ? num_u_ : num_vertices();
  VertexId count = 0;
  for (VertexId w = begin; w < end; ++w) count += alive_[w];
  return count;
}

}  // namespace receipt
