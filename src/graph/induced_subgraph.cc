#include "graph/induced_subgraph.h"

namespace receipt {

InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& graph,
                                     std::span<const VertexId> subset_u) {
  InducedSubgraphArena arena;
  BuildInducedSubgraph(graph, subset_u, arena);
  return std::move(arena.subgraph);
}

const InducedSubgraph& BuildInducedSubgraph(const BipartiteGraph& graph,
                                            std::span<const VertexId> subset_u,
                                            InducedSubgraphArena& arena) {
  const size_t footprint_before = arena.CapacityFootprint();
  InducedSubgraph& out = arena.subgraph;
  out.u_global.assign(subset_u.begin(), subset_u.end());
  out.v_global.clear();

  // Map touched V vertices to compact local ids in first-seen order through
  // a dense map (same first-seen order the hash-map implementation
  // produced, so the resulting graphs are bit-identical).
  if (arena.v_local_plus1.size() < static_cast<size_t>(graph.num_v())) {
    arena.v_local_plus1.resize(graph.num_v(), 0);
  }
  arena.edges.clear();
  for (VertexId lu = 0; lu < subset_u.size(); ++lu) {
    const VertexId gu = subset_u[lu];
    for (VertexId gv : graph.Neighbors(gu)) {
      const VertexId v_side = graph.Local(gv);
      VertexId lv_plus1 = arena.v_local_plus1[v_side];
      if (lv_plus1 == 0) {
        out.v_global.push_back(v_side);
        lv_plus1 = static_cast<VertexId>(out.v_global.size());
        arena.v_local_plus1[v_side] = lv_plus1;
      }
      arena.edges.push_back({lu, lv_plus1 - 1});
    }
  }
  // Restore the all-zero map invariant by resetting exactly the touched
  // entries (O(|V'|), not O(|V|)).
  for (const VertexId v_side : out.v_global) arena.v_local_plus1[v_side] = 0;

  out.graph.AssignFromEdges(static_cast<VertexId>(subset_u.size()),
                            static_cast<VertexId>(out.v_global.size()),
                            arena.edges, &arena.cursor_scratch);
  if (arena.CapacityFootprint() > footprint_before) ++arena.growths;
  return out;
}

}  // namespace receipt
