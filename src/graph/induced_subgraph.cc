#include "graph/induced_subgraph.h"

#include <unordered_map>

namespace receipt {

InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& graph,
                                     std::span<const VertexId> subset_u) {
  InducedSubgraph result;
  result.u_global.assign(subset_u.begin(), subset_u.end());

  // Map touched V vertices to compact local ids in first-seen order.
  std::unordered_map<VertexId, VertexId> v_local_of;
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId lu = 0; lu < subset_u.size(); ++lu) {
    const VertexId gu = subset_u[lu];
    for (VertexId gv : graph.Neighbors(gu)) {
      auto [it, inserted] = v_local_of.try_emplace(
          gv, static_cast<VertexId>(result.v_global.size()));
      if (inserted) result.v_global.push_back(graph.Local(gv));
      edges.push_back({lu, it->second});
    }
  }
  result.graph = BipartiteGraph::FromEdges(
      static_cast<VertexId>(subset_u.size()),
      static_cast<VertexId>(result.v_global.size()), std::move(edges));
  return result;
}

}  // namespace receipt
