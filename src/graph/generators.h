#ifndef RECEIPT_GRAPH_GENERATORS_H_
#define RECEIPT_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// Deterministic synthetic bipartite graph generators.
///
/// The paper evaluates on six KONECT datasets (Table 2) that are not
/// redistributable inside this repository. These generators produce
/// deterministic analogues whose *wedge-distribution shape* (degree skew,
/// U/V wedge asymmetry, butterfly density) matches each dataset's role in
/// the evaluation, at a scale that runs on one machine in seconds. See
/// DESIGN.md §2 for the substitution argument.

/// Uniform random bipartite graph: `num_edges` distinct edges sampled
/// uniformly from the num_u × num_v grid. Deterministic for a fixed seed.
BipartiteGraph RandomBipartite(VertexId num_u, VertexId num_v,
                               uint64_t num_edges, uint64_t seed);

/// Chung–Lu style power-law bipartite graph. Vertex i on side U gets weight
/// (i+1)^-alpha_u (similarly for V); edges are sampled proportionally to the
/// product of endpoint weights until `num_edges` distinct edges exist.
/// Larger alpha = heavier skew = a few very high degree vertices = huge
/// maximum tip numbers, mimicking the Trackers/Delicious datasets.
BipartiteGraph ChungLuBipartite(VertexId num_u, VertexId num_v,
                                uint64_t num_edges, double alpha_u,
                                double alpha_v, uint64_t seed);

/// Parameters for one planted community of AffiliationGraph.
struct CommunitySpec {
  VertexId num_users = 0;    ///< U-side members.
  VertexId num_items = 0;    ///< V-side members.
  double density = 1.0;      ///< probability of each (user, item) edge.
};

/// Affiliation / planted-block model: disjoint U and V blocks with dense
/// bipartite cliques inside each community plus uniform background noise.
/// Models author–paper and user–group networks (§1) and gives ground-truth
/// dense blocks for the spam-detection and hierarchy examples: members of a
/// dense a×b block participate in ~C(a-1,1)·C(b,2)-scale butterflies, so tip
/// decomposition surfaces them at the top of the hierarchy.
BipartiteGraph AffiliationGraph(VertexId num_u, VertexId num_v,
                                const std::vector<CommunitySpec>& communities,
                                uint64_t background_edges, uint64_t seed);

/// Complete bipartite graph K_{a,b}: every u ∈ U is a neighbor of every
/// v ∈ V. Closed-form butterflies: each u participates in (a-1)·C(b,2).
BipartiteGraph CompleteBipartite(VertexId a, VertexId b);

/// A star: one V hub connected to all of U (zero butterflies).
BipartiteGraph Star(VertexId num_u);

/// A small 8×7 example graph in the spirit of Fig. 2 of the paper, with
/// hand-verifiable tip numbers: U = {u0..u7} where u0..u3 form a K_{4,4}
/// core (θ = 18), u4 and u5 attach to two core V vertices (θ = 5), and
/// u6, u7 are butterfly-free (θ = 0).
BipartiteGraph SmallExampleGraph();

/// A scaled-down analogue of one of the paper's six datasets (Table 2).
/// `name` ∈ {"it", "de", "or", "lj", "en", "tr"}; aborts on anything else.
/// Each analogue fixes (num_u, num_v, edges, skew) so that the qualitative
/// evaluation ratios (r = ∧peel/∧cnt, U/V wedge asymmetry) mirror the paper.
BipartiteGraph MakePaperAnalogue(const std::string& name);

/// All analogue names in Table 2 row order.
const std::vector<std::string>& PaperAnalogueNames();

/// Human-readable description of an analogue (what it substitutes).
std::string PaperAnalogueDescription(const std::string& name);

}  // namespace receipt

#endif  // RECEIPT_GRAPH_GENERATORS_H_
