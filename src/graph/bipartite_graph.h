#ifndef RECEIPT_GRAPH_BIPARTITE_GRAPH_H_
#define RECEIPT_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/types.h"

namespace receipt {

/// An undirected bipartite graph G(W = (U, V), E) in compressed sparse row
/// form over the combined vertex space W.
///
/// U vertices occupy ids [0, num_u()), V vertices occupy ids
/// [num_u(), num_u() + num_v()). Every edge (u, v) is stored twice: once in
/// u's adjacency list and once in v's. Adjacency lists are sorted in
/// ascending id order after Build(), which the butterfly-counting kernel
/// relies on for its priority-break rule (Alg. 1 line 10) once ids are
/// assigned by descending degree (see DegreeOrderedCopy()).
///
/// The class is immutable after construction; peeling algorithms layer
/// mutable degree/alive state on top via DynamicGraph.
class BipartiteGraph {
 public:
  /// An edge as a (u, v) pair in *side-local* coordinates: u ∈ [0, num_u),
  /// v ∈ [0, num_v). Used by builders and generators.
  struct Edge {
    VertexId u;
    VertexId v;
    friend bool operator==(const Edge&, const Edge&) = default;
    friend auto operator<=>(const Edge&, const Edge&) = default;
  };

  BipartiteGraph() = default;

  /// Builds a graph from an edge list. Duplicate edges are removed. Edges
  /// must satisfy u < num_u and v < num_v; violating edges abort the build
  /// (programming error).
  static BipartiteGraph FromEdges(VertexId num_u, VertexId num_v,
                                  std::vector<Edge> edges);

  /// In-place FromEdges: rebuilds *this* graph from `edges`, reusing the
  /// CSR arrays' capacity — the allocation-free path for arena-resident
  /// induced subgraphs and environment graphs rebuilt once per partition.
  /// `edges` is sorted and deduplicated in place (caller scratch);
  /// `cursor_scratch`, when supplied, replaces the fill cursor's per-call
  /// allocation.
  void AssignFromEdges(VertexId num_u, VertexId num_v,
                       std::vector<Edge>& edges,
                       std::vector<EdgeOffset>* cursor_scratch = nullptr);

  // -- sizes ---------------------------------------------------------------
  VertexId num_u() const { return num_u_; }
  VertexId num_v() const { return num_v_; }
  VertexId num_vertices() const { return num_u_ + num_v_; }
  /// Number of undirected edges |E|.
  uint64_t num_edges() const { return adjacency_.size() / 2; }

  // -- id helpers ----------------------------------------------------------
  /// True if combined id `w` lies on the U side.
  bool IsU(VertexId w) const { return w < num_u_; }
  /// Combined id of the i-th V vertex.
  VertexId VGlobal(VertexId v_local) const { return num_u_ + v_local; }
  /// Side-local index of a combined id.
  VertexId Local(VertexId w) const { return IsU(w) ? w : w - num_u_; }
  /// First and one-past-last combined id of a side.
  VertexId SideBegin(Side side) const { return side == Side::kU ? 0 : num_u_; }
  VertexId SideEnd(Side side) const {
    return side == Side::kU ? num_u_ : num_vertices();
  }
  VertexId SideSize(Side side) const {
    return side == Side::kU ? num_u_ : num_v_;
  }

  // -- topology ------------------------------------------------------------
  uint64_t Degree(VertexId w) const { return offsets_[w + 1] - offsets_[w]; }
  std::span<const VertexId> Neighbors(VertexId w) const {
    return {adjacency_.data() + offsets_[w],
            adjacency_.data() + offsets_[w + 1]};
  }
  std::span<const EdgeOffset> offsets() const { return offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }

  /// Offset of the first neighbor of `w` inside adjacency(). Together with
  /// Degree(), this lets peeling code address per-edge side arrays.
  EdgeOffset NeighborOffset(VertexId w) const { return offsets_[w]; }

  // -- derived quantities ---------------------------------------------------
  /// Number of wedges with *endpoint* w: Σ_{x ∈ N(w)} (d_x − 1). The paper's
  /// w[u] (Alg. 3) and the per-vertex peeling cost model.
  Count WedgeCount(VertexId w) const;

  /// Σ over a side of WedgeCount — the ∧ workload of peeling that side.
  Count TotalWedges(Side side) const;

  /// Σ_{(u,v) ∈ E} min(d_u, d_v) — the vertex-priority counting cost bound
  /// (C_rcnt in §4.1).
  Count CountingCostBound() const;

  /// Average degree of a side (|E| / side size).
  double AverageDegree(Side side) const;

  // -- transforms ------------------------------------------------------------
  /// Returns a copy of this graph whose U side is the current V side and vice
  /// versa. Peeling algorithms always decompose the U side; callers wanting a
  /// V-side decomposition swap first.
  BipartiteGraph SwappedCopy() const;

  /// Returns a priority rank per vertex: rank[w] = position of w in
  /// descending-degree order (rank 0 = highest degree). Ties broken by id so
  /// the rank is a strict total order. This is the vertex-priority used by
  /// the counting kernel; lower rank = higher priority.
  std::vector<VertexId> DegreeDescendingRanks() const;

  /// Allocation-free variant: fills `rank` (resized to num_vertices())
  /// using `order_scratch` for the intermediate sort, both reusing their
  /// capacity across calls.
  void DegreeDescendingRanksInto(std::vector<VertexId>& rank,
                                 std::vector<VertexId>& order_scratch) const;

  /// Capacity of the CSR arrays in elements — the arena-reuse telemetry
  /// that lets growth tests see through in-place rebuilds.
  size_t CapacityFootprint() const {
    return offsets_.capacity() + adjacency_.capacity();
  }

  /// Returns the edge list in side-local coordinates (u ascending, then v).
  std::vector<Edge> ToEdges() const;

  /// Asserts internal invariants (sorted adjacency, symmetric edges,
  /// consistent offsets). Returns an explanation on failure, empty on
  /// success. Used by tests and after IO.
  std::string Validate() const;

 private:
  VertexId num_u_ = 0;
  VertexId num_v_ = 0;
  std::vector<EdgeOffset> offsets_;   // size num_vertices()+1
  std::vector<VertexId> adjacency_;   // size 2*|E|, sorted per vertex
};

}  // namespace receipt

#endif  // RECEIPT_GRAPH_BIPARTITE_GRAPH_H_
