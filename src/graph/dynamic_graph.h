#ifndef RECEIPT_GRAPH_DYNAMIC_GRAPH_H_
#define RECEIPT_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// A peelable view of a BipartiteGraph: vertices can be killed (peeled) and
/// adjacency lists periodically *compacted* to drop edges incident to dead
/// vertices — the paper's Dynamic Graph Maintenance optimization (§4.2).
///
/// Adjacency lists are re-sorted by a caller-supplied priority rank at
/// construction (ascending rank = descending degree in the original graph),
/// which is the order the vertex-priority butterfly-counting kernel (Alg. 1)
/// needs for its break rule. Compaction preserves this order, so HUC
/// re-counts (§4.1) run directly on the compacted structure.
///
/// Between compactions, Degree()/Neighbors() may still include dead
/// vertices; traversals must skip them via IsAlive(). After Compact() the
/// lists of *live* vertices contain only live neighbors.
class DynamicGraph {
 public:
  /// An empty graph; fill in with Reset(). Exists so DynamicGraphs can live
  /// inside reusable arenas (one per FD workspace).
  DynamicGraph() = default;

  /// `rank` must be a permutation of [0, num_vertices) (see
  /// BipartiteGraph::DegreeDescendingRanks). Lower rank = higher priority.
  DynamicGraph(const BipartiteGraph& graph, std::span<const VertexId> rank) {
    Reset(graph, rank);
  }

  /// Re-initializes this view over `graph` (everything alive, adjacency
  /// re-sorted by `rank`), reusing the internal arrays' capacity — the
  /// allocation-free path for arena-resident per-partition graphs.
  void Reset(const BipartiteGraph& graph, std::span<const VertexId> rank);

  /// Capacity of the internal arrays in elements (arena-reuse telemetry).
  size_t CapacityFootprint() const {
    return offsets_.capacity() + adjacency_.capacity() + degree_.capacity() +
           alive_.capacity() + rank_.capacity();
  }

  VertexId num_u() const { return num_u_; }
  VertexId num_v() const { return num_v_; }
  VertexId num_vertices() const { return num_u_ + num_v_; }
  bool IsU(VertexId w) const { return w < num_u_; }

  bool IsAlive(VertexId w) const { return alive_[w] != 0; }
  /// Marks `w` dead. Does not touch adjacency (lazy; see Compact()).
  void Kill(VertexId w) { alive_[w] = 0; }

  /// Current degree: number of entries in the (possibly uncompacted)
  /// adjacency list. An upper bound on the live degree.
  uint64_t Degree(VertexId w) const { return degree_[w]; }

  std::span<const VertexId> Neighbors(VertexId w) const {
    return {adjacency_.data() + offsets_[w],
            adjacency_.data() + offsets_[w] + degree_[w]};
  }

  /// Priority rank of a vertex (fixed at construction).
  VertexId Rank(VertexId w) const { return rank_[w]; }

  /// Removes dead entries from every live vertex's adjacency list, updating
  /// degrees. O(current edge slots) with `num_threads` OpenMP threads.
  void Compact(int num_threads);

  /// Σ of current degrees over live vertices (≈ 2·live edges once
  /// compacted; an upper bound otherwise). Used for the DGM trigger.
  uint64_t LiveEdgeSlots() const;

  /// Σ_{(u,v) live} min(d_u, d_v) with current degrees — the re-counting
  /// cost bound C_rcnt of §4.1. Exact after a Compact(), an overestimate
  /// between compactions (safe: HUC then triggers less often, never
  /// wrongly).
  Count RecountCostBound() const;

  /// Σ_{x ∈ N(w), alive} (d_x − 1) with current degrees: the live wedge
  /// count of `w`, i.e. the cost of peeling it now.
  Count LiveWedgeCount(VertexId w) const;

  /// Number of live vertices on a side.
  VertexId NumAlive(Side side) const;

 private:
  VertexId num_u_ = 0;
  VertexId num_v_ = 0;
  std::vector<EdgeOffset> offsets_;    // fixed slot layout from the source
  std::vector<VertexId> adjacency_;    // mutable; compacted in place
  std::vector<uint64_t> degree_;       // live prefix length per vertex
  std::vector<uint8_t> alive_;
  std::vector<VertexId> rank_;
};

}  // namespace receipt

#endif  // RECEIPT_GRAPH_DYNAMIC_GRAPH_H_
