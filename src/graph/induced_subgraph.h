#ifndef RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_
#define RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_

#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt {

/// The subgraph G_i induced on a subset U_i ⊆ U together with the entire V
/// side, re-labelled into a compact local id space (Alg. 4 line 5).
///
/// Only V vertices with at least one neighbor in U_i are materialized, so
/// the structure is proportional to the subset's edge count, not to |V|.
/// Every butterfly between two members of U_i survives in `graph` because
/// all their common neighbors are kept (Theorem 2's requirement).
struct InducedSubgraph {
  BipartiteGraph graph;              ///< local CSR: U' = subset, V' = touched V.
  std::vector<VertexId> u_global;    ///< local u id -> global u id.
  std::vector<VertexId> v_global;    ///< local v id -> global v id (side-local).
};

/// Builds the induced subgraph for `subset_u` (global U ids) of `graph`.
/// Thread-safe for concurrent calls on disjoint subsets (RECEIPT FD builds
/// one per task).
InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& graph,
                                     std::span<const VertexId> subset_u);

}  // namespace receipt

#endif  // RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_
