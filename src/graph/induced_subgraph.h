#ifndef RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_
#define RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/dynamic_graph.h"
#include "util/relaxed_counter.h"
#include "util/types.h"

namespace receipt {

/// The subgraph G_i induced on a subset U_i ⊆ U together with the entire V
/// side, re-labelled into a compact local id space (Alg. 4 line 5).
///
/// Only V vertices with at least one neighbor in U_i are materialized, so
/// the structure is proportional to the subset's edge count, not to |V|.
/// Every butterfly between two members of U_i survives in `graph` because
/// all their common neighbors are kept (Theorem 2's requirement).
struct InducedSubgraph {
  BipartiteGraph graph;              ///< local CSR: U' = subset, V' = touched V.
  std::vector<VertexId> u_global;    ///< local u id -> global u id.
  std::vector<VertexId> v_global;    ///< local v id -> global v id (side-local).
};

/// Reusable backing store for induced-subgraph construction: the product
/// itself plus every piece of scratch the build needs, all retaining their
/// capacity between builds. One arena lives in each PeelWorkspace, so
/// RECEIPT FD rebuilds its per-partition subgraph (and the DynamicGraph
/// layered on it) with zero heap allocations in steady state.
struct InducedSubgraphArena {
  InducedSubgraph subgraph;                 ///< rebuilt in place per partition.
  DynamicGraph live;                        ///< peelable view over subgraph.graph.
  std::vector<VertexId> ranks;              ///< DegreeDescendingRanks output.
  std::vector<VertexId> rank_scratch;       ///< rank computation scratch.
  std::vector<BipartiteGraph::Edge> edges;  ///< local edge-list scratch.
  std::vector<EdgeOffset> cursor_scratch;   ///< CSR fill cursor scratch.
  /// Dense first-seen map: global side-local V id -> local V id + 1
  /// (0 = unseen). Only entries touched by the last build are non-zero;
  /// the build resets them on exit.
  std::vector<VertexId> v_local_plus1;

  /// Number of builds that had to grow one of the arena's buffers. Stable
  /// once warm — the arena-reuse tests assert no growth across partitions.
  /// Relaxed-atomic so live telemetry scrapes can read it mid-request.
  util::RelaxedCounter growths;

  /// Approximate capacity of all owned buffers, in elements.
  size_t CapacityFootprint() const {
    return subgraph.graph.CapacityFootprint() +
           subgraph.u_global.capacity() + subgraph.v_global.capacity() +
           live.CapacityFootprint() + ranks.capacity() +
           rank_scratch.capacity() + edges.capacity() +
           cursor_scratch.capacity() + v_local_plus1.capacity();
  }
};

/// Builds the induced subgraph for `subset_u` (global U ids) of `graph`.
/// Thread-safe for concurrent calls on disjoint subsets (RECEIPT FD builds
/// one per task).
InducedSubgraph BuildInducedSubgraph(const BipartiteGraph& graph,
                                     std::span<const VertexId> subset_u);

/// Arena variant: rebuilds `arena.subgraph` in place (allocation-free once
/// the arena is warm) and returns a reference to it. The result is
/// bit-identical to the allocating overload. `arena.live` is NOT touched;
/// callers reset it themselves when they need the peelable view.
const InducedSubgraph& BuildInducedSubgraph(const BipartiteGraph& graph,
                                            std::span<const VertexId> subset_u,
                                            InducedSubgraphArena& arena);

}  // namespace receipt

#endif  // RECEIPT_GRAPH_INDUCED_SUBGRAPH_H_
