#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <unordered_set>

namespace receipt {
namespace {

using Edge = BipartiteGraph::Edge;

/// Packs an edge into one 64-bit key for dedup sets.
uint64_t EdgeKey(VertexId u, VertexId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Cumulative power-law weights w_i = (i+1)^-alpha for i in [0, n);
/// returns the cumulative sums so a vertex can be sampled by binary search.
std::vector<double> CumulativePowerLawWeights(VertexId n, double alpha) {
  std::vector<double> cum(n);
  double running = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    running += std::pow(static_cast<double>(i) + 1.0, -alpha);
    cum[i] = running;
  }
  return cum;
}

VertexId SampleFromCumulative(const std::vector<double>& cum,
                              std::mt19937_64& rng) {
  std::uniform_real_distribution<double> dist(0.0, cum.back());
  const double x = dist(rng);
  const auto it = std::lower_bound(cum.begin(), cum.end(), x);
  return static_cast<VertexId>(it - cum.begin());
}

}  // namespace

BipartiteGraph RandomBipartite(VertexId num_u, VertexId num_v,
                               uint64_t num_edges, uint64_t seed) {
  const uint64_t max_edges =
      static_cast<uint64_t>(num_u) * static_cast<uint64_t>(num_v);
  if (num_edges > max_edges) num_edges = max_edges;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> du(0, num_u ? num_u - 1 : 0);
  std::uniform_int_distribution<VertexId> dv(0, num_v ? num_v - 1 : 0);
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  // Dense targets (> half the grid) would make rejection sampling slow;
  // enumerate and shuffle instead.
  if (num_edges * 2 > max_edges) {
    std::vector<Edge> all;
    all.reserve(max_edges);
    for (VertexId u = 0; u < num_u; ++u) {
      for (VertexId v = 0; v < num_v; ++v) all.push_back(Edge{u, v});
    }
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(num_edges);
    return BipartiteGraph::FromEdges(num_u, num_v, std::move(all));
  }
  while (edges.size() < num_edges) {
    const VertexId u = du(rng);
    const VertexId v = dv(rng);
    if (seen.insert(EdgeKey(u, v)).second) edges.push_back(Edge{u, v});
  }
  return BipartiteGraph::FromEdges(num_u, num_v, std::move(edges));
}

BipartiteGraph ChungLuBipartite(VertexId num_u, VertexId num_v,
                                uint64_t num_edges, double alpha_u,
                                double alpha_v, uint64_t seed) {
  const uint64_t max_edges =
      static_cast<uint64_t>(num_u) * static_cast<uint64_t>(num_v);
  if (num_edges > max_edges) num_edges = max_edges;
  std::mt19937_64 rng(seed);
  const std::vector<double> cum_u = CumulativePowerLawWeights(num_u, alpha_u);
  const std::vector<double> cum_v = CumulativePowerLawWeights(num_v, alpha_v);
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  // Heavy skew causes many duplicate proposals; bound total attempts so the
  // generator terminates even for infeasible parameter combinations.
  const uint64_t max_attempts = 200 * num_edges + 1000;
  uint64_t attempts = 0;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = SampleFromCumulative(cum_u, rng);
    const VertexId v = SampleFromCumulative(cum_v, rng);
    if (seen.insert(EdgeKey(u, v)).second) edges.push_back(Edge{u, v});
  }
  return BipartiteGraph::FromEdges(num_u, num_v, std::move(edges));
}

BipartiteGraph AffiliationGraph(VertexId num_u, VertexId num_v,
                                const std::vector<CommunitySpec>& communities,
                                uint64_t background_edges, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::unordered_set<uint64_t> seen;
  std::vector<Edge> edges;

  VertexId next_u = 0;
  VertexId next_v = 0;
  for (const CommunitySpec& c : communities) {
    if (next_u + c.num_users > num_u || next_v + c.num_items > num_v) {
      std::fprintf(stderr,
                   "AffiliationGraph: communities exceed vertex budget\n");
      std::abort();
    }
    for (VertexId du = 0; du < c.num_users; ++du) {
      for (VertexId dv = 0; dv < c.num_items; ++dv) {
        if (coin(rng) <= c.density) {
          const VertexId u = next_u + du;
          const VertexId v = next_v + dv;
          if (seen.insert(EdgeKey(u, v)).second) edges.push_back(Edge{u, v});
        }
      }
    }
    next_u += c.num_users;
    next_v += c.num_items;
  }

  std::uniform_int_distribution<VertexId> du(0, num_u ? num_u - 1 : 0);
  std::uniform_int_distribution<VertexId> dv(0, num_v ? num_v - 1 : 0);
  uint64_t added = 0;
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100 * background_edges + 1000;
  while (added < background_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = du(rng);
    const VertexId v = dv(rng);
    if (seen.insert(EdgeKey(u, v)).second) {
      edges.push_back(Edge{u, v});
      ++added;
    }
  }
  return BipartiteGraph::FromEdges(num_u, num_v, std::move(edges));
}

BipartiteGraph CompleteBipartite(VertexId a, VertexId b) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(a) * b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.push_back(Edge{u, v});
  }
  return BipartiteGraph::FromEdges(a, b, std::move(edges));
}

BipartiteGraph Star(VertexId num_u) {
  std::vector<Edge> edges;
  edges.reserve(num_u);
  for (VertexId u = 0; u < num_u; ++u) edges.push_back(Edge{u, 0});
  return BipartiteGraph::FromEdges(num_u, 1, std::move(edges));
}

BipartiteGraph SmallExampleGraph() {
  // u0..u3 × v0..v3 complete; u4, u5 -> {v0, v1}; u6 -> {v0}; u7 -> {v4}.
  // Butterflies: u0..u3: 20 each; u4, u5: 5; u6, u7: 0.
  // Tip numbers:  u0..u3: 18;      u4, u5: 5; u6, u7: 0.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.push_back(Edge{u, v});
  }
  edges.push_back(Edge{4, 0});
  edges.push_back(Edge{4, 1});
  edges.push_back(Edge{5, 0});
  edges.push_back(Edge{5, 1});
  edges.push_back(Edge{6, 0});
  edges.push_back(Edge{7, 4});
  return BipartiteGraph::FromEdges(8, 7, std::move(edges));
}

namespace {

struct AnalogueSpec {
  const char* name;
  const char* description;
  VertexId num_u;
  VertexId num_v;
  uint64_t num_edges;
  double alpha_u;
  double alpha_v;
  uint64_t seed;
};

// Scaled analogues of Table 2. The V-side skew (alpha_v) controls the U-side
// peeling workload (∧_U = Σ_v d_v(d_v−1)) and therefore the ratio
// r = ∧peel/∧cnt that decides who benefits from HUC; see DESIGN.md §2.
constexpr AnalogueSpec kAnalogues[] = {
    {"it", "Italian Wikipedia pages-editors analogue: small V side with "
           "heavy hubs; U-side peeling ≫ V-side peeling",
     8000, 800, 40000, 0.40, 0.85, 101},
    {"de", "Delicious users-tags analogue: both sides skewed, butterfly "
           "dense", 12000, 2500, 60000, 0.72, 0.72, 102},
    {"or", "Orkut users-groups analogue: high average degree, moderate "
           "skew, largest butterfly count", 9000, 3000, 150000, 0.35, 0.35,
     103},
    {"lj", "LiveJournal users-groups analogue: strong U/V wedge asymmetry",
     10000, 24000, 60000, 0.30, 0.80, 104},
    {"en", "English Wikipedia pages-editors analogue: large U side, "
           "V hubs dominate", 20000, 3500, 70000, 0.30, 0.78, 105},
    {"tr", "Trackers domains-trackers analogue: extreme V-side hubs, "
           "r = ∧peel/∧cnt in the thousands (HUC stress)", 30000, 12000,
     80000, 0.50, 1.02, 106},
};

const AnalogueSpec* FindAnalogue(const std::string& name) {
  for (const AnalogueSpec& spec : kAnalogues) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

}  // namespace

BipartiteGraph MakePaperAnalogue(const std::string& name) {
  const AnalogueSpec* spec = FindAnalogue(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "MakePaperAnalogue: unknown dataset '%s'\n",
                 name.c_str());
    std::abort();
  }
  return ChungLuBipartite(spec->num_u, spec->num_v, spec->num_edges,
                          spec->alpha_u, spec->alpha_v, spec->seed);
}

const std::vector<std::string>& PaperAnalogueNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"it", "de", "or", "lj", "en", "tr"};
  return names;
}

std::string PaperAnalogueDescription(const std::string& name) {
  const AnalogueSpec* spec = FindAnalogue(name);
  return spec ? spec->description : "unknown dataset";
}

}  // namespace receipt
