#include "service/decomposition_service.h"

#include <algorithm>
#include <utility>

#include "engine/topology.h"
#include "graph/graph_io.h"
#include "tip/bup.h"
#include "tip/parb.h"
#include "tip/receipt.h"
#include "tip/tip_common.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt::service {

namespace {

ServiceOptions NormalizeOptions(ServiceOptions options) {
  // A zero-capacity queue can never admit work: Submit would block forever
  // and zero-worker Execute would spin.
  options.queue_capacity = std::max<size_t>(1, options.queue_capacity);
  options.max_batch = std::max<size_t>(1, options.max_batch);
  return options;
}

}  // namespace

DecompositionService::DecompositionService(GraphRegistry& registry,
                                           const ServiceOptions& options)
    : registry_(&registry),
      options_(NormalizeOptions(options)),
      cache_(options.cache_bytes) {
  if (options_.observability != nullptr) {
    obs_ = options_.observability;
  } else {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs_ = owned_obs_.get();
  }
  RegisterInstruments();

  LiveOptions live_options;
  live_options.max_pending_edges =
      std::max<size_t>(1, options_.live_max_pending_edges);
  live_options.max_staleness_ms = options_.live_max_staleness_ms;
  live_options.dirty_fraction_limit = options_.live_dirty_fraction_limit;
  live_ = std::make_unique<LiveGraphManager>(*registry_, cache_, live_options,
                                             *obs_);

  if (!options_.data_dir.empty()) {
    durability::DurabilityOptions durability_options;
    durability_options.data_dir = options_.data_dir;
    durability_options.fsync = options_.durability_fsync;
    durability_options.segment_bytes = options_.journal_segment_bytes;
    durability_options.batch_bytes = options_.journal_batch_bytes;
    durability_options.snapshot_on_seal = options_.snapshot_on_seal;
    // Recovery runs before the worker pool exists, so replayed seals never
    // race live traffic. Failure leaves the service up but in-memory only
    // (durability_error_ set) — the embedder decides whether to abort.
    durability_ = durability::OpenWithRecovery(
        durability_options, *registry_, *live_, obs_, &recovery_report_,
        &durability_error_);
  }

  const int num_workers = std::max(0, options_.num_workers);

  // Scheduling domains: forced virtual nodes (tests), else the machine's
  // NUMA topology (one queue on single-node machines — the layout then
  // degenerates to the plain shared queue).
  const engine::NumaTopology* topology = nullptr;
  if (options_.placement_nodes > 0) {
    num_nodes_ = options_.placement_nodes;
  } else {
    topology = &engine::SystemTopology();
    num_nodes_ = topology->num_nodes();
  }
  num_nodes_ = std::max(1, num_nodes_);
  node_queues_.resize(static_cast<size_t>(num_nodes_));
  pinned_ = options_.pin_numa && topology != nullptr &&
            !topology->synthetic() && topology->num_nodes() > 1;

  // Workers spread across nodes proportional to CPU counts on a real
  // topology, round-robin over virtual nodes otherwise.
  std::vector<int> node_of_worker;
  if (topology != nullptr && num_workers > 0) {
    node_of_worker = topology->AssignWorkers(num_workers);
  }
  if (static_cast<int>(node_of_worker.size()) != num_workers) {
    node_of_worker.resize(static_cast<size_t>(num_workers));
    for (int i = 0; i < num_workers; ++i) node_of_worker[i] = i % num_nodes_;
  }

  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker* worker = workers_.back().get();
    worker->node = node_of_worker[static_cast<size_t>(i)];
    worker->thread = std::thread([this, worker] { WorkerMain(*worker); });
  }
}

DecompositionService::~DecompositionService() { Shutdown(/*drain=*/true); }

void DecompositionService::RegisterInstruments() {
  obs::MetricsRegistry& m = obs_->metrics;
  constexpr Status kStatuses[] = {Status::kOk, Status::kNotFound,
                                  Status::kBadRequest, Status::kCancelled,
                                  Status::kShutdown};
  for (const Status s : kStatuses) {
    requests_by_outcome_[static_cast<size_t>(s)] =
        m.GetCounter("receipt_requests_total",
                     "Decomposition requests resolved, by outcome.",
                     {{"outcome", StatusName(s)}});
  }
  cache_hits_total_ = m.GetCounter(
      "receipt_cache_hits_total", "Responses served from the ResultCache.");
  coalesced_total_ = m.GetCounter(
      "receipt_coalesced_total",
      "Submits joined to an identical in-flight request.");
  engine_runs_total_ = m.GetCounter("receipt_engine_runs_total",
                                    "Actual decomposition engine executions.");
  request_latency_ = m.GetHistogram(
      "receipt_request_latency_seconds",
      "Admission-to-response latency of queued decomposition requests.");
  queue_wait_ = m.GetHistogram(
      "receipt_queue_wait_seconds",
      "Dequeue-to-start delay: time a request sat in its node queue.");
  engine_seconds_ = m.GetHistogram(
      "receipt_engine_run_seconds",
      "Wall time of one decomposition engine run (seconds_total).");
  const char* wedges_help = "Wedges traversed by engine runs, by phase.";
  wedges_counting_ = m.GetCounter("receipt_engine_wedges_total", wedges_help,
                                  {{"phase", "counting"}});
  wedges_cd_ = m.GetCounter("receipt_engine_wedges_total", wedges_help,
                            {{"phase", "cd"}});
  wedges_fd_ = m.GetCounter("receipt_engine_wedges_total", wedges_help,
                            {{"phase", "fd"}});
  wedges_other_ = m.GetCounter("receipt_engine_wedges_total", wedges_help,
                               {{"phase", "other"}});
  const char* rounds_help = "Engine scheduling rounds, by kind.";
  rounds_sync_ = m.GetCounter("receipt_engine_rounds_total", rounds_help,
                              {{"kind", "sync"}});
  rounds_frontier_ = m.GetCounter("receipt_engine_rounds_total", rounds_help,
                                  {{"kind", "frontier"}});
  rounds_scan_ = m.GetCounter("receipt_engine_rounds_total", rounds_help,
                              {{"kind", "scan"}});
  rounds_index_ = m.GetCounter("receipt_engine_rounds_total", rounds_help,
                               {{"kind", "index_build"}});
  huc_recounts_total_ =
      m.GetCounter("receipt_engine_huc_recounts_total",
                   "Hybrid Update Computation re-counts across runs.");
  dgm_compactions_total_ =
      m.GetCounter("receipt_engine_dgm_compactions_total",
                   "Dynamic Graph Maintenance compactions across runs.");
  fd_local_pops_total_ = m.GetCounter(
      "receipt_engine_fd_local_pops_total",
      "FD scheduler tasks popped from the home node queue.");
  fd_remote_steals_total_ = m.GetCounter(
      "receipt_engine_fd_remote_steals_total",
      "FD scheduler tasks stolen from another node's queue.");
  makespan_predicted_ = m.GetGauge(
      "receipt_engine_makespan_predicted",
      "Predicted per-node peel-cost makespan of the most recent run.");
  makespan_measured_ = m.GetGauge(
      "receipt_engine_makespan_measured",
      "Measured per-node wedge-work makespan of the most recent run.");
}

void DecompositionService::BridgePeelStats(const PeelStats& stats) {
  wedges_counting_->Increment(stats.wedges_counting);
  wedges_cd_->Increment(stats.wedges_cd);
  wedges_fd_->Increment(stats.wedges_fd);
  wedges_other_->Increment(stats.wedges_other);
  rounds_sync_->Increment(stats.sync_rounds);
  rounds_frontier_->Increment(stats.frontier_rounds);
  rounds_scan_->Increment(stats.scan_rounds);
  rounds_index_->Increment(stats.index_build_rounds);
  huc_recounts_total_->Increment(stats.huc_recounts);
  dgm_compactions_total_->Increment(stats.dgm_compactions);
  fd_local_pops_total_->Increment(stats.placement_local_pops);
  fd_remote_steals_total_->Increment(stats.placement_remote_steals);
  makespan_predicted_->Set(stats.makespan_predicted);
  makespan_measured_->Set(stats.makespan_measured);
  engine_seconds_->ObserveSeconds(stats.seconds_total);
}

std::shared_future<Response> DecompositionService::ReadyResponse(
    Response response) {
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

std::shared_future<Response> DecompositionService::Submit(
    const Request& request) {
  return SubmitImpl(request, /*may_block=*/true, /*would_block=*/nullptr);
}

std::optional<std::shared_future<Response>> DecompositionService::TrySubmit(
    const Request& request) {
  bool would_block = false;
  auto future = SubmitImpl(request, /*may_block=*/false, &would_block);
  if (would_block) return std::nullopt;
  return future;
}

std::optional<DecompositionService::Ticket>
DecompositionService::TrySubmitTicket(const Request& request) {
  bool would_block = false;
  std::shared_ptr<Task> task;
  Ticket ticket;
  ticket.future_ = SubmitImpl(request, /*may_block=*/false, &would_block,
                              &task);
  if (would_block) return std::nullopt;
  ticket.task_ = task;
  return ticket;
}

void DecompositionService::Abandon(Ticket& ticket) {
  const auto task = ticket.task_.lock();
  ticket.task_.reset();  // a second Abandon on this ticket is a no-op
  if (task == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++task->abandoned;
  ++stats_.abandoned;
  // Interest = the original ticketed submitter + every coalesced twin.
  // The run is only cancelled once nobody is left to read the result.
  if (task->abandoned > task->extra_submitters) task->control.RequestCancel();
}

Response DecompositionService::Execute(const Request& request) {
  // Without background workers only this thread can drain the queue, so a
  // blocking Submit against a full queue would deadlock. Use the
  // non-blocking submit and drain between attempts instead.
  if (options_.num_workers <= 0) {
    for (;;) {
      if (auto future = TrySubmit(request)) {
        RunQueuedInline();
        return future->get();
      }
      RunQueuedInline();  // queue full: make room, then retry
    }
  }
  return Submit(request).get();
}

std::shared_future<Response> DecompositionService::SubmitImpl(
    const Request& request, bool may_block, bool* would_block,
    std::shared_ptr<Task>* out_task) {
  Response rejection;
  if ((request.kind == RequestKind::kWing) !=
      IsWingAlgorithm(request.algorithm)) {
    rejection.status = Status::kBadRequest;
    rejection.error = std::string("algorithm ") +
                      AlgorithmName(request.algorithm) +
                      " cannot serve a " + RequestKindName(request.kind) +
                      " request";
    OutcomeCounter(Status::kBadRequest)->Increment();
    return ReadyResponse(std::move(rejection));
  }

  GraphHandle handle = registry_->Acquire(request.graph);
  if (!handle) {
    rejection.status = Status::kNotFound;
    rejection.error = "graph '" + request.graph + "' is not registered";
    OutcomeCounter(Status::kNotFound)->Increment();
    return ReadyResponse(std::move(rejection));
  }

  Request normalized = request;
  normalized.threads = std::max(1, request.threads);
  normalized.partitions = std::max(1, request.partitions);
  // The baselines never read `partitions`; normalize it out of the key so
  // equivalent requests coalesce and hit the cache regardless of the value.
  if (normalized.algorithm == Algorithm::kBup ||
      normalized.algorithm == Algorithm::kParb ||
      normalized.algorithm == Algorithm::kWingBup) {
    normalized.partitions = 1;
  }
  const CacheKey cache_key{normalized.graph, handle.epoch(), normalized.kind,
                           normalized.algorithm,
                           static_cast<uint32_t>(normalized.partitions)};

  // Fast path: an identical (epoch, params) result is already resident.
  if (auto hit = cache_.Get(cache_key)) {
    Response response;
    response.payload = std::move(hit);
    response.cache_hit = true;
    response.graph_epoch = cache_key.epoch;
    cache_hits_total_->Increment();
    OutcomeCounter(Status::kOk)->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    ++stats_.cache_hits;
    return ReadyResponse(std::move(response));
  }

  const CoalesceKey coalesce_key{cache_key, normalized.threads};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) {
      rejection.status = Status::kShutdown;
      rejection.error = "service is shutting down";
      OutcomeCounter(Status::kShutdown)->Increment();
      return ReadyResponse(std::move(rejection));
    }
    // Coalesce with an identical queued or executing request: both callers
    // share one engine run (and one future). A twin whose run was already
    // cancelled (every ticketed submitter abandoned it) is dead weight — a
    // fresh submitter must get a fresh task, not a guaranteed kCancelled.
    if (const auto it = inflight_.find(coalesce_key); it != inflight_.end()) {
      if (auto twin = it->second.lock();
          twin != nullptr && !twin->control.Cancelled()) {
        ++twin->extra_submitters;
        ++stats_.submitted;
        ++stats_.coalesced;
        coalesced_total_->Increment();
        // Instantaneous marker on the *joining* request's trace pointing
        // at the run it attached to; the engine spans live on the first
        // submitter's trace id.
        if (normalized.trace.enabled()) {
          normalized.trace.Emit("coalesce.attach",
                                obs::TraceRecorder::NowNs(), 0,
                                twin->request.trace.trace_id);
        }
        if (out_task != nullptr) *out_task = twin;
        return twin->future;
      }
      inflight_.erase(it);
    }
    if (TotalQueuedLocked() < options_.queue_capacity) break;
    if (!may_block) {
      *would_block = true;
      return {};
    }
    queue_not_full_.wait(lock);
  }

  auto task = std::make_shared<Task>();
  task->request = std::move(normalized);
  task->handle = std::move(handle);
  task->cache_key = cache_key;
  task->coalesce_key = coalesce_key;
  task->future = task->promise.get_future().share();
  task->enqueue_ns = obs::TraceRecorder::NowNs();
  const int node = RouteLocked(task->request.graph);
  node_queues_[static_cast<size_t>(node)].push_back(task);
  inflight_[coalesce_key] = task;
  ++stats_.submitted;
  queue_not_empty_.notify_one();
  if (out_task != nullptr) *out_task = task;
  return task->future;
}

int DecompositionService::RouteLocked(const std::string& graph) {
  const auto it = graph_node_.find(graph);
  if (it != graph_node_.end()) return it->second;
  const int node = next_route_node_;
  next_route_node_ = (next_route_node_ + 1) % num_nodes_;
  graph_node_.emplace(graph, node);
  return node;
}

size_t DecompositionService::TotalQueuedLocked() const {
  size_t total = 0;
  for (const auto& q : node_queues_) total += q.size();
  return total;
}

std::vector<std::shared_ptr<DecompositionService::Task>>
DecompositionService::PopBatchLocked(int home) {
  // Home queue first, then the other nodes in ring order: a worker only
  // crosses nodes when its own queue is dry, so sticky-routed graphs stay
  // on the workers whose arenas already hold them.
  int source = home;
  for (int k = 0; k < num_nodes_; ++k) {
    const int node = (home + k) % num_nodes_;
    if (!node_queues_[static_cast<size_t>(node)].empty()) {
      source = node;
      break;
    }
  }
  if (source == home) {
    ++local_pops_;
  } else {
    ++remote_steals_;
  }
  auto& queue = node_queues_[static_cast<size_t>(source)];

  std::vector<std::shared_ptr<Task>> batch;
  batch.push_back(std::move(queue.front()));
  queue.pop_front();
  // Batch same-graph follow-ons from the same queue: they run on scratch
  // already warm for this exact graph shape, and skip a queue round-trip
  // each. Never take work an idle worker could start right now — batching
  // trades queue overhead for warmth, not parallelism.
  const uint64_t epoch = batch.front()->handle.epoch();
  for (auto it = queue.begin();
       it != queue.end() && TotalQueuedLocked() > waiting_workers_ &&
       batch.size() < options_.max_batch;) {
    if ((*it)->handle.epoch() == epoch) {
      batch.push_back(std::move(*it));
      it = queue.erase(it);
      ++stats_.batched_follow_ons;
    } else {
      ++it;
    }
  }
  return batch;
}

void DecompositionService::WorkerMain(Worker& worker) {
  // Pin before any arena is first-touched, so every buffer this worker's
  // pool grows — and the OpenMP teams its engine runs spawn, which inherit
  // the mask — stays on the assigned node. The thread is service-owned and
  // exits at shutdown, so the mask needs no restore.
  if (pinned_) {
    engine::PinThreadToNode(engine::SystemTopology(), worker.node);
  }
  for (;;) {
    std::vector<std::shared_ptr<Task>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_workers_;
      queue_not_empty_.wait(
          lock, [this] { return stopping_ || TotalQueuedLocked() > 0; });
      --waiting_workers_;
      if (TotalQueuedLocked() == 0) return;  // stopping and drained
      batch = PopBatchLocked(worker.node);
      queue_not_full_.notify_all();
    }
    for (const auto& task : batch) ExecuteTask(task, worker.pool);
  }
}

size_t DecompositionService::RunQueuedInline() {
  // Serialize inline drains: concurrent callers (e.g. several Execute()s on
  // a zero-worker service) must not share inline_pool_'s workspaces.
  std::lock_guard<std::mutex> inline_lock(inline_mu_);
  size_t executed = 0;
  for (;;) {
    std::vector<std::shared_ptr<Task>> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (TotalQueuedLocked() == 0) break;
      batch = PopBatchLocked(/*home=*/0);
      queue_not_full_.notify_all();
    }
    for (const auto& task : batch) {
      ExecuteTask(task, inline_pool_);
      ++executed;
    }
  }
  return executed;
}

void DecompositionService::ExecuteTask(const std::shared_ptr<Task>& task,
                                       engine::WorkspacePool& pool) {
  // Queue wait: admission stamp → this worker picking the task up. Spans
  // the same interval whether the task then runs, re-hits the cache, or
  // was cancelled while waiting.
  const uint64_t start_ns = obs::TraceRecorder::NowNs();
  if (task->enqueue_ns != 0) {
    const uint64_t wait_ns =
        start_ns >= task->enqueue_ns ? start_ns - task->enqueue_ns : 0;
    queue_wait_->Observe(wait_ns);
    task->request.trace.Emit("queue.wait", task->enqueue_ns, wait_ns);
  }

  Response response;
  response.graph_epoch = task->cache_key.epoch;
  // Double-checked cache: an identical request may have completed between
  // this task's submit-time miss and now.
  if (auto hit = cache_.Get(task->cache_key)) {
    response.payload = std::move(hit);
    response.cache_hit = true;
    cache_hits_total_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cache_hits;
  } else if (task->control.Cancelled()) {
    response.status = Status::kCancelled;
    response.error = "cancelled before execution";
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.engine_runs;
    }
    engine_runs_total_->Increment();
    response = RunEngine(*task, pool);
    if (response.status == Status::kOk) {
      BridgePeelStats(response.payload->stats);
      cache_.Put(task->cache_key, response.payload);
    }
  }
  FinishTask(task, std::move(response));
}

Response DecompositionService::RunEngine(Task& task,
                                         engine::WorkspacePool& pool) {
  obs::ScopedSpan run_span(task.request.trace, "engine.run");
  Response response;
  response.graph_epoch = task.cache_key.epoch;
  const BipartiteGraph& graph = task.handle.graph();
  const int threads = task.request.threads;

  // Pre-size this worker's scratch to the largest resident graph, not just
  // the request's: whatever graph the next batch targets, the buffers are
  // already big enough — steady-state serving never allocates.
  const GraphRegistry::Shape shape = registry_->MaxShape();
  pool.Prepare(threads,
               std::max(shape.max_vertices, graph.num_vertices()),
               std::max(shape.max_v, graph.num_v()));

  auto payload = std::make_shared<Payload>();
  switch (task.request.algorithm) {
    case Algorithm::kBup:
    case Algorithm::kParb:
    case Algorithm::kReceipt: {
      TipOptions options;
      options.side =
          task.request.kind == RequestKind::kTipV ? Side::kV : Side::kU;
      options.num_threads = threads;
      options.num_partitions = task.request.partitions;
      options.frontier_density_threshold =
          options_.frontier_density_threshold;
      options.frontier_switch = options_.frontier_switch;
      options.use_support_index = options_.use_support_index;
      options.workspace_pool = &pool;
      options.control = &task.control;
      options.trace = task.request.trace;
      TipResult result =
          task.request.algorithm == Algorithm::kBup ? BupDecompose(graph, options)
          : task.request.algorithm == Algorithm::kParb
              ? ParbDecompose(graph, options)
              : ReceiptDecompose(graph, options);
      payload->numbers = std::move(result.tip_numbers);
      payload->stats = result.stats;
      break;
    }
    case Algorithm::kWingBup: {
      WingResult result = WingDecompose(graph, threads, &pool, &task.control,
                                        task.request.trace);
      payload->numbers = std::move(result.wing_numbers);
      payload->stats = result.stats;
      break;
    }
    case Algorithm::kReceiptWing: {
      ReceiptWingOptions options;
      options.num_threads = threads;
      options.num_partitions = task.request.partitions;
      options.frontier_density_threshold =
          options_.frontier_density_threshold;
      options.frontier_switch = options_.frontier_switch;
      options.use_support_index = options_.use_support_index;
      options.workspace_pool = &pool;
      options.control = &task.control;
      options.trace = task.request.trace;
      WingResult result = ReceiptWingDecompose(graph, options);
      payload->numbers = std::move(result.wing_numbers);
      payload->stats = result.stats;
      break;
    }
  }

  if (task.control.Cancelled()) {
    response.status = Status::kCancelled;
    response.error = "cancelled mid-run";
  } else {
    response.payload = std::move(payload);
  }
  return response;
}

void DecompositionService::FinishTask(const std::shared_ptr<Task>& task,
                                      Response response) {
  OutcomeCounter(response.status)->Increment();
  if (task->enqueue_ns != 0) {
    const uint64_t now = obs::TraceRecorder::NowNs();
    if (now > task->enqueue_ns) {
      request_latency_->Observe(now - task->enqueue_ns);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    response.coalesced = task->extra_submitters > 0;
    ++stats_.completed;
    if (response.status == Status::kCancelled) ++stats_.cancelled;
    const auto it = inflight_.find(task->coalesce_key);
    if (it != inflight_.end()) {
      const auto current = it->second.lock();
      if (current == nullptr || current == task) inflight_.erase(it);
    }
  }
  task->promise.set_value(std::move(response));
}

void DecompositionService::Shutdown(bool drain) {
  std::vector<std::shared_ptr<Task>> dropped;
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!drain) {
      for (auto& queue : node_queues_) {
        dropped.insert(dropped.end(), queue.begin(), queue.end());
        queue.clear();
      }
      // Ask executing tasks (still tracked in inflight_) to stop at their
      // next engine check point.
      for (const auto& [key, weak] : inflight_) {
        if (auto task = weak.lock()) task->control.RequestCancel();
      }
    }
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
    queue_not_empty_.notify_all();
    queue_not_full_.notify_all();
  }
  for (const auto& task : dropped) {
    Response response;
    response.status = Status::kCancelled;
    response.error = "dropped by shutdown";
    response.graph_epoch = task->cache_key.epoch;
    FinishTask(task, std::move(response));
  }
  // No background workers: drain what remains here so every outstanding
  // future still resolves.
  if (drain && workers_.empty()) RunQueuedInline();
  if (join_here) {
    for (const auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
}

DecompositionService::Stats DecompositionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ResultCache::Stats DecompositionService::cache_stats() const {
  return cache_.stats();
}

size_t DecompositionService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalQueuedLocked();
}

DecompositionService::SchedulerStats DecompositionService::scheduler_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s;
  s.num_nodes = num_nodes_;
  s.pinned = pinned_;
  s.worker_nodes.reserve(workers_.size());
  for (const auto& worker : workers_) s.worker_nodes.push_back(worker->node);
  s.node_queue_depths.reserve(node_queues_.size());
  for (const auto& q : node_queues_) s.node_queue_depths.push_back(q.size());
  s.local_pops = local_pops_;
  s.remote_steals = remote_steals_;
  return s;
}

size_t DecompositionService::IdleWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_workers_;
}

uint64_t DecompositionService::WorkspaceGrowths() const {
  uint64_t total = inline_pool_.TotalGrowths();
  for (const auto& worker : workers_) total += worker->pool.TotalGrowths();
  return total;
}

Status DecompositionService::RegisterGraph(const std::string& name,
                                           BipartiteGraph graph,
                                           uint64_t* epoch_out,
                                           std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "graph name must not be empty";
    return Status::kBadRequest;
  }
  const GraphHandle previous = registry_->Acquire(name);
  const uint64_t epoch = registry_->AllocateEpoch();
  if (durability_ != nullptr) {
    // Journal before install: an acknowledged registration must already be
    // replayable. Failure means nothing was installed — unacknowledged,
    // consistently absent on both sides of a crash.
    std::string log_error;
    if (!durability_->LogRegister(name, epoch, graph.num_u(), graph.num_v(),
                                  graph.ToEdges(), &log_error)) {
      if (error != nullptr) *error = "durability: " + log_error;
      return Status::kShutdown;
    }
  }
  registry_->RegisterAtEpoch(name, std::move(graph), epoch);
  // Results computed on the superseded registration are unreachable via
  // the new epoch; free their cache bytes eagerly. Resident live state
  // resyncs lazily on its next Track/ApplyEdges (same as before).
  if (previous) cache_.DropEpoch(previous.epoch());
  if (epoch_out != nullptr) *epoch_out = epoch;
  return Status::kOk;
}

Status DecompositionService::RegisterGraphAtEpoch(const std::string& name,
                                                  BipartiteGraph graph,
                                                  uint64_t epoch,
                                                  std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "graph name must not be empty";
    return Status::kBadRequest;
  }
  if (epoch == 0) {
    if (error != nullptr) *error = "epoch must be positive";
    return Status::kBadRequest;
  }
  const GraphHandle previous = registry_->Acquire(name);
  if (durability_ != nullptr) {
    std::string log_error;
    if (!durability_->LogRegister(name, epoch, graph.num_u(), graph.num_v(),
                                  graph.ToEdges(), &log_error)) {
      if (error != nullptr) *error = "durability: " + log_error;
      return Status::kShutdown;
    }
  }
  registry_->RegisterAtEpoch(name, std::move(graph), epoch);
  live_->DropState(name);
  if (previous) cache_.DropEpoch(previous.epoch());
  return Status::kOk;
}

Status DecompositionService::RegisterGraphFile(const std::string& name,
                                               const std::string& path,
                                               uint64_t* epoch_out,
                                               std::string* error) {
  std::string load_error;
  auto loaded = LoadGraphFile(path, &load_error);
  if (!loaded.has_value()) {
    if (error != nullptr) *error = path + ": " + load_error;
    return Status::kBadRequest;
  }
  return RegisterGraph(name, std::move(*loaded), epoch_out, error);
}

Status DecompositionService::UnregisterGraph(const std::string& name,
                                             std::string* error) {
  const GraphHandle handle = registry_->Acquire(name);
  if (!handle) {
    if (error != nullptr) *error = "graph '" + name + "' is not registered";
    return Status::kNotFound;
  }
  if (durability_ != nullptr) {
    std::string log_error;
    if (!durability_->LogUnregister(name, &log_error)) {
      // Fail-stop: the graph stays registered rather than diverging from
      // what a recovered process would see.
      if (error != nullptr) *error = "durability: " + log_error;
      return Status::kShutdown;
    }
  }
  registry_->Evict(name);
  live_->DropState(name);
  cache_.DropEpoch(handle.epoch());
  return Status::kOk;
}

}  // namespace receipt::service
