#include "service/graph_registry.h"

#include <algorithm>

#include "graph/graph_io.h"

namespace receipt::service {

uint64_t GraphRegistry::Register(const std::string& name,
                                 BipartiteGraph graph) {
  auto entry = std::make_shared<RegisteredGraph>();
  entry->name = name;
  entry->graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu_);
  entry->epoch = next_epoch_++;
  const uint64_t epoch = entry->epoch;
  graphs_[name] = std::move(entry);
  return epoch;
}

uint64_t GraphRegistry::AllocateEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_epoch_++;
}

void GraphRegistry::RegisterAtEpoch(const std::string& name,
                                    BipartiteGraph graph, uint64_t epoch) {
  auto entry = std::make_shared<RegisteredGraph>();
  entry->name = name;
  entry->epoch = epoch;
  entry->graph = std::move(graph);
  std::lock_guard<std::mutex> lock(mu_);
  next_epoch_ = std::max(next_epoch_, epoch + 1);
  graphs_[name] = std::move(entry);
}

bool GraphRegistry::LoadFile(const std::string& name, const std::string& path,
                             std::string* error) {
  std::string load_error;
  auto loaded = LoadGraphFile(path, &load_error);
  if (!loaded.has_value()) {
    if (error != nullptr) *error = path + ": " + load_error;
    return false;
  }
  Register(name, std::move(*loaded));
  return true;
}

bool GraphRegistry::Evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.erase(name) > 0;
}

GraphHandle GraphRegistry::Acquire(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return GraphHandle();
  return GraphHandle(it->second);
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) names.push_back(name);
  return names;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

GraphRegistry::Shape GraphRegistry::MaxShape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Shape shape;
  for (const auto& [name, entry] : graphs_) {
    shape.max_vertices =
        std::max(shape.max_vertices, entry->graph.num_vertices());
    shape.max_v = std::max(shape.max_v, entry->graph.num_v());
  }
  return shape;
}

}  // namespace receipt::service
