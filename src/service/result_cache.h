#ifndef RECEIPT_SERVICE_RESULT_CACHE_H_
#define RECEIPT_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/service_types.h"

namespace receipt::service {

/// Cache key: the semantic parameters that determine a decomposition's
/// output. The graph is identified by its *name and registry epoch*:
/// epochs alone are ambiguous once replication pins foreign epochs from
/// different shard owners into one process, so the name disambiguates.
/// Evicting or replacing a graph silently orphans its entries — they age
/// out through LRU without any invalidation protocol. The thread count is
/// deliberately absent: tip/wing numbers are thread-count-invariant
/// (Theorem 2; the determinism tests assert it), so a result computed at
/// any parallelism serves every equivalent request.
struct CacheKey {
  std::string graph;
  uint64_t epoch = 0;
  RequestKind kind = RequestKind::kTipU;
  Algorithm algorithm = Algorithm::kReceipt;
  uint32_t partitions = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t h = 1469598103934665603ULL;  // FNV-1a 64 over the name
    for (const char c : key.graph) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h = h * 0x9e3779b97f4a7c15ULL + key.epoch;
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(key.kind);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(key.algorithm);
    h = h * 0x9e3779b97f4a7c15ULL + key.partitions;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

/// Thread-safe LRU cache of decomposition payloads under a byte budget.
/// Values are shared_ptr<const Payload>: eviction during concurrent use is
/// safe (readers keep their reference; the bytes are reclaimed when the
/// last one drops). A zero budget disables caching entirely — Get always
/// misses and Put is a no-op — which the tests use to force engine runs.
class ResultCache {
 public:
  explicit ResultCache(size_t byte_budget) : budget_(byte_budget) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached payload and promotes it to most-recent, or nullptr.
  std::shared_ptr<const Payload> Get(const CacheKey& key);

  /// Inserts (or refreshes) `key`, then evicts least-recently-used entries
  /// until the budget holds. A payload larger than the whole budget is
  /// evicted immediately — the cache never pins more than `byte_budget`.
  void Put(const CacheKey& key, std::shared_ptr<const Payload> payload);

  /// Drops every entry whose key carries `epoch` and returns how many were
  /// removed. Called when a registry epoch dies (graph re-registered or a
  /// live-update batch sealed): dead-epoch payloads can never be requested
  /// again — their keys are unreachable — so proactive removal frees budget
  /// for live results instead of waiting for LRU aging.
  size_t DropEpoch(uint64_t epoch);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t epoch_drops = 0;
    size_t bytes = 0;
    size_t entries = 0;
  };
  Stats stats() const;

 private:
  using LruList =
      std::list<std::pair<CacheKey, std::shared_ptr<const Payload>>>;

  void EvictOverBudgetLocked();

  const size_t budget_;
  mutable std::mutex mu_;
  size_t bytes_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
  Stats stats_;
};

}  // namespace receipt::service

#endif  // RECEIPT_SERVICE_RESULT_CACHE_H_
