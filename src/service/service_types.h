#ifndef RECEIPT_SERVICE_SERVICE_TYPES_H_
#define RECEIPT_SERVICE_SERVICE_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace receipt::util {
class JsonWriter;
class JsonValue;
}  // namespace receipt::util

namespace receipt::service {

/// What a request decomposes: the U side, the V side (tip), or the edge set
/// (wing). Tip kinds pair with tip algorithms, kWing with wing algorithms.
enum class RequestKind : uint8_t {
  kTipU,
  kTipV,
  kWing,
};

/// Which decomposition driver executes the request. The three tip
/// algorithms produce identical tip numbers (Theorem 2) but different
/// wedge/time profiles; same for the two wing algorithms.
enum class Algorithm : uint8_t {
  kBup,          ///< sequential bottom-up tip peeling (Alg. 2)
  kParb,         ///< ParButterfly-style round peeling
  kReceipt,      ///< two-step RECEIPT (CD + FD)
  kWingBup,      ///< sequential bottom-up edge peeling (§7)
  kReceiptWing,  ///< two-step RECEIPT-W
};

inline bool IsWingAlgorithm(Algorithm a) {
  return a == Algorithm::kWingBup || a == Algorithm::kReceiptWing;
}

inline const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kTipU: return "tip-U";
    case RequestKind::kTipV: return "tip-V";
    case RequestKind::kWing: return "wing";
  }
  return "?";
}

inline const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBup: return "BUP";
    case Algorithm::kParb: return "ParB";
    case Algorithm::kReceipt: return "RECEIPT";
    case Algorithm::kWingBup: return "WING-BUP";
    case Algorithm::kReceiptWing: return "RECEIPT-W";
  }
  return "?";
}

/// One decomposition request against a registered graph.
struct Request {
  std::string graph;                        ///< registry name
  RequestKind kind = RequestKind::kTipU;
  Algorithm algorithm = Algorithm::kReceipt;
  /// RECEIPT / RECEIPT-W range count (P); ignored by the baselines.
  int partitions = 150;
  /// OpenMP threads the executing worker devotes to this request.
  int threads = 1;
  /// Span sink + per-request identity, minted (or accepted from
  /// X-Request-Id) at the front-end. Null by default; not part of the
  /// cache/coalesce key — coalesced twins share the first submitter's
  /// engine spans, and tracing never changes results.
  obs::TraceContext trace;
};

/// Terminal state of a request.
enum class Status : uint8_t {
  kOk,
  kNotFound,    ///< graph name not registered at submit time
  kBadRequest,  ///< kind/algorithm mismatch or invalid parameters
  kCancelled,   ///< cancelled mid-run or dropped by a non-draining shutdown
  kShutdown,    ///< submitted after the service stopped accepting work
};

inline const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNotFound: return "not-found";
    case Status::kBadRequest: return "bad-request";
    case Status::kCancelled: return "cancelled";
    case Status::kShutdown: return "shutdown";
  }
  return "?";
}

/// The immutable product of one engine run: tip or wing numbers plus the
/// run's instrumentation. Shared (never copied) between the cache, every
/// coalesced waiter, and the response.
struct Payload {
  /// tip_numbers (side-local ids of the requested side) or wing_numbers
  /// (edge ids), depending on the request kind.
  std::vector<Count> numbers;
  PeelStats stats;

  /// Resident size, charged against the cache byte budget.
  size_t ApproxBytes() const {
    return sizeof(Payload) + numbers.capacity() * sizeof(Count);
  }
};

/// What a submitter gets back.
struct Response {
  Status status = Status::kOk;
  std::string error;                        ///< set when status != kOk
  std::shared_ptr<const Payload> payload;   ///< set when status == kOk
  bool cache_hit = false;   ///< served from ResultCache, engine not run
  bool coalesced = false;   ///< one engine run served >1 identical submits
  uint64_t graph_epoch = 0; ///< registry epoch the result was computed on
};

// ---------------------------------------------------------------------------
// Wire form: the request/response structs above serialize themselves so any
// front-end (the HTTP server, tools reading its output) speaks one schema.
// Names on the wire are the same strings RequestKindName / AlgorithmName
// print ("tip-U", "RECEIPT-W", …) and both lookups accept them
// case-insensitively.
// ---------------------------------------------------------------------------

/// Inverse of RequestKindName (case-insensitive). False on unknown names.
bool RequestKindFromName(std::string_view name, RequestKind* kind);

/// Inverse of AlgorithmName (case-insensitive). False on unknown names.
bool AlgorithmFromName(std::string_view name, Algorithm* algorithm);

/// Parses the wire form of a Request, e.g. the POST /v1/decompose body:
///   {"graph": "g1", "kind": "tip-U", "algo": "RECEIPT",
///    "partitions": 6, "threads": 2}
/// `graph` is required; `kind`/`algo` default as the struct does;
/// `partitions`/`threads` must be positive when present. Returns false and
/// sets *error on any violation, leaving *request unspecified.
bool RequestFromJson(const util::JsonValue& json, Request* request,
                     std::string* error);

/// Writes every PeelStats counter and per-phase timing as one JSON object
/// (the same quantities AppendPeelStats exports to bench JSON).
void WritePeelStatsJson(const PeelStats& stats, util::JsonWriter* writer);

/// Writes the full wire form of a terminal Response: status/error, the
/// echoed request parameters, serving metadata (epoch, cache_hit,
/// coalesced) and — when status == kOk — max_number, the complete numbers
/// array and the PeelStats object.
void WriteResponseJson(const Request& request, const Response& response,
                       util::JsonWriter* writer);

}  // namespace receipt::service

#endif  // RECEIPT_SERVICE_SERVICE_TYPES_H_
