#ifndef RECEIPT_SERVICE_GRAPH_REGISTRY_H_
#define RECEIPT_SERVICE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/types.h"

namespace receipt::service {

/// A graph resident in the registry. Immutable once registered; replacing a
/// name installs a fresh entry with a higher epoch.
struct RegisteredGraph {
  std::string name;
  uint64_t epoch = 0;  ///< unique per registration, never reused
  BipartiteGraph graph;
};

/// Ref-counted view of a registered graph. Holding a handle keeps the graph
/// alive through eviction or replacement: decompositions run to completion
/// on the snapshot they acquired, while the registry is free to retire the
/// name concurrently. Default-constructed handles are empty (operator bool).
class GraphHandle {
 public:
  GraphHandle() = default;
  explicit GraphHandle(std::shared_ptr<const RegisteredGraph> entry)
      : entry_(std::move(entry)) {}

  explicit operator bool() const { return entry_ != nullptr; }
  const BipartiteGraph& graph() const { return entry_->graph; }
  const std::string& name() const { return entry_->name; }
  uint64_t epoch() const { return entry_->epoch; }

 private:
  std::shared_ptr<const RegisteredGraph> entry_;
};

/// Thread-safe name → graph map with epoching. The service layer resolves
/// request graph names here at submit time; epochs make cached results from
/// retired registrations unreachable without any cache invalidation
/// traffic (the (epoch, params) key simply never matches again).
class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Installs (or replaces) `name`. Returns the new entry's epoch. Handles
  /// acquired on a previous epoch stay valid.
  uint64_t Register(const std::string& name, BipartiteGraph graph);

  /// Reserves and returns the next epoch without registering anything —
  /// the durability layer journals a seal's target epoch *before* the
  /// registration installs it.
  uint64_t AllocateEpoch();

  /// Installs `name` at an exact epoch: recovery replays pre-crash
  /// registrations and seals with the epochs they were journaled under, so
  /// a recovered chain is numbered identically to the never-crashed one.
  /// The epoch counter advances past `epoch` so later registrations never
  /// collide.
  void RegisterAtEpoch(const std::string& name, BipartiteGraph graph,
                       uint64_t epoch);

  /// Loads a file through graph_io — `.bin` snapshots via LoadBinary,
  /// anything else as KONECT text — and registers it under `name`. On
  /// failure returns false, leaves the registry untouched, and sets *error
  /// (when provided) to the loader's diagnostic prefixed with the path.
  bool LoadFile(const std::string& name, const std::string& path,
                std::string* error = nullptr);

  /// Retires `name`. In-flight handles keep the graph alive; new Acquire
  /// calls fail. Returns false if the name was not registered.
  bool Evict(const std::string& name);

  /// Returns a handle to the current registration of `name`, or an empty
  /// handle if the name is unknown.
  GraphHandle Acquire(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;
  size_t size() const;

  /// Largest workspace shape any resident graph needs: (max combined
  /// vertex count, max V-side size). The service pre-sizes worker scratch
  /// to this so steady-state execution is allocation-free regardless of
  /// which graph a request targets.
  struct Shape {
    VertexId max_vertices = 0;
    VertexId max_v = 0;
  };
  Shape MaxShape() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_epoch_ = 1;
  std::map<std::string, std::shared_ptr<const RegisteredGraph>> graphs_;
};

}  // namespace receipt::service

#endif  // RECEIPT_SERVICE_GRAPH_REGISTRY_H_
