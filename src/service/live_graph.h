#ifndef RECEIPT_SERVICE_LIVE_GRAPH_H_
#define RECEIPT_SERVICE_LIVE_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "durability/manager.h"
#include "engine/peel_engine.h"
#include "engine/workspace.h"
#include "graph/bipartite_graph.h"
#include "obs/observability.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"
#include "service/service_types.h"

namespace receipt::service {

/// One edge mutation against a live graph, in side-local coordinates.
/// Inserting an existing edge or deleting an absent one is a no-op; within
/// a batch the last operation on a (u, v) pair wins.
struct EdgeUpdate {
  bool insert = true;
  VertexId u = 0;
  VertexId v = 0;
};

/// Seal policy and engine knobs for the live-update path.
struct LiveOptions {
  /// Seal (fold the pending batch into a new epoch) once this many updates
  /// are buffered.
  size_t max_pending_edges = 4096;

  /// Seal once the oldest pending update is this old. Checked lazily on
  /// the next ApplyEdges call — the manager has no timer thread. 0
  /// disables age-based sealing.
  uint64_t max_staleness_ms = 0;

  /// Forwarded to IncrementalSeed::dirty_fraction_limit: past this
  /// fraction of re-peeled sealed ranges a seal stops attempting reuse and
  /// finishes as a plain full recompute (bit-identical either way).
  double dirty_fraction_limit = 0.5;

  /// OpenMP threads for seal-time engine runs when the caller passes none.
  int seal_threads = 1;
};

/// A decomposition configuration kept incrementally up to date across
/// seals. kTipU/kTipV pair with RECEIPT, kWing with RECEIPT-W.
struct LiveConfig {
  RequestKind kind = RequestKind::kTipU;
  uint32_t partitions = 150;
  friend bool operator==(const LiveConfig&, const LiveConfig&) = default;
  friend auto operator<=>(const LiveConfig&, const LiveConfig&) = default;
};

/// What one seal did for one tracked configuration.
struct SealConfigReport {
  LiveConfig config;
  /// False when the baseline was unusable or the dirty-fraction limit
  /// tripped (the run completed as a full recompute).
  bool incremental = false;
  uint64_t ranges_reused = 0;
  uint64_t ranges_repeeled = 0;
  /// Subsets whose fine phase re-ran (== ranges_repeeled when incremental).
  uint64_t subsets_repeeled = 0;
  uint64_t subsets_total = 0;
};

/// Result of one ApplyEdges call.
struct ApplyResult {
  Status status = Status::kOk;
  std::string error;          ///< set when status != kOk
  size_t accepted = 0;        ///< updates buffered by this call
  size_t pending = 0;         ///< buffered updates after this call
  bool sealed = false;        ///< this call folded the buffer into an epoch
  uint64_t epoch = 0;         ///< current registry epoch (new when sealed)
  double seal_seconds = 0.0;  ///< wall time of the seal, 0 when not sealed
  std::vector<SealConfigReport> reports;  ///< one per tracked config
};

/// The live-update half of the serving layer: resident per-graph state
/// (current edge list, pending update buffer, per-configuration sealed
/// baselines) that turns edge-update batches into *incremental* coarse
/// passes — only ranges whose membership could have changed are re-peeled,
/// and only their subsets re-run the fine phase; everything else is reused
/// verbatim from the sealed baseline. Results are bit-identical to a
/// from-scratch decomposition of the post-batch graph by construction (the
/// engine re-peels any range it cannot *prove* clean), which the
/// incremental churn suite asserts.
///
/// Reads stay consistent throughout: requests keep resolving against the
/// last sealed registry epoch while updates buffer, and a seal installs
/// the new epoch atomically via GraphRegistry::Register — the
/// update/compute split of the Polynesia-style HTAP designs, applied to
/// decomposition serving. Sealing also primes the ResultCache with the new
/// epoch's numbers and drops the dead epoch's entries, so a post-seal
/// decompose of a tracked configuration is a cache hit, never a recompute.
///
/// Thread safety: per-graph state is guarded by a per-state mutex (seals
/// of different graphs proceed concurrently); the registry and cache are
/// themselves thread-safe.
class LiveGraphManager {
 public:
  LiveGraphManager(GraphRegistry& registry, ResultCache& cache,
                   const LiveOptions& options, obs::Observability& obs);
  LiveGraphManager(const LiveGraphManager&) = delete;
  LiveGraphManager& operator=(const LiveGraphManager&) = delete;

  /// Starts (or refreshes) live tracking of `name` for `config`: runs one
  /// full decomposition with patch-log recording and stores it as the
  /// sealed baseline the next seal folds against. Synchronous. Returns
  /// kNotFound for unregistered names, kBadRequest for invalid configs.
  Status Track(const std::string& name, const LiveConfig& config,
               int threads, std::string* error);

  /// Buffers `updates` against `name`, then seals when the policy says so
  /// (`force_seal`, buffer ≥ max_pending_edges, or the oldest pending
  /// update exceeded max_staleness_ms). `track` configs are tracked first
  /// (baselines built on the pre-batch graph when missing, so the seal
  /// itself already runs incrementally). Updates whose endpoints fall
  /// outside the registered shape are rejected as kBadRequest with the
  /// whole batch — growing the shape requires re-registration.
  ApplyResult ApplyEdges(const std::string& name,
                         std::span<const EdgeUpdate> updates, bool force_seal,
                         int threads = 0,
                         std::span<const LiveConfig> track = {});

  /// Replication: applies a batch the shard owner already accepted,
  /// journaled under the owner's epochs. Unlike ApplyEdges this never
  /// policy-seals — the owner dictates every seal point — and unlike the
  /// recovery Replay* paths it *does* journal (batch at `expected_epoch`,
  /// seal as `expected_epoch` -> `sealed_epoch`) and snapshots on seal, so
  /// a follower rejoins from its own data dir at the owner's epochs.
  /// Returns kBadRequest with the current epoch in `epoch` when
  /// `expected_epoch` does not match the local chain (the caller answers
  /// 409 and the owner falls back to a full-state sync).
  ApplyResult ApplyReplicated(const std::string& name,
                              std::span<const EdgeUpdate> updates, bool seal,
                              uint64_t expected_epoch, uint64_t sealed_epoch,
                              int threads = 0);

  /// A copy of one graph's replicated essentials: the sealed edge list at
  /// `epoch` plus the acked-but-unsealed pending buffer. What the owner
  /// ships to a follower whose epoch chain diverged (full-state sync).
  struct ExportedState {
    uint64_t epoch = 0;
    uint32_t num_u = 0;
    uint32_t num_v = 0;
    std::vector<BipartiteGraph::Edge> edges;
    std::vector<EdgeUpdate> pending;
  };

  /// Copies the current state of `name` (false when unregistered).
  bool ExportState(const std::string& name, ExportedState* out);

  /// Buffered updates for `name` (0 when untracked).
  size_t PendingEdges(const std::string& name) const;

  // -- durability ---------------------------------------------------------

  /// Attaches the durability layer. Once set, every accepted batch is
  /// journaled *before* it is buffered (a failed append rejects the batch
  /// with kShutdown — never acknowledged, never buffered), every seal
  /// journals its old→new epoch transition before installing it, and —
  /// when the policy says so — writes a snapshot after installing.
  void SetDurability(durability::DurabilityManager* durability);

  /// Recovery: installs a snapshot as the graph's live state — registers
  /// the graph at its recorded epoch, re-buffers the persisted pending
  /// updates, restores per-config baselines (marked non-incremental: the
  /// next seal recomputes fully, bit-identical either way), and primes the
  /// result cache with the sealed numbers.
  Status RestoreSnapshot(const durability::SnapshotData& data,
                         std::string* error);

  /// Recovery: re-buffers a journaled batch without journaling it again
  /// and without triggering policy seals. Fails when the batch's recorded
  /// epoch does not match the graph's current epoch (broken chain).
  Status ReplayBatch(const std::string& name, uint64_t epoch,
                     std::span<const durability::EdgeOp> updates,
                     std::string* error);

  /// Recovery: re-runs a journaled seal, pinning the exact epoch the
  /// pre-crash process installed. Fails when `old_epoch` does not match
  /// the graph's current epoch (the journaled chain must be contiguous).
  Status ReplaySeal(const std::string& name, uint64_t old_epoch,
                    uint64_t new_epoch, int threads, std::string* error);

  /// Recovery: discards resident live state for `name` (a journaled
  /// re-registration supersedes everything buffered before it). Not safe
  /// against concurrent ApplyEdges — recovery runs single-threaded before
  /// the server accepts traffic.
  bool DropState(const std::string& name);

  /// Writes an on-demand snapshot of `name` (the admin endpoint), covering
  /// the journal up to now — including acked-but-unsealed pending updates.
  /// kBadRequest without a durability layer, kNotFound for unknown names,
  /// kShutdown when the write fails.
  Status SnapshotNow(const std::string& name, std::string* error);

  struct Stats {
    uint64_t batches_total = 0;   ///< ApplyEdges calls accepted
    uint64_t updates_total = 0;   ///< individual edge updates buffered
    uint64_t seals_total = 0;     ///< seals executed
    uint64_t runs_incremental = 0;  ///< per-config seal runs with reuse
    uint64_t runs_full = 0;         ///< per-config seal runs, full fallback
    uint64_t ranges_reused = 0;
    uint64_t ranges_repeeled = 0;
    size_t pending_edges = 0;     ///< buffered updates across all graphs
  };
  Stats stats() const;

 private:
  /// Per-configuration sealed baseline: everything the next seal needs to
  /// fold a batch incrementally. Id is VertexId for tip, EdgeOffset for
  /// wing.
  template <typename Id>
  struct Baseline {
    engine::RangeResult<Id> sealed;
    engine::CoarsePatchLog log;
    /// Supports counted at the sealed run's start (the seed's old_support).
    std::vector<Count> old_support;
    /// The sealed decomposition numbers (side-local / edge ids).
    std::vector<Count> numbers;
    bool valid = false;
  };

  struct LiveGraphState {
    mutable std::mutex mu;
    std::string name;
    GraphHandle handle;  ///< pins the currently sealed registration
    /// The current graph's edge list, sorted (u asc, then v) — for wing
    /// this order *is* the edge-id order, which the seal-time remap
    /// exploits.
    std::vector<BipartiteGraph::Edge> edges;
    std::vector<EdgeUpdate> pending;
    uint64_t first_pending_ns = 0;
    std::map<LiveConfig, Baseline<VertexId>> tip;
    std::map<LiveConfig, Baseline<EdgeOffset>> wing;
    engine::WorkspacePool pool;  ///< seal-time scratch, reused across seals
  };

  LiveGraphState* GetOrCreateState(const std::string& name);
  LiveGraphState* FindState(const std::string& name) const;

  /// Builds (or rebuilds) the baseline for one config on the state's
  /// current graph. Caller holds the state mutex.
  Status TrackLocked(LiveGraphState& state, const LiveConfig& config,
                     int threads, std::string* error);

  /// Folds the pending buffer into a new graph + epoch, running every
  /// tracked configuration incrementally. Caller holds the state mutex.
  /// `pinned_epoch` != 0 installs exactly that epoch instead of allocating
  /// one: recovery replay (`journal_pinned` false) additionally skips
  /// journaling and snapshot-on-seal — the journal already has the record —
  /// while a replicated seal (`journal_pinned` true) journals the pinned
  /// transition and snapshots like a local seal, because for a follower
  /// this *is* the first time the transition happens.
  void SealLocked(LiveGraphState& state, int threads, ApplyResult* result,
                  uint64_t pinned_epoch = 0, bool journal_pinned = false);

  /// Builds a SnapshotData from the state and hands it to the durability
  /// layer. Caller holds the state mutex (which also guarantees no append
  /// for this graph races the covered-LSN capture).
  bool WriteSnapshotLocked(LiveGraphState& state, std::string* error);

  /// One tip configuration's seal run (old baseline -> new baseline on
  /// `new_graph`). `changed` lists the edges whose presence actually
  /// changed. Returns the payload to prime the cache with.
  std::shared_ptr<Payload> SealTip(LiveGraphState& state,
                                   const LiveConfig& config,
                                   Baseline<VertexId>& baseline,
                                   const BipartiteGraph& old_graph,
                                   const BipartiteGraph& new_graph,
                                   std::span<const BipartiteGraph::Edge> changed,
                                   int threads, SealConfigReport* report);

  /// One wing configuration's seal run. `old_to_new` maps sealed edge ids
  /// to new-graph edge ids (kInvalidEdge for deleted edges).
  std::shared_ptr<Payload> SealWing(
      LiveGraphState& state, const LiveConfig& config,
      Baseline<EdgeOffset>& baseline, const BipartiteGraph& old_graph,
      const BipartiteGraph& new_graph,
      std::span<const BipartiteGraph::Edge> changed,
      std::span<const EdgeOffset> old_to_new, int threads,
      SealConfigReport* report);

  void RegisterInstruments();

  GraphRegistry* registry_;
  ResultCache* cache_;
  const LiveOptions options_;
  obs::Observability* obs_;
  durability::DurabilityManager* durability_ = nullptr;

  obs::Counter* seals_incremental_ = nullptr;
  obs::Counter* seals_full_ = nullptr;
  obs::Counter* ranges_reused_total_ = nullptr;
  obs::Counter* ranges_repeeled_total_ = nullptr;
  obs::Counter* updates_total_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  obs::Gauge* dirty_permille_ = nullptr;
  obs::Histogram* seal_seconds_ = nullptr;

  mutable std::mutex mu_;  ///< guards states_ and stats_
  std::map<std::string, std::unique_ptr<LiveGraphState>> states_;
  Stats stats_;
};

}  // namespace receipt::service

#endif  // RECEIPT_SERVICE_LIVE_GRAPH_H_
