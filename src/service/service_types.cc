#include "service/service_types.h"

#include <algorithm>
#include <cctype>

#include "util/json.h"

namespace receipt::service {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

}  // namespace

bool RequestKindFromName(std::string_view name, RequestKind* kind) {
  for (const RequestKind candidate :
       {RequestKind::kTipU, RequestKind::kTipV, RequestKind::kWing}) {
    if (EqualsIgnoreCase(name, RequestKindName(candidate))) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

bool AlgorithmFromName(std::string_view name, Algorithm* algorithm) {
  for (const Algorithm candidate :
       {Algorithm::kBup, Algorithm::kParb, Algorithm::kReceipt,
        Algorithm::kWingBup, Algorithm::kReceiptWing}) {
    if (EqualsIgnoreCase(name, AlgorithmName(candidate))) {
      *algorithm = candidate;
      return true;
    }
  }
  return false;
}

bool RequestFromJson(const util::JsonValue& json, Request* request,
                     std::string* error) {
  if (!json.IsObject()) {
    *error = "request body must be a JSON object";
    return false;
  }
  Request parsed;
  if (!json.GetString("graph", &parsed.graph) || parsed.graph.empty()) {
    *error = "missing required string field 'graph'";
    return false;
  }
  if (const util::JsonValue* kind = json.Find("kind")) {
    if (!kind->IsString() ||
        !RequestKindFromName(kind->AsString(), &parsed.kind)) {
      *error = "'kind' must be one of tip-U, tip-V, wing";
      return false;
    }
  }
  if (const util::JsonValue* algo = json.Find("algo")) {
    if (!algo->IsString() ||
        !AlgorithmFromName(algo->AsString(), &parsed.algorithm)) {
      *error = "'algo' must be one of BUP, ParB, RECEIPT, WING-BUP, RECEIPT-W";
      return false;
    }
  }
  int64_t value = 0;
  if (json.Find("partitions") != nullptr) {
    if (!json.GetInt("partitions", &value) || value <= 0 || value > 1 << 20) {
      *error = "'partitions' must be a positive integer";
      return false;
    }
    parsed.partitions = static_cast<int>(value);
  }
  if (json.Find("threads") != nullptr) {
    if (!json.GetInt("threads", &value) || value <= 0 || value > 1 << 12) {
      *error = "'threads' must be a positive integer";
      return false;
    }
    parsed.threads = static_cast<int>(value);
  }
  *request = std::move(parsed);
  return true;
}

void WritePeelStatsJson(const PeelStats& stats, util::JsonWriter* writer) {
  writer->BeginObject()
      .Key("wedges_counting").Uint(stats.wedges_counting)
      .Key("wedges_cd").Uint(stats.wedges_cd)
      .Key("wedges_fd").Uint(stats.wedges_fd)
      .Key("wedges_other").Uint(stats.wedges_other)
      .Key("sync_rounds").Uint(stats.sync_rounds)
      .Key("peel_iterations").Uint(stats.peel_iterations)
      .Key("huc_recounts").Uint(stats.huc_recounts)
      .Key("dgm_compactions").Uint(stats.dgm_compactions)
      .Key("frontier_rounds").Uint(stats.frontier_rounds)
      .Key("scan_rounds").Uint(stats.scan_rounds)
      .Key("index_build_rounds").Uint(stats.index_build_rounds)
      .Key("scan_build_elements").Uint(stats.scan_build_elements)
      .Key("frontier_build_elements").Uint(stats.frontier_build_elements)
      .Key("index_active_elements").Uint(stats.index_active_elements)
      .Key("active_scan_elements").Uint(stats.active_scan_elements)
      .Key("bound_walk_buckets").Uint(stats.bound_walk_buckets)
      .Key("histogram_refines").Uint(stats.histogram_refines)
      .Key("init_patch_elements").Uint(stats.init_patch_elements)
      .Key("index_rebuild_elements").Uint(stats.index_rebuild_elements)
      .Key("placement_nodes").Uint(stats.placement_nodes)
      .Key("placement_local_pops").Uint(stats.placement_local_pops)
      .Key("placement_remote_steals").Uint(stats.placement_remote_steals)
      .Key("makespan_predicted").Uint(stats.makespan_predicted)
      .Key("makespan_measured").Uint(stats.makespan_measured)
      .Key("num_subsets").Uint(stats.num_subsets)
      .Key("scan_cost_per_element").Double(stats.scan_cost_per_element)
      .Key("frontier_cost_per_element").Double(stats.frontier_cost_per_element)
      .Key("seconds_counting").Double(stats.seconds_counting)
      .Key("seconds_cd").Double(stats.seconds_cd)
      .Key("seconds_fd").Double(stats.seconds_fd)
      .Key("seconds_total").Double(stats.seconds_total)
      .EndObject();
}

void WriteResponseJson(const Request& request, const Response& response,
                       util::JsonWriter* writer) {
  writer->BeginObject()
      .Key("status").String(StatusName(response.status))
      .Key("graph").String(request.graph)
      .Key("kind").String(RequestKindName(request.kind))
      .Key("algo").String(AlgorithmName(request.algorithm))
      .Key("partitions").Int(request.partitions)
      .Key("threads").Int(request.threads)
      .Key("graph_epoch").Uint(response.graph_epoch)
      .Key("cache_hit").Bool(response.cache_hit)
      .Key("coalesced").Bool(response.coalesced);
  if (request.trace.trace_id != 0) {
    writer->Key("trace_id").String(obs::FormatTraceId(request.trace.trace_id));
  }
  if (!response.error.empty()) writer->Key("error").String(response.error);
  if (response.status == Status::kOk && response.payload != nullptr) {
    const Payload& payload = *response.payload;
    Count max_number = 0;
    for (const Count n : payload.numbers) max_number = std::max(max_number, n);
    writer->Key("max_number").Uint(max_number);
    writer->Key("numbers").BeginArray();
    for (const Count n : payload.numbers) writer->Uint(n);
    writer->EndArray();
    writer->Key("stats");
    WritePeelStatsJson(payload.stats, writer);
  }
  writer->EndObject();
}

}  // namespace receipt::service
