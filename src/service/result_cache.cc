#include "service/result_cache.h"

namespace receipt::service {

std::shared_ptr<const Payload> ResultCache::Get(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void ResultCache::Put(const CacheKey& key,
                      std::shared_ptr<const Payload> payload) {
  if (budget_ == 0 || payload == nullptr) return;
  // A payload that could never fit would evict every resident entry before
  // being evicted itself; refuse it instead of flushing the cache.
  if (payload->ApproxBytes() > budget_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->second->ApproxBytes();
    bytes_ += payload->ApproxBytes();
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += payload->ApproxBytes();
    lru_.emplace_front(key, std::move(payload));
    index_[key] = lru_.begin();
    ++stats_.insertions;
  }
  EvictOverBudgetLocked();
}

size_t ResultCache::DropEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.epoch != epoch) {
      ++it;
      continue;
    }
    bytes_ -= it->second->ApproxBytes();
    index_.erase(it->first);
    it = lru_.erase(it);
    ++dropped;
  }
  stats_.epoch_drops += dropped;
  return dropped;
}

void ResultCache::EvictOverBudgetLocked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const auto& [key, payload] = lru_.back();
    bytes_ -= payload->ApproxBytes();
    index_.erase(key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.bytes = bytes_;
  snapshot.entries = lru_.size();
  return snapshot;
}

}  // namespace receipt::service
