#ifndef RECEIPT_SERVICE_DECOMPOSITION_SERVICE_H_
#define RECEIPT_SERVICE_DECOMPOSITION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "durability/manager.h"
#include "durability/recovery.h"
#include "engine/peel_control.h"
#include "engine/workspace.h"
#include "obs/observability.h"
#include "service/graph_registry.h"
#include "service/live_graph.h"
#include "service/result_cache.h"
#include "service/service_types.h"

namespace receipt::service {

/// Tuning knobs for DecompositionService.
struct ServiceOptions {
  /// Background worker threads executing requests. 0 starts none — queued
  /// work then runs only through RunQueuedInline(), which tests use for
  /// deterministic scheduling.
  int num_workers = 2;

  /// Bounded request queue: Submit blocks (backpressure) and TrySubmit
  /// fails once this many requests are waiting.
  size_t queue_capacity = 256;

  /// ResultCache byte budget; 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;

  /// Max requests one worker executes back-to-back per queue pop. Batching
  /// groups queued requests targeting the same graph epoch so they run on
  /// scratch that is already warm for exactly that graph shape.
  size_t max_batch = 8;

  /// Frontier-density threshold applied to every RECEIPT / RECEIPT-W run
  /// the service executes (see TipOptions::frontier_density_threshold).
  /// Not part of the cache/coalesce key: both rebuild directions produce
  /// bit-identical numbers, so results are interchangeable.
  double frontier_density_threshold = kDefaultFrontierDensity;

  /// Rebuild-direction rule for every RECEIPT / RECEIPT-W run (see
  /// TipOptions::frontier_switch). Like the density threshold, not part of
  /// the cache/coalesce key — results are bit-identical either way.
  FrontierSwitch frontier_switch = FrontierSwitch::kMeasuredCost;

  /// Schedule workers and queues against this many virtual nodes instead
  /// of the discovered topology (0 = auto). Tests force multi-queue
  /// scheduling on any machine this way; pinning is a no-op for virtual
  /// nodes. Scheduling never changes results, only locality.
  int placement_nodes = 0;

  /// Pin each background worker (and therefore the OpenMP teams it spawns,
  /// which inherit its mask) to its assigned NUMA node's CPUs, so a
  /// worker's WorkspacePool arenas are first-touched and re-used
  /// node-locally. Effective only on real topologies with more than one
  /// node; results are bit-identical either way.
  bool pin_numa = true;

  /// SupportIndex-driven coarse steps for every RECEIPT / RECEIPT-W run
  /// (see TipOptions::use_support_index). The index lives in each worker's
  /// WorkspacePool, so its buckets/stamps are reused across requests like
  /// the rest of the per-worker scratch. Not part of the cache key.
  bool use_support_index = true;

  /// Live-update seal policy (see LiveOptions): buffered edge updates per
  /// graph before a seal is forced, …
  size_t live_max_pending_edges = 4096;
  /// … maximum age of the oldest buffered update before the next ApplyEdges
  /// call seals (0 disables age-based sealing), …
  uint64_t live_max_staleness_ms = 0;
  /// … and the re-peeled-range fraction past which an incremental seal
  /// stops attempting reuse (bit-identical either way).
  double live_dirty_fraction_limit = 0.5;

  /// Root directory for crash-safe durability: a write-ahead journal of
  /// registrations and accepted edge batches plus per-graph snapshots.
  /// Empty (the default) disables durability entirely — a pure in-memory
  /// service, exactly the pre-durability behaviour. Non-empty runs
  /// recovery at construction; check durability_error() afterwards.
  std::string data_dir;

  /// Journal fsync policy (see durability::FsyncPolicy): "always" fsyncs
  /// per accepted batch, "batch" amortizes, "off" trusts the page cache.
  durability::FsyncPolicy durability_fsync = durability::FsyncPolicy::kAlways;

  /// Journal segment rotation threshold and kBatch fsync coalescing window.
  uint64_t journal_segment_bytes = 64ull << 20;
  uint64_t journal_batch_bytes = 256ull << 10;

  /// Write a snapshot (and truncate covered journal segments) after every
  /// live seal.
  bool snapshot_on_seal = true;

  /// Metrics registry + trace flight recorder the service reports through.
  /// When null the service owns a private bundle, so instruments always
  /// exist; embedders (the HTTP front-end, the CLI) pass one shared bundle
  /// so request metrics, engine spans and transport metrics land in the
  /// same /metrics exposition. Must outlive the service when set.
  obs::Observability* observability = nullptr;
};

/// The decomposition serving layer: turns the one-shot drivers into a
/// queryable capability over many resident graphs (the Polynesia-style
/// split of request handling from the update/compute engine).
///
///   GraphRegistry  — which graphs are resident (epoched, ref-counted)
///   this class     — bounded queue, worker pool, coalescing, batching
///   ResultCache    — (epoch, params) → payload, LRU byte budget
///
/// Execution path per request: resolve the graph to a handle at submit
/// time (eviction after that point is safe — the handle pins the graph),
/// coalesce with any identical in-flight request, serve from cache when the
/// (epoch, params) key hits, otherwise run the requested driver on the
/// worker's own WorkspacePool with a PeelControl wired through the engine's
/// peel loops. Worker pools persist across requests and are pre-sized to
/// the largest resident graph, so steady-state serving is allocation-free —
/// the workspace-reuse invariant of one decomposition, extended to the
/// whole request stream.
class DecompositionService {
 private:
  struct Task;  // declared early so Ticket can refer to it

 public:
  explicit DecompositionService(GraphRegistry& registry,
                                const ServiceOptions& options = {});
  ~DecompositionService();
  DecompositionService(const DecompositionService&) = delete;
  DecompositionService& operator=(const DecompositionService&) = delete;

  /// Enqueues a request. Returns immediately with a ready future on cache
  /// hit, unknown graph, invalid request, or shutdown; joins the future of
  /// an identical in-flight request (coalescing); otherwise blocks while
  /// the queue is full.
  std::shared_future<Response> Submit(const Request& request);

  /// Like Submit but never blocks: returns std::nullopt when the queue is
  /// full.
  std::optional<std::shared_future<Response>> TrySubmit(
      const Request& request);

  /// A submitted request plus the right to walk away from it. Front-ends
  /// hold one per in-flight client so a vanished client (disconnected
  /// socket) can withdraw its interest; when the last interested submitter
  /// abandons, the underlying engine run is cancelled through its
  /// PeelControl instead of burning a worker on output nobody will read.
  /// Requests answered without a task (cache hit, rejection) yield a ticket
  /// whose Abandon is a no-op.
  class Ticket {
   public:
    Ticket() = default;
    // Move-only: Abandon's idempotence rests on resetting *the* ticket's
    // task reference — a copy would let one submitter abandon twice and
    // cancel a run a coalesced twin still wants.
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    Ticket(Ticket&&) = default;
    Ticket& operator=(Ticket&&) = default;
    const std::shared_future<Response>& future() const { return future_; }

   private:
    friend class DecompositionService;
    std::shared_future<Response> future_;
    std::weak_ptr<Task> task_;
  };

  /// Non-blocking ticketed submit: std::nullopt when the queue is full
  /// (the HTTP front-end turns that into 429 admission rejection).
  std::optional<Ticket> TrySubmitTicket(const Request& request);

  /// Withdraws one submitter's interest in a ticketed request. Cancels the
  /// task's PeelControl once no interested submitter remains — coalesced
  /// twins keep the run alive. Idempotent per ticket; safe after the
  /// response resolved (the cancel is simply too late to matter).
  void Abandon(Ticket& ticket);

  /// Submit + wait.
  Response Execute(const Request& request);

  /// Drains the current queue on the calling thread (using a dedicated
  /// inline workspace pool) and returns the number of requests executed.
  /// With num_workers == 0 this is the only execution path, which makes
  /// scheduling — and therefore batching/coalescing behaviour — fully
  /// deterministic for tests.
  size_t RunQueuedInline();

  /// Stops the service. drain=true finishes all queued work first;
  /// drain=false drops queued requests (their futures resolve to
  /// kCancelled) and cancels executing ones through their PeelControl.
  /// Idempotent; the destructor calls Shutdown(true).
  void Shutdown(bool drain = true);

  struct Stats {
    uint64_t submitted = 0;    ///< Submit/TrySubmit calls accepted
    uint64_t completed = 0;    ///< tasks whose future was fulfilled
    uint64_t cache_hits = 0;   ///< responses served from ResultCache
    uint64_t coalesced = 0;    ///< submits joined to an in-flight twin
    uint64_t engine_runs = 0;  ///< actual decomposition executions
    uint64_t batched_follow_ons = 0;  ///< extra same-graph pops per batch
    uint64_t cancelled = 0;    ///< tasks resolved as kCancelled
    uint64_t abandoned = 0;    ///< Abandon calls on live tickets
  };
  Stats stats() const;
  ResultCache::Stats cache_stats() const;

  /// Scheduler/placement introspection for /statz and the CLI: which node
  /// each worker serves, how deep each node's queue is, and how often
  /// workers found work at home vs had to steal across nodes.
  struct SchedulerStats {
    int num_nodes = 1;             ///< scheduling domains (≥ 1)
    bool pinned = false;           ///< workers pinned to their node's CPUs
    std::vector<int> worker_nodes; ///< worker index → assigned node
    std::vector<size_t> node_queue_depths;  ///< per-node queued tasks
    uint64_t local_pops = 0;       ///< batches popped from the home queue
    uint64_t remote_steals = 0;    ///< batches stolen from another node
  };
  SchedulerStats scheduler_stats() const;

  /// Queue/worker introspection for serving dashboards (/statz): all
  /// instantaneous snapshots, racy by nature.
  size_t QueueDepth() const;
  size_t queue_capacity() const { return options_.queue_capacity; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// Workers currently parked on the empty queue (busy = total − idle).
  size_t IdleWorkers() const;

  /// Sum of buffer-growth events across all service-owned workspace pools.
  /// Flat across a steady-state workload = the hot path is allocation-free.
  /// The counters are relaxed atomics, so this is safe to sample from any
  /// thread at any time — /statz and /metrics scrape it live.
  uint64_t WorkspaceGrowths() const;

  /// The bundle this service reports through: the one passed in
  /// ServiceOptions, else the service-owned fallback. Front-ends render
  /// /metrics and /v1/traces from it.
  obs::Observability& observability() const { return *obs_; }

  /// Latency histograms for quantile summaries (/statz, CLI drain): end to
  /// end from admission to response, dequeue-to-start queue wait, and
  /// engine wall time. Never null.
  const obs::Histogram* request_latency_histogram() const {
    return request_latency_;
  }
  const obs::Histogram* queue_wait_histogram() const { return queue_wait_; }
  const obs::Histogram* engine_run_histogram() const {
    return engine_seconds_;
  }

  /// Terminal-status counts (receipt_requests_total children), for the
  /// CLI's drain summary.
  uint64_t RequestsWithOutcome(Status status) const {
    return OutcomeCounter(status)->Value();
  }

  GraphRegistry& registry() { return *registry_; }

  /// Durable registration: journals the graph (name, epoch, shape, full
  /// edge list) *before* reporting success, so a crash after the ack
  /// replays it. Without a data dir this is plain registry registration.
  /// On a failed journal append the registration is rolled back and
  /// kShutdown returned — never acknowledged-then-lost. `epoch_out`
  /// (optional) receives the installed epoch.
  Status RegisterGraph(const std::string& name, BipartiteGraph graph,
                       uint64_t* epoch_out, std::string* error);

  /// LoadFile + durable registration (the /v1/graphs path variant).
  Status RegisterGraphFile(const std::string& name, const std::string& path,
                           uint64_t* epoch_out, std::string* error);

  /// Replication: installs `graph` at an epoch dictated by the shard
  /// owner instead of allocating one locally. Journals the registration
  /// at that epoch (journal-before-ack, like RegisterGraph), so a
  /// follower that crashes rejoins from its own data dir at the recorded
  /// (graph, epoch) without peer resync. Resident live state for the name
  /// is dropped — the replicated registration supersedes it.
  Status RegisterGraphAtEpoch(const std::string& name, BipartiteGraph graph,
                              uint64_t epoch, std::string* error);

  /// Durable eviction: journals the unregistration, then evicts the
  /// registry entry and drops resident live state. kNotFound when the name
  /// is unknown, kShutdown when the journal refuses the record (the graph
  /// stays registered — fail-stop beats divergence).
  Status UnregisterGraph(const std::string& name, std::string* error);

  /// On-demand snapshot of one graph (POST /v1/admin/snapshot).
  Status SnapshotGraph(const std::string& name, std::string* error) {
    return live_->SnapshotNow(name, error);
  }

  /// True when this service runs with a data dir and recovery succeeded.
  bool durable() const { return durability_ != nullptr; }
  /// Null when not durable.
  durability::DurabilityManager* durability() { return durability_.get(); }
  /// What startup recovery found (meaningful only with a data dir).
  const durability::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }
  /// Non-empty when a data dir was configured but recovery refused to
  /// bring the service up durably (corrupt journal/snapshot, IO failure).
  /// The service still constructs — in-memory only — so the embedder
  /// decides whether that is fatal; the CLI treats it as fatal.
  const std::string& durability_error() const { return durability_error_; }

  /// The live-update half of the serving layer: edge-update buffering,
  /// seal policy, and incremental re-decomposition of tracked
  /// configurations. Shares this service's registry, result cache, and
  /// observability bundle, so a seal's epoch bump, cache priming, and
  /// dead-epoch drop are visible to every request path.
  LiveGraphManager& live() { return *live_; }

  /// Drops every cached result computed on `epoch` (see
  /// ResultCache::DropEpoch). The HTTP front-end calls this when a graph
  /// is re-registered, the live path when a seal retires an epoch.
  size_t DropCachedEpoch(uint64_t epoch) { return cache_.DropEpoch(epoch); }

 private:
  /// Coalescing identity: the cache key plus the thread count (a request
  /// explicitly asking for different parallelism is not folded into a
  /// slower in-flight run).
  struct CoalesceKey {
    CacheKey key;
    int threads = 0;
    friend bool operator==(const CoalesceKey&, const CoalesceKey&) = default;
  };
  struct CoalesceKeyHash {
    size_t operator()(const CoalesceKey& k) const {
      return CacheKeyHash{}(k.key) * 31 + static_cast<size_t>(k.threads);
    }
  };

  struct Task {
    Request request;
    GraphHandle handle;  ///< pins the graph for the task's whole lifetime
    CacheKey cache_key;
    CoalesceKey coalesce_key;
    engine::PeelControl control;
    std::promise<Response> promise;
    std::shared_future<Response> future;
    uint64_t extra_submitters = 0;  ///< guarded by the service mutex
    uint64_t abandoned = 0;         ///< guarded by the service mutex
    /// Admission stamp (steady ns) taken when the task entered its node
    /// queue: dequeue-to-start delta feeds the queue-wait histogram, and
    /// the full delta at FinishTask is the request latency.
    uint64_t enqueue_ns = 0;
  };

  struct Worker {
    std::thread thread;
    engine::WorkspacePool pool;
    int node = 0;  ///< assigned scheduling domain (home queue)
  };

  static std::shared_future<Response> ReadyResponse(Response response);

  /// Resolves instrument handles out of the registry once, at
  /// construction; the request path then touches only relaxed atomics.
  void RegisterInstruments();
  obs::Counter* OutcomeCounter(Status status) const {
    return requests_by_outcome_[static_cast<size_t>(status)];
  }
  /// Folds one completed engine run's PeelStats into the fleet counters.
  void BridgePeelStats(const PeelStats& stats);

  std::shared_future<Response> SubmitImpl(const Request& request,
                                          bool may_block, bool* would_block,
                                          std::shared_ptr<Task>* out_task =
                                              nullptr);
  void WorkerMain(Worker& worker);
  /// Sticky graph → node routing: the node that first served a graph keeps
  /// receiving its requests, so the graph's induced-subgraph arenas and
  /// support buffers stay resident on one node's workers. New graphs are
  /// dealt round-robin. Caller holds the mutex.
  int RouteLocked(const std::string& graph);
  /// Total tasks queued across every node queue. Caller holds the mutex.
  size_t TotalQueuedLocked() const;
  /// Pops the front task of the home node's queue — stealing from the
  /// other nodes in ring order when home is empty — plus up to max_batch-1
  /// tasks on the same graph epoch from that same queue. Caller holds the
  /// mutex and guarantees a non-empty queue somewhere.
  std::vector<std::shared_ptr<Task>> PopBatchLocked(int home);
  void ExecuteTask(const std::shared_ptr<Task>& task,
                   engine::WorkspacePool& pool);
  Response RunEngine(Task& task, engine::WorkspacePool& pool);
  void FinishTask(const std::shared_ptr<Task>& task, Response response);

  GraphRegistry* registry_;
  const ServiceOptions options_;
  ResultCache cache_;
  /// Constructed in the ctor body once obs_ is resolved; never null after.
  std::unique_ptr<LiveGraphManager> live_;
  /// Non-null iff options.data_dir was set and recovery succeeded.
  std::unique_ptr<durability::DurabilityManager> durability_;
  durability::RecoveryReport recovery_report_;
  std::string durability_error_;

  /// Owned fallback bundle (allocated iff options.observability == null);
  /// obs_ always points at the live bundle.
  std::unique_ptr<obs::Observability> owned_obs_;
  obs::Observability* obs_ = nullptr;
  /// Cached instrument handles (stable pointers into the registry).
  obs::Counter* requests_by_outcome_[5] = {};
  obs::Counter* cache_hits_total_ = nullptr;
  obs::Counter* coalesced_total_ = nullptr;
  obs::Counter* engine_runs_total_ = nullptr;
  obs::Histogram* request_latency_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  obs::Histogram* engine_seconds_ = nullptr;
  obs::Counter* wedges_counting_ = nullptr;
  obs::Counter* wedges_cd_ = nullptr;
  obs::Counter* wedges_fd_ = nullptr;
  obs::Counter* wedges_other_ = nullptr;
  obs::Counter* rounds_sync_ = nullptr;
  obs::Counter* rounds_frontier_ = nullptr;
  obs::Counter* rounds_scan_ = nullptr;
  obs::Counter* rounds_index_ = nullptr;
  obs::Counter* huc_recounts_total_ = nullptr;
  obs::Counter* dgm_compactions_total_ = nullptr;
  obs::Counter* fd_local_pops_total_ = nullptr;
  obs::Counter* fd_remote_steals_total_ = nullptr;
  obs::Gauge* makespan_predicted_ = nullptr;
  obs::Gauge* makespan_measured_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  /// One bounded queue per scheduling domain; capacity is shared (the
  /// queue_capacity bound applies to the total across nodes).
  std::vector<std::deque<std::shared_ptr<Task>>> node_queues_;
  /// Sticky graph → node routing table (see RouteLocked). Bounded by the
  /// number of distinct graph names ever submitted.
  std::unordered_map<std::string, int> graph_node_;
  int next_route_node_ = 0;  ///< round-robin cursor for unseen graphs
  int num_nodes_ = 1;        ///< scheduling domains (≥ 1)
  bool pinned_ = false;      ///< workers pinned to their node's CPUs
  uint64_t local_pops_ = 0;      ///< home-queue batch pops
  uint64_t remote_steals_ = 0;   ///< cross-node batch steals
  std::unordered_map<CoalesceKey, std::weak_ptr<Task>, CoalesceKeyHash>
      inflight_;
  size_t waiting_workers_ = 0;  ///< workers blocked on queue_not_empty_
  bool stopping_ = false;
  bool joined_ = false;
  Stats stats_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex inline_mu_;               ///< serializes RunQueuedInline
  engine::WorkspacePool inline_pool_;  ///< RunQueuedInline scratch
};

}  // namespace receipt::service

#endif  // RECEIPT_SERVICE_DECOMPOSITION_SERVICE_H_
