#include "service/live_graph.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "tip/receipt_cd.h"
#include "tip/receipt_fd.h"
#include "tip/tip_common.h"
#include "util/timer.h"
#include "wing/receipt_wing.h"

namespace receipt::service {

namespace {

using Edge = BipartiteGraph::Edge;

/// Sentinel in the old→new edge-id map for edges the batch deleted.
constexpr EdgeOffset kNoEdge = ~EdgeOffset{0};

TipOptions TipSealOptions(const LiveConfig& config, int threads,
                          engine::WorkspacePool* pool) {
  TipOptions options;
  options.side = Side::kU;  // the caller orients the graph
  options.num_threads = threads;
  options.num_partitions = static_cast<int>(config.partitions);
  // HUC recounts rewrite every alive support mid-run, which forces the
  // boundary patch log into a full snapshot and invalidates it for the
  // next seal. HUC never changes results (RECEIPT-- equivalence), so seal
  // runs simply pin it off to keep every run's log replayable.
  options.use_huc = false;
  // The patch log and the incremental replay both live on the SupportIndex.
  options.use_support_index = true;
  options.workspace_pool = pool;
  return options;
}

ReceiptWingOptions WingSealOptions(const LiveConfig& config, int threads,
                                   engine::WorkspacePool* pool) {
  ReceiptWingOptions options;
  options.num_threads = threads;
  options.num_partitions = static_cast<int>(config.partitions);
  options.use_support_index = true;
  options.workspace_pool = pool;
  return options;
}

uint64_t CountNonZero(std::span<const uint8_t> flags) {
  uint64_t count = 0;
  for (const uint8_t f : flags) count += f != 0;
  return count;
}

std::vector<durability::EdgeOp> ToEdgeOps(std::span<const EdgeUpdate> updates) {
  std::vector<durability::EdgeOp> ops;
  ops.reserve(updates.size());
  for (const EdgeUpdate& update : updates) {
    ops.push_back({update.insert, update.u, update.v});
  }
  return ops;
}

Algorithm AlgorithmFor(RequestKind kind) {
  return kind == RequestKind::kWing ? Algorithm::kReceiptWing
                                    : Algorithm::kReceipt;
}

}  // namespace

LiveGraphManager::LiveGraphManager(GraphRegistry& registry, ResultCache& cache,
                                   const LiveOptions& options,
                                   obs::Observability& obs)
    : registry_(&registry), cache_(&cache), options_(options), obs_(&obs) {
  RegisterInstruments();
}

void LiveGraphManager::RegisterInstruments() {
  obs::MetricsRegistry& m = obs_->metrics;
  seals_incremental_ =
      m.GetCounter("receipt_live_seal_runs_total",
                   "Per-configuration live-seal engine runs, by mode.",
                   {{"mode", "incremental"}});
  seals_full_ =
      m.GetCounter("receipt_live_seal_runs_total",
                   "Per-configuration live-seal engine runs, by mode.",
                   {{"mode", "full"}});
  ranges_reused_total_ =
      m.GetCounter("receipt_live_ranges_total",
                   "Sealed coarse ranges at seal time, by disposition.",
                   {{"state", "reused"}});
  ranges_repeeled_total_ =
      m.GetCounter("receipt_live_ranges_total",
                   "Sealed coarse ranges at seal time, by disposition.",
                   {{"state", "repeeled"}});
  updates_total_ = m.GetCounter("receipt_live_updates_total",
                                "Edge updates buffered into live graphs.");
  pending_gauge_ =
      m.GetGauge("receipt_live_pending_edges",
                 "Edge updates currently buffered across live graphs.");
  dirty_permille_ = m.GetGauge(
      "receipt_live_dirty_permille",
      "Re-peeled fraction of the most recent seal's ranges, in permille.");
  seal_seconds_ = m.GetHistogram("receipt_live_seal_seconds",
                                 "Wall time of live-update seals.");
}

LiveGraphManager::LiveGraphState* LiveGraphManager::GetOrCreateState(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = states_.find(name);
    if (it != states_.end()) return it->second.get();
  }
  // Build outside mu_ (ToEdges on a large graph is not free), then publish.
  GraphHandle handle = registry_->Acquire(name);
  if (!handle) return nullptr;
  auto state = std::make_unique<LiveGraphState>();
  state->name = name;
  state->edges = handle.graph().ToEdges();
  state->handle = std::move(handle);
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = states_.emplace(name, std::move(state));
  return it->second.get();
}

LiveGraphManager::LiveGraphState* LiveGraphManager::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(name);
  return it == states_.end() ? nullptr : it->second.get();
}

Status LiveGraphManager::Track(const std::string& name,
                               const LiveConfig& config, int threads,
                               std::string* error) {
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    if (error != nullptr) *error = "graph '" + name + "' is not registered";
    return Status::kNotFound;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  return TrackLocked(*state, config, threads, error);
}

Status LiveGraphManager::TrackLocked(LiveGraphState& state,
                                     const LiveConfig& config, int threads,
                                     std::string* error) {
  if (config.partitions == 0) {
    if (error != nullptr) *error = "partitions must be positive";
    return Status::kBadRequest;
  }
  // An external re-registration (a new epoch under this name) obsoletes the
  // resident edge list and every baseline: resync before building on it.
  GraphHandle current = registry_->Acquire(state.name);
  if (!current) {
    if (error != nullptr) {
      *error = "graph '" + state.name + "' is not registered";
    }
    return Status::kNotFound;
  }
  if (current.epoch() != state.handle.epoch()) {
    state.edges = current.graph().ToEdges();
    state.handle = std::move(current);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.pending_edges -= state.pending.size();
    }
    state.pending.clear();
    state.first_pending_ns = 0;
    for (auto& [cfg, b] : state.tip) b.valid = false;
    for (auto& [cfg, b] : state.wing) b.valid = false;
    pending_gauge_->Set(stats().pending_edges);
  }

  threads = threads > 0 ? threads : std::max(1, options_.seal_threads);
  const BipartiteGraph& graph = state.handle.graph();
  PeelStats stats;
  std::shared_ptr<Payload> payload;
  Algorithm algorithm = Algorithm::kReceipt;
  if (config.kind == RequestKind::kWing) {
    algorithm = Algorithm::kReceiptWing;
    Baseline<EdgeOffset>& b = state.wing[config];
    const ReceiptWingOptions options =
        WingSealOptions(config, threads, &state.pool);
    WingIncremental inc;
    inc.record = &b.log;
    inc.initial_support = &b.old_support;
    b.sealed = ReceiptWingCoarse(graph, options, &stats, inc);
    b.numbers.assign(graph.num_edges(), 0);
    ReceiptWingFine(graph, b.sealed, options, std::span<Count>(b.numbers),
                    &stats, {});
    b.valid = b.log.valid;
    payload = std::make_shared<Payload>();
    payload->numbers = b.numbers;
  } else {
    Baseline<VertexId>& b = state.tip[config];
    const bool v_side = config.kind == RequestKind::kTipV;
    BipartiteGraph swapped;
    const BipartiteGraph* oriented = &graph;
    if (v_side) {
      swapped = graph.SwappedCopy();
      oriented = &swapped;
    }
    const TipOptions options = TipSealOptions(config, threads, &state.pool);
    CdIncremental inc;
    inc.record = &b.log;
    inc.initial_support = &b.old_support;
    b.sealed = ReceiptCd(*oriented, options, state.pool, &stats, inc);
    b.numbers.assign(oriented->num_u(), 0);
    ReceiptFd(*oriented, b.sealed, options, state.pool,
              std::span<Count>(b.numbers), &stats, {});
    b.valid = b.log.valid;
    payload = std::make_shared<Payload>();
    payload->numbers = b.numbers;
  }
  payload->stats = stats;
  // A tracked configuration is always answerable from cache on the sealed
  // epoch — starting with the one its baseline was just built on.
  cache_->Put(CacheKey{state.name, state.handle.epoch(), config.kind,
                       algorithm, config.partitions},
              std::move(payload));
  return Status::kOk;
}

ApplyResult LiveGraphManager::ApplyEdges(const std::string& name,
                                         std::span<const EdgeUpdate> updates,
                                         bool force_seal, int threads,
                                         std::span<const LiveConfig> track) {
  ApplyResult result;
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    result.status = Status::kNotFound;
    result.error = "graph '" + name + "' is not registered";
    return result;
  }
  std::lock_guard<std::mutex> lock(state->mu);

  for (const LiveConfig& config : track) {
    const Status status = TrackLocked(*state, config, threads, &result.error);
    if (status != Status::kOk) {
      result.status = status;
      return result;
    }
  }

  const BipartiteGraph& graph = state->handle.graph();
  result.epoch = state->handle.epoch();
  for (const EdgeUpdate& update : updates) {
    if (update.u >= graph.num_u() || update.v >= graph.num_v()) {
      result.status = Status::kBadRequest;
      result.error = "edge (" + std::to_string(update.u) + ", " +
                     std::to_string(update.v) +
                     ") lies outside the registered shape; re-register the "
                     "graph to grow it";
      result.pending = state->pending.size();
      return result;
    }
  }

  // Write-ahead: the batch must be durable before it is buffered, because
  // buffering is what makes it acknowledged. A failed append rejects the
  // whole batch — the journal has already rolled its tail back, so the
  // on-disk record set stays exactly the acknowledged set.
  if (durability_ != nullptr && !updates.empty()) {
    std::string log_error;
    if (!durability_->LogEdgeBatch(name, state->handle.epoch(),
                                   ToEdgeOps(updates), &log_error)) {
      result.status = Status::kShutdown;
      result.error = "durability: " + log_error;
      result.pending = state->pending.size();
      return result;
    }
  }

  if (!updates.empty()) {
    if (state->pending.empty()) {
      state->first_pending_ns = obs::TraceRecorder::NowNs();
    }
    state->pending.insert(state->pending.end(), updates.begin(),
                          updates.end());
    updates_total_->Increment(updates.size());
    std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.batches_total;
    stats_.updates_total += updates.size();
    stats_.pending_edges += updates.size();
  }
  result.accepted = updates.size();
  result.pending = state->pending.size();

  bool seal = force_seal;
  if (state->pending.size() >= options_.max_pending_edges) seal = true;
  if (options_.max_staleness_ms > 0 && state->first_pending_ns != 0) {
    const uint64_t age_ns =
        obs::TraceRecorder::NowNs() - state->first_pending_ns;
    if (age_ns / 1'000'000 >= options_.max_staleness_ms) seal = true;
  }
  if (seal && !state->pending.empty()) {
    SealLocked(*state, threads, &result);
    result.pending = 0;
  }
  {
    std::lock_guard<std::mutex> stats_lock(mu_);
    pending_gauge_->Set(stats_.pending_edges);
  }
  return result;
}

ApplyResult LiveGraphManager::ApplyReplicated(
    const std::string& name, std::span<const EdgeUpdate> updates, bool seal,
    uint64_t expected_epoch, uint64_t sealed_epoch, int threads) {
  ApplyResult result;
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    result.status = Status::kNotFound;
    result.error = "graph '" + name + "' is not registered";
    return result;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  result.epoch = state->handle.epoch();
  if (state->handle.epoch() != expected_epoch) {
    result.status = Status::kBadRequest;
    result.error = "epoch chain mismatch: graph '" + name + "' is at " +
                   std::to_string(state->handle.epoch()) +
                   ", owner expected " + std::to_string(expected_epoch);
    result.pending = state->pending.size();
    return result;
  }
  if (seal && sealed_epoch <= expected_epoch) {
    result.status = Status::kBadRequest;
    result.error = "sealed epoch " + std::to_string(sealed_epoch) +
                   " must exceed the pre-seal epoch " +
                   std::to_string(expected_epoch);
    result.pending = state->pending.size();
    return result;
  }
  const BipartiteGraph& graph = state->handle.graph();
  for (const EdgeUpdate& update : updates) {
    if (update.u >= graph.num_u() || update.v >= graph.num_v()) {
      result.status = Status::kBadRequest;
      result.error = "replicated edge (" + std::to_string(update.u) + ", " +
                     std::to_string(update.v) +
                     ") lies outside the registered shape";
      result.pending = state->pending.size();
      return result;
    }
  }

  // Same journal-before-buffer contract as ApplyEdges: once this follower
  // acks the batch to the owner, its own recovery must reproduce it.
  if (durability_ != nullptr && !updates.empty()) {
    std::string log_error;
    if (!durability_->LogEdgeBatch(name, state->handle.epoch(),
                                   ToEdgeOps(updates), &log_error)) {
      result.status = Status::kShutdown;
      result.error = "durability: " + log_error;
      result.pending = state->pending.size();
      return result;
    }
  }
  if (!updates.empty()) {
    if (state->pending.empty()) {
      state->first_pending_ns = obs::TraceRecorder::NowNs();
    }
    state->pending.insert(state->pending.end(), updates.begin(),
                          updates.end());
    updates_total_->Increment(updates.size());
    std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.batches_total;
    stats_.updates_total += updates.size();
    stats_.pending_edges += updates.size();
  }
  result.accepted = updates.size();
  result.pending = state->pending.size();

  // No policy seal here — a follower seals exactly when the owner sealed,
  // at the owner's epoch, or the replica chains diverge.
  if (seal) {
    SealLocked(*state, threads, &result, sealed_epoch,
               /*journal_pinned=*/true);
    result.pending = 0;
  }
  {
    std::lock_guard<std::mutex> stats_lock(mu_);
    pending_gauge_->Set(stats_.pending_edges);
  }
  return result;
}

bool LiveGraphManager::ExportState(const std::string& name,
                                   ExportedState* out) {
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) return false;
  std::lock_guard<std::mutex> lock(state->mu);
  out->epoch = state->handle.epoch();
  out->num_u = state->handle.graph().num_u();
  out->num_v = state->handle.graph().num_v();
  out->edges = state->edges;
  out->pending = state->pending;
  return true;
}

void LiveGraphManager::SealLocked(LiveGraphState& state, int threads,
                                  ApplyResult* result, uint64_t pinned_epoch,
                                  bool journal_pinned) {
  const WallTimer timer;
  threads = threads > 0 ? threads : std::max(1, options_.seal_threads);
  const GraphHandle old_handle = state.handle;  // keeps the old graph alive
  const BipartiteGraph& old_graph = old_handle.graph();

  // Fold the buffer: the last operation on each (u, v) wins, and only
  // operations that actually change edge presence count as changes.
  std::map<Edge, bool> ops;
  for (const EdgeUpdate& update : state.pending) {
    ops[Edge{update.u, update.v}] = update.insert;
  }

  // One merge pass over the sorted current edge list and the sorted ops
  // produces the new sorted edge list, the changed-edge set, and — because
  // sorted (u, v) rank *is* the wing edge id — the old→new edge-id map.
  std::vector<Edge> new_edges;
  new_edges.reserve(state.edges.size() + ops.size());
  std::vector<Edge> changed;
  std::vector<EdgeOffset> old_to_new(state.edges.size(), kNoEdge);
  auto op = ops.begin();
  for (size_t i = 0; i < state.edges.size(); ++i) {
    const Edge e = state.edges[i];
    while (op != ops.end() && op->first < e) {
      if (op->second) {
        changed.push_back(op->first);
        new_edges.push_back(op->first);
      }
      ++op;
    }
    bool keep = true;
    if (op != ops.end() && op->first == e) {
      if (!op->second) {
        keep = false;
        changed.push_back(e);
      }
      ++op;  // inserting a present edge is a no-op
    }
    if (keep) {
      old_to_new[i] = static_cast<EdgeOffset>(new_edges.size());
      new_edges.push_back(e);
    }
  }
  for (; op != ops.end(); ++op) {
    if (op->second) {
      changed.push_back(op->first);
      new_edges.push_back(op->first);
    }
  }

  BipartiteGraph new_graph = BipartiteGraph::FromEdges(
      old_graph.num_u(), old_graph.num_v(), new_edges);

  // Run every tracked configuration against the new graph — incrementally
  // when its baseline allows — collecting the payloads that will prime the
  // cache under the epoch we are about to install.
  std::vector<std::pair<CacheKey, std::shared_ptr<Payload>>> primes;
  for (auto& [config, baseline] : state.tip) {
    SealConfigReport report;
    auto payload = SealTip(state, config, baseline, old_graph, new_graph,
                           changed, threads, &report);
    primes.emplace_back(CacheKey{state.name, 0, config.kind,
                                 Algorithm::kReceipt, config.partitions},
                        std::move(payload));
    result->reports.push_back(std::move(report));
  }
  for (auto& [config, baseline] : state.wing) {
    SealConfigReport report;
    auto payload = SealWing(state, config, baseline, old_graph, new_graph,
                            changed, old_to_new, threads, &report);
    primes.emplace_back(CacheKey{state.name, 0, config.kind,
                                 Algorithm::kReceiptWing, config.partitions},
                        std::move(payload));
    result->reports.push_back(std::move(report));
  }

  // Install the new epoch. Requests admitted before this line served the
  // old snapshot; everything after resolves to the sealed graph. The epoch
  // transition is journaled *before* the install: a crash in between
  // replays as the same seal pinned to the same epoch, so the recovered
  // chain is numbered identically. A failed seal append leaves the journal
  // fail-stop broken — the in-memory seal still completes, and the broken
  // journal surfaces on the next batch as an unacknowledged 503.
  const uint64_t old_epoch = old_handle.epoch();
  uint64_t new_epoch = pinned_epoch;
  if (new_epoch == 0) {
    new_epoch = registry_->AllocateEpoch();
    if (durability_ != nullptr) {
      std::string log_error;
      durability_->LogSeal(state.name, old_epoch, new_epoch, &log_error);
    }
  } else if (journal_pinned && durability_ != nullptr) {
    // A replicated seal is new history for *this* process even though the
    // epoch was minted elsewhere — journal it so recovery replays it.
    std::string log_error;
    durability_->LogSeal(state.name, old_epoch, new_epoch, &log_error);
  }
  registry_->RegisterAtEpoch(state.name, std::move(new_graph), new_epoch);
  state.handle = registry_->Acquire(state.name);
  cache_->DropEpoch(old_epoch);
  for (auto& [key, payload] : primes) {
    CacheKey keyed = key;
    keyed.epoch = new_epoch;
    cache_->Put(keyed, std::move(payload));
  }

  const size_t folded = state.pending.size();
  state.edges = std::move(new_edges);
  state.pending.clear();
  state.first_pending_ns = 0;

  result->sealed = true;
  result->epoch = new_epoch;
  result->seal_seconds = timer.Seconds();
  seal_seconds_->ObserveSeconds(result->seal_seconds);

  uint64_t reused = 0;
  uint64_t repeeled = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.seals_total;
    stats_.pending_edges -= folded;
    for (const SealConfigReport& report : result->reports) {
      if (report.incremental) {
        ++stats_.runs_incremental;
        seals_incremental_->Increment();
      } else {
        ++stats_.runs_full;
        seals_full_->Increment();
      }
      stats_.ranges_reused += report.ranges_reused;
      stats_.ranges_repeeled += report.ranges_repeeled;
      reused += report.ranges_reused;
      repeeled += report.ranges_repeeled;
    }
  }
  ranges_reused_total_->Increment(reused);
  ranges_repeeled_total_->Increment(repeeled);
  if (reused + repeeled > 0) {
    dirty_permille_->Set(repeeled * 1000 / (reused + repeeled));
  }

  // Snapshot-on-seal compacts the journal to (roughly) one snapshot per
  // graph plus the records since. Replayed seals skip it: recovery writes
  // nothing until the process is serving again.
  if ((pinned_epoch == 0 || journal_pinned) && durability_ != nullptr &&
      durability_->snapshot_on_seal()) {
    std::string snap_error;
    WriteSnapshotLocked(state, &snap_error);
  }
}

std::shared_ptr<Payload> LiveGraphManager::SealTip(
    LiveGraphState& state, const LiveConfig& config,
    Baseline<VertexId>& baseline, const BipartiteGraph& old_graph,
    const BipartiteGraph& new_graph, std::span<const Edge> changed,
    int threads, SealConfigReport* report) {
  const bool v_side = config.kind == RequestKind::kTipV;
  const VertexId n = v_side ? new_graph.num_v() : new_graph.num_u();

  // Structural dirty set: for each changed edge (u, v), the peeled-side
  // endpoint plus every peeled-side vertex that shares the opposite
  // endpoint in either the old or the new graph. Every butterfly the batch
  // created or destroyed has all of its peelable vertices inside this set,
  // which is exactly what the engine's clean-range proof requires.
  std::vector<uint8_t> dirty(n, 0);
  for (const Edge& e : changed) {
    if (!v_side) {
      dirty[e.u] = 1;
      for (const VertexId w : old_graph.Neighbors(old_graph.VGlobal(e.v))) {
        dirty[w] = 1;
      }
      for (const VertexId w : new_graph.Neighbors(new_graph.VGlobal(e.v))) {
        dirty[w] = 1;
      }
    } else {
      dirty[e.v] = 1;
      for (const VertexId w : old_graph.Neighbors(e.u)) {
        dirty[w - old_graph.num_u()] = 1;
      }
      for (const VertexId w : new_graph.Neighbors(e.u)) {
        dirty[w - new_graph.num_u()] = 1;
      }
    }
  }

  BipartiteGraph swapped;
  const BipartiteGraph* oriented = &new_graph;
  if (v_side) {
    swapped = new_graph.SwappedCopy();
    oriented = &swapped;
  }

  const TipOptions options = TipSealOptions(config, threads, &state.pool);
  PeelStats stats;
  engine::IncrementalSeed<VertexId> seed;
  engine::IncrementalOutcome outcome;
  engine::CoarsePatchLog new_log;
  std::vector<Count> new_initial;
  CdIncremental inc;
  inc.record = &new_log;
  inc.initial_support = &new_initial;
  // Tip entity ids are stable across seals (the shape is fixed), so the
  // baseline seeds the run as-is.
  const bool seeded = baseline.valid && baseline.log.valid &&
                      baseline.old_support.size() == n &&
                      baseline.numbers.size() == n;
  if (seeded) {
    seed.sealed = &baseline.sealed;
    seed.log = &baseline.log;
    seed.old_support = baseline.old_support;
    seed.structural_dirty = dirty;
    seed.dirty_fraction_limit = options_.dirty_fraction_limit;
    inc.seed = &seed;
    inc.outcome = &outcome;
  }
  CdResult cd = ReceiptCd(*oriented, options, state.pool, &stats, inc);

  std::vector<Count> numbers;
  std::span<const uint8_t> only;
  if (seeded) {
    numbers = baseline.numbers;  // clean subsets keep their sealed numbers
    only = outcome.subset_dirty;
  } else {
    numbers.assign(n, 0);
  }
  ReceiptFd(*oriented, cd, options, state.pool, std::span<Count>(numbers),
            &stats, only);

  report->config = config;
  report->subsets_total = cd.subsets.size();
  report->incremental = seeded && !outcome.fell_back_full;
  if (seeded) {
    report->ranges_reused = outcome.ranges_reused;
    report->ranges_repeeled = outcome.ranges_repeeled;
    report->subsets_repeeled = CountNonZero(outcome.subset_dirty);
  } else {
    report->ranges_repeeled = cd.subsets.size();
    report->subsets_repeeled = cd.subsets.size();
  }

  baseline.sealed = std::move(cd);
  baseline.log = std::move(new_log);
  baseline.old_support = std::move(new_initial);
  baseline.numbers = numbers;
  baseline.valid = baseline.log.valid;

  auto payload = std::make_shared<Payload>();
  payload->numbers = std::move(numbers);
  payload->stats = stats;
  return payload;
}

std::shared_ptr<Payload> LiveGraphManager::SealWing(
    LiveGraphState& state, const LiveConfig& config,
    Baseline<EdgeOffset>& baseline, const BipartiteGraph& old_graph,
    const BipartiteGraph& new_graph, std::span<const Edge> changed,
    std::span<const EdgeOffset> old_to_new, int threads,
    SealConfigReport* report) {
  const uint64_t new_m = new_graph.num_edges();

  // Structural dirty set over edges: every edge incident to a U vertex
  // that any changed butterfly can touch — the changed edges' U endpoints
  // plus the old/new U-neighborhoods of their V endpoints. Edge ids of a
  // U vertex are its contiguous U-side CSR slots.
  std::vector<uint8_t> marked_u(new_graph.num_u(), 0);
  for (const Edge& e : changed) {
    marked_u[e.u] = 1;
    for (const VertexId w : old_graph.Neighbors(old_graph.VGlobal(e.v))) {
      marked_u[w] = 1;
    }
    for (const VertexId w : new_graph.Neighbors(new_graph.VGlobal(e.v))) {
      marked_u[w] = 1;
    }
  }
  std::vector<uint8_t> dirty(new_m, 0);
  const std::span<const EdgeOffset> offsets = new_graph.offsets();
  for (VertexId u = 0; u < new_graph.num_u(); ++u) {
    if (!marked_u[u]) continue;
    for (EdgeOffset e = offsets[u]; e < offsets[u + 1]; ++e) dirty[e] = 1;
  }

  // Remap the sealed baseline into the new edge-id space. Deleted edges
  // drop out of member lists and the patch log; a subset that lost a
  // member no longer matches the sealed peel order, so it is force-dirty.
  // Inserted edges carry the kInvalidCount did-not-exist sentinel.
  engine::RangeResult<EdgeOffset> remapped;
  engine::CoarsePatchLog remapped_log;
  std::vector<uint8_t> force_dirty;
  std::vector<Count> old_support_new;
  std::vector<Count> numbers_new;
  const bool seeded = baseline.valid && baseline.log.valid &&
                      baseline.old_support.size() == old_to_new.size() &&
                      baseline.numbers.size() == old_to_new.size();
  if (seeded) {
    remapped.bounds = baseline.sealed.bounds;
    const size_t num_subsets = baseline.sealed.subsets.size();
    remapped.subsets.resize(num_subsets);
    force_dirty.assign(num_subsets, 0);
    for (size_t i = 0; i < num_subsets; ++i) {
      std::vector<EdgeOffset>& out = remapped.subsets[i];
      out.reserve(baseline.sealed.subsets[i].size());
      for (const EdgeOffset old_id : baseline.sealed.subsets[i]) {
        const EdgeOffset mapped = old_to_new[old_id];
        if (mapped == kNoEdge) {
          force_dirty[i] = 1;
        } else {
          out.push_back(mapped);
        }
      }
    }
    remapped.subset_of.assign(new_m, 0);
    for (size_t i = 0; i < num_subsets; ++i) {
      for (const EdgeOffset e : remapped.subsets[i]) {
        remapped.subset_of[e] = static_cast<uint32_t>(i);
      }
    }
    remapped_log.ranges.resize(baseline.log.ranges.size());
    for (size_t i = 0; i < baseline.log.ranges.size(); ++i) {
      for (const auto& [old_id, value] : baseline.log.ranges[i]) {
        const EdgeOffset mapped = old_to_new[old_id];
        if (mapped != kNoEdge) {
          remapped_log.ranges[i].emplace_back(mapped, value);
        }
      }
    }
    old_support_new.assign(new_m, kInvalidCount);
    numbers_new.assign(new_m, 0);
    for (size_t i = 0; i < old_to_new.size(); ++i) {
      if (old_to_new[i] != kNoEdge) {
        old_support_new[old_to_new[i]] = baseline.old_support[i];
        numbers_new[old_to_new[i]] = baseline.numbers[i];
      }
    }
  }

  const ReceiptWingOptions options =
      WingSealOptions(config, threads, &state.pool);
  PeelStats stats;
  engine::IncrementalSeed<EdgeOffset> seed;
  engine::IncrementalOutcome outcome;
  engine::CoarsePatchLog new_log;
  std::vector<Count> new_initial;
  WingIncremental inc;
  inc.record = &new_log;
  inc.initial_support = &new_initial;
  if (seeded) {
    seed.sealed = &remapped;
    seed.log = &remapped_log;
    seed.old_support = old_support_new;
    seed.structural_dirty = dirty;
    seed.force_dirty_subset = force_dirty;
    seed.dirty_fraction_limit = options_.dirty_fraction_limit;
    inc.seed = &seed;
    inc.outcome = &outcome;
  }
  engine::RangeResult<EdgeOffset> coarse =
      ReceiptWingCoarse(new_graph, options, &stats, inc);

  std::vector<Count> numbers;
  std::span<const uint8_t> only;
  if (seeded) {
    numbers = std::move(numbers_new);  // clean subsets keep sealed numbers
    only = outcome.subset_dirty;
  } else {
    numbers.assign(new_m, 0);
  }
  ReceiptWingFine(new_graph, coarse, options, std::span<Count>(numbers),
                  &stats, only);

  report->config = config;
  report->subsets_total = coarse.subsets.size();
  report->incremental = seeded && !outcome.fell_back_full;
  if (seeded) {
    report->ranges_reused = outcome.ranges_reused;
    report->ranges_repeeled = outcome.ranges_repeeled;
    report->subsets_repeeled = CountNonZero(outcome.subset_dirty);
  } else {
    report->ranges_repeeled = coarse.subsets.size();
    report->subsets_repeeled = coarse.subsets.size();
  }

  baseline.sealed = std::move(coarse);
  baseline.log = std::move(new_log);
  baseline.old_support = std::move(new_initial);
  baseline.numbers = numbers;
  baseline.valid = baseline.log.valid;

  auto payload = std::make_shared<Payload>();
  payload->numbers = std::move(numbers);
  payload->stats = stats;
  return payload;
}

void LiveGraphManager::SetDurability(
    durability::DurabilityManager* durability) {
  durability_ = durability;
}

bool LiveGraphManager::WriteSnapshotLocked(LiveGraphState& state,
                                           std::string* error) {
  durability::SnapshotData data;
  data.graph = state.name;
  data.epoch = state.handle.epoch();
  data.num_u = state.handle.graph().num_u();
  data.num_v = state.handle.graph().num_v();
  data.edges = state.edges;
  data.pending = ToEdgeOps(state.pending);
  for (const auto& [config, baseline] : state.tip) {
    durability::SnapshotConfig out;
    out.kind = static_cast<uint8_t>(config.kind);
    out.partitions = config.partitions;
    out.numbers = baseline.numbers;
    out.bounds = baseline.sealed.bounds;
    out.old_support = baseline.old_support;
    data.configs.push_back(std::move(out));
  }
  for (const auto& [config, baseline] : state.wing) {
    durability::SnapshotConfig out;
    out.kind = static_cast<uint8_t>(config.kind);
    out.partitions = config.partitions;
    out.numbers = baseline.numbers;
    out.bounds = baseline.sealed.bounds;
    out.old_support = baseline.old_support;
    data.configs.push_back(std::move(out));
  }
  return durability_->WriteSnapshot(&data, error);
}

Status LiveGraphManager::RestoreSnapshot(const durability::SnapshotData& data,
                                         std::string* error) {
  for (const Edge& e : data.edges) {
    if (e.u >= data.num_u || e.v >= data.num_v) {
      if (error != nullptr) {
        *error = "snapshot for '" + data.graph + "' has out-of-shape edges";
      }
      return Status::kBadRequest;
    }
  }
  registry_->RegisterAtEpoch(
      data.graph,
      BipartiteGraph::FromEdges(data.num_u, data.num_v,
                                {data.edges.begin(), data.edges.end()}),
      data.epoch);

  auto state = std::make_unique<LiveGraphState>();
  state->name = data.graph;
  state->handle = registry_->Acquire(data.graph);
  state->edges = data.edges;
  std::sort(state->edges.begin(), state->edges.end());
  state->pending.reserve(data.pending.size());
  for (const auto& op : data.pending) {
    state->pending.push_back({op.insert, op.u, op.v});
  }
  if (!state->pending.empty()) {
    state->first_pending_ns = obs::TraceRecorder::NowNs();
  }

  for (const auto& config : data.configs) {
    if (config.kind > static_cast<uint8_t>(RequestKind::kWing) ||
        config.partitions == 0) {
      if (error != nullptr) {
        *error = "snapshot for '" + data.graph + "' has an invalid config";
      }
      return Status::kBadRequest;
    }
    LiveConfig live{static_cast<RequestKind>(config.kind), config.partitions};
    // Restored baselines carry the sealed numbers/bounds/supports but not
    // the patch log, so they cannot seed an incremental seal: valid stays
    // false and the next seal recomputes fully — bit-identical either way.
    if (live.kind == RequestKind::kWing) {
      Baseline<EdgeOffset>& b = state->wing[live];
      b.numbers = config.numbers;
      b.sealed.bounds = config.bounds;
      b.old_support = config.old_support;
      b.valid = false;
    } else {
      Baseline<VertexId>& b = state->tip[live];
      b.numbers = config.numbers;
      b.sealed.bounds = config.bounds;
      b.old_support = config.old_support;
      b.valid = false;
    }
    // The sealed numbers are servable immediately: prime the cache under
    // the restored epoch, exactly as the pre-crash seal did.
    auto payload = std::make_shared<Payload>();
    payload->numbers = config.numbers;
    cache_->Put(CacheKey{data.graph, data.epoch, live.kind,
                         AlgorithmFor(live.kind), live.partitions},
                std::move(payload));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = states_.find(data.graph);
    if (it != states_.end()) {
      stats_.pending_edges -= it->second->pending.size();
    }
    stats_.pending_edges += state->pending.size();
    states_[data.graph] = std::move(state);
    pending_gauge_->Set(stats_.pending_edges);
  }
  return Status::kOk;
}

Status LiveGraphManager::ReplayBatch(const std::string& name, uint64_t epoch,
                                     std::span<const durability::EdgeOp>
                                         updates,
                                     std::string* error) {
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    if (error != nullptr) {
      *error = "journaled batch for unregistered graph '" + name + "'";
    }
    return Status::kNotFound;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->handle.epoch() != epoch) {
    if (error != nullptr) {
      *error = "epoch chain broken: batch for '" + name + "' recorded at " +
               std::to_string(epoch) + ", graph is at " +
               std::to_string(state->handle.epoch());
    }
    return Status::kBadRequest;
  }
  const BipartiteGraph& graph = state->handle.graph();
  for (const auto& op : updates) {
    if (op.u >= graph.num_u() || op.v >= graph.num_v()) {
      if (error != nullptr) {
        *error = "journaled batch for '" + name + "' has out-of-shape edges";
      }
      return Status::kBadRequest;
    }
  }
  if (state->pending.empty() && !updates.empty()) {
    state->first_pending_ns = obs::TraceRecorder::NowNs();
  }
  for (const auto& op : updates) {
    state->pending.push_back({op.insert, op.u, op.v});
  }
  {
    std::lock_guard<std::mutex> stats_lock(mu_);
    ++stats_.batches_total;
    stats_.updates_total += updates.size();
    stats_.pending_edges += updates.size();
    pending_gauge_->Set(stats_.pending_edges);
  }
  return Status::kOk;
}

Status LiveGraphManager::ReplaySeal(const std::string& name,
                                    uint64_t old_epoch, uint64_t new_epoch,
                                    int threads, std::string* error) {
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    if (error != nullptr) {
      *error = "journaled seal for unregistered graph '" + name + "'";
    }
    return Status::kNotFound;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->handle.epoch() != old_epoch) {
    if (error != nullptr) {
      *error = "epoch chain broken: seal for '" + name + "' recorded as " +
               std::to_string(old_epoch) + " -> " +
               std::to_string(new_epoch) + ", graph is at " +
               std::to_string(state->handle.epoch());
    }
    return Status::kBadRequest;
  }
  ApplyResult result;
  SealLocked(*state, threads, &result, new_epoch);
  {
    std::lock_guard<std::mutex> stats_lock(mu_);
    pending_gauge_->Set(stats_.pending_edges);
  }
  return Status::kOk;
}

bool LiveGraphManager::DropState(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(name);
  if (it == states_.end()) return false;
  stats_.pending_edges -= it->second->pending.size();
  states_.erase(it);
  pending_gauge_->Set(stats_.pending_edges);
  return true;
}

Status LiveGraphManager::SnapshotNow(const std::string& name,
                                     std::string* error) {
  if (durability_ == nullptr) {
    if (error != nullptr) *error = "durability is not enabled (no data dir)";
    return Status::kBadRequest;
  }
  LiveGraphState* state = GetOrCreateState(name);
  if (state == nullptr) {
    if (error != nullptr) *error = "graph '" + name + "' is not registered";
    return Status::kNotFound;
  }
  std::lock_guard<std::mutex> lock(state->mu);
  return WriteSnapshotLocked(*state, error) ? Status::kOk : Status::kShutdown;
}

size_t LiveGraphManager::PendingEdges(const std::string& name) const {
  LiveGraphState* state = FindState(name);
  if (state == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state->mu);
  return state->pending.size();
}

LiveGraphManager::Stats LiveGraphManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace receipt::service
