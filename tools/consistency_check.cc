// consistency_check: offline PRAM checker for router client-trace logs.
//
// Usage: consistency_check TRACE.jsonl [TRACE.jsonl ...]
//
// Each file is one or more clients' observed history (the router's
// --trace-log output: one JSONL record per acked op). All files are
// parsed, concatenated, and checked per (client, graph) stream for
//   - read-monotonic        reads never go backwards in epoch
//   - read-your-writes      reads never precede the client's acked writes
//   - write-monotonic       acked writes never regress
//   - read-of-unwritten-epoch  reads only return epochs some write produced
//
// Exit codes: 0 all checks pass, 1 a violating op pair was found (printed
// to stderr), 2 usage or parse error.

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/consistency.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s TRACE.jsonl [TRACE.jsonl ...]\n"
                 "Checks router client-trace logs for PRAM consistency.\n",
                 argv[0]);
    return 2;
  }

  std::vector<receipt::cluster::TraceOp> ops;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!receipt::cluster::ParseTraceFile(argv[i], &ops, &error)) {
      std::fprintf(stderr, "consistency_check: %s\n", error.c_str());
      return 2;
    }
  }

  std::set<std::string> clients;
  std::set<std::string> graphs;
  size_t reads = 0;
  size_t writes = 0;
  for (const receipt::cluster::TraceOp& op : ops) {
    clients.insert(op.client);
    graphs.insert(op.graph);
    (op.read ? reads : writes)++;
  }

  const auto violation = receipt::cluster::CheckPramConsistency(ops);
  if (violation.has_value()) {
    std::fprintf(stderr, "consistency_check: FAIL\n%s\n",
                 receipt::cluster::FormatViolation(*violation).c_str());
    return 1;
  }

  std::printf(
      "consistency_check: OK — %zu ops (%zu reads, %zu writes) from %zu "
      "client(s) over %zu graph(s) are PRAM-consistent\n",
      ops.size(), reads, writes, clients.size(), graphs.size());
  return 0;
}
