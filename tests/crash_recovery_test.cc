// The crash-recovery suite: CRC framing and torn-tail handling of the
// write-ahead journal, snapshot round-trips and corruption refusal, the
// fault-injection shim (counted failures, named crash points, env-var
// plans), and the property the whole durability layer exists for — after a
// crash at *any* injected point under churn, recovery restores a state
// whose logical edge set equals an acknowledged prefix of the batch stream
// (every acked batch survives; an unacked one may or may not), and a
// recovered service answers decompositions bit-identically to one that
// never crashed.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "durability/journal.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/snapshot.h"
#include "graph/generators.h"
#include "obs/observability.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "service/live_graph.h"
#include "service/result_cache.h"
#include "tip/receipt.h"
#include "util/crc32.h"
#include "util/io.h"

namespace receipt::durability {
namespace {

namespace io = util::io;
using service::EdgeUpdate;
using service::LiveConfig;
using service::LiveGraphManager;
using service::LiveOptions;
using service::RequestKind;
using Edge = BipartiteGraph::Edge;

/// A throwaway directory, recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/receipt_crash_XXXXXX";
    path_ = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path_.empty());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Always disarm injection, even when a test fails mid-plan.
class FaultGuard {
 public:
  ~FaultGuard() { io::ClearFaultPlan(); }
};

JournalRecord BatchRecord(const std::string& graph, uint64_t epoch,
                          std::vector<EdgeOp> ops) {
  JournalRecord record;
  record.type = JournalRecord::Type::kEdgeBatch;
  record.graph = graph;
  record.epoch = epoch;
  record.updates = std::move(ops);
  return record;
}

// ---------------------------------------------------------------------------
// CRC32 and frame encoding
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectorsAndChaining) {
  // The CRC-32/ISO-HDLC check value.
  EXPECT_EQ(util::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::Crc32("", 0), 0u);
  // Seeded continuation must equal the one-shot digest.
  const uint32_t head = util::Crc32("12345", 5);
  EXPECT_EQ(util::Crc32("6789", 4, head), 0xCBF43926u);
}

TEST(Journal, FsyncPolicyNamesRoundTrip) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kAlways, FsyncPolicy::kBatch, FsyncPolicy::kOff}) {
    FsyncPolicy parsed;
    ASSERT_TRUE(FsyncPolicyFromName(FsyncPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  FsyncPolicy parsed;
  EXPECT_FALSE(FsyncPolicyFromName("sometimes", &parsed));
}

// ---------------------------------------------------------------------------
// Fork-based crash-exit coverage. Declared early: the child must fork
// before any test in this binary spawns OpenMP teams.
// ---------------------------------------------------------------------------

TEST(FaultInjection, CrashPointExitsChildProcess) {
  TempDir dir;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the same plan the CI smoke uses via the environment, then
    // append — the pre-fsync crash point must _exit(137) with the record
    // bytes already written.
    ::setenv("RECEIPT_FAULT_PLAN",
             "crash-exit=journal.append.pre-fsync:1", 1);
    if (!io::LoadFaultPlanFromEnv()) ::_exit(3);
    JournalOptions options;
    options.dir = dir.path();
    std::string error;
    std::unique_ptr<Journal> journal = Journal::Open(options, &error);
    if (journal == nullptr) ::_exit(4);
    journal->Append(BatchRecord("g", 1, {{true, 1, 2}}), &error);
    ::_exit(5);  // the crash point should never let us get here
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);

  // The record was fully written before the crash point: the scan finds it
  // intact (durable-but-unacked, which the invariant allows).
  JournalScanResult scan;
  std::string error;
  size_t records = 0;
  ASSERT_TRUE(ScanJournal(
      dir.path(), [&](const JournalRecord&, const JournalLsn&) {
        ++records;
        return true;
      },
      &scan, &error))
      << error;
  EXPECT_EQ(records, 1u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(FaultInjection, EnvPlanParsing) {
  FaultGuard guard;
  ::setenv("RECEIPT_FAULT_PLAN", "fail-write=3:16:halt,fail-sync=2", 1);
  EXPECT_TRUE(io::LoadFaultPlanFromEnv());
  ::setenv("RECEIPT_FAULT_PLAN", "crash-halt=snapshot.rename:2", 1);
  EXPECT_TRUE(io::LoadFaultPlanFromEnv());
  ::setenv("RECEIPT_FAULT_PLAN", "flip-bits=7", 1);
  EXPECT_FALSE(io::LoadFaultPlanFromEnv());
  // A bare site is fine (the count defaults to 1), but a zero count or an
  // empty site is malformed.
  ::setenv("RECEIPT_FAULT_PLAN", "crash-exit=journal.rotate", 1);
  EXPECT_TRUE(io::LoadFaultPlanFromEnv());
  ::setenv("RECEIPT_FAULT_PLAN", "crash-exit=journal.rotate:0", 1);
  EXPECT_FALSE(io::LoadFaultPlanFromEnv());
  ::unsetenv("RECEIPT_FAULT_PLAN");
  EXPECT_TRUE(io::LoadFaultPlanFromEnv());  // unset disarms
  EXPECT_FALSE(io::Halted());
}

// ---------------------------------------------------------------------------
// Journal framing, rotation, torn tails, corruption
// ---------------------------------------------------------------------------

TEST(Journal, AppendScanRoundTrip) {
  TempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  {
    std::unique_ptr<Journal> journal = Journal::Open(options, &error);
    ASSERT_NE(journal, nullptr) << error;

    JournalRecord reg;
    reg.type = JournalRecord::Type::kRegister;
    reg.graph = "g";
    reg.epoch = 1;
    reg.num_u = 4;
    reg.num_v = 3;
    reg.edges = {{0, 0}, {1, 2}, {3, 1}};
    ASSERT_TRUE(journal->Append(reg, &error)) << error;
    ASSERT_TRUE(journal->Append(
        BatchRecord("g", 1, {{true, 2, 2}, {false, 0, 0}}), &error));
    JournalRecord seal;
    seal.type = JournalRecord::Type::kSeal;
    seal.graph = "g";
    seal.epoch = 1;
    seal.new_epoch = 2;
    ASSERT_TRUE(journal->Append(seal, &error)) << error;
    JournalRecord unreg;
    unreg.type = JournalRecord::Type::kUnregister;
    unreg.graph = "g";
    ASSERT_TRUE(journal->Append(unreg, &error)) << error;
    EXPECT_EQ(journal->stats().appends, 4u);
  }

  std::vector<JournalRecord> records;
  std::vector<JournalLsn> lsns;
  JournalScanResult scan;
  ASSERT_TRUE(ScanJournal(
      dir.path(),
      [&](const JournalRecord& r, const JournalLsn& lsn) {
        records.push_back(r);
        lsns.push_back(lsn);
        return true;
      },
      &scan, &error))
      << error;
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(scan.records, 4u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(records[0].type, JournalRecord::Type::kRegister);
  EXPECT_EQ(records[0].num_u, 4u);
  EXPECT_EQ(records[0].num_v, 3u);
  ASSERT_EQ(records[0].edges.size(), 3u);
  EXPECT_EQ(records[0].edges[1], (Edge{1, 2}));
  EXPECT_EQ(records[1].type, JournalRecord::Type::kEdgeBatch);
  ASSERT_EQ(records[1].updates.size(), 2u);
  EXPECT_TRUE(records[1].updates[0].insert);
  EXPECT_FALSE(records[1].updates[1].insert);
  EXPECT_EQ(records[2].new_epoch, 2u);
  EXPECT_EQ(records[3].type, JournalRecord::Type::kUnregister);
  EXPECT_TRUE(std::is_sorted(lsns.begin(), lsns.end()));
}

TEST(Journal, RotationAndSegmentDrop) {
  TempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  options.segment_bytes = 256;  // force rotation every couple of records
  options.fsync = FsyncPolicy::kOff;
  std::string error;
  std::unique_ptr<Journal> journal = Journal::Open(options, &error);
  ASSERT_NE(journal, nullptr) << error;
  for (int i = 0; i < 20; ++i) {
    std::vector<EdgeOp> ops(8, EdgeOp{true, static_cast<uint32_t>(i), 0});
    ASSERT_TRUE(journal->Append(BatchRecord("g", 1, ops), &error)) << error;
  }
  const JournalStats mid = journal->stats();
  EXPECT_GT(mid.rotations, 0u);
  EXPECT_GT(io::ListDir(dir.path(), nullptr).size(), 1u);

  // Dropping below the active segment removes the sealed prefix; the scan
  // over what remains still succeeds (contiguous suffix).
  journal->DropSegmentsBelow(mid.current_segment);
  EXPECT_GT(journal->stats().segments_dropped, 0u);
  size_t suffix_records = 0;
  JournalScanResult scan;
  ASSERT_TRUE(ScanJournal(
      dir.path(),
      [&](const JournalRecord&, const JournalLsn& lsn) {
        EXPECT_GE(lsn.segment, mid.current_segment);
        ++suffix_records;
        return true;
      },
      &scan, &error))
      << error;
  EXPECT_LT(suffix_records, 20u);
}

TEST(Journal, TornTailTruncatedOnScan) {
  TempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  std::string segment_path;
  {
    std::unique_ptr<Journal> journal = Journal::Open(options, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 1, 1}}), &error));
    ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 2, 2}}), &error));
    const std::vector<std::string> names = io::ListDir(dir.path(), nullptr);
    ASSERT_EQ(names.size(), 1u);
    segment_path = dir.path() + "/" + names[0];
  }
  // Simulate a crash mid-append: a frame header that promises more payload
  // than the file holds.
  {
    std::ofstream torn(segment_path, std::ios::binary | std::ios::app);
    const uint32_t promised_len = 1000;
    torn.write(reinterpret_cast<const char*>(&promised_len), 4);
    torn.write("\xde\xad\xbe\xef partial", 12);
  }
  const uint64_t torn_size = std::filesystem::file_size(segment_path);

  size_t records = 0;
  JournalScanResult scan;
  ASSERT_TRUE(ScanJournal(
      dir.path(),
      [&](const JournalRecord&, const JournalLsn&) {
        ++records;
        return true;
      },
      &scan, &error))
      << error;
  EXPECT_EQ(records, 2u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_GT(scan.torn_bytes, 0u);
  // The torn bytes were cut away in place: the next scan is clean.
  EXPECT_LT(std::filesystem::file_size(segment_path), torn_size);
  JournalScanResult rescan;
  ASSERT_TRUE(ScanJournal(
      dir.path(), [](const JournalRecord&, const JournalLsn&) { return true; },
      &rescan, &error))
      << error;
  EXPECT_FALSE(rescan.torn_tail);
  EXPECT_EQ(rescan.records, 2u);
}

TEST(Journal, CorruptCrcRejected) {
  TempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  std::string segment_path;
  {
    std::unique_ptr<Journal> journal = Journal::Open(options, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 1, 1}}), &error));
    segment_path =
        dir.path() + "/" + io::ListDir(dir.path(), nullptr).front();
  }
  // Flip one byte of the record payload (the last byte of the file): the
  // frame is complete, so this is corruption, not a torn tail.
  std::fstream file(segment_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(-1, std::ios::end);
  char byte;
  file.get(byte);
  file.seekp(-1, std::ios::end);
  file.put(static_cast<char>(byte ^ 0x40));
  file.close();

  JournalScanResult scan;
  EXPECT_FALSE(ScanJournal(
      dir.path(), [](const JournalRecord&, const JournalLsn&) { return true; },
      &scan, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(Journal, VersionMismatchRefused) {
  TempDir dir;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  std::string segment_path;
  {
    std::unique_ptr<Journal> journal = Journal::Open(options, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 1, 1}}), &error));
    segment_path =
        dir.path() + "/" + io::ListDir(dir.path(), nullptr).front();
  }
  // The version field sits right after the 8-byte magic.
  std::fstream file(segment_path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(8);
  const uint32_t future_version = 99;
  file.write(reinterpret_cast<const char*>(&future_version), 4);
  file.close();

  JournalScanResult scan;
  EXPECT_FALSE(ScanJournal(
      dir.path(), [](const JournalRecord&, const JournalLsn&) { return true; },
      &scan, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Injected IO failures against the journal's fail-stop contract
// ---------------------------------------------------------------------------

TEST(Journal, InjectedWriteFailureLeavesAckedPrefix) {
  TempDir dir;
  FaultGuard guard;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  std::unique_ptr<Journal> journal = Journal::Open(options, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 1, 1}}), &error));

  // Fail the next record's write cleanly (nothing hits the disk). The
  // journal rolls back and stays usable.
  io::FaultPlan plan;
  plan.fail_write_at = 1;
  io::SetFaultPlan(plan);
  EXPECT_FALSE(journal->Append(BatchRecord("g", 1, {{true, 2, 2}}), &error));
  io::ClearFaultPlan();
  EXPECT_FALSE(journal->stats().broken);
  ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 3, 3}}), &error))
      << error;
  journal.reset();

  std::vector<uint32_t> seen;
  JournalScanResult scan;
  ASSERT_TRUE(ScanJournal(
      dir.path(),
      [&](const JournalRecord& r, const JournalLsn&) {
        seen.push_back(r.updates.at(0).u);
        return true;
      },
      &scan, &error))
      << error;
  // Exactly the acknowledged records — the failed one left no trace.
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 3}));
}

TEST(Journal, TornWriteWithHaltBreaksJournal) {
  TempDir dir;
  FaultGuard guard;
  JournalOptions options;
  options.dir = dir.path();
  std::string error;
  std::unique_ptr<Journal> journal = Journal::Open(options, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_TRUE(journal->Append(BatchRecord("g", 1, {{true, 1, 1}}), &error));

  // A torn write whose cleanup truncate also fails (the disk died): the
  // journal must go fail-stop, refusing every later append.
  io::FaultPlan plan;
  plan.fail_write_at = 1;
  plan.short_write_bytes = 6;
  plan.halt_on_write_failure = true;
  io::SetFaultPlan(plan);
  EXPECT_FALSE(journal->Append(BatchRecord("g", 1, {{true, 2, 2}}), &error));
  EXPECT_TRUE(journal->stats().broken);
  io::ClearFaultPlan();
  EXPECT_FALSE(journal->Append(BatchRecord("g", 1, {{true, 3, 3}}), &error));
  EXPECT_NE(error.find("broken"), std::string::npos) << error;
  journal.reset();

  // Recovery still reads the acked prefix: the torn bytes are a tail cut.
  std::vector<uint32_t> seen;
  JournalScanResult scan;
  ASSERT_TRUE(ScanJournal(
      dir.path(),
      [&](const JournalRecord& r, const JournalLsn&) {
        seen.push_back(r.updates.at(0).u);
        return true;
      },
      &scan, &error))
      << error;
  EXPECT_EQ(seen, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(scan.torn_tail);
}

// ---------------------------------------------------------------------------
// Snapshot format
// ---------------------------------------------------------------------------

SnapshotData SampleSnapshot() {
  SnapshotData data;
  data.graph = "g one/two";  // exercises name sanitization
  data.epoch = 7;
  data.covered_segment = 3;
  data.covered_offset = 1234;
  data.num_u = 5;
  data.num_v = 4;
  data.edges = {{0, 0}, {1, 3}, {4, 2}};
  data.pending = {{true, 2, 2}, {false, 0, 0}};
  SnapshotConfig config;
  config.kind = 0;
  config.partitions = 8;
  config.numbers = {0, 3, 1, 4, 1};
  config.bounds = {0, 2, 4};
  config.old_support = {5, 9, 2, 6, 5};
  data.configs.push_back(config);
  return data;
}

void ExpectSnapshotEq(const SnapshotData& a, const SnapshotData& b) {
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.covered_segment, b.covered_segment);
  EXPECT_EQ(a.covered_offset, b.covered_offset);
  EXPECT_EQ(a.num_u, b.num_u);
  EXPECT_EQ(a.num_v, b.num_v);
  EXPECT_EQ(a.edges, b.edges);
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (size_t i = 0; i < a.pending.size(); ++i) {
    EXPECT_EQ(a.pending[i].insert, b.pending[i].insert);
    EXPECT_EQ(a.pending[i].u, b.pending[i].u);
    EXPECT_EQ(a.pending[i].v, b.pending[i].v);
  }
  ASSERT_EQ(a.configs.size(), b.configs.size());
  for (size_t i = 0; i < a.configs.size(); ++i) {
    EXPECT_EQ(a.configs[i].kind, b.configs[i].kind);
    EXPECT_EQ(a.configs[i].partitions, b.configs[i].partitions);
    EXPECT_EQ(a.configs[i].numbers, b.configs[i].numbers);
    EXPECT_EQ(a.configs[i].bounds, b.configs[i].bounds);
    EXPECT_EQ(a.configs[i].old_support, b.configs[i].old_support);
  }
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  const SnapshotData data = SampleSnapshot();
  const std::string bytes = EncodeSnapshot(data);
  SnapshotData decoded;
  std::string error;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded, &error)) << error;
  ExpectSnapshotEq(data, decoded);
}

TEST(Snapshot, CorruptionAndVersionRefused) {
  const std::string bytes = EncodeSnapshot(SampleSnapshot());
  SnapshotData decoded;
  std::string error;

  std::string flipped = bytes;
  flipped[flipped.size() - 3] ^= 0x01;
  EXPECT_FALSE(DecodeSnapshot(flipped, &decoded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  std::string future = bytes;
  future[8] = 42;  // version field follows the 8-byte magic
  EXPECT_FALSE(DecodeSnapshot(future, &decoded, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() / 2), &decoded,
                              &error));
  EXPECT_FALSE(DecodeSnapshot("", &decoded, &error));
}

TEST(Snapshot, FileInstallRoundTripAndSanitizedNames) {
  TempDir dir;
  const SnapshotData data = SampleSnapshot();
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), data, &error)) << error;
  const std::string path = SnapshotPath(dir.path(), data.graph);
  ASSERT_TRUE(io::FileExists(path));
  // The sanitized file name never contains the raw space or slash.
  EXPECT_EQ(path.find(' ', dir.path().size()), std::string::npos);
  EXPECT_EQ(path.find('/', dir.path().size() + 1), std::string::npos);
  EXPECT_NE(SanitizeSnapshotName("a/b"), SanitizeSnapshotName("a_b"));

  std::string bytes;
  ASSERT_TRUE(io::ReadFileBytes(path, &bytes, &error)) << error;
  SnapshotData decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded, &error)) << error;
  ExpectSnapshotEq(data, decoded);
}

TEST(Snapshot, FailedRenameLeavesPreviousSnapshot) {
  TempDir dir;
  FaultGuard guard;
  SnapshotData data = SampleSnapshot();
  std::string error;
  ASSERT_TRUE(WriteSnapshotFile(dir.path(), data, &error)) << error;

  // The replacement write dies at the rename: the installed file must
  // still be the previous complete snapshot.
  data.epoch = 8;
  io::FaultPlan plan;
  plan.fail_rename_at = 1;
  io::SetFaultPlan(plan);
  EXPECT_FALSE(WriteSnapshotFile(dir.path(), data, &error));
  io::ClearFaultPlan();

  std::string bytes;
  ASSERT_TRUE(io::ReadFileBytes(SnapshotPath(dir.path(), data.graph), &bytes,
                                &error));
  SnapshotData decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded, &error)) << error;
  EXPECT_EQ(decoded.epoch, 7u);
}

// ---------------------------------------------------------------------------
// Recovery through the live serving stack
// ---------------------------------------------------------------------------

/// Registry + cache + live manager + durability, the way the service wires
/// them, but owned directly so tests can tear the stack down (the "crash")
/// and recover into a fresh one.
struct DurableStack {
  explicit DurableStack(const std::string& data_dir,
                        const LiveOptions& live_options = {}) {
    cache = std::make_unique<service::ResultCache>(size_t{64} << 20);
    obs = std::make_unique<obs::Observability>();
    live = std::make_unique<LiveGraphManager>(registry, *cache, live_options,
                                              *obs);
    DurabilityOptions options;
    options.data_dir = data_dir;
    durability = OpenWithRecovery(options, registry, *live, obs.get(),
                                  &report, &error);
  }

  /// What the service's RegisterGraph does: allocate, journal, install.
  uint64_t Register(const std::string& name, const BipartiteGraph& graph) {
    const uint64_t epoch = registry.AllocateEpoch();
    std::string log_error;
    EXPECT_TRUE(durability->LogRegister(name, epoch, graph.num_u(),
                                        graph.num_v(), graph.ToEdges(),
                                        &log_error))
        << log_error;
    registry.RegisterAtEpoch(name, graph, epoch);
    return epoch;
  }

  /// The graph's logical edge set: registered edges folded with pending.
  std::vector<Edge> LogicalEdges(const std::string& name) {
    std::set<Edge> edges;
    for (const Edge& edge : registry.Acquire(name).graph().ToEdges()) {
      edges.insert(edge);
    }
    // Seal the pending buffer instead of reimplementing the fold: an empty
    // forced ApplyEdges folds exactly the recovered buffer.
    service::ApplyResult folded =
        live->ApplyEdges(name, {}, /*force_seal=*/true);
    EXPECT_EQ(folded.status, service::Status::kOk) << folded.error;
    if (folded.sealed) {
      edges.clear();
      for (const Edge& edge : registry.Acquire(name).graph().ToEdges()) {
        edges.insert(edge);
      }
    }
    return {edges.begin(), edges.end()};
  }

  service::GraphRegistry registry;
  std::unique_ptr<service::ResultCache> cache;
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<LiveGraphManager> live;
  std::unique_ptr<DurabilityManager> durability;
  RecoveryReport report;
  std::string error;
};

TEST(Recovery, FreshStartOnEmptyAndMissingDir) {
  TempDir dir;
  {
    DurableStack stack(dir.path() + "/never_created");
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    EXPECT_TRUE(stack.report.fresh_start);
    EXPECT_EQ(stack.registry.size(), 0u);
  }
  {
    ASSERT_TRUE(io::EnsureDir(dir.path() + "/empty", nullptr));
    DurableStack stack(dir.path() + "/empty");
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    EXPECT_TRUE(stack.report.fresh_start);
  }
}

TEST(Recovery, RestoresGraphEpochAndPendingBitIdentical) {
  TempDir dir;
  const BipartiteGraph initial = ChungLuBipartite(60, 50, 260, 0.6, 0.6, 7);
  const LiveConfig config{RequestKind::kTipU, 16};
  std::vector<EdgeUpdate> sealed_batch = {{true, 3, 7},  {true, 10, 11},
                                          {false, 0, 0}, {true, 42, 13}};
  std::vector<EdgeUpdate> pending_batch = {{true, 5, 5}, {false, 3, 7}};
  uint64_t epoch_before_crash = 0;

  {
    DurableStack stack(dir.path());
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    stack.Register("g", initial);
    ASSERT_EQ(stack.live->Track("g", config, 2, nullptr),
              service::Status::kOk);
    // One sealed batch (journals batch + seal, snapshots on seal), then one
    // acked-but-unsealed batch that only the journal holds.
    service::ApplyResult sealed =
        stack.live->ApplyEdges("g", sealed_batch, /*force_seal=*/true, 2);
    ASSERT_EQ(sealed.status, service::Status::kOk) << sealed.error;
    ASSERT_TRUE(sealed.sealed);
    service::ApplyResult buffered =
        stack.live->ApplyEdges("g", pending_batch, /*force_seal=*/false, 2);
    ASSERT_EQ(buffered.status, service::Status::kOk) << buffered.error;
    EXPECT_EQ(buffered.pending, pending_batch.size());
    epoch_before_crash = stack.registry.Acquire("g").epoch();
  }  // crash: the stack dies with a batch still buffered

  DurableStack recovered(dir.path());
  ASSERT_NE(recovered.durability, nullptr) << recovered.error;
  EXPECT_FALSE(recovered.report.fresh_start);
  EXPECT_EQ(recovered.report.graphs_recovered, 1u);
  ASSERT_TRUE(static_cast<bool>(recovered.registry.Acquire("g")));
  // Same epoch chain as the never-crashed process.
  EXPECT_EQ(recovered.registry.Acquire("g").epoch(), epoch_before_crash);
  // The acked-but-unsealed batch survived.
  EXPECT_EQ(recovered.live->PendingEdges("g"), pending_batch.size());

  // Build the never-crashed oracle and compare final states bit-identically:
  // same logical edge set, and — after sealing the recovered buffer — the
  // same decomposition numbers from the engine.
  TempDir oracle_dir;
  DurableStack oracle(oracle_dir.path());
  oracle.Register("g", initial);
  ASSERT_EQ(oracle.live->Track("g", config, 2, nullptr), service::Status::kOk);
  ASSERT_EQ(
      oracle.live->ApplyEdges("g", sealed_batch, true, 2).status,
      service::Status::kOk);
  ASSERT_EQ(
      oracle.live->ApplyEdges("g", pending_batch, false, 2).status,
      service::Status::kOk);

  EXPECT_EQ(recovered.LogicalEdges("g"), oracle.LogicalEdges("g"));
  const BipartiteGraph& recovered_graph =
      recovered.registry.Acquire("g").graph();
  const BipartiteGraph& oracle_graph = oracle.registry.Acquire("g").graph();
  TipOptions tip_options;
  tip_options.num_threads = 2;
  tip_options.num_partitions = static_cast<int>(config.partitions);
  EXPECT_EQ(ReceiptDecompose(recovered_graph, tip_options).tip_numbers,
            ReceiptDecompose(oracle_graph, tip_options).tip_numbers);
}

TEST(Recovery, UnregisterReplayedAndIdempotentReRecovery) {
  TempDir dir;
  const BipartiteGraph keep = ChungLuBipartite(40, 30, 120, 0.5, 0.5, 3);
  const BipartiteGraph drop = ChungLuBipartite(20, 20, 60, 0.5, 0.5, 4);
  {
    DurableStack stack(dir.path());
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    stack.Register("keep", keep);
    stack.Register("drop", drop);
    std::string error;
    ASSERT_TRUE(stack.durability->LogUnregister("drop", &error)) << error;
    stack.registry.Evict("drop");
    stack.live->DropState("drop");
  }
  // Recovery is read-only apart from tail truncation and temp-file cleanup,
  // so recovering the same directory twice yields the same state.
  for (int round = 0; round < 2; ++round) {
    DurableStack recovered(dir.path());
    ASSERT_NE(recovered.durability, nullptr) << recovered.error;
    EXPECT_TRUE(static_cast<bool>(recovered.registry.Acquire("keep")));
    EXPECT_FALSE(static_cast<bool>(recovered.registry.Acquire("drop")));
    EXPECT_EQ(recovered.registry.Acquire("keep").graph().num_edges(),
              keep.num_edges());
  }
}

TEST(Recovery, EpochChainBreakRefused) {
  TempDir dir;
  {
    DurableStack stack(dir.path());
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    stack.Register("g", BipartiteGraph::FromEdges(4, 4, {{0, 0}, {1, 1}}));
    // Journal a batch claiming an epoch the chain never reaches: replay
    // must refuse rather than guess.
    std::string error;
    const std::vector<EdgeOp> ops = {{true, 2, 2}};
    ASSERT_TRUE(stack.durability->LogEdgeBatch("g", /*epoch=*/99, ops, &error))
        << error;
  }
  DurableStack recovered(dir.path());
  EXPECT_EQ(recovered.durability, nullptr);
  EXPECT_NE(recovered.error.find("epoch"), std::string::npos)
      << recovered.error;
}

TEST(Recovery, AdminSnapshotCoversPendingAndTruncatesReplay) {
  TempDir dir;
  const BipartiteGraph graph = ChungLuBipartite(40, 30, 150, 0.5, 0.5, 9);
  {
    DurableStack stack(dir.path());
    ASSERT_NE(stack.durability, nullptr) << stack.error;
    stack.Register("g", graph);
    std::vector<EdgeUpdate> batch = {{true, 1, 2}, {true, 3, 4}};
    ASSERT_EQ(stack.live->ApplyEdges("g", batch, false).status,
              service::Status::kOk);
    std::string error;
    ASSERT_EQ(stack.live->SnapshotNow("g", &error), service::Status::kOk)
        << error;
  }
  DurableStack recovered(dir.path());
  ASSERT_NE(recovered.durability, nullptr) << recovered.error;
  EXPECT_EQ(recovered.report.snapshots_loaded, 1u);
  // Everything before the snapshot replays as a skip, not a re-apply.
  EXPECT_EQ(recovered.report.batches_replayed, 0u);
  EXPECT_GT(recovered.report.records_skipped, 0u);
  EXPECT_EQ(recovered.live->PendingEdges("g"), 2u);
}

// ---------------------------------------------------------------------------
// The property: randomized crashes under churn never lose an acked batch
// ---------------------------------------------------------------------------

/// Folds batches[0..count) over the initial edge set.
std::vector<Edge> OracleEdges(const BipartiteGraph& initial,
                              const std::vector<std::vector<EdgeUpdate>>& batches,
                              size_t count) {
  std::set<Edge> edges;
  for (const Edge& edge : initial.ToEdges()) edges.insert(edge);
  for (size_t i = 0; i < count; ++i) {
    for (const EdgeUpdate& update : batches[i]) {
      if (update.insert) {
        edges.insert(Edge{update.u, update.v});
      } else {
        edges.erase(Edge{update.u, update.v});
      }
    }
  }
  return {edges.begin(), edges.end()};
}

TEST(CrashProperty, AckedBatchesSurviveAnyInjectedCrash) {
  struct Scenario {
    const char* site;   // crash-halt site, or nullptr for a torn write
    uint64_t at;        // 1-based hit count
    uint64_t short_bytes = 0;
  };
  const Scenario scenarios[] = {
      {"journal.append.pre-write", 3},
      {"journal.append.pre-fsync", 2},
      {"journal.append.pre-fsync", 5},
      {"journal.rotate", 1},
      {"journal.truncate", 1},
      {"snapshot.rename", 1},
      {nullptr, 4, 10},  // torn write + dead disk mid-churn
      {nullptr, 7, 3},
  };

  for (size_t scenario_index = 0; scenario_index < std::size(scenarios);
       ++scenario_index) {
    const Scenario& scenario = scenarios[scenario_index];
    SCOPED_TRACE(::testing::Message()
                 << "scenario " << scenario_index << " site="
                 << (scenario.site ? scenario.site : "torn-write")
                 << " at=" << scenario.at);
    TempDir dir;
    FaultGuard guard;
    std::mt19937_64 rng(1000 + scenario_index);
    const BipartiteGraph initial =
        ChungLuBipartite(50, 40, 200, 0.6, 0.6, 21 + scenario_index);

    // Pre-draw the whole batch stream so the oracle can replay any prefix.
    std::vector<std::vector<EdgeUpdate>> batches;
    for (int b = 0; b < 12; ++b) {
      std::vector<EdgeUpdate> batch;
      for (int i = 0; i < 6; ++i) {
        batch.push_back(EdgeUpdate{(rng() % 3) != 0,
                                   static_cast<VertexId>(rng() % 50),
                                   static_cast<VertexId>(rng() % 40)});
      }
      batches.push_back(std::move(batch));
    }

    size_t acked = 0;
    size_t attempted = 0;
    {
      LiveOptions live_options;
      live_options.seal_threads = 2;
      // Small journal segments so rotation sites are actually reachable.
      DurableStack stack(dir.path(), live_options);
      ASSERT_NE(stack.durability, nullptr) << stack.error;
      stack.Register("g", initial);
      ASSERT_EQ(stack.live->Track("g", LiveConfig{RequestKind::kTipU, 8}, 2,
                                  nullptr),
                service::Status::kOk);

      io::FaultPlan plan;
      if (scenario.site != nullptr) {
        plan.crash_site = scenario.site;
        plan.crash_at = scenario.at;
      } else {
        plan.fail_write_at = scenario.at;
        plan.short_write_bytes = scenario.short_bytes;
        plan.halt_on_write_failure = true;
      }
      io::SetFaultPlan(plan);

      for (size_t b = 0; b < batches.size(); ++b) {
        attempted = b + 1;
        const bool seal = (b % 3) == 2;  // seal every third batch
        const service::ApplyResult result =
            stack.live->ApplyEdges("g", batches[b], seal, 2);
        if (result.status == service::Status::kOk) {
          acked = b + 1;
        } else {
          ASSERT_EQ(result.status, service::Status::kShutdown)
              << result.error;
          break;  // the simulated disk is gone; the process "crashes" here
        }
      }
      io::ClearFaultPlan();
    }  // crash

    DurableStack recovered(dir.path());
    ASSERT_NE(recovered.durability, nullptr) << recovered.error;
    const std::vector<Edge> state = recovered.LogicalEdges("g");

    // The invariant: the recovered logical edge set is the fold of some
    // acknowledged-or-better prefix — at least every acked batch, at most
    // the one additionally written-but-unacked batch.
    bool matched = false;
    for (size_t k = acked; k <= attempted && !matched; ++k) {
      matched = state == OracleEdges(initial, batches, k);
    }
    EXPECT_TRUE(matched)
        << "recovered state matches no prefix in [" << acked << ", "
        << attempted << "]";
  }
}

// ---------------------------------------------------------------------------
// Service-level restart: the full stack, including cache priming
// ---------------------------------------------------------------------------

TEST(ServiceRestart, RecoveredServiceAnswersBitIdentically) {
  TempDir dir;
  service::Request request;
  request.graph = "g";
  request.kind = RequestKind::kTipU;
  request.algorithm = service::Algorithm::kReceipt;
  request.partitions = 8;
  request.threads = 2;

  std::vector<Count> before;
  uint64_t epoch_before = 0;
  {
    service::GraphRegistry registry;
    service::ServiceOptions options;
    options.num_workers = 1;
    options.data_dir = dir.path();
    service::DecompositionService service(registry, options);
    ASSERT_TRUE(service.durability_error().empty())
        << service.durability_error();
    ASSERT_TRUE(service.durable());

    std::string error;
    ASSERT_EQ(service.RegisterGraph(
                  "g", ChungLuBipartite(60, 50, 240, 0.6, 0.6, 13), nullptr,
                  &error),
              service::Status::kOk)
        << error;
    std::vector<EdgeUpdate> batch = {{true, 7, 7}, {true, 8, 9}, {false, 0, 0}};
    const LiveConfig track[] = {{RequestKind::kTipU, 8}};
    const service::ApplyResult applied =
        service.live().ApplyEdges("g", batch, /*force_seal=*/true, 2, track);
    ASSERT_EQ(applied.status, service::Status::kOk) << applied.error;
    ASSERT_TRUE(applied.sealed);

    const service::Response response = service.Execute(request);
    ASSERT_EQ(response.status, service::Status::kOk) << response.error;
    before = response.payload->numbers;
    epoch_before = response.graph_epoch;
    service.Shutdown();
  }  // "crash" (destructor; the journal and snapshot are already durable)

  service::GraphRegistry registry;
  service::ServiceOptions options;
  options.num_workers = 1;
  options.data_dir = dir.path();
  service::DecompositionService service(registry, options);
  ASSERT_TRUE(service.durability_error().empty())
      << service.durability_error();
  EXPECT_FALSE(service.recovery_report().fresh_start);

  const service::Response response = service.Execute(request);
  ASSERT_EQ(response.status, service::Status::kOk) << response.error;
  EXPECT_EQ(response.graph_epoch, epoch_before);
  EXPECT_EQ(response.payload->numbers, before);
  // The snapshot restored the sealed baseline's numbers into the cache:
  // answering must not have needed an engine run.
  EXPECT_TRUE(response.cache_hit);
}

}  // namespace
}  // namespace receipt::durability
