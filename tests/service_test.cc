// Tests for the decomposition service layer: registry epochs and handle
// lifetimes, request execution correctness under concurrency, result
// caching, coalescing, same-graph batching, cross-request workspace reuse,
// cancellation, and shutdown semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/peel_control.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "service/result_cache.h"
#include "tip/bup.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt::service {
namespace {

BipartiteGraph G1() { return ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 101); }
BipartiteGraph G2() { return ChungLuBipartite(220, 260, 1200, 0.5, 0.8, 202); }

Request MakeRequest(const std::string& graph, RequestKind kind,
                    Algorithm algorithm, int partitions = 6,
                    int threads = 2) {
  Request request;
  request.graph = graph;
  request.kind = kind;
  request.algorithm = algorithm;
  request.partitions = partitions;
  request.threads = threads;
  return request;
}

TEST(GraphRegistryTest, SurfacesLoadErrorsCleanly) {
  GraphRegistry registry;
  std::string error;

  EXPECT_FALSE(registry.LoadFile("missing", "/nonexistent/g.konect", &error));
  EXPECT_NE(error.find("/nonexistent/g.konect"), std::string::npos) << error;

  const std::string malformed = testing::TempDir() + "/malformed.konect";
  {
    std::ofstream out(malformed);
    out << "1 1\nnot-a-number 2\n";
  }
  EXPECT_FALSE(registry.LoadFile("bad", malformed, &error));
  EXPECT_NE(error.find("malformed line"), std::string::npos) << error;

  const std::string empty = testing::TempDir() + "/zero.bin";
  { std::ofstream out(empty); }
  EXPECT_FALSE(registry.LoadFile("empty", empty, &error));
  EXPECT_NE(error.find("empty file"), std::string::npos) << error;

  // Failed loads leave the registry untouched.
  EXPECT_EQ(registry.size(), 0u);

  const std::string good = testing::TempDir() + "/good.konect";
  ASSERT_TRUE(SaveKonect(G1(), good));
  ASSERT_TRUE(registry.LoadFile("g1", good, &error)) << error;
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.Acquire("g1"));
}

TEST(GraphRegistryTest, HandleKeepsGraphAliveThroughEviction) {
  GraphRegistry registry;
  const uint64_t epoch1 = registry.Register("g", G1());
  GraphHandle handle = registry.Acquire("g");
  ASSERT_TRUE(handle);
  EXPECT_EQ(handle.epoch(), epoch1);

  ASSERT_TRUE(registry.Evict("g"));
  EXPECT_FALSE(registry.Acquire("g"));
  EXPECT_FALSE(registry.Evict("g"));

  // The held handle still pins a fully usable graph.
  EXPECT_TRUE(handle.graph().Validate().empty());
  TipOptions options;
  options.num_threads = 1;
  const TipResult result = BupDecompose(handle.graph(), options);
  EXPECT_EQ(result.tip_numbers.size(), handle.graph().num_u());

  // Re-registration installs a fresh epoch; the old handle is unaffected.
  const uint64_t epoch2 = registry.Register("g", G2());
  EXPECT_GT(epoch2, epoch1);
  EXPECT_EQ(handle.epoch(), epoch1);
}

TEST(ResultCacheTest, LruEvictionUnderByteBudget) {
  auto make_payload = [](size_t n) {
    auto payload = std::make_shared<Payload>();
    payload->numbers.assign(n, 7);
    return payload;
  };
  const size_t one = make_payload(100)->ApproxBytes();
  ResultCache cache(2 * one);

  const CacheKey a{"g", 1, RequestKind::kTipU, Algorithm::kReceipt, 6};
  const CacheKey b{"g", 2, RequestKind::kTipU, Algorithm::kReceipt, 6};
  const CacheKey c{"g", 3, RequestKind::kTipU, Algorithm::kReceipt, 6};
  cache.Put(a, make_payload(100));
  cache.Put(b, make_payload(100));
  EXPECT_NE(cache.Get(a), nullptr);  // promotes a over b
  cache.Put(c, make_payload(100));   // evicts b, the LRU entry
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_NE(cache.Get(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 2 * one);

  ResultCache disabled(0);
  disabled.Put(a, make_payload(10));
  EXPECT_EQ(disabled.Get(a), nullptr);
  EXPECT_EQ(disabled.stats().entries, 0u);
}

TEST(DecompositionServiceTest, ConcurrentMixedRequestsMatchDirectDrivers) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  registry.Register("g2", G2());

  TipOptions direct;
  direct.num_threads = 2;
  direct.num_partitions = 6;
  const std::vector<Count> tip_u_g1 =
      ReceiptDecompose(G1(), direct).tip_numbers;
  direct.side = Side::kV;
  const std::vector<Count> tip_v_g2 =
      ReceiptDecompose(G2(), direct).tip_numbers;
  ReceiptWingOptions wing_direct;
  wing_direct.num_threads = 2;
  wing_direct.num_partitions = 4;
  const std::vector<Count> wing_g1 =
      ReceiptWingDecompose(G1(), wing_direct).wing_numbers;
  const std::vector<Count> wing_g2 = WingDecompose(G2(), 2).wing_numbers;

  ServiceOptions service_options;
  service_options.num_workers = 3;
  DecompositionService service(registry, service_options);

  struct Check {
    Request request;
    const std::vector<Count>* expected;
  };
  const std::vector<Check> checks = {
      {MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt), &tip_u_g1},
      {MakeRequest("g1", RequestKind::kTipU, Algorithm::kBup), &tip_u_g1},
      {MakeRequest("g1", RequestKind::kTipU, Algorithm::kParb), &tip_u_g1},
      {MakeRequest("g2", RequestKind::kTipV, Algorithm::kReceipt), &tip_v_g2},
      {MakeRequest("g1", RequestKind::kWing, Algorithm::kReceiptWing, 4),
       &wing_g1},
      {MakeRequest("g2", RequestKind::kWing, Algorithm::kWingBup, 4),
       &wing_g2},
  };

  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&checks, &service, &failures, c] {
      for (size_t i = 0; i < checks.size(); ++i) {
        const Check& check = checks[(i + static_cast<size_t>(c)) %
                                    checks.size()];
        const Response response = service.Execute(check.request);
        if (response.status != Status::kOk || response.payload == nullptr ||
            response.payload->numbers != *check.expected) {
          ++failures;
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  // Every distinct request ran the engine exactly once; all repeats were
  // coalesced with an in-flight twin or served from the cache.
  EXPECT_EQ(service.stats().engine_runs, checks.size());
  EXPECT_EQ(service.stats().submitted,
            static_cast<uint64_t>(kClients * checks.size()));
}

TEST(DecompositionServiceTest, RepeatedRequestServedFromCache) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  DecompositionService service(registry, {.num_workers = 1});

  const Request request =
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt);
  const Response first = service.Execute(request);
  ASSERT_EQ(first.status, Status::kOk);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(service.stats().engine_runs, 1u);
  const uint64_t wedges = first.payload->stats.TotalWedges();
  EXPECT_GT(wedges, 0u);

  const Response second = service.Execute(request);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_TRUE(second.cache_hit);
  // The engine did not run again: no new run counted, and the payload —
  // wedge counters included — is the very object the first run produced.
  EXPECT_EQ(service.stats().engine_runs, 1u);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(second.payload->stats.TotalWedges(), wedges);
  EXPECT_GE(service.cache_stats().hits, 1u);
}

TEST(DecompositionServiceTest, PartitionAgnosticAlgorithmsShareCacheEntries) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  DecompositionService service(registry, {.num_workers = 0});

  // BUP ignores `partitions`, so the key must too: any value hits the
  // entry the first run produced.
  const Response first = service.Execute(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kBup, 8));
  ASSERT_EQ(first.status, Status::kOk);
  const Response second = service.Execute(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kBup, 150));
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(service.stats().engine_runs, 1u);
}

TEST(DecompositionServiceTest, CacheIsKeyedByGraphEpoch) {
  GraphRegistry registry;
  registry.Register("g", G1());
  DecompositionService service(registry, {.num_workers = 1});

  const Request request =
      MakeRequest("g", RequestKind::kTipU, Algorithm::kReceipt);
  const Response first = service.Execute(request);
  ASSERT_EQ(first.status, Status::kOk);

  // Same name, new registration: the old epoch's cache entry must not
  // serve the new graph.
  registry.Register("g", G2());
  const Response second = service.Execute(request);
  ASSERT_EQ(second.status, Status::kOk);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_NE(second.graph_epoch, first.graph_epoch);
  EXPECT_EQ(service.stats().engine_runs, 2u);
  EXPECT_EQ(second.payload->numbers.size(), G2().num_u());
}

TEST(DecompositionServiceTest, EvictedGraphRejectedButHeldRequestsFinish) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  // No background workers: queued tasks hold their handles across the
  // eviction below and only execute afterwards — deterministically.
  ServiceOptions service_options;
  service_options.num_workers = 0;
  DecompositionService service(registry, service_options);

  auto future = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt));
  ASSERT_TRUE(registry.Evict("g1"));

  // New submits fail fast; the queued request still owns the graph. (Submit,
  // not Execute: with zero workers Execute would drain the queue itself.)
  const Response rejected =
      service.Submit(MakeRequest("g1", RequestKind::kTipU, Algorithm::kBup))
          .get();
  EXPECT_EQ(rejected.status, Status::kNotFound);
  EXPECT_NE(rejected.error.find("g1"), std::string::npos);

  EXPECT_EQ(service.RunQueuedInline(), 1u);
  const Response response = future.get();
  ASSERT_EQ(response.status, Status::kOk);
  TipOptions direct;
  direct.num_threads = 2;
  direct.num_partitions = 6;
  EXPECT_EQ(response.payload->numbers,
            ReceiptDecompose(G1(), direct).tip_numbers);
}

TEST(DecompositionServiceTest, CoalescingSharesOneEngineRun) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  ServiceOptions service_options;
  service_options.num_workers = 0;
  DecompositionService service(registry, service_options);

  const Request request =
      MakeRequest("g1", RequestKind::kWing, Algorithm::kReceiptWing, 4);
  auto first = service.Submit(request);
  auto second = service.Submit(request);

  EXPECT_EQ(service.RunQueuedInline(), 1u);
  const Response r1 = first.get();
  const Response r2 = second.get();
  ASSERT_EQ(r1.status, Status::kOk);
  EXPECT_EQ(r1.payload, r2.payload);
  EXPECT_TRUE(r1.coalesced);
  EXPECT_EQ(service.stats().engine_runs, 1u);
  EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(DecompositionServiceTest, BatchingGroupsSameGraphRequests) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  registry.Register("g2", G2());
  ServiceOptions service_options;
  service_options.num_workers = 0;
  DecompositionService service(registry, service_options);

  // Distinct partition counts keep the three g1 requests from coalescing.
  auto a = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 4));
  auto x = service.Submit(
      MakeRequest("g2", RequestKind::kTipU, Algorithm::kReceipt, 4));
  auto b = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 6));
  auto c = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 8));

  EXPECT_EQ(service.RunQueuedInline(), 4u);
  // The first pop took the g1 head plus both later g1 requests as one
  // warm-workspace batch, leaving g2 for the second pop.
  EXPECT_EQ(service.stats().batched_follow_ons, 2u);
  EXPECT_EQ(service.stats().engine_runs, 4u);
  for (auto* future : {&a, &x, &b, &c}) {
    EXPECT_EQ(future->get().status, Status::kOk);
  }
}

TEST(DecompositionServiceTest, WorkspaceGrowthsFlatAfterWarmup) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  registry.Register("g2", G2());
  ServiceOptions service_options;
  service_options.num_workers = 0;   // single deterministic inline pool
  service_options.cache_bytes = 0;   // force an engine run every time
  DecompositionService service(registry, service_options);

  // threads=1: which workspace serves which FD partition is deterministic.
  const std::vector<Request> mix = {
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 6, 1),
      MakeRequest("g2", RequestKind::kTipU, Algorithm::kReceipt, 6, 1),
      MakeRequest("g1", RequestKind::kWing, Algorithm::kReceiptWing, 4, 1),
      MakeRequest("g2", RequestKind::kTipV, Algorithm::kBup, 6, 1),
  };
  auto run_mix = [&service, &mix] {
    std::vector<std::shared_future<Response>> futures;
    for (const Request& request : mix) futures.push_back(service.Submit(request));
    service.RunQueuedInline();
    for (auto& future : futures) {
      EXPECT_EQ(future.get().status, Status::kOk);
      EXPECT_FALSE(future.get().cache_hit);
    }
  };

  run_mix();  // warmup: buffers grow to the largest resident shape
  const uint64_t growths_warm = service.WorkspaceGrowths();
  EXPECT_GT(growths_warm, 0u);
  run_mix();
  run_mix();
  EXPECT_EQ(service.WorkspaceGrowths(), growths_warm);
  EXPECT_EQ(service.stats().engine_runs, 3 * mix.size());
}

TEST(DecompositionServiceTest, RejectsMismatchedKindAndAlgorithm) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  DecompositionService service(registry, {.num_workers = 0});

  const Response tip_with_wing = service.Execute(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceiptWing));
  EXPECT_EQ(tip_with_wing.status, Status::kBadRequest);
  const Response wing_with_tip = service.Execute(
      MakeRequest("g1", RequestKind::kWing, Algorithm::kReceipt));
  EXPECT_EQ(wing_with_tip.status, Status::kBadRequest);
}

TEST(DecompositionServiceTest, TrySubmitRespectsQueueBound) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  ServiceOptions service_options;
  service_options.num_workers = 0;
  service_options.queue_capacity = 2;
  DecompositionService service(registry, service_options);

  auto a = service.TrySubmit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 4));
  auto b = service.TrySubmit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 6));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(service
                   .TrySubmit(MakeRequest("g1", RequestKind::kTipU,
                                          Algorithm::kReceipt, 8))
                   .has_value());
  // Coalescing still works at capacity: an identical request joins a
  // queued twin instead of needing a slot.
  auto twin = service.TrySubmit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 4));
  ASSERT_TRUE(twin.has_value());

  service.RunQueuedInline();
  EXPECT_EQ(a->get().status, Status::kOk);
  EXPECT_EQ(twin->get().status, Status::kOk);
}

TEST(DecompositionServiceTest, ExecuteDrainsFullQueueWithoutWorkers) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  ServiceOptions service_options;
  service_options.num_workers = 0;
  service_options.queue_capacity = 2;
  DecompositionService service(registry, service_options);

  auto a = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 4));
  auto b = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 6));
  // Queue is full and no worker exists: Execute must drain inline instead
  // of blocking in Submit forever.
  const Response inline_run = service.Execute(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 8));
  EXPECT_EQ(inline_run.status, Status::kOk);
  EXPECT_EQ(a.get().status, Status::kOk);
  EXPECT_EQ(b.get().status, Status::kOk);
}

TEST(DecompositionServiceTest, NonDrainingShutdownCancelsQueuedWork) {
  GraphRegistry registry;
  registry.Register("g1", G1());
  ServiceOptions service_options;
  service_options.num_workers = 0;
  DecompositionService service(registry, service_options);

  auto a = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 4));
  auto b = service.Submit(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 6));
  service.Shutdown(/*drain=*/false);

  EXPECT_EQ(a.get().status, Status::kCancelled);
  EXPECT_EQ(b.get().status, Status::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 2u);

  const Response late = service.Execute(
      MakeRequest("g1", RequestKind::kTipU, Algorithm::kReceipt, 8));
  EXPECT_EQ(late.status, Status::kShutdown);
}

TEST(PeelControlTest, PreCancelledRunsReturnImmediatelyIncomplete) {
  const BipartiteGraph g = G1();

  engine::PeelControl tip_control;
  tip_control.RequestCancel();
  TipOptions tip_options;
  tip_options.num_threads = 2;
  tip_options.num_partitions = 6;
  tip_options.control = &tip_control;
  const TipResult tip = ReceiptDecompose(g, tip_options);
  EXPECT_TRUE(tip_control.Cancelled());
  for (const Count t : tip.tip_numbers) EXPECT_EQ(t, 0u);

  engine::PeelControl wing_control;
  wing_control.RequestCancel();
  ReceiptWingOptions wing_options;
  wing_options.num_threads = 2;
  wing_options.num_partitions = 4;
  wing_options.control = &wing_control;
  const WingResult wing = ReceiptWingDecompose(g, wing_options);
  for (const Count w : wing.wing_numbers) EXPECT_EQ(w, 0u);
}

TEST(PeelControlTest, ReportsProgressMatchingPeelIterations) {
  const BipartiteGraph g = G1();
  engine::PeelControl control;
  TipOptions options;
  options.num_threads = 1;
  options.control = &control;
  const TipResult result = BupDecompose(g, options);
  EXPECT_FALSE(control.Cancelled());
  EXPECT_EQ(control.peeled(), result.stats.peel_iterations);
  EXPECT_GT(control.peeled(), 0u);
}

}  // namespace
}  // namespace receipt::service
