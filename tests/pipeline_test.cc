// End-to-end pipeline tests: generate → save → load → decompose → extract
// hierarchy, plus randomized construction fuzzing of the graph substrate.

#include <gtest/gtest.h>

#include <random>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "tip/bup.h"
#include "tip/receipt.h"
#include "tip/tip_hierarchy.h"

namespace receipt {
namespace {

TEST(PipelineTest, GenerateSaveLoadDecompose) {
  const BipartiteGraph original =
      ChungLuBipartite(200, 120, 900, 0.6, 0.6, 801);
  const std::string konect_path = testing::TempDir() + "/pipeline.konect";
  const std::string binary_path = testing::TempDir() + "/pipeline.bin";
  ASSERT_TRUE(SaveKonect(original, konect_path));
  ASSERT_TRUE(SaveBinary(original, binary_path));

  const auto from_konect = LoadKonect(konect_path);
  const auto from_binary = LoadBinary(binary_path);
  ASSERT_TRUE(from_konect.has_value());
  ASSERT_TRUE(from_binary.has_value());

  TipOptions options;
  options.num_threads = 2;
  options.num_partitions = 8;
  const TipResult a = ReceiptDecompose(original, options);
  const TipResult b = ReceiptDecompose(*from_konect, options);
  const TipResult c = ReceiptDecompose(*from_binary, options);
  EXPECT_EQ(a.tip_numbers, b.tip_numbers);
  EXPECT_EQ(a.tip_numbers, c.tip_numbers);
}

TEST(PipelineTest, AnaloguesDecomposeBothSidesConsistently) {
  // Smallest analogue end-to-end: RECEIPT == BUP on both sides, and the
  // top-level 1-tip covers exactly the butterfly-positive vertices.
  const BipartiteGraph g = MakePaperAnalogue("it");
  for (const Side side : {Side::kU, Side::kV}) {
    TipOptions options;
    options.side = side;
    options.num_threads = 4;
    options.num_partitions = 12;
    const TipResult receipt = ReceiptDecompose(g, options);
    TipOptions bup_options;
    bup_options.side = side;
    const TipResult bup = BupDecompose(g, bup_options);
    ASSERT_EQ(receipt.tip_numbers, bup.tip_numbers) << SideName(side);

    uint64_t positive = 0;
    for (const Count t : receipt.tip_numbers) positive += t > 0;
    const auto tips = ExtractKTips(g, side, receipt.tip_numbers, 1);
    uint64_t covered = 0;
    for (const KTip& tip : tips) covered += tip.vertices.size();
    EXPECT_EQ(covered, positive) << SideName(side);
  }
}

TEST(PipelineTest, FuzzedEdgeListsAlwaysValidate) {
  std::mt19937_64 rng(811);
  for (int trial = 0; trial < 50; ++trial) {
    const VertexId nu = 1 + rng() % 40;
    const VertexId nv = 1 + rng() % 40;
    const size_t raw_edges = rng() % 200;
    std::vector<BipartiteGraph::Edge> edges;
    for (size_t i = 0; i < raw_edges; ++i) {
      // Intentionally includes many duplicates.
      edges.push_back({static_cast<VertexId>(rng() % nu),
                       static_cast<VertexId>(rng() % nv)});
    }
    const BipartiteGraph g = BipartiteGraph::FromEdges(nu, nv, edges);
    ASSERT_TRUE(g.Validate().empty()) << "trial " << trial << ": "
                                      << g.Validate();
    // Decomposition must terminate and assign every vertex a tip number
    // bounded by its butterfly count.
    TipOptions options;
    options.num_threads = 2;
    options.num_partitions = 4;
    const TipResult r = ReceiptDecompose(g, options);
    ASSERT_EQ(r.tip_numbers.size(), g.num_u());
  }
}

TEST(PipelineTest, DecomposingBothSidesCommutes) {
  // Peeling V of g must equal peeling U of the swapped graph.
  const BipartiteGraph g = ChungLuBipartite(150, 100, 700, 0.5, 0.7, 821);
  TipOptions v_options;
  v_options.side = Side::kV;
  v_options.num_threads = 2;
  v_options.num_partitions = 6;
  const TipResult via_side = ReceiptDecompose(g, v_options);
  TipOptions u_options = v_options;
  u_options.side = Side::kU;
  const TipResult via_swap = ReceiptDecompose(g.SwappedCopy(), u_options);
  EXPECT_EQ(via_side.tip_numbers, via_swap.tip_numbers);
}

}  // namespace
}  // namespace receipt
