// Output-sensitive coarse decomposition (SupportIndex): the coarse step may
// determine range bounds and maintain ⊲⊳init either through the
// frontier-fed support histogram (indexed path) or through the legacy
// per-range scans (scan fallback). These suites pin the contract that the
// two paths produce bit-identical RangeResults — bounds, subsets,
// subset_of, init_support — for every algorithm, generator shape and
// thread count, that the index's examined-element counters report what ran,
// and that the pool-resident index allocates nothing once warm.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "engine/support_index.h"
#include "engine/workspace.h"
#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/receipt.h"
#include "tip/receipt_cd.h"
#include "util/parallel.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

std::vector<int> SweepThreads() {
  std::vector<int> threads = {1, 4};
  const int hw = MaxThreads();
  if (hw != 1 && hw != 4) threads.push_back(hw);
  return threads;
}

BipartiteGraph SweepGraph(bool skewed, uint32_t seed) {
  // Skewed: heavy-tailed degrees, long peeling tails — the regime the
  // index exists for. Uniform: flat degrees, the scan path's best case.
  return skewed ? ChungLuBipartite(400, 260, 3000, 0.8, 0.8, seed)
                : RandomBipartite(400, 260, 3000, seed);
}

void ExpectSameRanges(const engine::RangeResult<VertexId>& scan,
                      const engine::RangeResult<VertexId>& indexed) {
  EXPECT_EQ(scan.bounds, indexed.bounds);
  EXPECT_EQ(scan.subsets, indexed.subsets);
  EXPECT_EQ(scan.subset_of, indexed.subset_of);
  EXPECT_EQ(scan.init_support, indexed.init_support);
  // The cost-model input rides along: both paths predict each range's peel
  // cost with exact integer arithmetic, so the predictions are identical.
  EXPECT_EQ(scan.predicted_costs, indexed.predicted_costs);
}

// ---------------------------------------------------------------------------
// SupportIndex unit behavior against a brute-force model.
// ---------------------------------------------------------------------------

TEST(SupportIndexTest, FindBoundMatchesBruteForce) {
  const uint64_t n = 500;
  std::vector<Count> support(n);
  std::vector<Count> cost(n);
  std::vector<bool> alive(n, true);
  for (uint64_t e = 0; e < n; ++e) {
    support[e] = (e * 37) % 97;
    cost[e] = 1 + (e * 13) % 7;
    if (e % 11 == 0) alive[e] = false;
  }

  engine::SupportIndex index;
  index.Rebuild(
      n, [&](uint64_t e) { return alive[e]; },
      [&](uint64_t e) { return support[e]; }, cost);

  const auto brute = [&](Count need) -> Count {
    std::vector<std::pair<Count, Count>> sc;
    for (uint64_t e = 0; e < n; ++e) {
      if (alive[e]) sc.emplace_back(support[e], cost[e]);
    }
    if (sc.empty()) return kInvalidCount;
    std::sort(sc.begin(), sc.end());
    Count acc = 0;
    for (const auto& [s, c] : sc) {
      acc += c;
      if (acc >= need) return s + 1;
    }
    return sc.back().first + 1;
  };
  const auto supports = [&](uint64_t e) { return support[e]; };

  PeelStats stats;
  for (const Count need : {Count{1}, Count{50}, Count{700}, Count{1800},
                           Count{100000}}) {
    EXPECT_EQ(index.FindBound(need, supports, &stats), brute(need))
        << "need " << need;
  }
  EXPECT_GT(stats.bound_walk_buckets, 0u);

  // Remove a batch (as peeled rounds do), move a few survivors (as
  // boundary reconciliation does), and re-check every target.
  for (uint64_t e = 0; e < n; e += 5) {
    if (alive[e]) {
      index.Remove(e, cost[e]);
      alive[e] = false;
    }
  }
  for (uint64_t e = 1; e < n; e += 7) {
    if (alive[e]) {
      support[e] = support[e] / 2;
      index.MoveTo(e, support[e], cost[e]);
    }
  }
  for (const Count need : {Count{1}, Count{50}, Count{700}, Count{1800},
                           Count{100000}}) {
    EXPECT_EQ(index.FindBound(need, supports, &stats), brute(need))
        << "after mutation, need " << need;
  }
}

TEST(SupportIndexTest, WideSupportRangeUsesBucketedRefine) {
  // Supports far above the leaf-bucket budget force a power-of-two bucket
  // width > 1, so FindBound must resolve crossings through the in-bucket
  // refine rather than bucket arithmetic alone.
  const uint64_t n = 300;
  std::vector<Count> support(n);
  std::vector<Count> cost(n, 1);
  for (uint64_t e = 0; e < n; ++e) {
    support[e] = e * 1'000'003;  // spread across ~300M support values
  }
  engine::SupportIndex index;
  index.Rebuild(
      n, [](uint64_t) { return true; },
      [&](uint64_t e) { return support[e]; }, cost);
  ASSERT_LE(index.num_buckets(), engine::SupportIndex::kMaxBuckets);

  PeelStats stats;
  const auto supports = [&](uint64_t e) { return support[e]; };
  for (const Count need : {Count{1}, Count{2}, Count{150}, Count{300}}) {
    EXPECT_EQ(index.FindBound(need, supports, &stats),
              support[need - 1] + 1)
        << "need " << need;
  }
  // Total mass short of the target: maximum alive support + 1.
  EXPECT_EQ(index.FindBound(Count{301}, supports, &stats),
            support[n - 1] + 1);
  EXPECT_GT(stats.histogram_refines, 0u);
}

// ---------------------------------------------------------------------------
// Indexed vs scan coarse step: RECEIPT CD (tip).
// ---------------------------------------------------------------------------

class CoarseIndexTipSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(CoarseIndexTipSweep, IndexedAndScanPathsAreBitIdentical) {
  const auto [skewed, optimized] = GetParam();
  const BipartiteGraph g = SweepGraph(skewed, skewed ? 311u : 313u);

  for (const int threads : SweepThreads()) {
    TipOptions options;
    options.num_threads = threads;
    options.num_partitions = 8;
    options.use_huc = optimized;
    options.use_dgm = optimized;

    options.use_support_index = false;
    PeelStats scan_stats;
    const CdResult scan = ReceiptCd(g, options, &scan_stats);

    options.use_support_index = true;
    PeelStats indexed_stats;
    const CdResult indexed = ReceiptCd(g, options, &indexed_stats);

    ExpectSameRanges(scan, indexed);

    // The scan fallback must not touch the index; the indexed path must
    // actually route bound determination through it.
    EXPECT_EQ(scan_stats.bound_walk_buckets, 0u);
    EXPECT_EQ(scan_stats.init_patch_elements, 0u);
    EXPECT_EQ(scan_stats.index_rebuild_elements, 0u);
    EXPECT_GT(indexed_stats.bound_walk_buckets, 0u);
    EXPECT_GE(indexed_stats.index_rebuild_elements,
              static_cast<uint64_t>(g.num_u()));

    // Identical peeling structure: the index changes how bounds and
    // ⊲⊳init are produced, never what is peeled when.
    EXPECT_EQ(scan_stats.sync_rounds, indexed_stats.sync_rounds);
    EXPECT_EQ(scan_stats.TotalWedges(), indexed_stats.TotalWedges());
    EXPECT_EQ(scan_stats.huc_recounts, indexed_stats.huc_recounts);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoarseIndexTipSweep,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

// Thread-count invariance of the indexed path itself (the delta lists are
// schedule-dependent; the results must not be).
TEST(CoarseIndexTipTest, IndexedPathIsThreadCountInvariant) {
  const BipartiteGraph g = SweepGraph(/*skewed=*/true, 317u);
  TipOptions options;
  options.num_partitions = 6;
  options.num_threads = 1;
  PeelStats s1;
  const CdResult one = ReceiptCd(g, options, &s1);
  for (const int threads : SweepThreads()) {
    options.num_threads = threads;
    PeelStats st;
    const CdResult many = ReceiptCd(g, options, &st);
    ExpectSameRanges(one, many);
  }
}

// ---------------------------------------------------------------------------
// Indexed vs scan coarse step: RECEIPT-W (wing).
// ---------------------------------------------------------------------------

class CoarseIndexWingSweep : public ::testing::TestWithParam<bool> {};

TEST_P(CoarseIndexWingSweep, IndexedAndScanPathsAreBitIdentical) {
  const bool skewed = GetParam();
  const BipartiteGraph g = skewed
                               ? ChungLuBipartite(70, 50, 320, 0.7, 0.7, 331)
                               : RandomBipartite(70, 50, 320, 337);

  for (const int threads : SweepThreads()) {
    for (const int partitions : {2, 5}) {
      ReceiptWingOptions options;
      options.num_threads = threads;
      options.num_partitions = partitions;

      options.use_support_index = false;
      PeelStats scan_stats;
      const auto scan = ReceiptWingCoarse(g, options, &scan_stats);

      options.use_support_index = true;
      PeelStats indexed_stats;
      const auto indexed = ReceiptWingCoarse(g, options, &indexed_stats);

      EXPECT_EQ(scan.bounds, indexed.bounds);
      EXPECT_EQ(scan.subsets, indexed.subsets);
      EXPECT_EQ(scan.subset_of, indexed.subset_of);
      EXPECT_EQ(scan.init_support, indexed.init_support);
      EXPECT_EQ(scan.predicted_costs, indexed.predicted_costs);
      EXPECT_EQ(scan_stats.bound_walk_buckets, 0u);
      EXPECT_GT(indexed_stats.bound_walk_buckets, 0u);
      EXPECT_EQ(scan_stats.sync_rounds, indexed_stats.sync_rounds);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CoarseIndexWingSweep, ::testing::Bool());

// ---------------------------------------------------------------------------
// End-to-end: the coarse path choice never changes final numbers.
// ---------------------------------------------------------------------------

TEST(CoarseIndexEndToEndTest, TipNumbersMatchBupUnderEveryPath) {
  const BipartiteGraph g = SweepGraph(/*skewed=*/true, 347u);
  TipOptions bup_options;
  const TipResult bup = BupDecompose(g, bup_options);

  for (const bool use_index : {false, true}) {
    for (const auto frontier_switch :
         {FrontierSwitch::kFixedDensity, FrontierSwitch::kMeasuredCost}) {
      TipOptions options;
      options.num_threads = 3;
      options.num_partitions = 7;
      options.use_support_index = use_index;
      options.frontier_switch = frontier_switch;
      const TipResult r = ReceiptDecompose(g, options);
      EXPECT_EQ(r.tip_numbers, bup.tip_numbers)
          << "use_index " << use_index << " measured "
          << (frontier_switch == FrontierSwitch::kMeasuredCost);
    }
  }
}

TEST(CoarseIndexEndToEndTest, WingNumbersMatchSequentialUnderEveryPath) {
  const BipartiteGraph g = ChungLuBipartite(40, 30, 170, 0.6, 0.6, 353);
  const WingResult sequential = WingDecompose(g, /*num_threads=*/1);

  for (const bool use_index : {false, true}) {
    for (const auto frontier_switch :
         {FrontierSwitch::kFixedDensity, FrontierSwitch::kMeasuredCost}) {
      ReceiptWingOptions options;
      options.num_threads = 2;
      options.num_partitions = 4;
      options.use_support_index = use_index;
      options.frontier_switch = frontier_switch;
      const WingResult r = ReceiptWingDecompose(g, options);
      EXPECT_EQ(r.wing_numbers, sequential.wing_numbers)
          << "use_index " << use_index << " measured "
          << (frontier_switch == FrontierSwitch::kMeasuredCost);
    }
  }
}

// ---------------------------------------------------------------------------
// Arena residency: the index allocates nothing once warm.
// ---------------------------------------------------------------------------

TEST(CoarseIndexArenaTest, SupportIndexDoesNotGrowAfterWarmup) {
  const BipartiteGraph g = SweepGraph(/*skewed=*/true, 359u);
  engine::WorkspacePool pool;
  TipOptions options;
  options.num_threads = 2;
  options.num_partitions = 6;

  PeelStats warmup_stats;
  const CdResult warm = ReceiptCd(g, options, pool, &warmup_stats);
  const uint64_t growths_warm = pool.TotalGrowths();
  EXPECT_GT(growths_warm, 0u);

  for (int repeat = 0; repeat < 3; ++repeat) {
    PeelStats stats;
    const CdResult again = ReceiptCd(g, options, pool, &stats);
    ExpectSameRanges(warm, again);
  }
  EXPECT_EQ(pool.TotalGrowths(), growths_warm)
      << "SupportIndex (or other pool scratch) grew after warmup";
}

}  // namespace
}  // namespace receipt
