// Tests for RECEIPT-W, the parallel two-step wing decomposition (§7
// extension): exact agreement with sequential WingDecompose across graph
// shapes, partition counts and thread counts — including the same-round
// butterfly-conflict priority rule.

#include "wing/receipt_wing.h"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

ReceiptWingOptions Options(int partitions, int threads) {
  ReceiptWingOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  return options;
}

TEST(ReceiptWingTest, CompleteBipartiteUniform) {
  const BipartiteGraph g = CompleteBipartite(5, 4);
  const WingResult r = ReceiptWingDecompose(g, Options(3, 2));
  for (const Count w : r.wing_numbers) EXPECT_EQ(w, 4u * 3u);
}

TEST(ReceiptWingTest, StarAllZero) {
  const BipartiteGraph g = Star(12);
  const WingResult r = ReceiptWingDecompose(g, Options(3, 2));
  for (const Count w : r.wing_numbers) EXPECT_EQ(w, 0u);
}

TEST(ReceiptWingTest, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(0, 0, {});
  const WingResult r = ReceiptWingDecompose(g, Options(3, 2));
  EXPECT_TRUE(r.wing_numbers.empty());
}

TEST(ReceiptWingTest, SingleButterflyConflictRound) {
  // K_{2,2}: all four edges have support 1 and are peeled in the same
  // coarse round — the priority rule must not over-decrement.
  const BipartiteGraph g = CompleteBipartite(2, 2);
  const WingResult r = ReceiptWingDecompose(g, Options(2, 2));
  for (const Count w : r.wing_numbers) EXPECT_EQ(w, 1u);
}

TEST(ReceiptWingTest, CoarseStatsPopulated) {
  const BipartiteGraph g = ChungLuBipartite(80, 60, 400, 0.5, 0.5, 301);
  const WingResult r = ReceiptWingDecompose(g, Options(6, 2));
  EXPECT_GT(r.stats.sync_rounds, 0u);
  EXPECT_GT(r.stats.wedges_counting, 0u);
  EXPECT_GT(r.stats.wedges_cd, 0u);
  EXPECT_GT(r.stats.num_subsets, 0u);
  EXPECT_LE(r.stats.num_subsets, 7u);
}

using WingSweepParam =
    std::tuple<VertexId, VertexId, uint64_t, double, double, uint64_t, int,
               int>;

class ReceiptWingSweep : public testing::TestWithParam<WingSweepParam> {};

TEST_P(ReceiptWingSweep, MatchesSequentialWing) {
  const auto [nu, nv, m, au, av, seed, partitions, threads] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  const WingResult parallel_result =
      ReceiptWingDecompose(g, Options(partitions, threads));
  const WingResult sequential_result = WingDecompose(g, 1);
  ASSERT_EQ(parallel_result.wing_numbers.size(),
            sequential_result.wing_numbers.size());
  for (uint64_t e = 0; e < sequential_result.wing_numbers.size(); ++e) {
    ASSERT_EQ(parallel_result.wing_numbers[e],
              sequential_result.wing_numbers[e])
        << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReceiptWingSweep,
    testing::Values(
        WingSweepParam{30, 20, 120, 0.0, 0.0, 1, 4, 2},
        WingSweepParam{30, 20, 120, 0.0, 0.0, 2, 4, 2},
        WingSweepParam{50, 30, 250, 0.6, 0.6, 3, 6, 2},
        WingSweepParam{50, 30, 250, 0.6, 0.6, 3, 1, 1},
        WingSweepParam{50, 30, 250, 0.6, 0.6, 3, 100, 4},
        WingSweepParam{80, 25, 300, 0.9, 0.3, 4, 6, 2},
        WingSweepParam{40, 40, 350, 0.3, 0.3, 5, 8, 4},
        WingSweepParam{60, 60, 400, 0.5, 0.8, 6, 6, 3},
        WingSweepParam{100, 50, 450, 0.7, 0.7, 7, 8, 2}));

}  // namespace
}  // namespace receipt
