// The incremental-serving churn suite: randomized insert/delete batches
// folded through LiveGraphManager seals must leave every tracked
// configuration bit-identical to a from-scratch decomposition of the final
// graph — across tip-U / tip-V / wing, thread counts, and the
// dirty-fraction threshold sweep (both the reuse path and the full-recompute
// fallback produce the same bytes). Plus targeted coverage of the seal
// policy knobs, cache priming/epoch dropping, and shape validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "obs/observability.h"
#include "service/graph_registry.h"
#include "service/live_graph.h"
#include "service/result_cache.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"

namespace receipt::service {
namespace {

Algorithm AlgorithmFor(RequestKind kind) {
  return kind == RequestKind::kWing ? Algorithm::kReceiptWing
                                    : Algorithm::kReceipt;
}

/// From-scratch decomposition of `graph` under `config` — the ground truth
/// every sealed result is compared against.
std::vector<Count> DirectNumbers(const BipartiteGraph& graph,
                                 const LiveConfig& config, int threads) {
  if (config.kind == RequestKind::kWing) {
    ReceiptWingOptions options;
    options.num_threads = threads;
    options.num_partitions = static_cast<int>(config.partitions);
    return ReceiptWingDecompose(graph, options).wing_numbers;
  }
  TipOptions options;
  options.side = config.kind == RequestKind::kTipV ? Side::kV : Side::kU;
  options.num_threads = threads;
  options.num_partitions = static_cast<int>(config.partitions);
  return ReceiptDecompose(graph, options).tip_numbers;
}

/// One manager + registry + cache bundle, seeded with a ChungLu graph.
struct LiveFixture {
  explicit LiveFixture(const LiveOptions& options, uint64_t seed = 11,
                       VertexId nu = 150, VertexId nv = 120,
                       uint64_t edges = 700)
      : cache(size_t{64} << 20), live(registry, cache, options, obs) {
    registry.Register("g", ChungLuBipartite(nu, nv, edges, 0.6, 0.6, seed));
  }

  GraphRegistry registry;
  ResultCache cache;
  obs::Observability obs;
  LiveGraphManager live;
};

/// Draws a random batch against the current graph: half deletions of
/// existing edges, half inserts of random (often absent) pairs.
std::vector<EdgeUpdate> RandomBatch(const BipartiteGraph& graph,
                                    size_t batch_size, std::mt19937_64* rng) {
  const std::vector<BipartiteGraph::Edge> edges = graph.ToEdges();
  std::vector<EdgeUpdate> updates;
  updates.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    EdgeUpdate update;
    if ((*rng)() % 2 == 0 && !edges.empty()) {
      const BipartiteGraph::Edge& edge = edges[(*rng)() % edges.size()];
      update = {/*insert=*/false, edge.u, edge.v};
    } else {
      update = {/*insert=*/true,
                static_cast<VertexId>((*rng)() % graph.num_u()),
                static_cast<VertexId>((*rng)() % graph.num_v())};
    }
    updates.push_back(update);
  }
  return updates;
}

/// The core property: seal `batches` random batches and require each sealed
/// result (served from the primed cache) to be bit-identical to the direct
/// driver on the post-batch graph.
void RunChurn(const LiveConfig& config, int threads, double dirty_limit,
              uint64_t seed, int batches = 3, size_t batch_size = 24) {
  LiveOptions options;
  options.max_pending_edges = size_t{1} << 30;  // seal only when forced
  options.dirty_fraction_limit = dirty_limit;
  LiveFixture fx(options, seed);
  std::string error;
  ASSERT_EQ(fx.live.Track("g", config, threads, &error), Status::kOk)
      << error;

  std::mt19937_64 rng(seed * 7919 + 17);
  for (int b = 0; b < batches; ++b) {
    std::vector<EdgeUpdate> updates;
    {
      const GraphHandle before = fx.registry.Acquire("g");
      updates = RandomBatch(before.graph(), batch_size, &rng);
    }
    const ApplyResult result =
        fx.live.ApplyEdges("g", updates, /*force_seal=*/true, threads);
    ASSERT_EQ(result.status, Status::kOk) << result.error;
    ASSERT_TRUE(result.sealed);
    ASSERT_EQ(result.reports.size(), 1u);

    const GraphHandle after = fx.registry.Acquire("g");
    ASSERT_EQ(after.epoch(), result.epoch);
    const auto payload = fx.cache.Get(CacheKey{
        "g", result.epoch, config.kind, AlgorithmFor(config.kind),
        config.partitions});
    ASSERT_NE(payload, nullptr) << "seal did not prime the cache";
    EXPECT_EQ(payload->numbers,
              DirectNumbers(after.graph(), config, threads))
        << "batch " << b << " diverged (threads=" << threads
        << " dirty_limit=" << dirty_limit << ")";
  }
  const LiveGraphManager::Stats stats = fx.live.stats();
  EXPECT_EQ(stats.seals_total, static_cast<uint64_t>(batches));
  EXPECT_EQ(stats.runs_incremental + stats.runs_full,
            static_cast<uint64_t>(batches));
}

int HardwareThreads() {
  return std::max(2u, std::thread::hardware_concurrency());
}

TEST(IncrementalChurnTest, TipUAcrossThreadCounts) {
  for (const int threads : {1, 4, HardwareThreads()}) {
    RunChurn({RequestKind::kTipU, 6}, threads, 0.5, 101);
  }
}

TEST(IncrementalChurnTest, TipVAcrossThreadCounts) {
  for (const int threads : {1, 4, HardwareThreads()}) {
    RunChurn({RequestKind::kTipV, 6}, threads, 0.5, 202);
  }
}

TEST(IncrementalChurnTest, WingAcrossThreadCounts) {
  for (const int threads : {1, 4, HardwareThreads()}) {
    RunChurn({RequestKind::kWing, 8}, threads, 0.5, 303);
  }
}

// The threshold sweep: limit 0 forces the full-recompute fallback on any
// dirty range, limit 1 never falls back — the bytes must not care.
TEST(IncrementalChurnTest, DirtyFractionSweepIsResultNeutral) {
  for (const double limit : {0.0, 0.25, 1.0}) {
    RunChurn({RequestKind::kTipU, 6}, 2, limit, 404);
    RunChurn({RequestKind::kWing, 8}, 2, limit, 505);
  }
}

// A tiny batch on a bigger graph must actually take the incremental path
// and reuse sealed ranges — guards against the suite silently passing
// because every seal fell back to a full recompute.
TEST(IncrementalChurnTest, SmallBatchesReuseSealedRanges) {
  LiveOptions options;
  options.max_pending_edges = size_t{1} << 30;
  options.dirty_fraction_limit = 1.0;  // never fall back
  LiveFixture fx(options, /*seed=*/7, /*nu=*/400, /*nv=*/300,
                 /*edges=*/2000);
  const LiveConfig config{RequestKind::kTipU, 10};
  std::string error;
  ASSERT_EQ(fx.live.Track("g", config, 2, &error), Status::kOk) << error;

  // Delete one existing edge: a localized change.
  const GraphHandle handle = fx.registry.Acquire("g");
  const BipartiteGraph::Edge victim = handle.graph().ToEdges()[42];
  const std::vector<EdgeUpdate> batch = {{false, victim.u, victim.v}};
  const ApplyResult result =
      fx.live.ApplyEdges("g", batch, /*force_seal=*/true, 2);
  ASSERT_EQ(result.status, Status::kOk) << result.error;
  ASSERT_TRUE(result.sealed);
  ASSERT_EQ(result.reports.size(), 1u);
  EXPECT_TRUE(result.reports[0].incremental);
  EXPECT_GT(result.reports[0].ranges_reused, 0u);
  EXPECT_LT(result.reports[0].subsets_repeeled,
            result.reports[0].subsets_total);

  const GraphHandle after = fx.registry.Acquire("g");
  const auto payload = fx.cache.Get(CacheKey{
      "g", result.epoch, config.kind, Algorithm::kReceipt,
      config.partitions});
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->numbers, DirectNumbers(after.graph(), config, 2));
}

// One seal updates every tracked configuration of the graph.
TEST(IncrementalChurnTest, MultiConfigSealKeepsAllConfigsIdentical) {
  LiveOptions options;
  options.max_pending_edges = size_t{1} << 30;
  LiveFixture fx(options, /*seed=*/31);
  const std::vector<LiveConfig> configs = {{RequestKind::kTipU, 6},
                                           {RequestKind::kTipV, 5},
                                           {RequestKind::kWing, 8}};
  for (const LiveConfig& config : configs) {
    std::string error;
    ASSERT_EQ(fx.live.Track("g", config, 2, &error), Status::kOk) << error;
  }

  std::mt19937_64 rng(99);
  std::vector<EdgeUpdate> updates;
  {
    const GraphHandle before = fx.registry.Acquire("g");
    updates = RandomBatch(before.graph(), 20, &rng);
  }
  const ApplyResult result =
      fx.live.ApplyEdges("g", updates, /*force_seal=*/true, 2);
  ASSERT_EQ(result.status, Status::kOk) << result.error;
  ASSERT_EQ(result.reports.size(), configs.size());

  const GraphHandle after = fx.registry.Acquire("g");
  for (const LiveConfig& config : configs) {
    const auto payload = fx.cache.Get(CacheKey{
        "g", result.epoch, config.kind, AlgorithmFor(config.kind),
        config.partitions});
    ASSERT_NE(payload, nullptr) << RequestKindName(config.kind);
    EXPECT_EQ(payload->numbers, DirectNumbers(after.graph(), config, 2))
        << RequestKindName(config.kind);
  }
}

TEST(IncrementalPolicyTest, BatchesBufferUntilThresholdThenSeal) {
  LiveOptions options;
  options.max_pending_edges = 5;
  LiveFixture fx(options);
  const LiveConfig config{RequestKind::kTipU, 6};
  std::string error;
  ASSERT_EQ(fx.live.Track("g", config, 1, &error), Status::kOk) << error;
  const uint64_t epoch_before = fx.registry.Acquire("g").epoch();

  const std::vector<EdgeUpdate> three = {{true, 0, 0}, {true, 1, 1},
                                         {true, 2, 2}};
  ApplyResult result =
      fx.live.ApplyEdges("g", three, /*force_seal=*/false, 1);
  ASSERT_EQ(result.status, Status::kOk) << result.error;
  EXPECT_FALSE(result.sealed);
  EXPECT_EQ(result.pending, 3u);
  EXPECT_EQ(fx.live.PendingEdges("g"), 3u);
  EXPECT_EQ(fx.registry.Acquire("g").epoch(), epoch_before);

  // Two more crosses max_pending_edges: the batch seals and the epoch bumps.
  const std::vector<EdgeUpdate> two = {{true, 3, 3}, {true, 4, 4}};
  result = fx.live.ApplyEdges("g", two, /*force_seal=*/false, 1);
  ASSERT_EQ(result.status, Status::kOk) << result.error;
  EXPECT_TRUE(result.sealed);
  EXPECT_EQ(result.pending, 0u);
  EXPECT_EQ(fx.live.PendingEdges("g"), 0u);
  EXPECT_GT(result.epoch, epoch_before);
}

TEST(IncrementalPolicyTest, OutOfShapeUpdatesRejectTheWholeBatch) {
  LiveOptions options;
  LiveFixture fx(options);
  const std::vector<EdgeUpdate> batch = {{true, 1, 1}, {true, 100000, 0}};
  const ApplyResult result =
      fx.live.ApplyEdges("g", batch, /*force_seal=*/false, 1);
  EXPECT_EQ(result.status, Status::kBadRequest);
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(fx.live.PendingEdges("g"), 0u);  // nothing buffered
}

TEST(IncrementalPolicyTest, UnknownGraphIsNotFound) {
  LiveOptions options;
  LiveFixture fx(options);
  std::string error;
  EXPECT_EQ(fx.live.Track("nope", {RequestKind::kTipU, 6}, 1, &error),
            Status::kNotFound);
  const std::vector<EdgeUpdate> batch = {{true, 0, 0}};
  EXPECT_EQ(fx.live.ApplyEdges("nope", batch, true, 1).status,
            Status::kNotFound);
}

TEST(ResultCacheTest, DropEpochRemovesExactlyThatEpoch) {
  ResultCache cache(size_t{1} << 20);
  auto payload = std::make_shared<Payload>();
  payload->numbers = {1, 2, 3};
  const CacheKey old_key{"g", 1, RequestKind::kTipU, Algorithm::kReceipt, 6};
  const CacheKey old_key2{"g", 1, RequestKind::kWing,
                          Algorithm::kReceiptWing, 8};
  const CacheKey live_key{"g", 2, RequestKind::kTipU, Algorithm::kReceipt, 6};
  cache.Put(old_key, payload);
  cache.Put(old_key2, payload);
  cache.Put(live_key, payload);

  EXPECT_EQ(cache.DropEpoch(1), 2u);
  EXPECT_EQ(cache.Get(old_key), nullptr);
  EXPECT_EQ(cache.Get(old_key2), nullptr);
  EXPECT_NE(cache.Get(live_key), nullptr);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.epoch_drops, 2u);
  EXPECT_EQ(stats.entries, 1u);
  // Dropping an epoch with no entries is a harmless no-op.
  EXPECT_EQ(cache.DropEpoch(1), 0u);
}

}  // namespace
}  // namespace receipt::service
