// Unit tests for the lazy d-ary min-heap used for minimum-support
// extraction in BUP and RECEIPT FD.

#include "engine/min_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace receipt {
namespace {

TEST(MinHeapTest, PopsInAscendingKeyOrder) {
  LazyMinHeap<4> heap;
  std::vector<Count> support = {50, 10, 30, 20, 40};
  std::vector<uint8_t> alive(5, 1);
  for (VertexId v = 0; v < 5; ++v) heap.Push(support[v], v);

  std::vector<Count> popped;
  const auto is_alive = [&alive](VertexId v) { return alive[v] != 0; };
  while (auto e = heap.PopValid(support, is_alive)) {
    popped.push_back(e->first);
    alive[e->second] = 0;
  }
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), 5u);
}

TEST(MinHeapTest, StaleEntriesSkipped) {
  LazyMinHeap<4> heap;
  std::vector<Count> support = {9, 7};
  std::vector<uint8_t> alive = {1, 1};
  heap.Push(9, 0);
  heap.Push(7, 1);
  // Vertex 0's support decreases to 3; a fresh entry is pushed.
  support[0] = 3;
  heap.Push(3, 0);

  const auto is_alive = [&alive](VertexId v) { return alive[v] != 0; };
  auto first = heap.PopValid(support, is_alive);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->second, 0u);
  EXPECT_EQ(first->first, 3u);
  alive[0] = 0;

  auto second = heap.PopValid(support, is_alive);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->second, 1u);

  // The stale (9, 0) entry must be silently discarded.
  alive[1] = 0;
  EXPECT_FALSE(heap.PopValid(support, is_alive).has_value());
}

TEST(MinHeapTest, DeadVerticesSkipped) {
  LazyMinHeap<4> heap;
  std::vector<Count> support = {1, 2};
  std::vector<uint8_t> alive = {0, 1};
  heap.Push(1, 0);
  heap.Push(2, 1);
  const auto is_alive = [&alive](VertexId v) { return alive[v] != 0; };
  auto e = heap.PopValid(support, is_alive);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->second, 1u);
}

TEST(MinHeapTest, EmptyHeap) {
  LazyMinHeap<4> heap;
  std::vector<Count> support;
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(
      heap.PopValid(support, [](VertexId) { return true; }).has_value());
}

TEST(MinHeapTest, ClearResets) {
  LazyMinHeap<4> heap;
  std::vector<Count> support = {5};
  heap.Push(5, 0);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(
      heap.PopValid(support, [](VertexId) { return true; }).has_value());
}

template <typename HeapType>
void RandomizedSortCheck(uint64_t seed) {
  std::mt19937_64 rng(seed);
  constexpr VertexId kN = 500;
  std::vector<Count> support(kN);
  std::vector<uint8_t> alive(kN, 1);
  HeapType heap;
  for (VertexId v = 0; v < kN; ++v) {
    support[v] = rng() % 1000;
    heap.Push(support[v], v);
  }
  // Random decreases with fresh pushes (mimicking peeling updates).
  for (int i = 0; i < 2000; ++i) {
    const VertexId v = static_cast<VertexId>(rng() % kN);
    if (support[v] > 0) {
      support[v] -= 1 + rng() % support[v];
      heap.Push(support[v], v);
    }
  }
  Count last = 0;
  size_t count = 0;
  const auto is_alive = [&alive](VertexId v) { return alive[v] != 0; };
  while (auto e = heap.PopValid(support, is_alive)) {
    EXPECT_GE(e->first, last);
    last = e->first;
    alive[e->second] = 0;
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST(MinHeapTest, RandomizedBinary) { RandomizedSortCheck<LazyMinHeap<2>>(71); }
TEST(MinHeapTest, RandomizedQuad) { RandomizedSortCheck<LazyMinHeap<4>>(72); }
TEST(MinHeapTest, RandomizedOct) { RandomizedSortCheck<LazyMinHeap<8>>(73); }

}  // namespace
}  // namespace receipt
