// Unit tests for the CSR bipartite graph substrate.

#include "graph/bipartite_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"

namespace receipt {
namespace {

using Edge = BipartiteGraph::Edge;

BipartiteGraph MakeSmall() {
  // U = {0,1,2}, V = {0,1}; edges: (0,0) (0,1) (1,0) (2,1).
  return BipartiteGraph::FromEdges(3, 2,
                                   {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
}

TEST(BipartiteGraphTest, SizesAndDegrees) {
  const BipartiteGraph g = MakeSmall();
  EXPECT_EQ(g.num_u(), 3u);
  EXPECT_EQ(g.num_v(), 2u);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(g.Degree(g.VGlobal(0)), 2u);  // v0: u0, u1
  EXPECT_EQ(g.Degree(g.VGlobal(1)), 2u);  // v1: u0, u2
}

TEST(BipartiteGraphTest, NeighborsSortedAndSymmetric) {
  const BipartiteGraph g = MakeSmall();
  const auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], g.VGlobal(0));
  EXPECT_EQ(n0[1], g.VGlobal(1));
  EXPECT_TRUE(g.Validate().empty()) << g.Validate();
}

TEST(BipartiteGraphTest, DuplicateEdgesRemoved) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(
      2, 2, {{0, 0}, {0, 0}, {0, 0}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.Validate().empty());
}

TEST(BipartiteGraphTest, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(0, 0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.Validate().empty());
}

TEST(BipartiteGraphTest, IsolatedVerticesAllowed) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(5, 5, {{0, 0}});
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.Degree(g.VGlobal(4)), 0u);
  EXPECT_TRUE(g.Validate().empty());
}

TEST(BipartiteGraphTest, SideHelpers) {
  const BipartiteGraph g = MakeSmall();
  EXPECT_TRUE(g.IsU(0));
  EXPECT_TRUE(g.IsU(2));
  EXPECT_FALSE(g.IsU(3));
  EXPECT_EQ(g.Local(4), 1u);
  EXPECT_EQ(g.Local(2), 2u);
  EXPECT_EQ(g.SideBegin(Side::kU), 0u);
  EXPECT_EQ(g.SideEnd(Side::kU), 3u);
  EXPECT_EQ(g.SideBegin(Side::kV), 3u);
  EXPECT_EQ(g.SideEnd(Side::kV), 5u);
  EXPECT_EQ(g.SideSize(Side::kV), 2u);
}

TEST(BipartiteGraphTest, WedgeCount) {
  const BipartiteGraph g = MakeSmall();
  // u0 neighbors v0 (deg 2) and v1 (deg 2): wedges = 1 + 1 = 2.
  EXPECT_EQ(g.WedgeCount(0), 2u);
  // u1 neighbors v0 (deg 2): wedges = 1.
  EXPECT_EQ(g.WedgeCount(1), 1u);
  EXPECT_EQ(g.TotalWedges(Side::kU), 4u);
  // v0 neighbors u0 (deg 2), u1 (deg 1): wedges = 1 + 0 = 1.
  EXPECT_EQ(g.WedgeCount(g.VGlobal(0)), 1u);
  EXPECT_EQ(g.TotalWedges(Side::kV), 2u);
}

TEST(BipartiteGraphTest, TotalWedgesMatchesDegreeFormula) {
  const BipartiteGraph g = ChungLuBipartite(100, 70, 400, 0.5, 0.5, 3);
  // Σ_{u∈U} Σ_{v∈N(u)} (d_v − 1) = Σ_{v∈V} d_v (d_v − 1).
  Count by_v = 0;
  for (VertexId v = g.SideBegin(Side::kV); v < g.SideEnd(Side::kV); ++v) {
    by_v += g.Degree(v) * (g.Degree(v) - 1);
  }
  EXPECT_EQ(g.TotalWedges(Side::kU), by_v);
}

TEST(BipartiteGraphTest, CountingCostBoundIsSymmetricAndBounded) {
  const BipartiteGraph g = ChungLuBipartite(100, 70, 400, 0.8, 0.4, 4);
  const Count bound = g.CountingCostBound();
  // Σ min(d_u, d_v) ≤ Σ d_u = 2|E| per side: compare against both wedges.
  EXPECT_LE(bound, g.TotalWedges(Side::kU) + 2 * g.num_edges());
  EXPECT_GT(bound, 0u);
  // min is symmetric, so the swapped graph has the same bound.
  EXPECT_EQ(g.SwappedCopy().CountingCostBound(), bound);
}

TEST(BipartiteGraphTest, SwappedCopySwapsSides) {
  const BipartiteGraph g = MakeSmall();
  const BipartiteGraph s = g.SwappedCopy();
  EXPECT_EQ(s.num_u(), g.num_v());
  EXPECT_EQ(s.num_v(), g.num_u());
  EXPECT_EQ(s.num_edges(), g.num_edges());
  EXPECT_TRUE(s.Validate().empty()) << s.Validate();
  // (u0, v1) in g becomes (u1, v0) in s.
  const auto n1 = s.Neighbors(1);
  EXPECT_TRUE(std::find(n1.begin(), n1.end(), s.VGlobal(0)) != n1.end());
}

TEST(BipartiteGraphTest, SwappedTwiceIsIdentity) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 200, 0.4, 0.4, 6);
  const BipartiteGraph round_trip = g.SwappedCopy().SwappedCopy();
  EXPECT_EQ(round_trip.ToEdges(), g.ToEdges());
}

TEST(BipartiteGraphTest, DegreeDescendingRanksIsPermutationOrderedByDegree) {
  const BipartiteGraph g = ChungLuBipartite(80, 60, 300, 0.7, 0.2, 8);
  const std::vector<VertexId> rank = g.DegreeDescendingRanks();
  ASSERT_EQ(rank.size(), g.num_vertices());
  std::vector<VertexId> inverse(rank.size(), kInvalidVertex);
  for (VertexId w = 0; w < rank.size(); ++w) {
    ASSERT_LT(rank[w], rank.size());
    ASSERT_EQ(inverse[rank[w]], kInvalidVertex) << "rank not a permutation";
    inverse[rank[w]] = w;
  }
  for (VertexId r = 0; r + 1 < inverse.size(); ++r) {
    EXPECT_GE(g.Degree(inverse[r]), g.Degree(inverse[r + 1]));
  }
}

TEST(BipartiteGraphTest, ToEdgesRoundTrip) {
  const std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 0}, {2, 1}};
  const BipartiteGraph g = BipartiteGraph::FromEdges(3, 2, edges);
  EXPECT_EQ(g.ToEdges(), edges);
}

TEST(BipartiteGraphTest, AverageDegree) {
  const BipartiteGraph g = MakeSmall();
  EXPECT_DOUBLE_EQ(g.AverageDegree(Side::kU), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.AverageDegree(Side::kV), 2.0);
}

}  // namespace
}  // namespace receipt
