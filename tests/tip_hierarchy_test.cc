// Tests for k-tip hierarchy retrieval from tip numbers (Definition 1).

#include "tip/tip_hierarchy.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tip/receipt.h"

namespace receipt {
namespace {

TEST(TipHierarchyTest, SmallExampleLevels) {
  const BipartiteGraph g = SmallExampleGraph();
  TipOptions options;
  options.num_partitions = 3;
  options.num_threads = 2;
  const TipResult r = ReceiptDecompose(g, options);

  // k=18: the K_{4,4} core only, one butterfly-connected component.
  auto tips18 = ExtractKTips(g, Side::kU, r.tip_numbers, 18);
  ASSERT_EQ(tips18.size(), 1u);
  EXPECT_EQ(tips18[0].vertices, (std::vector<VertexId>{0, 1, 2, 3}));

  // k=5: core + u4 + u5 (all butterfly-connected through v0, v1).
  auto tips5 = ExtractKTips(g, Side::kU, r.tip_numbers, 5);
  ASSERT_EQ(tips5.size(), 1u);
  EXPECT_EQ(tips5[0].vertices, (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));

  // k=1: same as k=5 — u6, u7 have no butterflies at all.
  auto tips1 = ExtractKTips(g, Side::kU, r.tip_numbers, 1);
  ASSERT_EQ(tips1.size(), 1u);
  EXPECT_EQ(tips1[0].vertices.size(), 6u);

  // k=0: u6 and u7 appear as singleton components.
  auto tips0 = ExtractKTips(g, Side::kU, r.tip_numbers, 0);
  ASSERT_EQ(tips0.size(), 3u);
  EXPECT_EQ(tips0[0].vertices.size(), 6u);
  EXPECT_EQ(tips0[1].vertices.size(), 1u);
  EXPECT_EQ(tips0[2].vertices.size(), 1u);
}

TEST(TipHierarchyTest, HierarchyIsNested) {
  // Every (k+δ)-tip must be contained in some k-tip.
  const BipartiteGraph g = ChungLuBipartite(150, 100, 700, 0.6, 0.6, 151);
  TipOptions options;
  options.num_partitions = 6;
  options.num_threads = 2;
  const TipResult r = ReceiptDecompose(g, options);
  const Count max_tip = r.MaxTipNumber();
  const Count k_low = max_tip / 4;
  const Count k_high = max_tip / 2;
  if (k_high <= k_low) GTEST_SKIP() << "graph too sparse for nesting check";

  const auto low_tips = ExtractKTips(g, Side::kU, r.tip_numbers, k_low);
  const auto high_tips = ExtractKTips(g, Side::kU, r.tip_numbers, k_high);
  for (const KTip& high : high_tips) {
    bool contained = false;
    for (const KTip& low : low_tips) {
      contained = std::includes(low.vertices.begin(), low.vertices.end(),
                                high.vertices.begin(), high.vertices.end());
      if (contained) break;
    }
    EXPECT_TRUE(contained) << "a " << k_high
                           << "-tip is not nested in any " << k_low
                           << "-tip";
  }
}

TEST(TipHierarchyTest, DisconnectedBlocksSeparate) {
  // Two disjoint K_{3,3} blocks: one 4-tip each (θ = 2·C(3,2) = 6... each u
  // has 2·3 = 6 butterflies; θ = 6 for all), no cross connectivity.
  std::vector<BipartiteGraph::Edge> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 3; ++v) {
      edges.push_back({u, v});
      edges.push_back({u + 3, v + 3});
    }
  }
  const BipartiteGraph g = BipartiteGraph::FromEdges(6, 6, edges);
  TipOptions options;
  options.num_threads = 2;
  const TipResult r = ReceiptDecompose(g, options);
  const auto tips = ExtractKTips(g, Side::kU, r.tip_numbers, 1);
  ASSERT_EQ(tips.size(), 2u);
  EXPECT_EQ(tips[0].vertices.size(), 3u);
  EXPECT_EQ(tips[1].vertices.size(), 3u);
}

TEST(TipHierarchyTest, KAboveMaxIsEmpty) {
  const BipartiteGraph g = SmallExampleGraph();
  TipOptions options;
  const TipResult r = ReceiptDecompose(g, options);
  EXPECT_TRUE(ExtractKTips(g, Side::kU, r.tip_numbers, 19).empty());
}

TEST(TipHierarchyTest, HistogramSumsToVertexCount) {
  const BipartiteGraph g = ChungLuBipartite(120, 90, 500, 0.5, 0.5, 157);
  TipOptions options;
  options.num_threads = 2;
  const TipResult r = ReceiptDecompose(g, options);
  const auto histogram = TipHistogram(r.tip_numbers);
  uint64_t total = 0;
  Count prev = kInvalidCount;
  for (const auto& [value, count] : histogram) {
    if (prev != kInvalidCount) EXPECT_GT(value, prev);
    prev = value;
    total += count;
  }
  EXPECT_EQ(total, g.num_u());
}

}  // namespace
}  // namespace receipt
