// Tests for the wedge-sampling approximate butterfly counter.

#include "butterfly/approx_count.h"

#include <gtest/gtest.h>

#include <cmath>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"

namespace receipt {
namespace {

TEST(ApproxCountTest, ExactOnCompleteBipartite) {
  // Every wedge in K_{a,b} closes with the same count, so even the
  // estimator is exact regardless of which wedges are drawn.
  const BipartiteGraph g = CompleteBipartite(6, 5);
  const ApproxCountResult r = ApproxTotalButterflies(g, 500, 7);
  EXPECT_DOUBLE_EQ(r.estimate,
                   static_cast<double>(Choose2(6) * Choose2(5)));
  EXPECT_EQ(r.samples, 500u);
  EXPECT_DOUBLE_EQ(r.relative_std_error, 0.0);
}

TEST(ApproxCountTest, ZeroOnButterflyFreeGraphs) {
  EXPECT_DOUBLE_EQ(ApproxTotalButterflies(Star(30), 200, 1).estimate, 0.0);
  const BipartiteGraph empty = BipartiteGraph::FromEdges(5, 5, {});
  const ApproxCountResult r = ApproxTotalButterflies(empty, 200, 1);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  EXPECT_EQ(r.samples, 0u);  // no wedges to sample
}

TEST(ApproxCountTest, DeterministicForFixedSeed) {
  const BipartiteGraph g = ChungLuBipartite(200, 150, 900, 0.5, 0.5, 401);
  const ApproxCountResult a = ApproxTotalButterflies(g, 1000, 99);
  const ApproxCountResult b = ApproxTotalButterflies(g, 1000, 99);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(ApproxCountTest, ConvergesToExactCount) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 403);
  const double exact = static_cast<double>(TotalButterflies(g, 2));
  ASSERT_GT(exact, 0.0);
  // Average several seeds at a healthy sample size; tolerance 15%.
  double sum = 0.0;
  constexpr int kSeeds = 8;
  for (int seed = 0; seed < kSeeds; ++seed) {
    sum += ApproxTotalButterflies(g, 20000, 1000 + seed).estimate;
  }
  const double mean = sum / kSeeds;
  EXPECT_NEAR(mean / exact, 1.0, 0.15)
      << "mean=" << mean << " exact=" << exact;
}

TEST(ApproxCountTest, ReportsStdErrorOnSkewedGraphs) {
  const BipartiteGraph g = ChungLuBipartite(500, 100, 2000, 0.3, 0.9, 405);
  const ApproxCountResult r = ApproxTotalButterflies(g, 5000, 11);
  EXPECT_GT(r.estimate, 0.0);
  EXPECT_GT(r.relative_std_error, 0.0);
}

TEST(ApproxCountTest, SideSupportSumIsTwiceTotal) {
  const BipartiteGraph g = ChungLuBipartite(250, 180, 1200, 0.5, 0.5, 407);
  const double exact_total = static_cast<double>(TotalButterflies(g, 2));
  for (const Side side : {Side::kU, Side::kV}) {
    double sum = 0.0;
    constexpr int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      sum += ApproxSideSupportSum(g, side, 20000, 2000 + seed);
    }
    const double mean = sum / kSeeds;
    EXPECT_NEAR(mean / (2.0 * exact_total), 1.0, 0.2) << SideName(side);
  }
}

TEST(ApproxCountTest, ZeroSamplesIsSafe) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  const ApproxCountResult r = ApproxTotalButterflies(g, 0, 3);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  EXPECT_EQ(r.samples, 0u);
}

}  // namespace
}  // namespace receipt
