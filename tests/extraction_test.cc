// Tests for the pluggable min-extraction backends: the three structures
// must drive BUP and RECEIPT FD to identical tip numbers (§5.1 ablation
// correctness).

#include "engine/extraction.h"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/receipt.h"

namespace receipt {
namespace {

TEST(ExtractionTest, BackendsPopIdenticalSequencesWithoutUpdates) {
  std::vector<Count> support = {9, 2, 7, 2, 5, 0};
  for (const MinExtraction kind :
       {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
        MinExtraction::kPairingHeap}) {
    MinExtractor extractor(kind, support,
                           static_cast<VertexId>(support.size()));
    std::vector<Count> keys;
    while (auto e = extractor.PopMin(support)) keys.push_back(e->first);
    EXPECT_EQ(keys, (std::vector<Count>{0, 2, 2, 5, 7, 9}))
        << static_cast<int>(kind);
  }
}

TEST(ExtractionTest, NotifyUpdateReordersAllBackends) {
  for (const MinExtraction kind :
       {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
        MinExtraction::kPairingHeap}) {
    std::vector<Count> support = {10, 20, 30};
    MinExtractor extractor(kind, support, 3);
    support[2] = 1;
    extractor.NotifyUpdate(2, 1);
    auto e = extractor.PopMin(support);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->second, 2u) << static_cast<int>(kind);
    EXPECT_EQ(e->first, 1u) << static_cast<int>(kind);
  }
}

TEST(ExtractionTest, RebuildReseedsUnextracted) {
  for (const MinExtraction kind :
       {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
        MinExtraction::kPairingHeap}) {
    std::vector<Count> support = {4, 8, 15};
    MinExtractor extractor(kind, support, 3);
    ASSERT_EQ(extractor.PopMin(support)->second, 0u);
    // Wholesale support replacement (HUC re-count): values only decrease.
    support = {4, 3, 2};
    extractor.Rebuild(support);
    EXPECT_EQ(extractor.PopMin(support)->second, 2u)
        << static_cast<int>(kind);
    EXPECT_EQ(extractor.PopMin(support)->second, 1u)
        << static_cast<int>(kind);
    EXPECT_FALSE(extractor.PopMin(support).has_value())
        << static_cast<int>(kind);
  }
}

using BackendSweepParam = std::tuple<MinExtraction, Side, uint64_t>;

class ExtractionBackendSweep
    : public testing::TestWithParam<BackendSweepParam> {};

TEST_P(ExtractionBackendSweep, BupAndReceiptAgreeAcrossBackends) {
  const auto [kind, side, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(150, 100, 700, 0.6, 0.7, seed);

  TipOptions reference_options;
  reference_options.side = side;
  const TipResult reference = BupDecompose(g, reference_options);

  TipOptions options = reference_options;
  options.min_extraction = kind;
  options.num_threads = 2;
  options.num_partitions = 8;
  const TipResult bup = BupDecompose(g, options);
  const TipResult receipt = ReceiptDecompose(g, options);
  EXPECT_EQ(bup.tip_numbers, reference.tip_numbers);
  EXPECT_EQ(receipt.tip_numbers, reference.tip_numbers);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtractionBackendSweep,
    testing::Combine(testing::Values(MinExtraction::kDAryHeap,
                                     MinExtraction::kBucketQueue,
                                     MinExtraction::kPairingHeap),
                     testing::Values(Side::kU, Side::kV),
                     testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace receipt
