// Determinism guarantees: the machine-independent quantities the paper
// reports (wedge counts, sync rounds, subset structure) must be identical
// across thread counts and repeated runs — this is what makes the benchmark
// counters reproducible.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tip/parb.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

TipOptions Options(int threads) {
  TipOptions options;
  options.num_threads = threads;
  options.num_partitions = 10;
  return options;
}

TEST(DeterminismTest, ReceiptCountersInvariantAcrossThreads) {
  const BipartiteGraph g = ChungLuBipartite(400, 250, 1800, 0.6, 0.7, 601);
  const TipResult reference = ReceiptDecompose(g, Options(1));
  for (const int threads : {2, 4, 8}) {
    const TipResult r = ReceiptDecompose(g, Options(threads));
    EXPECT_EQ(r.tip_numbers, reference.tip_numbers) << threads;
    EXPECT_EQ(r.stats.TotalWedges(), reference.stats.TotalWedges())
        << threads;
    EXPECT_EQ(r.stats.sync_rounds, reference.stats.sync_rounds) << threads;
    EXPECT_EQ(r.stats.huc_recounts, reference.stats.huc_recounts)
        << threads;
    EXPECT_EQ(r.stats.num_subsets, reference.stats.num_subsets) << threads;
    EXPECT_EQ(r.range_bounds, reference.range_bounds) << threads;
    EXPECT_EQ(r.subset_of, reference.subset_of) << threads;
  }
}

TEST(DeterminismTest, ReceiptRepeatedRunsIdentical) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1400, 0.5, 0.8, 603);
  const TipResult a = ReceiptDecompose(g, Options(4));
  const TipResult b = ReceiptDecompose(g, Options(4));
  EXPECT_EQ(a.tip_numbers, b.tip_numbers);
  EXPECT_EQ(a.stats.TotalWedges(), b.stats.TotalWedges());
  EXPECT_EQ(a.stats.dgm_compactions, b.stats.dgm_compactions);
}

TEST(DeterminismTest, ParbRoundsInvariantAcrossThreads) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1200, 0.5, 0.5, 607);
  const TipResult reference = ParbDecompose(g, Options(1));
  for (const int threads : {2, 4}) {
    const TipResult r = ParbDecompose(g, Options(threads));
    EXPECT_EQ(r.tip_numbers, reference.tip_numbers);
    EXPECT_EQ(r.stats.sync_rounds, reference.stats.sync_rounds);
    EXPECT_EQ(r.stats.wedges_other, reference.stats.wedges_other);
  }
}

TEST(DeterminismTest, ReceiptWingInvariantAcrossThreadsAndPartitions) {
  const BipartiteGraph g = ChungLuBipartite(100, 70, 450, 0.5, 0.6, 609);
  const WingResult reference = WingDecompose(g, 1);
  for (const int threads : {1, 2, 4}) {
    for (const int partitions : {2, 8, 32}) {
      ReceiptWingOptions options;
      options.num_threads = threads;
      options.num_partitions = partitions;
      const WingResult r = ReceiptWingDecompose(g, options);
      EXPECT_EQ(r.wing_numbers, reference.wing_numbers)
          << "T=" << threads << " P=" << partitions;
    }
  }
}

TEST(DeterminismTest, GeneratorsStableAcrossCalls) {
  for (const std::string& name : PaperAnalogueNames()) {
    const BipartiteGraph a = MakePaperAnalogue(name);
    const BipartiteGraph b = MakePaperAnalogue(name);
    EXPECT_EQ(a.ToEdges(), b.ToEdges()) << name;
  }
}

}  // namespace
}  // namespace receipt
