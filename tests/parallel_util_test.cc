// Tests for the parallel primitives substrate.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/stats.h"
#include "util/types.h"

namespace receipt {
namespace {

TEST(ParallelUtilTest, ParallelForCoversAllIndices) {
  for (const int threads : {1, 2, 4}) {
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(hits.size(), threads, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelUtilTest, ParallelForWithContextUsesDistinctContexts) {
  struct Ctx {
    uint64_t sum = 0;
  };
  std::vector<Ctx> ctxs(4);
  ParallelForWithContext(10000, 4, ctxs,
                         [](Ctx& ctx, size_t i) { ctx.sum += i; });
  uint64_t total = 0;
  for (const Ctx& c : ctxs) total += c.sum;
  EXPECT_EQ(total, 10000ull * 9999 / 2);
}

TEST(ParallelUtilTest, AtomicAddConcurrent) {
  uint64_t value = 0;
  ParallelFor(10000, 4, [&value](size_t) { AtomicAdd(&value, uint64_t{1}); });
  EXPECT_EQ(value, 10000u);
}

TEST(ParallelUtilTest, AtomicClampedSubBasics) {
  Count v = 100;
  EXPECT_EQ(AtomicClampedSub(&v, Count{30}, Count{10}), 70u);
  EXPECT_EQ(v, 70u);
  EXPECT_EQ(AtomicClampedSub(&v, Count{65}, Count{10}), 10u);  // clamps
  EXPECT_EQ(v, 10u);
  EXPECT_EQ(AtomicClampedSub(&v, Count{5}, Count{10}), 10u);  // at floor
}

TEST(ParallelUtilTest, AtomicClampedSubExactBoundary) {
  Count v = 40;
  // cur − delta == floor exactly.
  EXPECT_EQ(AtomicClampedSub(&v, Count{30}, Count{10}), 10u);
}

TEST(ParallelUtilTest, AtomicClampedSubConcurrentNeverBelowFloor) {
  Count v = 1000;
  ParallelFor(500, 4, [&v](size_t) {
    AtomicClampedSub(&v, Count{3}, Count{100});
  });
  EXPECT_EQ(v, 100u);  // 500·3 > 900 available above the floor
}

TEST(ParallelUtilTest, AtomicClampedSubConcurrentExactSum) {
  Count v = 10000;
  ParallelFor(100, 4, [&v](size_t) {
    AtomicClampedSub(&v, Count{7}, Count{0});
  });
  EXPECT_EQ(v, 10000u - 700u);  // no decrement may be lost (Lemma 2)
}

TEST(ParallelUtilTest, AtomicMax) {
  Count v = 5;
  AtomicMax(&v, Count{3});
  EXPECT_EQ(v, 5u);
  AtomicMax(&v, Count{9});
  EXPECT_EQ(v, 9u);
  ParallelFor(1000, 4, [&v](size_t i) { AtomicMax(&v, Count{i}); });
  EXPECT_EQ(v, 999u);
}

TEST(ParallelUtilTest, ExclusivePrefixSum) {
  std::vector<uint64_t> values = {3, 1, 4, 1, 5};
  const uint64_t total = ExclusivePrefixSum(values);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(values, (std::vector<uint64_t>{0, 3, 4, 8, 9}));
  std::vector<uint64_t> empty;
  EXPECT_EQ(ExclusivePrefixSum(empty), 0u);
}

TEST(ParallelUtilTest, PerThreadCountersFold) {
  PerThreadCounters counters(4);
  ParallelFor(4, 4, [&counters](size_t i) {
    counters.Add(ThreadId(), i + 1);
  });
  EXPECT_EQ(counters.Total(), 1u + 2 + 3 + 4);
}

TEST(ParallelUtilTest, PeelStatsMergeAndToString) {
  PeelStats a;
  a.wedges_cd = 10;
  a.sync_rounds = 2;
  a.seconds_cd = 0.5;
  PeelStats b;
  b.wedges_cd = 5;
  b.wedges_fd = 7;
  b.huc_recounts = 1;
  a.Merge(b);
  EXPECT_EQ(a.wedges_cd, 15u);
  EXPECT_EQ(a.wedges_fd, 7u);
  EXPECT_EQ(a.huc_recounts, 1u);
  EXPECT_EQ(a.TotalWedges(), 22u);
  EXPECT_NE(a.ToString().find("sync_rounds=2"), std::string::npos);
}

}  // namespace
}  // namespace receipt
