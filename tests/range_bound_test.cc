// FindRangeBound (findHi, Alg. 3 lines 16-21) after the selection rewrite:
// quickselect-style partial selection must return exactly what the legacy
// full-sort implementation returned — including at ties, at the
// total-mass-below-target fallback, and for fractional double targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <utility>
#include <vector>

#include "engine/peel_kernels.h"

namespace receipt {
namespace {

using SupportCost = std::vector<std::pair<Count, Count>>;

/// The pre-rewrite reference: full sort + double cumulative walk.
Count ReferenceBound(SupportCost sc, double target) {
  if (sc.empty()) return kInvalidCount;
  std::sort(sc.begin(), sc.end());
  double cumulative = 0.0;
  for (const auto& [support, cost] : sc) {
    cumulative += static_cast<double>(cost);
    if (cumulative >= target) return support + 1;
  }
  return sc.back().first + 1;
}

TEST(RangeBoundSelectionTest, TieBreakingAtEqualSupportValues) {
  // All the cost mass sits on one support value: the crossing support is
  // that value no matter which of the tied entries "crosses" — the bound
  // must not depend on the order of equal-support entries.
  const SupportCost base = {{5, 3}, {5, 3}, {5, 3}, {2, 1}};
  SupportCost sc = base;
  EXPECT_EQ(engine::FindRangeBound(sc, 4.0), 6u);
  // Crossing exactly at the first tied entry, and past the last one.
  sc = base;
  EXPECT_EQ(engine::FindRangeBound(sc, 2.0), 6u);
  sc = base;
  EXPECT_EQ(engine::FindRangeBound(sc, 10.0), 6u);
  // Below the tie block entirely.
  sc = base;
  EXPECT_EQ(engine::FindRangeBound(sc, 1.0), 3u);

  // Every permutation of a tie-heavy input yields the same bound.
  SupportCost perm = {{7, 2}, {7, 5}, {3, 1}, {7, 2}, {3, 4}, {9, 1}};
  std::sort(perm.begin(), perm.end());
  do {
    for (const double target : {1.0, 4.0, 5.0, 6.0, 14.0, 15.0, 100.0}) {
      SupportCost copy = perm;
      EXPECT_EQ(engine::FindRangeBound(copy, target),
                ReferenceBound(perm, target))
          << "target " << target;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(RangeBoundSelectionTest, MatchesReferenceOnRandomInputs) {
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 60; ++trial) {
    // Large enough to exercise the partition loop (> the sort cutoff),
    // with heavy support collisions so ties cross partition pivots.
    const size_t n = 200 + rng() % 300;
    const Count support_range = 1 + rng() % 40;
    SupportCost sc(n);
    Count total = 0;
    for (auto& [support, cost] : sc) {
      support = rng() % support_range;
      cost = rng() % 9;  // zero-cost entries must not move the bound
      total += cost;
    }
    for (const double target :
         {1.0, 2.5, static_cast<double>(total) / 7.0,
          static_cast<double>(total) / 2.0, static_cast<double>(total),
          static_cast<double>(total) + 5.0}) {
      SupportCost copy = sc;
      EXPECT_EQ(engine::FindRangeBound(copy, target),
                ReferenceBound(sc, target))
          << "trial " << trial << " target " << target;
    }
  }
}

TEST(RangeBoundSelectionTest, EarlyTargetTouchesOnlyLowPartitions) {
  // A tiny target lands on the minimum support: the partial selection must
  // return min+1 without needing the high entries ordered (sanity via the
  // result; the cost argument is the point of the rewrite).
  std::mt19937 rng(99);
  SupportCost sc(5000);
  for (auto& [support, cost] : sc) {
    support = 10 + rng() % 100000;
    cost = 1 + rng() % 5;
  }
  sc[4999] = {3, 2};  // unique minimum, at the end of the array
  SupportCost copy = sc;
  EXPECT_EQ(engine::FindRangeBound(copy, 1.0), 4u);
}

TEST(RangeBoundSelectionTest, IntegerNeedMatchesDoubleTarget) {
  // FindRangeBoundNeed is the shared core (legacy path and SupportIndex
  // refine): ceil-converted double targets must agree with integer needs.
  const SupportCost base = {{4, 3}, {1, 2}, {9, 6}, {4, 1}};
  for (const double target : {0.2, 1.0, 2.0, 2.1, 5.0, 5.9, 6.0, 11.5}) {
    SupportCost a = base;
    SupportCost b = base;
    const Count need =
        target <= 1.0 ? 1 : static_cast<Count>(std::ceil(target));
    EXPECT_EQ(engine::FindRangeBound(a, target),
              engine::FindRangeBoundNeed(b, need))
        << "target " << target;
  }
}

TEST(RangeBoundSelectionTest, EmptyAndDegenerate) {
  SupportCost empty;
  EXPECT_EQ(engine::FindRangeBound(empty, 10.0), kInvalidCount);
  EXPECT_EQ(engine::FindRangeBoundNeed(empty, 1), kInvalidCount);
  SupportCost one = {{17, 4}};
  EXPECT_EQ(engine::FindRangeBound(one, 4.0), 18u);
  one = {{17, 4}};
  EXPECT_EQ(engine::FindRangeBound(one, 5.0), 18u);  // short mass → max+1
}

}  // namespace
}  // namespace receipt
