// End-to-end tests for ReceiptDecompose: equivalence with sequential BUP on
// structured and random graphs, across both sides, partition counts, thread
// counts and optimization flags (Theorem 2).

#include "tip/receipt.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/tip_common.h"

namespace receipt {
namespace {

TipOptions Options(Side side, int partitions, int threads, bool huc,
                   bool dgm) {
  TipOptions options;
  options.side = side;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.use_huc = huc;
  options.use_dgm = dgm;
  return options;
}

TEST(ReceiptTest, SmallExampleKnownTipNumbers) {
  const BipartiteGraph g = SmallExampleGraph();
  const TipResult result = ReceiptDecompose(g, Options(Side::kU, 3, 2,
                                                       true, true));
  const std::vector<Count> expected = {18, 18, 18, 18, 5, 5, 0, 0};
  EXPECT_EQ(result.tip_numbers, expected);
}

TEST(ReceiptTest, SmallExampleMatchesBupOnVSide) {
  const BipartiteGraph g = SmallExampleGraph();
  const TipResult receipt_result =
      ReceiptDecompose(g, Options(Side::kV, 2, 2, true, true));
  const TipResult bup_result = BupDecompose(g, Options(Side::kV, 1, 1,
                                                       false, false));
  EXPECT_EQ(receipt_result.tip_numbers, bup_result.tip_numbers);
}

TEST(ReceiptTest, CompleteBipartiteUniformTipNumbers) {
  // In K_{a,b} every u participates in (a-1)·C(b,2) butterflies and the
  // graph is fully symmetric, so every tip number equals that count.
  const BipartiteGraph g = CompleteBipartite(5, 4);
  const TipResult result = ReceiptDecompose(g, Options(Side::kU, 4, 2,
                                                       true, true));
  const Count expected = 4 * Choose2(4);
  for (const Count t : result.tip_numbers) EXPECT_EQ(t, expected);
}

TEST(ReceiptTest, StarHasZeroTipNumbers) {
  const BipartiteGraph g = Star(16);
  const TipResult result = ReceiptDecompose(g, Options(Side::kU, 4, 2,
                                                       true, true));
  for (const Count t : result.tip_numbers) EXPECT_EQ(t, 0u);
}

TEST(ReceiptTest, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(0, 0, {});
  const TipResult result = ReceiptDecompose(g, Options(Side::kU, 4, 2,
                                                       true, true));
  EXPECT_TRUE(result.tip_numbers.empty());
}

TEST(ReceiptTest, RangeBoundsAreStrictlyIncreasingAndSound) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 7);
  const TipResult r = ReceiptDecompose(g, Options(Side::kU, 8, 2, true,
                                                  true));
  ASSERT_EQ(r.range_bounds.size(), r.subsets.size() + 1);
  for (size_t i = 0; i + 1 < r.range_bounds.size(); ++i) {
    EXPECT_LT(r.range_bounds[i], r.range_bounds[i + 1]);
  }
  // Theorem 1: every vertex's tip number lies inside its subset's range.
  for (VertexId u = 0; u < g.num_u(); ++u) {
    const uint32_t s = r.subset_of[u];
    EXPECT_GE(r.tip_numbers[u], r.range_bounds[s]) << "vertex " << u;
    EXPECT_LT(r.tip_numbers[u], r.range_bounds[s + 1]) << "vertex " << u;
  }
}

// -- parameterized equivalence sweep --------------------------------------

struct SweepParam {
  VertexId num_u;
  VertexId num_v;
  uint64_t num_edges;
  double alpha_u;
  double alpha_v;
  uint64_t seed;
  Side side;
  int partitions;
  int threads;
  bool huc;
  bool dgm;
};

std::string SweepName(const testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = "g" + std::to_string(p.num_u) + "x" +
                     std::to_string(p.num_v) + "e" +
                     std::to_string(p.num_edges) + "s" +
                     std::to_string(p.seed) + SideName(p.side) + "P" +
                     std::to_string(p.partitions) + "T" +
                     std::to_string(p.threads);
  name += p.huc ? "huc1" : "huc0";
  name += p.dgm ? "dgm1" : "dgm0";
  return name;
}

class ReceiptEquivalenceSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ReceiptEquivalenceSweep, MatchesBup) {
  const SweepParam& p = GetParam();
  const BipartiteGraph g = ChungLuBipartite(p.num_u, p.num_v, p.num_edges,
                                            p.alpha_u, p.alpha_v, p.seed);
  const TipResult receipt_result = ReceiptDecompose(
      g, Options(p.side, p.partitions, p.threads, p.huc, p.dgm));
  const TipResult bup_result =
      BupDecompose(g, Options(p.side, 1, 1, false, false));
  ASSERT_EQ(receipt_result.tip_numbers.size(),
            bup_result.tip_numbers.size());
  for (size_t u = 0; u < bup_result.tip_numbers.size(); ++u) {
    ASSERT_EQ(receipt_result.tip_numbers[u], bup_result.tip_numbers[u])
        << "vertex " << u;
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  // Graph shapes × seeds × both sides, default optimizations.
  for (const auto& [nu, nv, m, au, av] :
       std::vector<std::tuple<VertexId, VertexId, uint64_t, double, double>>{
           {60, 40, 250, 0.3, 0.3},
           {120, 40, 500, 0.7, 0.9},
           {80, 80, 600, 0.0, 0.0},
           {200, 150, 900, 0.5, 0.5},
       }) {
    for (const uint64_t seed : {1u, 2u, 3u}) {
      for (const Side side : {Side::kU, Side::kV}) {
        params.push_back({nu, nv, m, au, av, seed, side, 6, 3, true, true});
      }
    }
  }
  // Optimization-flag matrix on one shape.
  for (const bool huc : {false, true}) {
    for (const bool dgm : {false, true}) {
      for (const Side side : {Side::kU, Side::kV}) {
        params.push_back(
            {150, 100, 800, 0.6, 0.8, 11, side, 8, 2, huc, dgm});
      }
    }
  }
  // Partition-count sweep (P=1 degenerates to one coarse range).
  for (const int partitions : {1, 2, 4, 16, 64}) {
    params.push_back(
        {100, 80, 500, 0.5, 0.5, 5, Side::kU, partitions, 2, true, true});
  }
  // Thread-count sweep.
  for (const int threads : {1, 2, 4, 8}) {
    params.push_back(
        {100, 80, 500, 0.4, 0.7, 9, Side::kU, 8, threads, true, true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReceiptEquivalenceSweep,
                         testing::ValuesIn(MakeSweep()), SweepName);

}  // namespace
}  // namespace receipt
