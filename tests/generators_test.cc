// Unit tests for the synthetic dataset generators.

#include "graph/generators.h"

#include <gtest/gtest.h>

#include "butterfly/butterfly_count.h"

namespace receipt {
namespace {

TEST(GeneratorsTest, RandomBipartiteSizesAndDeterminism) {
  const BipartiteGraph a = RandomBipartite(100, 50, 400, 42);
  EXPECT_EQ(a.num_u(), 100u);
  EXPECT_EQ(a.num_v(), 50u);
  EXPECT_EQ(a.num_edges(), 400u);
  EXPECT_TRUE(a.Validate().empty());
  const BipartiteGraph b = RandomBipartite(100, 50, 400, 42);
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
  const BipartiteGraph c = RandomBipartite(100, 50, 400, 43);
  EXPECT_NE(a.ToEdges(), c.ToEdges());
}

TEST(GeneratorsTest, RandomBipartiteCapsAtCompleteGraph) {
  const BipartiteGraph g = RandomBipartite(5, 4, 1000, 1);
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(GeneratorsTest, RandomBipartiteDensePathUsesEnumeration) {
  const BipartiteGraph g = RandomBipartite(20, 20, 350, 7);
  EXPECT_EQ(g.num_edges(), 350u);
  EXPECT_TRUE(g.Validate().empty());
}

TEST(GeneratorsTest, ChungLuDeterministicAndSkewed) {
  const BipartiteGraph a = ChungLuBipartite(500, 300, 2000, 0.9, 0.9, 9);
  const BipartiteGraph b = ChungLuBipartite(500, 300, 2000, 0.9, 0.9, 9);
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
  EXPECT_TRUE(a.Validate().empty());
  // Heavy skew: vertex 0 should have far more than the average degree.
  EXPECT_GT(a.Degree(0), 5 * a.num_edges() / a.num_u());
}

TEST(GeneratorsTest, ChungLuZeroAlphaIsUniformish) {
  const BipartiteGraph g = ChungLuBipartite(200, 200, 1000, 0.0, 0.0, 11);
  EXPECT_EQ(g.num_edges(), 1000u);
  // No vertex should dominate with alpha = 0.
  for (VertexId u = 0; u < g.num_u(); ++u) EXPECT_LT(g.Degree(u), 40u);
}

TEST(GeneratorsTest, CompleteBipartiteClosedFormButterflies) {
  const BipartiteGraph g = CompleteBipartite(6, 5);
  EXPECT_EQ(g.num_edges(), 30u);
  // ⊲⊳_G = C(6,2)·C(5,2) and each u participates in (6−1 choose 1 paired
  // pairs) = 5·C(5,2) butterflies... precisely (a−1)·C(b,2) per u.
  EXPECT_EQ(TotalButterflies(g, 2), Choose2(6) * Choose2(5));
  const auto support = CountButterflies(g, 2);
  for (VertexId u = 0; u < 6; ++u) {
    EXPECT_EQ(support[u], 5 * Choose2(5));
  }
}

TEST(GeneratorsTest, StarHasNoButterflies) {
  const BipartiteGraph g = Star(20);
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_EQ(TotalButterflies(g, 1), 0u);
}

TEST(GeneratorsTest, AffiliationGraphPlantsDenseBlocks) {
  const std::vector<CommunitySpec> communities = {
      {.num_users = 10, .num_items = 8, .density = 1.0},
      {.num_users = 6, .num_items = 5, .density = 1.0},
  };
  const BipartiteGraph g = AffiliationGraph(100, 50, communities, 50, 13);
  EXPECT_TRUE(g.Validate().empty());
  // Community members have at least their block degree.
  for (VertexId u = 0; u < 10; ++u) EXPECT_GE(g.Degree(u), 8u);
  for (VertexId u = 10; u < 16; ++u) EXPECT_GE(g.Degree(u), 5u);
  // Background-only vertices are sparse.
  uint64_t background_degree = 0;
  for (VertexId u = 16; u < 100; ++u) background_degree += g.Degree(u);
  EXPECT_LE(background_degree, 50u);
}

TEST(GeneratorsTest, SmallExampleGraphButterflies) {
  const BipartiteGraph g = SmallExampleGraph();
  EXPECT_EQ(g.num_u(), 8u);
  EXPECT_EQ(g.num_v(), 7u);
  const auto support = CountButterflies(g, 1);
  const std::vector<Count> expected_u = {20, 20, 20, 20, 5, 5, 0, 0};
  for (VertexId u = 0; u < 8; ++u) {
    EXPECT_EQ(support[u], expected_u[u]) << "u" << u;
  }
}

TEST(GeneratorsTest, PaperAnaloguesExistAndAreDeterministic) {
  for (const std::string& name : PaperAnalogueNames()) {
    const BipartiteGraph g = MakePaperAnalogue(name);
    EXPECT_GT(g.num_edges(), 0u) << name;
    EXPECT_TRUE(g.Validate().empty()) << name;
    const BipartiteGraph again = MakePaperAnalogue(name);
    EXPECT_EQ(g.num_edges(), again.num_edges()) << name;
    EXPECT_FALSE(PaperAnalogueDescription(name).empty());
  }
}

TEST(GeneratorsTest, TrackersAnalogueHasExtremeSkew) {
  // The "tr" analogue must reproduce the TrU regime: V-side mega-hubs so
  // U-side peeling wedges vastly exceed the counting bound (r ≫ 1, §5.2.2).
  const BipartiteGraph g = MakePaperAnalogue("tr");
  const double r = static_cast<double>(g.TotalWedges(Side::kU)) /
                   static_cast<double>(g.CountingCostBound());
  EXPECT_GT(r, 50.0);
}

}  // namespace
}  // namespace receipt
