// Cross-algorithm equivalence through the unified engine: BUP, ParB and
// RECEIPT must produce identical tip numbers, and WingDecompose /
// ReceiptWingDecompose identical wing numbers, on randomized sweeps — all
// five drivers now route through src/engine/, so these sweeps pin the
// engine's kernels against each other (Theorem 2 and the §7 extension).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/parb.h"
#include "tip/receipt.h"
#include "wing/receipt_wing.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

class TipEngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, uint32_t>> {};

TEST_P(TipEngineSweep, AllTipAlgorithmsAgree) {
  const auto [num_u, num_v, num_edges, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(
      static_cast<VertexId>(num_u), static_cast<VertexId>(num_v),
      static_cast<uint64_t>(num_edges), 0.6, 0.6, seed);

  for (const Side side : {Side::kU, Side::kV}) {
    TipOptions bup_options;
    bup_options.side = side;
    const TipResult bup = BupDecompose(g, bup_options);

    TipOptions parb_options;
    parb_options.side = side;
    parb_options.num_threads = 3;
    const TipResult parb = ParbDecompose(g, parb_options);
    EXPECT_EQ(parb.tip_numbers, bup.tip_numbers)
        << "ParB vs BUP, side " << SideName(side) << ", seed " << seed;

    for (const int partitions : {1, 5}) {
      for (const bool optimized : {false, true}) {
        // Sweep the frontier-density threshold across both forced rebuild
        // directions and the hybrid default: tip numbers must not depend
        // on how the engine rebuilds its active sets.
        for (const double threshold : {0.0, kDefaultFrontierDensity, 2.0}) {
          TipOptions receipt_options;
          receipt_options.side = side;
          receipt_options.num_threads = 2;
          receipt_options.num_partitions = partitions;
          receipt_options.use_huc = optimized;
          receipt_options.use_dgm = optimized;
          receipt_options.frontier_density_threshold = threshold;
          const TipResult receipt = ReceiptDecompose(g, receipt_options);
          EXPECT_EQ(receipt.tip_numbers, bup.tip_numbers)
              << "RECEIPT vs BUP, side " << SideName(side) << ", P="
              << partitions << ", opt=" << optimized << ", threshold="
              << threshold << ", seed " << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TipEngineSweep,
    ::testing::Values(std::make_tuple(60, 40, 300, 11u),
                      std::make_tuple(80, 50, 420, 23u),
                      std::make_tuple(50, 70, 380, 37u),
                      std::make_tuple(100, 30, 450, 41u)));

class WingEngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, uint32_t>> {};

TEST_P(WingEngineSweep, SequentialAndReceiptWingAgree) {
  const auto [num_u, num_v, num_edges, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(
      static_cast<VertexId>(num_u), static_cast<VertexId>(num_v),
      static_cast<uint64_t>(num_edges), 0.5, 0.5, seed);

  const WingResult sequential = WingDecompose(g, /*num_threads=*/1);

  for (const int partitions : {1, 4}) {
    for (const int threads : {1, 3}) {
      for (const double threshold : {0.0, kDefaultFrontierDensity, 2.0}) {
        ReceiptWingOptions options;
        options.num_threads = threads;
        options.num_partitions = partitions;
        options.frontier_density_threshold = threshold;
        const WingResult parallel = ReceiptWingDecompose(g, options);
        EXPECT_EQ(parallel.wing_numbers, sequential.wing_numbers)
            << "P=" << partitions << ", T=" << threads << ", threshold="
            << threshold << ", seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WingEngineSweep,
    ::testing::Values(std::make_tuple(25, 20, 110, 51u),
                      std::make_tuple(30, 15, 120, 53u),
                      std::make_tuple(20, 30, 130, 57u)));

}  // namespace
}  // namespace receipt
