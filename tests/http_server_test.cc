// Tests for the HTTP front-end: a raw loopback client drives the real
// POSIX-socket server end to end — happy-path decompositions bit-identical
// to the direct drivers, queue-admission 429s, malformed-body 400s,
// disconnect-triggered cancellation, graceful shutdown draining, and the
// healthz/statz introspection endpoints.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "server/decomposition_http.h"
#include "server/http_server.h"
#include "service/decomposition_service.h"
#include "service/graph_registry.h"
#include "tip/receipt.h"
#include "util/json.h"
#include "wing/wing_decomposition.h"

namespace receipt::server {
namespace {

using service::DecompositionService;
using service::GraphRegistry;
using service::ServiceOptions;

BipartiteGraph G1() { return ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 101); }
BipartiteGraph G2() { return ChungLuBipartite(220, 260, 1200, 0.5, 0.8, 202); }

struct ClientResult {
  int status = 0;
  std::string body;
};

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

/// Sends one fully-formed request on an already-connected socket.
void SendOnSocket(int fd, const std::string& method, const std::string& path,
                  const std::string& body,
                  const std::string& extra_headers = "") {
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\n" + extra_headers +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
}

/// Opens a loopback connection and sends one request that asks the server
/// to close afterwards (so EOF-delimited reads stay fast under the
/// keep-alive default). Returns the connected socket (caller closes).
int SendRequest(uint16_t port, const std::string& method,
                const std::string& path, const std::string& body) {
  const int fd = ConnectLoopback(port);
  SendOnSocket(fd, method, path, body, "Connection: close\r\n");
  return fd;
}

/// Reads the full response (the request asked the server to close).
ClientResult ReadResponse(int fd) {
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ClientResult result;
  // "HTTP/1.1 NNN Reason\r\n..."
  if (raw.size() > 12) result.status = std::atoi(raw.c_str() + 9);
  const size_t body_start = raw.find("\r\n\r\n");
  if (body_start != std::string::npos) result.body = raw.substr(body_start + 4);
  return result;
}

struct FramedResult {
  int status = 0;
  std::string headers;  ///< raw header block, lower-case comparisons ok
  std::string body;
  bool complete = false;  ///< false when the connection closed mid-read
};

/// Reads exactly one Content-Length-framed response, leaving the connection
/// open — the client side of keep-alive. `carry` holds bytes of the next
/// response that arrived in the same recv (pass the same string across
/// calls when responses may be pipelined).
FramedResult ReadFramedResponse(int fd, std::string* carry = nullptr) {
  FramedResult result;
  std::string local;
  std::string& raw = carry != nullptr ? *carry : local;
  char chunk[4096];
  size_t header_end = std::string::npos;
  while ((header_end = raw.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return result;
    raw.append(chunk, static_cast<size_t>(n));
  }
  result.status = std::atoi(raw.c_str() + 9);
  result.headers = raw.substr(0, header_end);
  const size_t length_at = result.headers.find("Content-Length: ");
  if (length_at == std::string::npos) return result;
  const size_t content_length = static_cast<size_t>(
      std::atoll(result.headers.c_str() + length_at + 16));
  while (raw.size() - header_end - 4 < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return result;
    raw.append(chunk, static_cast<size_t>(n));
  }
  result.body = raw.substr(header_end + 4, content_length);
  raw.erase(0, header_end + 4 + content_length);
  result.complete = true;
  return result;
}

ClientResult Fetch(uint16_t port, const std::string& method,
                   const std::string& path, const std::string& body = "") {
  const int fd = SendRequest(port, method, path, body);
  ClientResult result = ReadResponse(fd);
  ::close(fd);
  return result;
}

util::JsonValue ParseBody(const ClientResult& result) {
  std::string error;
  auto json = util::JsonValue::Parse(result.body, &error);
  EXPECT_TRUE(json.has_value()) << error << "\nbody: " << result.body;
  return json.value_or(util::JsonValue());
}

std::vector<Count> NumbersFrom(const util::JsonValue& json) {
  std::vector<Count> numbers;
  const util::JsonValue* array = json.Find("numbers");
  EXPECT_NE(array, nullptr);
  if (array == nullptr) return numbers;
  for (const util::JsonValue& item : array->Items()) {
    numbers.push_back(item.AsUint());
  }
  return numbers;
}

/// Everything a serving test needs, wired and started on an ephemeral port.
struct TestServer {
  explicit TestServer(const ServiceOptions& service_options = {},
                      int http_threads = 4,
                      HttpServerOptions http_options = {})
      : service(registry, service_options) {
    HttpServerOptions options = http_options;
    options.num_threads = http_threads;
    server = std::make_unique<HttpServer>(options);
    frontend =
        std::make_unique<DecompositionHttpFrontend>(registry, service, *server);
    std::string error;
    EXPECT_TRUE(server->Start(&error)) << error;
  }
  ~TestServer() {
    server->Stop();
    service.Shutdown();
  }
  uint16_t port() const { return server->port(); }

  GraphRegistry registry;
  DecompositionService service;
  std::unique_ptr<HttpServer> server;
  std::unique_ptr<DecompositionHttpFrontend> frontend;
};

TEST(HttpServerTest, DecomposeMatchesDirectDriverBitIdentically) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const ClientResult result = Fetch(
      ts.port(), "POST", "/v1/decompose",
      R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT",)"
      R"( "partitions": 6, "threads": 2})");
  ASSERT_EQ(result.status, 200);
  const util::JsonValue json = ParseBody(result);
  std::string status;
  ASSERT_TRUE(json.GetString("status", &status));
  EXPECT_EQ(status, "ok");

  TipOptions direct;
  direct.num_threads = 2;
  direct.num_partitions = 6;
  const std::vector<Count> expected =
      ReceiptDecompose(G1(), direct).tip_numbers;
  EXPECT_EQ(NumbersFrom(json), expected);

  // The stats object rides along with real counters.
  const util::JsonValue* stats = json.Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(stats->Find("wedges_counting"), nullptr);
}

TEST(HttpServerTest, WingDecomposeMatchesDirectDriver) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const ClientResult result =
      Fetch(ts.port(), "POST", "/v1/decompose",
            R"({"graph": "g1", "kind": "wing", "algo": "WING-BUP"})");
  ASSERT_EQ(result.status, 200);
  const std::vector<Count> expected = WingDecompose(G1(), 1).wing_numbers;
  EXPECT_EQ(NumbersFrom(ParseBody(result)), expected);
}

TEST(HttpServerTest, RegisterListAndEpochBump) {
  TestServer ts;
  const std::string path = testing::TempDir() + "/http_g1.konect";
  ASSERT_TRUE(SaveKonect(G1(), path));

  const ClientResult first =
      Fetch(ts.port(), "POST", "/v1/graphs",
            R"({"name": "g", "path": ")" + path + R"("})");
  ASSERT_EQ(first.status, 200);
  const util::JsonValue first_json = ParseBody(first);
  const util::JsonValue* epoch1 = first_json.Find("epoch");
  ASSERT_NE(epoch1, nullptr);

  // Re-registering the same name must install a fresh, higher epoch.
  const ClientResult second =
      Fetch(ts.port(), "POST", "/v1/graphs",
            R"({"name": "g", "path": ")" + path + R"("})");
  ASSERT_EQ(second.status, 200);
  const util::JsonValue second_json = ParseBody(second);
  EXPECT_GT(second_json.Find("epoch")->AsUint(), epoch1->AsUint());

  const ClientResult list = Fetch(ts.port(), "GET", "/v1/graphs");
  ASSERT_EQ(list.status, 200);
  const util::JsonValue list_json = ParseBody(list);
  const util::JsonValue* graphs = list_json.Find("graphs");
  ASSERT_NE(graphs, nullptr);
  ASSERT_EQ(graphs->Items().size(), 1u);
  std::string name;
  EXPECT_TRUE(graphs->Items()[0].GetString("name", &name));
  EXPECT_EQ(name, "g");
  EXPECT_EQ(graphs->Items()[0].Find("num_u")->AsUint(), G1().num_u());
}

TEST(HttpServerTest, BadRequestsGetFourHundreds) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  // Malformed JSON body.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose", "{not json").status,
            400);
  // Valid JSON, missing required field.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose", R"({"kind":"tip-U"})")
                .status,
            400);
  // Unknown enum value.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose",
                  R"({"graph":"g1","kind":"edge"})")
                .status,
            400);
  // Kind/algorithm mismatch is the service's kBadRequest.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose",
                  R"({"graph":"g1","kind":"wing","algo":"RECEIPT"})")
                .status,
            400);
  // Unknown graph → 404, as is an unknown route.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose", R"({"graph":"nope"})")
                .status,
            404);
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v2/decompose").status, 404);
  // Known path, wrong method.
  EXPECT_EQ(Fetch(ts.port(), "GET", "/v1/decompose").status, 405);
}

TEST(HttpServerTest, FullQueueRejectsWith429) {
  // No workers and a single queue slot: the first request parks in the
  // queue, the second must be turned away at admission.
  ServiceOptions options;
  options.num_workers = 0;
  options.queue_capacity = 1;
  options.cache_bytes = 0;
  TestServer ts(options);
  ts.registry.Register("g1", G1());
  ts.registry.Register("g2", G2());

  std::thread first_client([&] {
    const ClientResult result =
        Fetch(ts.port(), "POST", "/v1/decompose",
              R"({"graph": "g1", "kind": "tip-U", "algo": "BUP"})");
    EXPECT_EQ(result.status, 200);
  });
  // Wait until the first request occupies the queue slot.
  while (ts.service.QueueDepth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const ClientResult rejected =
      Fetch(ts.port(), "POST", "/v1/decompose",
            R"({"graph": "g2", "kind": "tip-U", "algo": "BUP"})");
  EXPECT_EQ(rejected.status, 429);
  EXPECT_EQ(ts.frontend->stats().rejected_busy, 1u);

  // Drain the queue so the parked client resolves.
  ts.service.RunQueuedInline();
  first_client.join();
}

TEST(HttpServerTest, ClientDisconnectCancelsTheRun) {
  ServiceOptions options;
  options.num_workers = 0;  // keep the request queued while we vanish
  options.cache_bytes = 0;
  TestServer ts(options);
  ts.registry.Register("g1", G1());

  const int fd = SendRequest(
      ts.port(), "POST", "/v1/decompose",
      R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT"})");
  // Wait for the handler to pick the request up and queue it, then vanish.
  while (ts.service.QueueDepth() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::close(fd);

  // The handler's disconnect poll abandons the ticket, which cancels the
  // queued task's PeelControl (no coalesced twin holds it alive).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ts.service.stats().abandoned < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "handler never noticed the disconnect";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ts.frontend->stats().disconnect_cancels, 1u);

  // Executing the queue now resolves the task as cancelled without an
  // engine run.
  ts.service.RunQueuedInline();
  EXPECT_EQ(ts.service.stats().cancelled, 1u);
  EXPECT_EQ(ts.service.stats().engine_runs, 0u);
}

TEST(HttpServerTest, GracefulShutdownDrainsInFlightRequests) {
  ServiceOptions options;
  options.num_workers = 1;
  TestServer ts(options);
  ts.registry.Register("g1", G1());

  std::thread client([&] {
    const ClientResult result = Fetch(
        ts.port(), "POST", "/v1/decompose",
        R"({"graph": "g1", "kind": "tip-V", "algo": "RECEIPT",)"
        R"( "partitions": 6, "threads": 2})");
    // The response must arrive complete despite Stop() racing the run.
    EXPECT_EQ(result.status, 200);
    std::string status;
    EXPECT_TRUE(ParseBody(result).GetString("status", &status));
    EXPECT_EQ(status, "ok");
  });
  // Let the request reach the service before stopping.
  while (ts.service.stats().submitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ts.server->Stop();  // drains: joins handlers only after responses are out
  client.join();

  // Post-shutdown connections are refused — the listener is gone.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
}

TEST(HttpServerTest, TransportRejectsMalformedFraming) {
  TestServer ts;
  auto raw = [&](const std::string& request, bool half_close = false) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ts.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    // half_close: signal EOF to the server while still reading the
    // response, so truncated requests fail fast instead of timing out.
    if (half_close) ::shutdown(fd, SHUT_WR);
    ClientResult result = ReadResponse(fd);
    ::close(fd);
    return result;
  };

  // Negative / overflowing / non-numeric Content-Length: a malformed
  // header (400), never misread as an oversized body (413).
  for (const char* length : {"-1", "18446744073709551616", "12abc", ""}) {
    const ClientResult result =
        raw("GET /healthz HTTP/1.1\r\nContent-Length: " +
            std::string(length) + "\r\n\r\n");
    EXPECT_EQ(result.status, 400) << "Content-Length: " << length;
  }
  // Garbage request line.
  EXPECT_EQ(raw("NOT-HTTP\r\n\r\n").status, 400);
  // Client hangs up with the body short of Content-Length.
  const ClientResult truncated = raw(
      "POST /v1/decompose HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"gr",
      /*half_close=*/true);
  EXPECT_EQ(truncated.status, 400);
}

TEST(HttpServerTest, HealthzAndStatzReportServingState) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const ClientResult health = Fetch(ts.port(), "GET", "/healthz");
  ASSERT_EQ(health.status, 200);
  std::string status;
  ASSERT_TRUE(ParseBody(health).GetString("status", &status));
  EXPECT_EQ(status, "ok");

  // Two identical decompositions: the second must be a cache hit, and
  // /statz must reflect it.
  const std::string body =
      R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT"})";
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/decompose", body).status, 200);
  const ClientResult repeat = Fetch(ts.port(), "POST", "/v1/decompose", body);
  EXPECT_EQ(repeat.status, 200);
  EXPECT_TRUE(ParseBody(repeat).Find("cache_hit")->AsBool());

  const ClientResult statz = Fetch(ts.port(), "GET", "/statz");
  ASSERT_EQ(statz.status, 200);
  const util::JsonValue json = ParseBody(statz);
  const util::JsonValue* queue = json.Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->Find("capacity")->AsUint(), ts.service.queue_capacity());
  const util::JsonValue* requests = json.Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->Find("engine_runs")->AsUint(), 1u);
  EXPECT_GE(requests->Find("cache_hits")->AsUint(), 1u);
  const util::JsonValue* cache = json.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->Find("hit_rate")->AsDouble(), 0.0);
  const util::JsonValue* workers = json.Find("workers");
  ASSERT_NE(workers, nullptr);
  EXPECT_EQ(workers->Find("total")->AsUint(), 2u);
}

TEST(HttpServerTest, EdgeUpdateSealMatchesDirectDecomposeOfFinalGraph) {
  ServiceOptions options;
  options.num_workers = 1;
  TestServer ts(options);
  const BipartiteGraph before = G1();
  ts.registry.Register("g1", G1());

  // Mutate: delete two existing edges, insert two absent ones.
  std::vector<BipartiteGraph::Edge> edges = before.ToEdges();
  const BipartiteGraph::Edge dead1 = edges[3];
  const BipartiteGraph::Edge dead2 = edges[edges.size() / 2];
  auto exists = [&](VertexId u, VertexId v) {
    return std::find_if(edges.begin(), edges.end(),
                        [&](const BipartiteGraph::Edge& e) {
                          return e.u == u && e.v == v;
                        }) != edges.end();
  };
  std::vector<BipartiteGraph::Edge> inserted;
  for (VertexId u = 0; u < before.num_u() && inserted.size() < 2; ++u) {
    for (VertexId v = 0; v < before.num_v() && inserted.size() < 2; ++v) {
      if (!exists(u, v)) inserted.push_back({u, v});
    }
  }
  ASSERT_EQ(inserted.size(), 2u);

  std::string batch = R"({"seal": true, "threads": 2,)"
                      R"( "track": [{"kind": "tip-U", "partitions": 6}],)"
                      R"( "edges": [)";
  auto edge_json = [](const char* op, const BipartiteGraph::Edge& e) {
    return std::string("{\"op\":\"") + op +
           "\",\"u\":" + std::to_string(e.u) +
           ",\"v\":" + std::to_string(e.v) + "}";
  };
  batch += edge_json("delete", dead1) + "," + edge_json("delete", dead2) +
           "," + edge_json("insert", inserted[0]) + "," +
           edge_json("insert", inserted[1]) + "]}";

  const ClientResult sealed =
      Fetch(ts.port(), "POST", "/v1/graphs/g1/edges", batch);
  ASSERT_EQ(sealed.status, 200) << sealed.body;
  const util::JsonValue seal_json = ParseBody(sealed);
  EXPECT_TRUE(seal_json.Find("sealed")->AsBool());
  EXPECT_EQ(seal_json.Find("accepted")->AsUint(), 4u);
  EXPECT_EQ(seal_json.Find("pending")->AsUint(), 0u);
  const util::JsonValue* runs = seal_json.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->Items().size(), 1u);
  EXPECT_GT(runs->Items()[0].Find("subsets_total")->AsUint(), 0u);

  // The post-seal decompose must be a cache hit (primed at seal) and
  // bit-identical to a from-scratch decomposition of the final graph.
  const ClientResult result = Fetch(
      ts.port(), "POST", "/v1/decompose",
      R"({"graph": "g1", "kind": "tip-U", "algo": "RECEIPT",)"
      R"( "partitions": 6, "threads": 2})");
  ASSERT_EQ(result.status, 200);
  const util::JsonValue json = ParseBody(result);
  EXPECT_TRUE(json.Find("cache_hit")->AsBool());

  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [&](const BipartiteGraph::Edge& e) {
                               return (e.u == dead1.u && e.v == dead1.v) ||
                                      (e.u == dead2.u && e.v == dead2.v);
                             }),
              edges.end());
  edges.push_back(inserted[0]);
  edges.push_back(inserted[1]);
  const BipartiteGraph after =
      BipartiteGraph::FromEdges(before.num_u(), before.num_v(), edges);
  TipOptions direct;
  direct.num_threads = 2;
  direct.num_partitions = 6;
  EXPECT_EQ(NumbersFrom(json), ReceiptDecompose(after, direct).tip_numbers);

  // Out-of-shape endpoints reject the whole batch: growing needs a
  // re-registration, not a live update.
  const ClientResult rejected = Fetch(
      ts.port(), "POST", "/v1/graphs/g1/edges",
      R"({"edges": [{"op": "insert", "u": 99999, "v": 0}]})");
  EXPECT_EQ(rejected.status, 400);
  // Unknown graphs are 404s.
  EXPECT_EQ(Fetch(ts.port(), "POST", "/v1/graphs/nope/edges",
                  R"({"edges": []})")
                .status,
            404);
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  TestServer ts;
  ts.registry.Register("g1", G1());

  const int fd = ConnectLoopback(ts.port());
  for (int i = 0; i < 5; ++i) {
    SendOnSocket(fd, "GET", "/healthz", "");
    const FramedResult result = ReadFramedResponse(fd);
    ASSERT_TRUE(result.complete) << "connection dropped on request " << i;
    EXPECT_EQ(result.status, 200);
    EXPECT_NE(result.headers.find("Connection: keep-alive"),
              std::string::npos);
  }
  ::close(fd);
  EXPECT_EQ(ts.server->stats().keepalive_reuses, 4u);
  EXPECT_EQ(ts.server->stats().requests, 5u);
  EXPECT_EQ(ts.server->stats().connections_accepted, 1u);
}

TEST(HttpServerTest, PipelinedRequestsAllGetResponses) {
  TestServer ts;
  const int fd = ConnectLoopback(ts.port());
  // Two complete requests in one write: the second is served from the
  // carried-over buffer without waiting on the socket.
  const std::string one =
      "GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  const std::string two = one + one;
  ASSERT_EQ(::send(fd, two.data(), two.size(), 0),
            static_cast<ssize_t>(two.size()));
  std::string carry;
  EXPECT_TRUE(ReadFramedResponse(fd, &carry).complete);
  EXPECT_TRUE(ReadFramedResponse(fd, &carry).complete);
  ::close(fd);
  EXPECT_EQ(ts.server->stats().keepalive_reuses, 1u);
}

TEST(HttpServerTest, ConnectionCloseHeaderIsHonored) {
  TestServer ts;
  const int fd = ConnectLoopback(ts.port());
  SendOnSocket(fd, "GET", "/healthz", "", "Connection: close\r\n");
  const FramedResult result = ReadFramedResponse(fd);
  ASSERT_TRUE(result.complete);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  // EOF follows: the server closed its side.
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  EXPECT_EQ(ts.server->stats().keepalive_reuses, 0u);
}

TEST(HttpServerTest, Http10DefaultsToClose) {
  TestServer ts;
  const int fd = ConnectLoopback(ts.port());
  const std::string request =
      "GET /healthz HTTP/1.0\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  const FramedResult result = ReadFramedResponse(fd);
  ASSERT_TRUE(result.complete);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

TEST(HttpServerTest, RequestCapClosesTheConnection) {
  HttpServerOptions http_options;
  http_options.max_requests_per_connection = 3;
  TestServer ts({}, 4, http_options);

  const int fd = ConnectLoopback(ts.port());
  for (int i = 0; i < 3; ++i) {
    SendOnSocket(fd, "GET", "/healthz", "");
    const FramedResult result = ReadFramedResponse(fd);
    ASSERT_TRUE(result.complete);
    // The final allowed request carries the close advisory.
    const char* expected =
        i == 2 ? "Connection: close" : "Connection: keep-alive";
    EXPECT_NE(result.headers.find(expected), std::string::npos) << i;
  }
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // over the cap: connection gone
  ::close(fd);
  EXPECT_EQ(ts.server->stats().keepalive_reuses, 2u);
}

TEST(HttpServerTest, IdleKeepAliveConnectionTimesOutSilently) {
  HttpServerOptions http_options;
  http_options.idle_timeout_ms = 50;
  TestServer ts({}, 4, http_options);

  const int fd = ConnectLoopback(ts.port());
  SendOnSocket(fd, "GET", "/healthz", "");
  ASSERT_TRUE(ReadFramedResponse(fd).complete);
  // Sit idle past the timeout: the server closes without writing anything
  // (no 408 — no request was in flight).
  char byte;
  const ssize_t n = ::recv(fd, &byte, 1, 0);
  EXPECT_EQ(n, 0);
  ::close(fd);
  EXPECT_EQ(ts.server->stats().parse_failures, 0u);
}

TEST(HttpServerTest, KeepAliveDisabledRestoresSingleRequestConnections) {
  HttpServerOptions http_options;
  http_options.keep_alive = false;
  TestServer ts({}, 4, http_options);

  const int fd = ConnectLoopback(ts.port());
  SendOnSocket(fd, "GET", "/healthz", "");
  const FramedResult result = ReadFramedResponse(fd);
  ASSERT_TRUE(result.complete);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
}

// The writer/parser pair the wire format rests on: round-trip sanity.
TEST(JsonTest, WriterAndParserRoundTrip) {
  util::JsonWriter writer;
  writer.BeginObject()
      .Key("text").String("line\n\"quoted\" \\ tab\t")
      .Key("big").Uint(3000000000000ull)
      .Key("neg").Int(-42)
      .Key("pi").Double(3.25)
      .Key("yes").Bool(true)
      .Key("nothing").Null()
      .Key("list").BeginArray().Uint(1).Uint(2).Uint(3).EndArray()
      .EndObject();

  std::string error;
  const auto parsed = util::JsonValue::Parse(writer.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Find("text")->AsString(), "line\n\"quoted\" \\ tab\t");
  EXPECT_EQ(parsed->Find("big")->AsUint(), 3000000000000ull);
  EXPECT_EQ(parsed->Find("neg")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.25);
  EXPECT_TRUE(parsed->Find("yes")->AsBool());
  EXPECT_TRUE(parsed->Find("nothing")->IsNull());
  EXPECT_EQ(parsed->Find("list")->Items().size(), 3u);
}

TEST(JsonTest, IntegersBeyondInt64StayExactThroughAsUintOnly) {
  const auto parsed =
      util::JsonValue::Parse(R"({"huge": 18446744073709551615})");
  ASSERT_TRUE(parsed.has_value());
  const util::JsonValue* huge = parsed->Find("huge");
  ASSERT_NE(huge, nullptr);
  EXPECT_TRUE(huge->IsInt());
  EXPECT_EQ(huge->AsUint(), 18446744073709551615ull);
  // Not int64-representable: the typed accessor must refuse, not truncate.
  int64_t out = 0;
  EXPECT_FALSE(parsed->GetInt("huge", &out));
}

TEST(JsonTest, ParserRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01x", "\"unterminated",
        "{\"a\":1} trailing", "[\"\\q\"]", "007", "-01",
        // Lone surrogates would decode to invalid UTF-8 — rejected.
        "\"\\ud800\"", "\"\\udc00\"", "\"\\ud800x\""}) {
    std::string error;
    EXPECT_FALSE(util::JsonValue::Parse(bad, &error).has_value())
        << "accepted: " << bad;
    EXPECT_FALSE(error.empty());
  }
  // Depth bomb: fails cleanly instead of blowing the stack.
  EXPECT_FALSE(
      util::JsonValue::Parse(std::string(10000, '[')).has_value());
}

}  // namespace
}  // namespace receipt::server
