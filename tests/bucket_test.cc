// Unit tests for the Julienne-style BucketQueue used by the ParB baseline.

#include "engine/bucket.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <set>
#include <vector>

namespace receipt {
namespace {

TEST(BucketQueueTest, PopsMinimumGroups) {
  std::vector<Count> support = {5, 3, 3, 9, 5};
  std::vector<VertexId> items(5);
  std::iota(items.begin(), items.end(), 0);
  BucketQueue queue(support, items);

  auto round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 3u);
  EXPECT_EQ(std::set<VertexId>(round->second.begin(), round->second.end()),
            (std::set<VertexId>{1, 2}));

  round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 5u);
  EXPECT_EQ(round->second.size(), 2u);

  round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 9u);

  EXPECT_FALSE(queue.PopMin().has_value());
}

TEST(BucketQueueTest, UpdateMovesVertexDown) {
  std::vector<Count> support = {10, 20};
  std::vector<VertexId> items = {0, 1};
  BucketQueue queue(support, items);
  queue.Update(1, 4);  // vertex 1 drops below vertex 0

  auto round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 4u);
  ASSERT_EQ(round->second.size(), 1u);
  EXPECT_EQ(round->second[0], 1u);
}

TEST(BucketQueueTest, ExtractedVerticesNeverReturn) {
  std::vector<Count> support = {1, 2};
  std::vector<VertexId> items = {0, 1};
  BucketQueue queue(support, items);
  auto round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->second[0], 0u);
  queue.Update(0, 0);  // update after extraction must be ignored
  round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->second[0], 1u);
  EXPECT_FALSE(queue.PopMin().has_value());
}

TEST(BucketQueueTest, RefilledCurrentBucketIsRescanned) {
  // After popping value 7, an update clamps another vertex to exactly 7;
  // the next PopMin must return it (the cursor may not skip ahead).
  std::vector<Count> support = {7, 300};
  std::vector<VertexId> items = {0, 1};
  BucketQueue queue(support, items);
  auto round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 7u);
  queue.Update(1, 7);
  round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 7u);
  EXPECT_EQ(round->second[0], 1u);
}

TEST(BucketQueueTest, OverflowAndRebase) {
  // Keys far beyond the 128-wide window force overflow handling.
  std::vector<Count> support = {5, 1000, 100000, 2000000000};
  std::vector<VertexId> items = {0, 1, 2, 3};
  BucketQueue queue(support, items);
  std::vector<Count> popped;
  while (auto round = queue.PopMin()) popped.push_back(round->first);
  EXPECT_EQ(popped, (std::vector<Count>{5, 1000, 100000, 2000000000}));
  EXPECT_GE(queue.rebase_count(), 2u);
}

TEST(BucketQueueTest, DuplicateUpdatesDoNotDuplicateExtraction) {
  std::vector<Count> support = {50};
  std::vector<VertexId> items = {0};
  BucketQueue queue(support, items);
  queue.Update(0, 30);
  queue.Update(0, 30);  // same-key update is a no-op
  queue.Update(0, 10);
  auto round = queue.PopMin();
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->first, 10u);
  EXPECT_EQ(round->second.size(), 1u);
  EXPECT_FALSE(queue.PopMin().has_value());
}

TEST(BucketQueueTest, EmptyQueue) {
  std::vector<Count> support;
  std::vector<VertexId> items;
  BucketQueue queue(support, items);
  EXPECT_FALSE(queue.PopMin().has_value());
}

TEST(BucketQueueTest, RandomizedAgainstSortedReference) {
  std::mt19937_64 rng(99);
  constexpr VertexId kN = 400;
  std::vector<Count> support(kN);
  for (auto& s : support) s = rng() % 5000;
  std::vector<VertexId> items(kN);
  std::iota(items.begin(), items.end(), 0);
  BucketQueue queue(support, items);

  // Simulate peeling: after each pop, randomly decrease some survivors
  // (never below the popped value, mirroring the clamped updates).
  std::vector<uint8_t> extracted(kN, 0);
  std::vector<Count> final_value(kN, 0);
  while (auto round = queue.PopMin()) {
    const Count value = round->first;
    for (const VertexId v : round->second) {
      EXPECT_FALSE(extracted[v]);
      extracted[v] = 1;
      final_value[v] = value;
      EXPECT_EQ(support[v], value);
    }
    for (int i = 0; i < 20; ++i) {
      const VertexId v = static_cast<VertexId>(rng() % kN);
      if (extracted[v] || support[v] <= value) continue;
      support[v] = value + rng() % (support[v] - value + 1);
      queue.Update(v, support[v]);
    }
  }
  // Everything extracted exactly once, in non-decreasing value order is
  // implied by the clamping; verify extraction completeness.
  for (VertexId v = 0; v < kN; ++v) EXPECT_TRUE(extracted[v]) << v;
}

}  // namespace
}  // namespace receipt
