// Tests for the engine layer's reusable workspaces: allocation happens once
// per decomposition, scratch state is clean between kernel invocations and
// partitions, and the shared services (FindRangeBound, GraphMaintenance)
// behave at their edges.

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "engine/counting.h"
#include "engine/peel_engine.h"
#include "graph/generators.h"
#include "tip/receipt_cd.h"
#include "tip/receipt_fd.h"
#include "util/stats.h"
#include "wing/receipt_wing.h"

namespace receipt {
namespace {

TEST(WorkspaceTest, WedgeCountersAre64Bit) {
  // Satellite requirement: dense per-thread wedge counters must be 64-bit
  // end-to-end (Choose2 of a large multiplicity overflows 32 bits).
  static_assert(
      std::is_same_v<decltype(engine::PeelWorkspace::wedge_count)::value_type,
                     uint64_t>);
  static_assert(
      std::is_same_v<decltype(engine::PeelWorkspace::wedges_traversed),
                     uint64_t>);
  SUCCEED();
}

TEST(WorkspaceTest, PrepareIsIdempotent) {
  engine::WorkspacePool pool;
  pool.Prepare(4, 1000, 500);
  const uint64_t growths_after_first = pool.TotalGrowths();
  EXPECT_GT(growths_after_first, 0u);
  // Same or smaller shapes must not allocate.
  pool.Prepare(4, 1000, 500);
  pool.Prepare(2, 800, 100);
  EXPECT_EQ(pool.TotalGrowths(), growths_after_first);
  // A larger shape grows once more, then is stable again.
  pool.Prepare(4, 2000, 500);
  const uint64_t growths_after_growth = pool.TotalGrowths();
  EXPECT_GT(growths_after_growth, growths_after_first);
  pool.Prepare(4, 2000, 500);
  EXPECT_EQ(pool.TotalGrowths(), growths_after_growth);
}

TEST(WorkspaceTest, CountingReusesWorkspacesAcrossRuns) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1500, 0.6, 0.6, 901);
  const DynamicGraph live(g, g.DegreeDescendingRanks());
  std::vector<Count> support(g.num_vertices(), 0);

  engine::WorkspacePool pool;
  const uint64_t w1 =
      engine::CountVertexButterflies(live, pool, 2, support);
  const std::vector<Count> first = support;
  const uint64_t growths_warm = pool.TotalGrowths();

  for (int run = 0; run < 3; ++run) {
    const uint64_t w = engine::CountVertexButterflies(live, pool, 2, support);
    EXPECT_EQ(w, w1);
    EXPECT_EQ(support, first);
  }
  // Warm pool: repeated counting allocates nothing.
  EXPECT_EQ(pool.TotalGrowths(), growths_warm);
}

TEST(WorkspaceTest, ReceiptSharedPoolDoesNotReallocateOnRepeat) {
  // The RECEIPT flow (counting + CD rounds + per-partition FD) through one
  // pool: a second identical decomposition must not grow any buffer.
  // Single-threaded so FD task→workspace assignment is deterministic (with
  // dynamic task allocation, which thread warms which buffer varies).
  const BipartiteGraph g = ChungLuBipartite(400, 250, 2000, 0.6, 0.7, 903);
  TipOptions options;
  options.num_threads = 1;
  options.num_partitions = 8;

  engine::WorkspacePool pool;
  PeelStats stats1;
  const CdResult cd1 = ReceiptCd(g, options, pool, &stats1);
  std::vector<Count> tips1(g.num_u(), 0);
  ReceiptFd(g, cd1, options, pool, tips1, &stats1);
  const uint64_t growths_warm = pool.TotalGrowths();

  PeelStats stats2;
  const CdResult cd2 = ReceiptCd(g, options, pool, &stats2);
  std::vector<Count> tips2(g.num_u(), 0);
  ReceiptFd(g, cd2, options, pool, tips2, &stats2);

  EXPECT_EQ(pool.TotalGrowths(), growths_warm);
  EXPECT_EQ(tips1, tips2);
  EXPECT_EQ(stats1.TotalWedges(), stats2.TotalWedges());
}

TEST(WorkspaceTest, ScratchIsCleanAfterDecomposition) {
  // The zero-state invariant: kernels reset exactly what they touched, so
  // between partitions (and after a whole decomposition) the dense arrays
  // are all-zero and the frontier buffers are drained.
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1500, 0.5, 0.8, 905);
  TipOptions options;
  options.num_threads = 2;
  options.num_partitions = 6;

  engine::WorkspacePool pool;
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, options, pool, &stats);
  std::vector<Count> tips(g.num_u(), 0);
  ReceiptFd(g, cd, options, pool, tips, &stats);

  for (int tid = 0; tid < pool.num_workspaces(); ++tid) {
    engine::PeelWorkspace& ws = pool.Get(tid);
    for (const uint64_t c : ws.wedge_count) EXPECT_EQ(c, 0u) << "tid " << tid;
    for (const EdgeOffset m : ws.edge_mark) EXPECT_EQ(m, 0u) << "tid " << tid;
    EXPECT_TRUE(ws.touched.empty()) << "tid " << tid;
    EXPECT_TRUE(ws.frontier.empty()) << "tid " << tid;
    EXPECT_TRUE(ws.updates.empty()) << "tid " << tid;
  }
}

TEST(WorkspaceTest, FdArenaAndExtractorAreAllocationFreeWhenWarm) {
  // The per-partition structures RECEIPT FD used to allocate fresh — the
  // induced subgraph, its DynamicGraph view, and the MinExtractor backing
  // stores — now live in the workspace. After one warmup decomposition,
  // repeats must not grow any buffer, whatever extraction backend runs.
  const BipartiteGraph g = ChungLuBipartite(350, 220, 1700, 0.6, 0.7, 911);
  for (const MinExtraction extraction :
       {MinExtraction::kDAryHeap, MinExtraction::kBucketQueue,
        MinExtraction::kPairingHeap}) {
    TipOptions options;
    options.num_threads = 1;  // deterministic task → workspace assignment
    options.num_partitions = 7;
    options.min_extraction = extraction;

    engine::WorkspacePool pool;
    PeelStats stats;
    const CdResult cd = ReceiptCd(g, options, pool, &stats);
    std::vector<Count> tips_warm(g.num_u(), 0);
    ReceiptFd(g, cd, options, pool, tips_warm, &stats);
    const uint64_t growths_warm = pool.TotalGrowths();
    EXPECT_GT(growths_warm, 0u);

    // Growth counters are charged at Reset/Rebuild boundaries, so also pin
    // the raw capacity footprints — they catch growth whenever it happens.
    engine::PeelWorkspace& ws = pool.Get(0);
    const size_t arena_footprint = ws.subgraph_arena.CapacityFootprint();
    const size_t extractor_footprint = ws.extractor.CapacityFootprint();

    for (int repeat = 0; repeat < 2; ++repeat) {
      PeelStats repeat_stats;
      const CdResult cd2 = ReceiptCd(g, options, pool, &repeat_stats);
      std::vector<Count> tips(g.num_u(), 0);
      ReceiptFd(g, cd2, options, pool, tips, &repeat_stats);
      EXPECT_EQ(tips, tips_warm) << "backend " << static_cast<int>(extraction);
    }
    EXPECT_EQ(pool.TotalGrowths(), growths_warm)
        << "backend " << static_cast<int>(extraction);
    EXPECT_EQ(ws.subgraph_arena.CapacityFootprint(), arena_footprint)
        << "backend " << static_cast<int>(extraction);
    EXPECT_EQ(ws.extractor.CapacityFootprint(), extractor_footprint)
        << "backend " << static_cast<int>(extraction);
  }
}

TEST(WorkspaceTest, WingFineStepBuffersStableWhenWarm) {
  // The wing fine step rebuilds its environment graph, edge topology,
  // state/flag/id buffers and heap inside the workspace. Those buffers
  // carry no growth counters, so pin their capacity footprints directly:
  // a second identical decomposition must not grow any of them.
  const BipartiteGraph g = ChungLuBipartite(120, 80, 600, 0.6, 0.6, 917);
  ReceiptWingOptions options;
  options.num_threads = 1;  // deterministic task → workspace assignment
  options.num_partitions = 5;
  engine::WorkspacePool pool;
  options.workspace_pool = &pool;

  const WingResult warm = ReceiptWingDecompose(g, options);

  engine::PeelWorkspace& ws = pool.Get(0);
  const auto wing_footprint = [&ws] {
    return ws.state_buffer.capacity() + ws.flag_buffer.capacity() +
           ws.id_buffer.capacity() + ws.env_topo.source.capacity() +
           ws.env_topo.v_slot_edge.capacity() + ws.topo_cursor.capacity() +
           ws.edge_heap.Capacity() + ws.support_buffer.capacity() +
           ws.subgraph_arena.CapacityFootprint();
  };
  const size_t footprint_warm = wing_footprint();
  EXPECT_GT(footprint_warm, 0u);

  for (int repeat = 0; repeat < 2; ++repeat) {
    const WingResult r = ReceiptWingDecompose(g, options);
    EXPECT_EQ(r.wing_numbers, warm.wing_numbers);
  }
  EXPECT_EQ(wing_footprint(), footprint_warm);
}

TEST(FindRangeBoundTest, EmptyInputAbsorbsEverything) {
  // Satellite requirement: findHi must not dereference .back() of an empty
  // vector; an empty input yields the unbounded range.
  std::vector<std::pair<Count, Count>> empty;
  EXPECT_EQ(engine::FindRangeBound(empty, 10.0), kInvalidCount);
}

TEST(FindRangeBoundTest, ReturnsExclusiveBoundAtTarget) {
  std::vector<std::pair<Count, Count>> sc = {{5, 10}, {1, 10}, {3, 10}};
  // Sorted by support: 1 (mass 10), 3 (20), 5 (30).
  EXPECT_EQ(engine::FindRangeBound(sc, 10.0), 2u);
  sc = {{5, 10}, {1, 10}, {3, 10}};
  EXPECT_EQ(engine::FindRangeBound(sc, 15.0), 4u);
  sc = {{5, 10}, {1, 10}, {3, 10}};
  // Mass below target: falls back to max support + 1.
  EXPECT_EQ(engine::FindRangeBound(sc, 1000.0), 6u);
}

TEST(GraphMaintenanceTest, RecountDisabledWithoutHuc) {
  const BipartiteGraph g = CompleteBipartite(6, 6);
  DynamicGraph live(g, g.DegreeDescendingRanks());
  engine::GraphMaintenance maintenance(live, /*use_huc=*/false,
                                       /*use_dgm=*/false, g.num_edges());
  EXPECT_FALSE(maintenance.ShouldRecount(kInvalidCount - 1));
  maintenance.OnPeelWedges(1u << 30, 1);
  EXPECT_EQ(maintenance.compactions(), 0u);
}

TEST(GraphMaintenanceTest, DgmCompactsWhenBudgetExceeded) {
  const BipartiteGraph g = CompleteBipartite(6, 6);
  DynamicGraph live(g, g.DegreeDescendingRanks());
  engine::GraphMaintenance maintenance(live, /*use_huc=*/true,
                                       /*use_dgm=*/true,
                                       /*wedge_budget=*/100);
  maintenance.OnPeelWedges(100, 1);  // exactly the budget: no trigger
  EXPECT_EQ(maintenance.compactions(), 0u);
  maintenance.OnPeelWedges(1, 1);  // crosses it
  EXPECT_EQ(maintenance.compactions(), 1u);
  // Accumulator reset: the next wedge does not trigger again.
  maintenance.OnPeelWedges(1, 1);
  EXPECT_EQ(maintenance.compactions(), 1u);
}

}  // namespace
}  // namespace receipt
