// Tests for the ParB baseline (parallel bottom-up peeling on the bucketing
// structure): exact agreement with sequential BUP plus its round-count
// behavior.

#include "tip/parb.h"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "tip/bup.h"

namespace receipt {
namespace {

TipOptions Options(Side side, int threads) {
  TipOptions options;
  options.side = side;
  options.num_threads = threads;
  return options;
}

TEST(ParbTest, SmallExampleKnownTipNumbers) {
  const BipartiteGraph g = SmallExampleGraph();
  const TipResult result = ParbDecompose(g, Options(Side::kU, 2));
  const std::vector<Count> expected = {18, 18, 18, 18, 5, 5, 0, 0};
  EXPECT_EQ(result.tip_numbers, expected);
}

TEST(ParbTest, RoundCountsDistinctSupportLevels) {
  // SmallExampleGraph peels at supports {0, 5, 5, 18}: four vertices at 0
  // (one round), u4+u5 (5 then 5 again after the clamp), then the core.
  const BipartiteGraph g = SmallExampleGraph();
  const TipResult result = ParbDecompose(g, Options(Side::kU, 2));
  EXPECT_GE(result.stats.sync_rounds, 3u);
  EXPECT_LE(result.stats.sync_rounds, 8u);
}

TEST(ParbTest, CompleteBipartitePeelsInTwoRounds) {
  // All supports equal ⇒ round 1 takes every vertex.
  const BipartiteGraph g = CompleteBipartite(6, 6);
  const TipResult result = ParbDecompose(g, Options(Side::kU, 2));
  EXPECT_EQ(result.stats.sync_rounds, 1u);
  for (const Count t : result.tip_numbers) EXPECT_EQ(t, 5 * Choose2(6));
}

TEST(ParbTest, StatsPopulated) {
  const BipartiteGraph g = ChungLuBipartite(200, 120, 900, 0.6, 0.6, 67);
  const TipResult result = ParbDecompose(g, Options(Side::kU, 3));
  EXPECT_GT(result.stats.sync_rounds, 0u);
  EXPECT_GT(result.stats.wedges_counting, 0u);
  EXPECT_GT(result.stats.wedges_other, 0u);
  EXPECT_GT(result.stats.seconds_total, 0.0);
}

using ParbSweepParam = std::tuple<VertexId, VertexId, uint64_t, double,
                                  double, uint64_t, Side, int>;

class ParbSweep : public testing::TestWithParam<ParbSweepParam> {};

TEST_P(ParbSweep, MatchesBup) {
  const auto [nu, nv, m, au, av, seed, side, threads] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  const TipResult parb = ParbDecompose(g, Options(side, threads));
  const TipResult bup = BupDecompose(g, Options(side, 1));
  ASSERT_EQ(parb.tip_numbers.size(), bup.tip_numbers.size());
  for (size_t u = 0; u < bup.tip_numbers.size(); ++u) {
    ASSERT_EQ(parb.tip_numbers[u], bup.tip_numbers[u]) << "vertex " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParbSweep,
    testing::Values(ParbSweepParam{60, 40, 250, 0.3, 0.3, 1, Side::kU, 2},
                    ParbSweepParam{60, 40, 250, 0.3, 0.3, 1, Side::kV, 2},
                    ParbSweepParam{120, 40, 500, 0.7, 0.9, 2, Side::kU, 4},
                    ParbSweepParam{120, 40, 500, 0.7, 0.9, 2, Side::kV, 4},
                    ParbSweepParam{80, 80, 600, 0.0, 0.0, 3, Side::kU, 1},
                    ParbSweepParam{200, 150, 900, 0.5, 0.5, 4, Side::kU, 3},
                    ParbSweepParam{200, 150, 900, 0.5, 0.5, 5, Side::kV, 3},
                    ParbSweepParam{150, 100, 800, 0.6, 0.8, 6, Side::kU, 2}));

}  // namespace
}  // namespace receipt
