// Tests for the vertex-priority butterfly counting kernel (Alg. 1):
// cross-validation against the brute-force reference on parameterized
// random-graph sweeps, closed forms, live-subgraph counting, and the
// traversal bound.

#include "butterfly/butterfly_count.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/generators.h"

namespace receipt {
namespace {

TEST(ButterflyCountTest, TinyHandComputedGraph) {
  // u0,u1 share v0,v1 (one butterfly); u2 hangs off v1.
  const BipartiteGraph g = BipartiteGraph::FromEdges(
      3, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 1}});
  const auto support = CountButterflies(g, 1);
  EXPECT_EQ(support[0], 1u);
  EXPECT_EQ(support[1], 1u);
  EXPECT_EQ(support[2], 0u);
  EXPECT_EQ(support[g.VGlobal(0)], 1u);
  EXPECT_EQ(support[g.VGlobal(1)], 1u);
  EXPECT_EQ(TotalButterflies(g, 1), 1u);
}

TEST(ButterflyCountTest, CompleteBipartiteClosedForm) {
  for (const auto& [a, b] : {std::pair{2, 2}, {3, 5}, {6, 4}, {8, 8}}) {
    const BipartiteGraph g = CompleteBipartite(a, b);
    const auto support = CountButterflies(g, 2);
    for (int u = 0; u < a; ++u) {
      EXPECT_EQ(support[u], Count(a - 1) * Choose2(b)) << a << "x" << b;
    }
    for (int v = 0; v < b; ++v) {
      EXPECT_EQ(support[g.VGlobal(v)], Count(b - 1) * Choose2(a));
    }
    EXPECT_EQ(TotalButterflies(g, 2), Choose2(a) * Choose2(b));
  }
}

TEST(ButterflyCountTest, StarAndEmpty) {
  EXPECT_EQ(TotalButterflies(Star(50), 1), 0u);
  const BipartiteGraph empty = BipartiteGraph::FromEdges(4, 4, {});
  const auto support = CountButterflies(empty, 1);
  for (const Count c : support) EXPECT_EQ(c, 0u);
}

TEST(ButterflyCountTest, SupportSumIsFourTimesButterflies) {
  const BipartiteGraph g = ChungLuBipartite(200, 150, 900, 0.6, 0.6, 51);
  const auto support = CountButterflies(g, 2);
  Count sum_u = 0;
  Count sum_v = 0;
  for (VertexId u = 0; u < g.num_u(); ++u) sum_u += support[u];
  for (VertexId v = g.num_u(); v < g.num_vertices(); ++v) {
    sum_v += support[v];
  }
  // Each butterfly has two U and two V members.
  EXPECT_EQ(sum_u, sum_v);
  EXPECT_EQ(sum_u / 2, TotalButterflies(g, 2));
}

TEST(ButterflyCountTest, WedgeTraversalWithinPriorityBound) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1200, 0.8, 0.8, 53);
  uint64_t wedges = 0;
  CountButterflies(g, 2, &wedges);
  // The vertex-priority kernel traverses at most Σ min(d_u, d_v) wedges.
  EXPECT_LE(wedges, g.CountingCostBound());
  EXPECT_GT(wedges, 0u);
}

TEST(ButterflyCountTest, CountsRespectDeadVertices) {
  // Counting on the live view after kills must equal counting the induced
  // subgraph from scratch (the HUC re-count correctness requirement).
  const BipartiteGraph g = ChungLuBipartite(80, 60, 350, 0.5, 0.5, 57);
  DynamicGraph live(g, g.DegreeDescendingRanks());
  std::vector<VertexId> kept;
  for (VertexId u = 0; u < g.num_u(); ++u) {
    if (u % 3 == 0) {
      live.Kill(u);
    } else {
      kept.push_back(u);
    }
  }
  // Without compaction (dead entries skipped inline).
  std::vector<Count> uncompacted(g.num_vertices(), 0);
  PerVertexButterflyCount(live, 2, uncompacted);
  // With compaction.
  live.Compact(2);
  std::vector<Count> compacted(g.num_vertices(), 0);
  PerVertexButterflyCount(live, 2, compacted);

  // Reference: rebuild the surviving graph.
  std::vector<BipartiteGraph::Edge> edges;
  for (const VertexId u : kept) {
    for (const VertexId gv : g.Neighbors(u)) {
      edges.push_back({u, g.Local(gv)});
    }
  }
  const BipartiteGraph sub =
      BipartiteGraph::FromEdges(g.num_u(), g.num_v(), std::move(edges));
  const auto expected = CountButterflies(sub, 1);
  for (VertexId u : kept) {
    EXPECT_EQ(uncompacted[u], expected[u]) << "u" << u;
    EXPECT_EQ(compacted[u], expected[u]) << "u" << u;
  }
}

TEST(ButterflyCountTest, SharedButterfliesReference) {
  const BipartiteGraph g = SmallExampleGraph();
  // Core pair u0,u1 share all four V vertices: C(4,2) = 6 butterflies.
  EXPECT_EQ(SharedButterflies(g, 0, 1), 6u);
  // u0 and u4 share v0,v1: one butterfly.
  EXPECT_EQ(SharedButterflies(g, 0, 4), 1u);
  // u0 and u7 share nothing.
  EXPECT_EQ(SharedButterflies(g, 0, 7), 0u);
}

// -- parameterized kernel-vs-brute-force sweep -----------------------------

using KernelSweepParam =
    std::tuple<VertexId, VertexId, uint64_t, double, double, uint64_t, int>;

class KernelSweep : public testing::TestWithParam<KernelSweepParam> {};

TEST_P(KernelSweep, MatchesBruteForce) {
  const auto [nu, nv, m, au, av, seed, threads] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  const auto fast = CountButterflies(g, threads);
  const auto slow = BruteForceButterflyCount(g);
  ASSERT_EQ(fast.size(), slow.size());
  for (VertexId w = 0; w < g.num_vertices(); ++w) {
    ASSERT_EQ(fast[w], slow[w]) << "vertex " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelSweep,
    testing::Values(
        KernelSweepParam{30, 20, 100, 0.0, 0.0, 1, 1},
        KernelSweepParam{30, 20, 100, 0.0, 0.0, 2, 2},
        KernelSweepParam{50, 50, 400, 0.5, 0.5, 3, 2},
        KernelSweepParam{50, 50, 400, 0.5, 0.5, 4, 4},
        KernelSweepParam{100, 30, 500, 0.9, 0.9, 5, 2},
        KernelSweepParam{30, 100, 500, 0.9, 0.1, 6, 2},
        KernelSweepParam{80, 80, 800, 0.3, 0.7, 7, 3},
        KernelSweepParam{120, 60, 700, 0.6, 0.6, 8, 2},
        KernelSweepParam{10, 10, 90, 0.0, 0.0, 9, 1},
        KernelSweepParam{200, 10, 600, 0.2, 1.1, 10, 2}));

}  // namespace
}  // namespace receipt
