// Tests for RECEIPT FD (Alg. 4): exactness given a CD partition, scheduling
// invariance, subset wedge-count proxy correctness, and FD-side HUC/DGM.

#include "tip/receipt_fd.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "tip/bup.h"
#include "tip/receipt_cd.h"

namespace receipt {
namespace {

TipOptions Options(int partitions, int threads, bool huc = true,
                   bool dgm = true, bool was = true) {
  TipOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.use_huc = huc;
  options.use_dgm = dgm;
  options.workload_aware_scheduling = was;
  return options;
}

std::vector<Count> RunFd(const BipartiteGraph& g, const TipOptions& options,
                         PeelStats* stats) {
  const CdResult cd = ReceiptCd(g, options, stats);
  std::vector<Count> tips(g.num_u(), 0);
  ReceiptFd(g, cd, options, tips, stats);
  return tips;
}

TEST(ReceiptFdTest, ExactTipNumbers) {
  const BipartiteGraph g = ChungLuBipartite(250, 150, 1100, 0.6, 0.6, 111);
  PeelStats stats;
  const std::vector<Count> tips = RunFd(g, Options(8, 3), &stats);
  TipOptions bup_options;
  const TipResult bup = BupDecompose(g, bup_options);
  EXPECT_EQ(tips, bup.tip_numbers);
}

TEST(ReceiptFdTest, SchedulingFlagDoesNotChangeResults) {
  const BipartiteGraph g = ChungLuBipartite(200, 120, 900, 0.7, 0.5, 113);
  PeelStats s1, s2;
  const std::vector<Count> with_was = RunFd(g, Options(10, 3, true, true,
                                                       true), &s1);
  const std::vector<Count> without_was = RunFd(g, Options(10, 3, true, true,
                                                          false), &s2);
  EXPECT_EQ(with_was, without_was);
}

TEST(ReceiptFdTest, OptimizationFlagsDoNotChangeResults) {
  const BipartiteGraph g = ChungLuBipartite(220, 130, 950, 0.4, 0.9, 127);
  PeelStats s[4];
  const auto base = RunFd(g, Options(7, 2, false, false), &s[0]);
  EXPECT_EQ(RunFd(g, Options(7, 2, true, false), &s[1]), base);
  EXPECT_EQ(RunFd(g, Options(7, 2, false, true), &s[2]), base);
  EXPECT_EQ(RunFd(g, Options(7, 2, true, true), &s[3]), base);
}

TEST(ReceiptFdTest, FdAddsNoSyncRounds) {
  const BipartiteGraph g = ChungLuBipartite(200, 120, 800, 0.5, 0.5, 131);
  const TipOptions options = Options(8, 3);
  PeelStats cd_stats;
  const CdResult cd = ReceiptCd(g, options, &cd_stats);
  const uint64_t rounds_after_cd = cd_stats.sync_rounds;
  std::vector<Count> tips(g.num_u(), 0);
  ReceiptFd(g, cd, options, tips, &cd_stats);
  EXPECT_EQ(cd_stats.sync_rounds, rounds_after_cd);
  EXPECT_GT(cd_stats.wedges_fd, 0u);
}

TEST(ReceiptFdTest, SubsetWedgeCountsMatchNaive) {
  const BipartiteGraph g = ChungLuBipartite(120, 80, 500, 0.5, 0.5, 137);
  // Assign an arbitrary 4-way partition.
  std::vector<uint32_t> subset_of(g.num_u());
  for (VertexId u = 0; u < g.num_u(); ++u) subset_of[u] = u % 4;
  const std::vector<Count> fast =
      ComputeSubsetWedgeCounts(g, subset_of, 4, 2);
  // Naive: for every V vertex and subset, C(neighbors-in-subset, 2).
  std::vector<Count> slow(4, 0);
  for (VertexId vl = 0; vl < g.num_v(); ++vl) {
    std::vector<Count> per_subset(4, 0);
    for (const VertexId u : g.Neighbors(g.VGlobal(vl))) {
      ++per_subset[subset_of[u]];
    }
    for (uint32_t s = 0; s < 4; ++s) slow[s] += Choose2(per_subset[s]);
  }
  EXPECT_EQ(fast, slow);
}

TEST(ReceiptFdTest, FdWedgesAreSubsetOfCdWedges) {
  // §3: FD explores only intra-subset wedges of the induced subgraphs, a
  // small fraction of the full graph's wedge mass (Fig. 8: < 15%... here we
  // just require strictly fewer than CD's traversal on a non-trivial graph).
  const BipartiteGraph g = ChungLuBipartite(400, 250, 1600, 0.6, 0.6, 139);
  const TipOptions options = Options(12, 2, /*huc=*/false, /*dgm=*/false);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, options, &stats);
  std::vector<Count> tips(g.num_u(), 0);
  ReceiptFd(g, cd, options, tips, &stats);
  EXPECT_LT(stats.wedges_fd, stats.wedges_cd);
}

TEST(ReceiptFdTest, SingleVertexSubsetsHandled) {
  // Degenerate partition: huge P forces many tiny subsets.
  const BipartiteGraph g = ChungLuBipartite(60, 40, 250, 0.5, 0.5, 149);
  PeelStats stats;
  const std::vector<Count> tips = RunFd(g, Options(1000, 2), &stats);
  TipOptions bup_options;
  EXPECT_EQ(tips, BupDecompose(g, bup_options).tip_numbers);
}

}  // namespace
}  // namespace receipt
