// Tests for sequential bottom-up peeling (Alg. 2), validated against an
// independent naive reference that re-counts butterflies from scratch after
// every peel.

#include "tip/bup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"

namespace receipt {
namespace {

/// Ground-truth tip decomposition: O(n² · counting). Rebuilds the surviving
/// subgraph and re-counts all butterflies before every single peel.
std::vector<Count> NaiveTipDecomposition(const BipartiteGraph& graph,
                                         Side side) {
  const BipartiteGraph swapped =
      side == Side::kV ? graph.SwappedCopy() : BipartiteGraph();
  const BipartiteGraph& g = side == Side::kV ? swapped : graph;

  std::vector<Count> tip(g.num_u(), 0);
  std::vector<uint8_t> alive(g.num_u(), 1);
  Count theta = 0;
  for (VertexId step = 0; step < g.num_u(); ++step) {
    // Rebuild the graph induced on alive U vertices.
    std::vector<BipartiteGraph::Edge> edges;
    for (VertexId u = 0; u < g.num_u(); ++u) {
      if (!alive[u]) continue;
      for (const VertexId gv : g.Neighbors(u)) {
        edges.push_back({u, g.Local(gv)});
      }
    }
    const BipartiteGraph sub =
        BipartiteGraph::FromEdges(g.num_u(), g.num_v(), std::move(edges));
    const std::vector<Count> support = BruteForceButterflyCount(sub);
    // Peel the minimum-support alive vertex.
    VertexId best = kInvalidVertex;
    for (VertexId u = 0; u < g.num_u(); ++u) {
      if (alive[u] && (best == kInvalidVertex || support[u] < support[best])) {
        best = u;
      }
    }
    theta = std::max(theta, support[best]);
    tip[best] = theta;
    alive[best] = 0;
  }
  return tip;
}

TEST(BupTest, SmallExampleKnownTipNumbers) {
  const BipartiteGraph g = SmallExampleGraph();
  TipOptions options;
  const TipResult result = BupDecompose(g, options);
  const std::vector<Count> expected = {18, 18, 18, 18, 5, 5, 0, 0};
  EXPECT_EQ(result.tip_numbers, expected);
}

TEST(BupTest, SmallExampleVSide) {
  const BipartiteGraph g = SmallExampleGraph();
  TipOptions options;
  options.side = Side::kV;
  const TipResult result = BupDecompose(g, options);
  EXPECT_EQ(result.tip_numbers, NaiveTipDecomposition(g, Side::kV));
}

TEST(BupTest, CompleteBipartiteUniform) {
  const BipartiteGraph g = CompleteBipartite(5, 6);
  TipOptions options;
  const TipResult result = BupDecompose(g, options);
  for (const Count t : result.tip_numbers) {
    EXPECT_EQ(t, 4 * Choose2(6));
  }
}

TEST(BupTest, TipNumbersNeverExceedInitialSupport) {
  const BipartiteGraph g = ChungLuBipartite(150, 100, 700, 0.6, 0.6, 61);
  TipOptions options;
  const TipResult result = BupDecompose(g, options);
  const auto support = CountButterflies(g, 1);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    EXPECT_LE(result.tip_numbers[u], support[u]) << "u" << u;
  }
}

TEST(BupTest, StatsPopulated) {
  const BipartiteGraph g = ChungLuBipartite(100, 80, 500, 0.5, 0.5, 63);
  TipOptions options;
  const TipResult result = BupDecompose(g, options);
  EXPECT_EQ(result.stats.peel_iterations, g.num_u());
  EXPECT_GT(result.stats.wedges_counting, 0u);
  EXPECT_GT(result.stats.wedges_other, 0u);
  EXPECT_EQ(result.stats.wedges_cd, 0u);
  EXPECT_EQ(result.stats.wedges_fd, 0u);
}

using NaiveSweepParam =
    std::tuple<VertexId, VertexId, uint64_t, double, double, uint64_t, Side>;

class BupNaiveSweep : public testing::TestWithParam<NaiveSweepParam> {};

TEST_P(BupNaiveSweep, MatchesNaiveReference) {
  const auto [nu, nv, m, au, av, seed, side] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  TipOptions options;
  options.side = side;
  const TipResult result = BupDecompose(g, options);
  const std::vector<Count> expected = NaiveTipDecomposition(g, side);
  ASSERT_EQ(result.tip_numbers.size(), expected.size());
  for (size_t u = 0; u < expected.size(); ++u) {
    ASSERT_EQ(result.tip_numbers[u], expected[u]) << "vertex " << u;
  }
}

// Kept tiny: the reference is O(n² · brute-force-count).
INSTANTIATE_TEST_SUITE_P(
    Sweep, BupNaiveSweep,
    testing::Values(NaiveSweepParam{12, 10, 45, 0.0, 0.0, 1, Side::kU},
                    NaiveSweepParam{12, 10, 45, 0.0, 0.0, 1, Side::kV},
                    NaiveSweepParam{15, 8, 60, 0.8, 0.8, 2, Side::kU},
                    NaiveSweepParam{15, 8, 60, 0.8, 0.8, 2, Side::kV},
                    NaiveSweepParam{20, 12, 80, 0.4, 0.6, 3, Side::kU},
                    NaiveSweepParam{10, 20, 70, 0.6, 0.4, 4, Side::kV},
                    NaiveSweepParam{18, 18, 100, 0.2, 0.2, 5, Side::kU},
                    NaiveSweepParam{25, 6, 75, 1.0, 0.5, 6, Side::kU}));

}  // namespace
}  // namespace receipt
