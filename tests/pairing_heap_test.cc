// Unit tests for the addressable pairing heap (decrease-key backend of the
// §5.1 extraction ablation).

#include "engine/pairing_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace receipt {
namespace {

TEST(PairingHeapTest, PopsInSortedOrder) {
  PairingHeap heap;
  heap.Reset(5);
  const Count keys[] = {40, 10, 30, 20, 50};
  for (VertexId v = 0; v < 5; ++v) heap.Insert(v, keys[v]);
  std::vector<Count> popped;
  while (auto e = heap.PopMin()) popped.push_back(e->first);
  EXPECT_EQ(popped, (std::vector<Count>{10, 20, 30, 40, 50}));
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeapTest, DecreaseKeyMovesToFront) {
  PairingHeap heap;
  heap.Reset(3);
  heap.Insert(0, 100);
  heap.Insert(1, 200);
  heap.Insert(2, 300);
  heap.DecreaseKey(2, 50);
  auto e = heap.PopMin();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->second, 2u);
  EXPECT_EQ(e->first, 50u);
}

TEST(PairingHeapTest, DecreaseKeyOnRootAndNoOpIncrease) {
  PairingHeap heap;
  heap.Reset(2);
  heap.Insert(0, 10);
  heap.Insert(1, 20);
  heap.DecreaseKey(0, 5);    // root decrease
  heap.DecreaseKey(1, 999);  // would increase: must be ignored
  auto first = heap.PopMin();
  EXPECT_EQ(first->second, 0u);
  EXPECT_EQ(first->first, 5u);
  auto second = heap.PopMin();
  EXPECT_EQ(second->first, 20u);
}

TEST(PairingHeapTest, ContainsAndKeyOf) {
  PairingHeap heap;
  heap.Reset(4);
  heap.Insert(2, 7);
  EXPECT_TRUE(heap.Contains(2));
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_EQ(heap.KeyOf(2), 7u);
  heap.PopMin();
  EXPECT_FALSE(heap.Contains(2));
}

TEST(PairingHeapTest, ReinsertAfterPop) {
  PairingHeap heap;
  heap.Reset(2);
  heap.Insert(0, 5);
  heap.PopMin();
  heap.Insert(0, 3);
  auto e = heap.PopMin();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->first, 3u);
}

TEST(PairingHeapTest, RandomizedAgainstSortedReference) {
  std::mt19937_64 rng(55);
  constexpr VertexId kN = 800;
  PairingHeap heap;
  heap.Reset(kN);
  std::vector<Count> key(kN);
  for (VertexId v = 0; v < kN; ++v) {
    key[v] = 100 + rng() % 100000;
    heap.Insert(v, key[v]);
  }
  // Interleave random decreases with pops; popped sequence must be the
  // same multiset and non-decreasing relative to the final keys.
  std::vector<std::pair<Count, VertexId>> popped;
  for (int round = 0; round < 200; ++round) {
    for (int d = 0; d < 10; ++d) {
      const VertexId v = static_cast<VertexId>(rng() % kN);
      if (!heap.Contains(v) || key[v] == 0) continue;
      key[v] -= 1 + rng() % key[v];
      heap.DecreaseKey(v, key[v]);
    }
    if (auto e = heap.PopMin()) {
      EXPECT_EQ(e->first, key[e->second]);
      popped.push_back(*e);
    }
  }
  while (auto e = heap.PopMin()) popped.push_back(*e);
  EXPECT_EQ(popped.size(), kN);
  // Every pop must have been the minimum of the still-present keys: check
  // that keys never later pop below a previously popped value unless they
  // were decreased after that pop — approximate by verifying the final
  // min-extraction property on a decrease-free replay:
  PairingHeap replay;
  replay.Reset(kN);
  for (VertexId v = 0; v < kN; ++v) replay.Insert(v, key[v]);
  Count last = 0;
  while (auto e = replay.PopMin()) {
    EXPECT_GE(e->first, last);
    last = e->first;
  }
}

TEST(PairingHeapTest, ResetReusesArena) {
  PairingHeap heap;
  heap.Reset(3);
  heap.Insert(0, 1);
  heap.Reset(3);
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.Insert(0, 2);
  EXPECT_EQ(heap.PopMin()->first, 2u);
}

}  // namespace
}  // namespace receipt
