// Direct unit tests for the shared support-update kernel (Alg. 2 lines
// 6-13) — engine::PeelVertex, the routine every peeling algorithm builds on.

#include <gtest/gtest.h>

#include <vector>

#include "butterfly/butterfly_count.h"
#include "engine/peel_engine.h"
#include "graph/generators.h"
#include "util/parallel.h"

namespace receipt {
namespace {

using engine::PeelVertex;
using engine::PeelWorkspace;

struct Fixture {
  explicit Fixture(const BipartiteGraph& graph)
      : g(graph), live(graph, graph.DegreeDescendingRanks()) {
    support = CountButterflies(graph, 1);
    ws.EnsureVertexCapacity(graph.num_vertices());
  }
  const BipartiteGraph& g;
  DynamicGraph live;
  std::vector<Count> support;
  PeelWorkspace ws;
};

TEST(PeelUpdateTest, DecrementsBySharedButterflies) {
  const BipartiteGraph g = SmallExampleGraph();
  Fixture f(g);
  // Peel u4 (⊲⊳ = 5) at θ = 5: u5 shares 1 butterfly, core shares 1 each.
  f.live.Kill(4);
  std::vector<std::pair<VertexId, Count>> updates;
  const uint64_t wedges = PeelVertex<false>(
      f.live, 4, /*floor=*/5, f.support, f.ws,
      [&updates](VertexId u2, Count s) { updates.emplace_back(u2, s); });
  EXPECT_GT(wedges, 0u);
  // u0..u3 had 20 → 19; u5 had 5 → max(5, 5−1) = 5 (clamped).
  for (VertexId u = 0; u < 4; ++u) EXPECT_EQ(f.support[u], 19u);
  EXPECT_EQ(f.support[5], 5u);
  // Every updated vertex reported exactly once.
  EXPECT_EQ(updates.size(), 5u);
}

TEST(PeelUpdateTest, FloorClampHolds) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  Fixture f(g);
  // Each pair shares C(4,2) = 6 butterflies; support = 3·6 = 18.
  f.live.Kill(0);
  PeelVertex<false>(f.live, 0, /*floor=*/15, f.support, f.ws,
                    [](VertexId, Count) {});
  for (VertexId u = 1; u < 4; ++u) EXPECT_EQ(f.support[u], 15u);  // 18−6<15
}

TEST(PeelUpdateTest, SkipsDeadTwoHopNeighbors) {
  const BipartiteGraph g = CompleteBipartite(4, 4);
  Fixture f(g);
  f.live.Kill(0);
  f.live.Kill(1);  // dead before the update: must receive nothing
  const Count before = f.support[1];
  PeelVertex<false>(f.live, 0, 0, f.support, f.ws, [](VertexId, Count) {});
  EXPECT_EQ(f.support[1], before);
  EXPECT_EQ(f.support[2], 18u - 6u);
}

TEST(PeelUpdateTest, WedgeCountMatchesLiveTraversal) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 300, 0.5, 0.5, 501);
  Fixture f(g);
  f.live.Kill(7);
  const uint64_t wedges = PeelVertex<false>(
      f.live, 7, 0, f.support, f.ws, [](VertexId, Count) {});
  // One wedge per (v, u2) slot pair reachable from u=7.
  uint64_t expected = 0;
  for (const VertexId v : g.Neighbors(7)) expected += g.Degree(v);
  EXPECT_EQ(wedges, expected);
}

TEST(PeelUpdateTest, AtomicAndSequentialAgree) {
  const BipartiteGraph g = ChungLuBipartite(100, 60, 500, 0.6, 0.6, 503);
  Fixture sequential(g);
  Fixture atomic(g);
  for (const VertexId u : {5u, 9u, 21u}) {
    sequential.live.Kill(u);
    atomic.live.Kill(u);
  }
  for (const VertexId u : {5u, 9u, 21u}) {
    PeelVertex<false>(sequential.live, u, 2, sequential.support,
                      sequential.ws, [](VertexId, Count) {});
    PeelVertex<true>(atomic.live, u, 2, atomic.support, atomic.ws,
                     [](VertexId, Count) {});
  }
  EXPECT_EQ(sequential.support, atomic.support);
}

TEST(PeelUpdateTest, ConcurrentUpdatesLoseNothing) {
  // Lemma 2: peeling a whole set concurrently must decrement each survivor
  // by exactly the sum of shared butterflies.
  const BipartiteGraph g = ChungLuBipartite(120, 80, 600, 0.5, 0.5, 507);
  Fixture f(g);
  std::vector<VertexId> peel_set;
  for (VertexId u = 0; u < 30; ++u) peel_set.push_back(u);
  for (const VertexId u : peel_set) f.live.Kill(u);

  std::vector<PeelWorkspace> workspaces(4);
  for (auto& ws : workspaces) ws.EnsureVertexCapacity(g.num_vertices());
  ParallelForWithContext(peel_set.size(), 4, workspaces,
                         [&](PeelWorkspace& ws, size_t i) {
                           PeelVertex<true>(f.live, peel_set[i], 0,
                                            f.support, ws,
                                            [](VertexId, Count) {});
                         });

  const std::vector<Count> original = CountButterflies(g, 1);
  for (VertexId u = 30; u < g.num_u(); ++u) {
    Count shared = 0;
    for (const VertexId dead : peel_set) {
      shared += SharedButterflies(g, u, dead);
    }
    // A butterfly has exactly two U vertices, so each dead partner
    // contributes independently to u's loss.
    EXPECT_EQ(f.support[u], original[u] - shared) << "u" << u;
  }
}

}  // namespace
}  // namespace receipt
