// Tests for RECEIPT CD (Alg. 3): partition/range soundness (Lemmas 3-4,
// Theorem 1), ⊲⊳init semantics, adaptive range behavior, and invariance of
// the partition under the HUC/DGM workload optimizations.

#include "tip/receipt_cd.h"

#include <gtest/gtest.h>

#include <set>

#include "butterfly/butterfly_count.h"
#include "graph/generators.h"
#include "tip/bup.h"

namespace receipt {
namespace {

TipOptions Options(int partitions, int threads, bool huc = true,
                   bool dgm = true) {
  TipOptions options;
  options.num_partitions = partitions;
  options.num_threads = threads;
  options.use_huc = huc;
  options.use_dgm = dgm;
  return options;
}

TEST(ReceiptCdTest, SubsetsPartitionU) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1200, 0.5, 0.5, 71);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(10, 2), &stats);
  std::set<VertexId> seen;
  for (const auto& subset : cd.subsets) {
    for (const VertexId u : subset) {
      EXPECT_TRUE(seen.insert(u).second) << "duplicate vertex " << u;
    }
  }
  EXPECT_EQ(seen.size(), g.num_u());
  // subset_of agrees with the explicit lists.
  for (uint32_t i = 0; i < cd.subsets.size(); ++i) {
    for (const VertexId u : cd.subsets[i]) {
      EXPECT_EQ(cd.subset_of[u], i);
    }
  }
}

TEST(ReceiptCdTest, BoundsMonotoneAndRangesDisjoint) {
  const BipartiteGraph g = ChungLuBipartite(300, 200, 1200, 0.7, 0.7, 73);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(12, 2), &stats);
  ASSERT_EQ(cd.bounds.size(), cd.subsets.size() + 1);
  EXPECT_EQ(cd.bounds.front(), 0u);
  for (size_t i = 0; i + 1 < cd.bounds.size(); ++i) {
    EXPECT_LT(cd.bounds[i], cd.bounds[i + 1]);
  }
}

TEST(ReceiptCdTest, AtMostPPlusOneSubsets) {
  const BipartiteGraph g = ChungLuBipartite(400, 250, 1500, 0.6, 0.9, 79);
  for (const int p : {1, 3, 8, 50}) {
    PeelStats stats;
    const CdResult cd = ReceiptCd(g, Options(p, 2), &stats);
    EXPECT_LE(cd.subsets.size(), static_cast<size_t>(p) + 1) << "P=" << p;
    EXPECT_EQ(stats.num_subsets, cd.subsets.size());
  }
}

TEST(ReceiptCdTest, TipNumbersRespectRanges) {
  // Theorem 1 via ground truth: θ_u from BUP must land in u's CD range.
  const BipartiteGraph g = ChungLuBipartite(250, 150, 1000, 0.6, 0.6, 83);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(9, 3), &stats);
  TipOptions bup_options;
  const TipResult bup = BupDecompose(g, bup_options);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    const uint32_t s = cd.subset_of[u];
    EXPECT_GE(bup.tip_numbers[u], cd.bounds[s]) << "u" << u;
    EXPECT_LT(bup.tip_numbers[u], cd.bounds[s + 1]) << "u" << u;
  }
}

TEST(ReceiptCdTest, InitSupportSemantics) {
  // ⊲⊳init_u must equal the number of butterflies u shares with vertices in
  // its own or higher subsets (the support after all lower subsets peeled).
  const BipartiteGraph g = ChungLuBipartite(120, 90, 600, 0.5, 0.5, 89);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(6, 2), &stats);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    const uint32_t s = cd.subset_of[u];
    Count expected = 0;
    for (VertexId u2 = 0; u2 < g.num_u(); ++u2) {
      if (u2 != u && cd.subset_of[u2] >= s) {
        expected += SharedButterflies(g, u, u2);
      }
    }
    // ⊲⊳init is clamped from below by the range floors applied during
    // peeling, so it can exceed the true shared count only when the true
    // count dropped below the floor of an earlier range.
    if (expected >= cd.bounds[s]) {
      EXPECT_EQ(cd.init_support[u], expected) << "u" << u;
    } else {
      EXPECT_GE(cd.init_support[u], expected) << "u" << u;
      EXPECT_LE(cd.init_support[u], cd.bounds[s]) << "u" << u;
    }
  }
}

TEST(ReceiptCdTest, PartitionInvariantUnderOptimizations) {
  // HUC and DGM change the work, never the partition (Lemma 1: support
  // values depend only on the peeled set).
  const BipartiteGraph g = ChungLuBipartite(300, 100, 1100, 0.4, 0.9, 97);
  PeelStats s00, s01, s10, s11;
  const CdResult base = ReceiptCd(g, Options(8, 2, false, false), &s00);
  const CdResult dgm = ReceiptCd(g, Options(8, 2, false, true), &s01);
  const CdResult huc = ReceiptCd(g, Options(8, 2, true, false), &s10);
  const CdResult both = ReceiptCd(g, Options(8, 2, true, true), &s11);
  EXPECT_EQ(base.subset_of, dgm.subset_of);
  EXPECT_EQ(base.subset_of, huc.subset_of);
  EXPECT_EQ(base.subset_of, both.subset_of);
  EXPECT_EQ(base.bounds, both.bounds);
  EXPECT_EQ(base.init_support, both.init_support);
}

TEST(ReceiptCdTest, HucReducesWedgesOnSkewedGraph) {
  // The "tr"-style regime: peeling wedges ≫ counting wedges, so HUC must
  // fire and cut CD wedge traversal.
  const BipartiteGraph g = ChungLuBipartite(2000, 500, 8000, 0.4, 1.0, 101);
  PeelStats with_huc, without_huc;
  ReceiptCd(g, Options(10, 2, true, true), &with_huc);
  ReceiptCd(g, Options(10, 2, false, false), &without_huc);
  EXPECT_GT(with_huc.huc_recounts, 0u);
  EXPECT_LT(with_huc.wedges_cd, without_huc.wedges_cd);
}

TEST(ReceiptCdTest, SyncRoundsWellBelowVertexCount) {
  const BipartiteGraph g = ChungLuBipartite(500, 300, 2000, 0.6, 0.6, 103);
  PeelStats stats;
  ReceiptCd(g, Options(10, 2), &stats);
  EXPECT_LT(stats.sync_rounds, g.num_u() / 2);
  EXPECT_GT(stats.sync_rounds, 0u);
}

TEST(ReceiptCdTest, SingletonPartitionTakesEverything) {
  const BipartiteGraph g = ChungLuBipartite(100, 60, 400, 0.3, 0.3, 107);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(1, 2), &stats);
  // P=1: one range absorbs every vertex (possibly one leftover subset).
  EXPECT_LE(cd.subsets.size(), 2u);
  size_t total = 0;
  for (const auto& s : cd.subsets) total += s.size();
  EXPECT_EQ(total, g.num_u());
}

TEST(ReceiptCdTest, ButterflyFreeGraphSingleRange) {
  const BipartiteGraph g = Star(40);
  PeelStats stats;
  const CdResult cd = ReceiptCd(g, Options(5, 2), &stats);
  size_t total = 0;
  for (const auto& s : cd.subsets) total += s.size();
  EXPECT_EQ(total, 40u);
  // All supports are 0 ⇒ everything fits in the first range.
  EXPECT_EQ(cd.subsets[0].size(), 40u);
}

}  // namespace
}  // namespace receipt
