// Unit tests for the edge-id addressing substrate of the wing algorithms.

#include "wing/edge_topology.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "wing/wing_decomposition.h"

namespace receipt {
namespace {

TEST(EdgeTopologyTest, SourcesMatchCsrLayout) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 200, 0.6, 0.4, 701);
  const EdgeTopology topo = BuildEdgeTopology(g);
  ASSERT_EQ(topo.source.size(), g.num_edges());
  for (VertexId u = 0; u < g.num_u(); ++u) {
    const EdgeOffset base = g.NeighborOffset(u);
    for (uint64_t j = 0; j < g.Degree(u); ++j) {
      EXPECT_EQ(topo.source[base + j], u);
    }
  }
}

TEST(EdgeTopologyTest, VSlotMapRoundTrips) {
  const BipartiteGraph g = ChungLuBipartite(40, 25, 180, 0.5, 0.7, 703);
  const EdgeTopology topo = BuildEdgeTopology(g);
  // For every V vertex and slot, the mapped U-side edge must name this V
  // vertex and the slot's U neighbor.
  for (VertexId vl = 0; vl < g.num_v(); ++vl) {
    const VertexId gv = g.VGlobal(vl);
    const EdgeOffset base = g.NeighborOffset(gv);
    const auto nbrs = g.Neighbors(gv);
    for (size_t s = 0; s < nbrs.size(); ++s) {
      const EdgeOffset e = topo.v_slot_edge[base + s - topo.v_region];
      EXPECT_EQ(g.adjacency()[e], gv);
      EXPECT_EQ(topo.source[e], nbrs[s]);
    }
  }
}

TEST(EdgeTopologyTest, EmptyGraph) {
  const BipartiteGraph g = BipartiteGraph::FromEdges(3, 3, {});
  const EdgeTopology topo = BuildEdgeTopology(g);
  EXPECT_TRUE(topo.source.empty());
  EXPECT_TRUE(topo.v_slot_edge.empty());
}

TEST(EdgeTopologyTest, MatchesEdgeSourceU) {
  const BipartiteGraph g = ChungLuBipartite(30, 30, 150, 0.3, 0.3, 707);
  const EdgeTopology topo = BuildEdgeTopology(g);
  for (EdgeOffset e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(topo.source[e], EdgeSourceU(g, e));
  }
}

}  // namespace
}  // namespace receipt
