// Tests for the wing decomposition extension (§7): per-edge butterfly
// counting vs brute force, edge peeling vs a naive re-counting reference.

#include "wing/wing_decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "graph/generators.h"

namespace receipt {
namespace {

/// Ground-truth wing decomposition: rebuild the surviving edge set and
/// re-count per-edge butterflies before every peel. O(m² · counting).
std::vector<Count> NaiveWingDecomposition(const BipartiteGraph& g) {
  const auto all_edges = g.ToEdges();
  const uint64_t m = g.num_edges();
  std::vector<uint8_t> alive(m, 1);
  std::vector<Count> wing(m, 0);
  Count theta = 0;
  for (uint64_t step = 0; step < m; ++step) {
    std::vector<BipartiteGraph::Edge> survivors;
    std::vector<uint64_t> ids;
    for (uint64_t e = 0; e < m; ++e) {
      if (alive[e]) {
        survivors.push_back(all_edges[e]);
        ids.push_back(e);
      }
    }
    const BipartiteGraph sub =
        BipartiteGraph::FromEdges(g.num_u(), g.num_v(), survivors);
    // survivors are sorted (ToEdges order) so sub's edge ids align with
    // the `ids` positions.
    const std::vector<Count> support = BruteForcePerEdgeCount(sub);
    uint64_t best = 0;
    for (uint64_t i = 1; i < ids.size(); ++i) {
      if (support[i] < support[best]) best = i;
    }
    theta = std::max(theta, support[best]);
    wing[ids[best]] = theta;
    alive[ids[best]] = 0;
  }
  return wing;
}

TEST(WingTest, EdgeSourceULocatesOwner) {
  const BipartiteGraph g = ChungLuBipartite(40, 30, 150, 0.5, 0.5, 161);
  for (VertexId u = 0; u < g.num_u(); ++u) {
    const EdgeOffset base = g.NeighborOffset(u);
    for (uint64_t j = 0; j < g.Degree(u); ++j) {
      EXPECT_EQ(EdgeSourceU(g, base + j), u);
    }
  }
}

TEST(WingTest, PerEdgeCountCompleteBipartiteClosedForm) {
  // In K_{a,b} every edge participates in (a−1)(b−1) butterflies.
  const BipartiteGraph g = CompleteBipartite(5, 4);
  const std::vector<Count> counts = PerEdgeButterflyCount(g, 2);
  for (const Count c : counts) EXPECT_EQ(c, 4u * 3u);
}

TEST(WingTest, PerEdgeCountZeroOnStar) {
  const BipartiteGraph g = Star(10);
  for (const Count c : PerEdgeButterflyCount(g, 1)) EXPECT_EQ(c, 0u);
}

TEST(WingTest, WingNumbersCompleteBipartite) {
  const BipartiteGraph g = CompleteBipartite(4, 5);
  const WingResult r = WingDecompose(g, 2);
  for (const Count w : r.wing_numbers) EXPECT_EQ(w, 3u * 4u);
}

TEST(WingTest, WingNumberNeverExceedsInitialCount) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 300, 0.6, 0.6, 163);
  const std::vector<Count> counts = PerEdgeButterflyCount(g, 1);
  const WingResult r = WingDecompose(g, 1);
  for (uint64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_LE(r.wing_numbers[e], counts[e]) << "edge " << e;
  }
}

using CountSweepParam =
    std::tuple<VertexId, VertexId, uint64_t, double, double, uint64_t>;

class WingCountSweep : public testing::TestWithParam<CountSweepParam> {};

TEST_P(WingCountSweep, PerEdgeCountMatchesBruteForce) {
  const auto [nu, nv, m, au, av, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  const std::vector<Count> fast = PerEdgeButterflyCount(g, 2);
  const std::vector<Count> slow = BruteForcePerEdgeCount(g);
  ASSERT_EQ(fast.size(), slow.size());
  for (uint64_t e = 0; e < fast.size(); ++e) {
    ASSERT_EQ(fast[e], slow[e]) << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WingCountSweep,
    testing::Values(CountSweepParam{20, 15, 80, 0.0, 0.0, 1},
                    CountSweepParam{30, 20, 150, 0.6, 0.6, 2},
                    CountSweepParam{40, 10, 150, 0.9, 0.3, 3},
                    CountSweepParam{25, 25, 200, 0.4, 0.4, 4},
                    CountSweepParam{60, 40, 300, 0.7, 0.7, 5}));

class WingPeelSweep : public testing::TestWithParam<CountSweepParam> {};

TEST_P(WingPeelSweep, MatchesNaiveReference) {
  const auto [nu, nv, m, au, av, seed] = GetParam();
  const BipartiteGraph g = ChungLuBipartite(nu, nv, m, au, av, seed);
  const WingResult r = WingDecompose(g, 1);
  const std::vector<Count> expected = NaiveWingDecomposition(g);
  ASSERT_EQ(r.wing_numbers.size(), expected.size());
  for (uint64_t e = 0; e < expected.size(); ++e) {
    ASSERT_EQ(r.wing_numbers[e], expected[e]) << "edge " << e;
  }
}

// The naive reference is O(m²·counting): keep these tiny.
INSTANTIATE_TEST_SUITE_P(
    Sweep, WingPeelSweep,
    testing::Values(CountSweepParam{8, 6, 24, 0.0, 0.0, 11},
                    CountSweepParam{10, 8, 35, 0.5, 0.5, 12},
                    CountSweepParam{12, 6, 40, 0.8, 0.2, 13},
                    CountSweepParam{9, 9, 45, 0.3, 0.3, 14}));

}  // namespace
}  // namespace receipt
