// Unit tests for DynamicGraph: kill/compact semantics, rank ordering, cost
// models (§4.2 Dynamic Graph Maintenance substrate).

#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"

namespace receipt {
namespace {

DynamicGraph MakeLive(const BipartiteGraph& g) {
  return DynamicGraph(g, g.DegreeDescendingRanks());
}

TEST(DynamicGraphTest, InitialStateMirrorsGraph) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 200, 0.5, 0.5, 31);
  const DynamicGraph live = MakeLive(g);
  EXPECT_EQ(live.num_u(), g.num_u());
  EXPECT_EQ(live.num_v(), g.num_v());
  for (VertexId w = 0; w < g.num_vertices(); ++w) {
    EXPECT_TRUE(live.IsAlive(w));
    EXPECT_EQ(live.Degree(w), g.Degree(w));
  }
  EXPECT_EQ(live.LiveEdgeSlots(), 2 * g.num_edges());
  EXPECT_EQ(live.NumAlive(Side::kU), g.num_u());
  EXPECT_EQ(live.NumAlive(Side::kV), g.num_v());
}

TEST(DynamicGraphTest, NeighborsSortedByRank) {
  const BipartiteGraph g = ChungLuBipartite(50, 30, 200, 0.8, 0.8, 33);
  const DynamicGraph live = MakeLive(g);
  for (VertexId w = 0; w < g.num_vertices(); ++w) {
    const auto nbrs = live.Neighbors(w);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(live.Rank(nbrs[i - 1]), live.Rank(nbrs[i]));
    }
  }
}

TEST(DynamicGraphTest, RecountCostBoundMatchesStaticGraph) {
  const BipartiteGraph g = ChungLuBipartite(60, 40, 250, 0.6, 0.6, 35);
  const DynamicGraph live = MakeLive(g);
  EXPECT_EQ(live.RecountCostBound(), g.CountingCostBound());
}

TEST(DynamicGraphTest, KillThenCompactRemovesEdges) {
  // K_{3,3}: killing one u must shave one entry off every v after Compact.
  const BipartiteGraph g = CompleteBipartite(3, 3);
  DynamicGraph live = MakeLive(g);
  live.Kill(0);
  EXPECT_FALSE(live.IsAlive(0));
  // Before compaction, neighbor lists still include the dead vertex.
  EXPECT_EQ(live.Degree(g.VGlobal(0)), 3u);
  live.Compact(2);
  EXPECT_EQ(live.Degree(g.VGlobal(0)), 2u);
  EXPECT_EQ(live.Degree(g.VGlobal(1)), 2u);
  EXPECT_EQ(live.Degree(g.VGlobal(2)), 2u);
  EXPECT_EQ(live.Degree(0), 0u);  // dead vertex's own list is dropped
  for (VertexId v = 0; v < 3; ++v) {
    for (const VertexId u : live.Neighbors(g.VGlobal(v))) {
      EXPECT_TRUE(live.IsAlive(u));
    }
  }
  EXPECT_EQ(live.NumAlive(Side::kU), 2u);
}

TEST(DynamicGraphTest, CompactPreservesRankOrder) {
  const BipartiteGraph g = ChungLuBipartite(80, 40, 300, 0.7, 0.7, 37);
  DynamicGraph live = MakeLive(g);
  for (VertexId u = 0; u < 40; u += 3) live.Kill(u);
  live.Compact(2);
  for (VertexId w = 0; w < g.num_vertices(); ++w) {
    if (!live.IsAlive(w)) continue;
    const auto nbrs = live.Neighbors(w);
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(live.Rank(nbrs[i - 1]), live.Rank(nbrs[i]));
    }
    for (const VertexId x : nbrs) EXPECT_TRUE(live.IsAlive(x));
  }
}

TEST(DynamicGraphTest, LiveWedgeCountTracksCompaction) {
  const BipartiteGraph g = CompleteBipartite(4, 3);
  DynamicGraph live = MakeLive(g);
  // In K_{4,3}, u0's wedges: 3 neighbors of degree 4 → 3·3 = 9.
  EXPECT_EQ(live.LiveWedgeCount(0), 9u);
  live.Kill(1);
  live.Compact(1);
  // Now every v has degree 3 → 3·2 = 6.
  EXPECT_EQ(live.LiveWedgeCount(0), 6u);
}

TEST(DynamicGraphTest, RecountCostBoundShrinksAfterKills) {
  const BipartiteGraph g = ChungLuBipartite(100, 60, 400, 0.6, 0.8, 39);
  DynamicGraph live = MakeLive(g);
  const Count before = live.RecountCostBound();
  for (VertexId u = 0; u < 50; ++u) live.Kill(u);
  live.Compact(2);
  const Count after = live.RecountCostBound();
  EXPECT_LT(after, before);
}

TEST(DynamicGraphTest, KillAllYieldsEmptyLiveGraph) {
  const BipartiteGraph g = CompleteBipartite(3, 3);
  DynamicGraph live = MakeLive(g);
  for (VertexId u = 0; u < 3; ++u) live.Kill(u);
  live.Compact(1);
  EXPECT_EQ(live.NumAlive(Side::kU), 0u);
  EXPECT_EQ(live.RecountCostBound(), 0u);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(live.Degree(g.VGlobal(v)), 0u);
  }
}

}  // namespace
}  // namespace receipt
